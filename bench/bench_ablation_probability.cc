// Ablation: the design choices inside the probability engine.
//
// On the undecided conditions of a real c-table (NBA, missing rate 0.1):
//  * ADPLL variants: star fast path on/off, component decomposition
//    on/off, branching-variable heuristic (most-frequent / first /
//    random);
//  * the generalized-ApproxCount sampling estimators (plain Monte Carlo
//    and Rao-Blackwellised) at several sample counts, with their mean
//    absolute error vs the exact answer as a counter.
//
// Expected shape: star + decomposition + most-frequent is the fastest
// exact configuration (the paper's ADPLL conclusion); sampling trades
// error for time and is dominated by exact ADPLL at this condition size
// (Section 5's finding that ApproxCount "performs worse in both
// efficiency and accuracy").

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util.h"
#include "common/random.h"
#include "ctable/builder.h"
#include "probability/adpll.h"
#include "probability/sampling.h"

namespace bayescrowd::bench {
namespace {

struct AblationCase {
  Table incomplete;
  CTable ctable;
  DistributionMap dists;
  std::vector<std::size_t> conditions;
  std::vector<double> exact;  // Reference probabilities (default ADPLL).
};

const AblationCase& Prepare() {
  static auto* cache = new AblationCase();
  static bool ready = false;
  if (ready) return *cache;

  cache->incomplete = WithMissingRate(NbaComplete(), 0.1);
  auto ctable = BuildCTable(cache->incomplete, {.alpha = 0.003});
  BAYESCROWD_CHECK_OK(ctable.status());
  cache->ctable = std::move(ctable).value();
  const auto& net = LearnedNetwork(cache->incomplete, "ablation");
  BnPosteriorProvider posteriors(net, cache->incomplete);
  for (const CellRef& var : cache->ctable.AllVariables()) {
    auto dist = posteriors.Posterior(var);
    BAYESCROWD_CHECK_OK(dist.status());
    BAYESCROWD_CHECK_OK(cache->dists.Set(var, std::move(dist).value()));
  }
  cache->conditions = cache->ctable.UndecidedObjects();
  for (std::size_t i : cache->conditions) {
    auto p = AdpllProbability(cache->ctable.condition(i), cache->dists);
    BAYESCROWD_CHECK_OK(p.status());
    cache->exact.push_back(p.value());
  }
  ready = true;
  return *cache;
}

void RunAdpllVariant(benchmark::State& state, bool star, bool components,
                     BranchHeuristic heuristic) {
  const AblationCase& c = Prepare();
  AdpllOptions options;
  options.star_fast_path = star;
  options.component_decomposition = components;
  options.heuristic = heuristic;
  AdpllStats stats;
  for (auto _ : state) {
    for (std::size_t i : c.conditions) {
      auto p = AdpllProbability(c.ctable.condition(i), c.dists, options,
                                &stats);
      BAYESCROWD_CHECK_OK(p.status());
      benchmark::DoNotOptimize(p);
    }
  }
  state.counters["conditions"] = static_cast<double>(c.conditions.size());
  state.counters["recursive_calls"] = static_cast<double>(stats.calls);
  state.counters["branches"] = static_cast<double>(stats.branches);
}

void BM_Ablation_Adpll_Full(benchmark::State& state) {
  RunAdpllVariant(state, true, true, BranchHeuristic::kMostFrequent);
}
void BM_Ablation_Adpll_NoStar(benchmark::State& state) {
  RunAdpllVariant(state, false, true, BranchHeuristic::kMostFrequent);
}
void BM_Ablation_Adpll_NoStarNoComponents(benchmark::State& state) {
  RunAdpllVariant(state, false, false, BranchHeuristic::kMostFrequent);
}
void BM_Ablation_Adpll_FirstVariable(benchmark::State& state) {
  RunAdpllVariant(state, false, true, BranchHeuristic::kFirst);
}
void BM_Ablation_Adpll_RandomVariable(benchmark::State& state) {
  RunAdpllVariant(state, false, true, BranchHeuristic::kRandom);
}

void RunSampling(benchmark::State& state, bool rao_blackwell) {
  const AblationCase& c = Prepare();
  SamplingOptions options;
  options.num_samples = static_cast<std::size_t>(state.range(0));
  Rng rng(2024);
  double abs_err = 0.0;
  for (auto _ : state) {
    abs_err = 0.0;
    for (std::size_t k = 0; k < c.conditions.size(); ++k) {
      const Condition& cond = c.ctable.condition(c.conditions[k]);
      auto p = rao_blackwell
                   ? SampledProbabilityRaoBlackwell(cond, c.dists, options,
                                                    rng)
                   : SampledProbability(cond, c.dists, options, rng);
      BAYESCROWD_CHECK_OK(p.status());
      abs_err += std::abs(p.value() - c.exact[k]);
    }
  }
  state.counters["samples"] = static_cast<double>(options.num_samples);
  state.counters["mean_abs_error"] =
      abs_err / static_cast<double>(c.conditions.size());
}

void BM_Ablation_MonteCarlo(benchmark::State& state) {
  RunSampling(state, /*rao_blackwell=*/false);
}
void BM_Ablation_RaoBlackwell(benchmark::State& state) {
  RunSampling(state, /*rao_blackwell=*/true);
}

void VariantArgs(benchmark::internal::Benchmark* bench) {
  bench->Unit(benchmark::kMillisecond)->Iterations(1);
}
void SampleArgs(benchmark::internal::Benchmark* bench) {
  for (std::int64_t samples : {100, 1000, 10000}) bench->Arg(samples);
  bench->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_Ablation_Adpll_Full)->Apply(VariantArgs);
BENCHMARK(BM_Ablation_Adpll_NoStar)->Apply(VariantArgs);
BENCHMARK(BM_Ablation_Adpll_NoStarNoComponents)->Apply(VariantArgs);
BENCHMARK(BM_Ablation_Adpll_FirstVariable)->Apply(VariantArgs);
BENCHMARK(BM_Ablation_Adpll_RandomVariable)->Apply(VariantArgs);
BENCHMARK(BM_Ablation_MonteCarlo)->Apply(SampleArgs);
BENCHMARK(BM_Ablation_RaoBlackwell)->Apply(SampleArgs);

}  // namespace
}  // namespace bayescrowd::bench

BC_BENCH_MAIN("ablation_probability");
