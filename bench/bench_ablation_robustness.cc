// Ablation: robustness extensions beyond the paper's protocol.
//
//  * Vote aggregation (worker pool with mixed 0.45-0.98 accuracies):
//    majority vs true-accuracy-weighted vs gold-estimated-weighted
//    voting. Expected: weighted > estimated > majority in F1.
//  * Missingness mechanism at a fixed 10% rate: MCAR (the paper's
//    protocol) vs MAR (observed-driver) vs MNAR (self-censoring).
//    Expected: F1 degrades from MCAR to MNAR — available-case BN
//    training is unbiased only under MCAR.
//  * Confidence stop: tasks spent and F1 with/without the early-stop
//    rule under a generous budget. Expected: similar F1, fewer tasks.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "bayesnet/imputation.h"
#include "common/random.h"
#include "crowd/platform.h"
#include "data/missing.h"
#include "skyline/metrics.h"

namespace bayescrowd::bench {
namespace {

// ------------------------------------------------------------------ //
// Aggregation methods.
// ------------------------------------------------------------------ //

void RunAggregation(benchmark::State& state, AggregationMethod method) {
  const Table& complete = NbaComplete();
  const Table incomplete = WithMissingRate(complete, 0.1);
  const auto& net = LearnedNetwork(incomplete, "nba@0.1");

  BayesCrowdOptions options = NbaDefaults();
  options.budget = 100;

  double f1_total = 0.0;
  int samples = 0;
  for (auto _ : state) {
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      BayesCrowd framework(options);
      BnPosteriorProvider posteriors(net, incomplete);
      SimulatedPlatformOptions platform_options;
      platform_options.worker_pool_size = 24;
      platform_options.accuracy_pool = {0.98, 0.85, 0.65, 0.45};
      platform_options.aggregation = method;
      platform_options.gold_fraction = 0.25;
      platform_options.seed = seed * 104729;
      SimulatedCrowdPlatform platform(complete, platform_options);
      auto result = framework.Run(incomplete, posteriors, platform);
      BAYESCROWD_CHECK_OK(result.status());
      f1_total += EvaluateResultSet(result->result_objects,
                                    GroundTruthSkyline(complete))
                      .f1;
      ++samples;
    }
  }
  state.counters["f1"] = f1_total / static_cast<double>(samples);
}

void BM_Aggregation_Majority(benchmark::State& state) {
  RunAggregation(state, AggregationMethod::kMajority);
}
void BM_Aggregation_WeightedTrue(benchmark::State& state) {
  RunAggregation(state, AggregationMethod::kWeightedTrue);
}
void BM_Aggregation_WeightedEstimated(benchmark::State& state) {
  RunAggregation(state, AggregationMethod::kWeightedEstimated);
}

// ------------------------------------------------------------------ //
// Missingness mechanisms.
// ------------------------------------------------------------------ //

enum class Mechanism { kMcar, kMar, kMnar };

void RunMechanism(benchmark::State& state, Mechanism mechanism) {
  const Table& complete = NbaComplete();
  double f1_total = 0.0;
  int samples = 0;
  for (auto _ : state) {
    for (std::uint64_t seed : {5u, 6u, 7u}) {
      Rng rng(seed * 7907);
      Table incomplete;
      const char* tag = "";
      switch (mechanism) {
        case Mechanism::kMcar:
          incomplete = InjectMissingUniform(complete, 0.1, rng);
          tag = "mcar";
          break;
        case Mechanism::kMar:
          // Minutes (attribute 1) drives the dropout.
          incomplete = InjectMissingMar(complete, 0.1, 1, rng);
          tag = "mar";
          break;
        case Mechanism::kMnar:
          incomplete = InjectMissingMnar(complete, 0.1, rng);
          tag = "mnar";
          break;
      }
      const auto& net = LearnedNetwork(
          incomplete, std::string("mech-") + tag + std::to_string(seed));
      const PipelineOutcome outcome =
          RunPipeline(complete, incomplete, net, NbaDefaults());
      f1_total += outcome.f1;
      ++samples;
    }
  }
  state.counters["f1"] = f1_total / static_cast<double>(samples);
}

void BM_Missingness_MCAR(benchmark::State& state) {
  RunMechanism(state, Mechanism::kMcar);
}
void BM_Missingness_MAR(benchmark::State& state) {
  RunMechanism(state, Mechanism::kMar);
}
void BM_Missingness_MNAR(benchmark::State& state) {
  RunMechanism(state, Mechanism::kMnar);
}

// ------------------------------------------------------------------ //
// Confidence stop.
// ------------------------------------------------------------------ //

void RunConfidenceStop(benchmark::State& state, double threshold) {
  const Table& complete = NbaComplete();
  const Table incomplete = WithMissingRate(complete, 0.1);
  const auto& net = LearnedNetwork(incomplete, "nba@0.1");
  BayesCrowdOptions options = NbaDefaults();
  options.budget = 400;  // Generous; the stop should save most of it.
  options.latency = 40;
  options.confidence_stop_entropy = threshold;
  PipelineOutcome outcome;
  for (auto _ : state) {
    outcome = RunPipeline(complete, incomplete, net, options);
  }
  state.counters["f1"] = outcome.f1;
  state.counters["tasks"] = static_cast<double>(outcome.tasks);
}

void BM_ConfidenceStop_Off(benchmark::State& state) {
  RunConfidenceStop(state, 0.0);
}
void BM_ConfidenceStop_035(benchmark::State& state) {
  RunConfidenceStop(state, 0.35);
}
void BM_ConfidenceStop_060(benchmark::State& state) {
  RunConfidenceStop(state, 0.60);
}

void Unit(benchmark::internal::Benchmark* bench) {
  bench->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_Aggregation_Majority)->Apply(Unit);
BENCHMARK(BM_Aggregation_WeightedTrue)->Apply(Unit);
BENCHMARK(BM_Aggregation_WeightedEstimated)->Apply(Unit);
BENCHMARK(BM_Missingness_MCAR)->Apply(Unit);
BENCHMARK(BM_Missingness_MAR)->Apply(Unit);
BENCHMARK(BM_Missingness_MNAR)->Apply(Unit);
BENCHMARK(BM_ConfidenceStop_Off)->Apply(Unit);
BENCHMARK(BM_ConfidenceStop_035)->Apply(Unit);
BENCHMARK(BM_ConfidenceStop_060)->Apply(Unit);

}  // namespace
}  // namespace bayescrowd::bench

BC_BENCH_MAIN("ablation_robustness");
