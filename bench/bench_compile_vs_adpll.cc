// Knowledge compilation vs. re-solving: the round-loop hot path.
//
// The crowdsourcing loop's dominant cost is "fold answers, re-evaluate
// Pr(φ) for every touched object" — same formulas, shifted posteriors,
// round after round. This bench pins the tentpole claim: replaying a
// compiled circuit through those rounds beats re-running the (governed)
// ADPLL search by ≥10×, at identical bits.
//
// Three measurements, one JSON artifact (BENCH_compile_vs_adpll.json):
//
//   round-loop     a fixed workload of branch-heavy zigzag conditions,
//                  posterior-shift rounds through the evaluator:
//                  exact ADPLL vs. governed ADPLL vs. compiled replay
//                  (speedups + bit-identity in the compiled row);
//   scratch        satellite: ADPLL's per-call scratch allocations vs.
//                  the reusable per-lane scratch, same workload;
//   pipeline       a full BayesCrowd run on a hostile c-table with
//                  compilation off/on: F1 and result probabilities
//                  must not move at all.
//
// Every row is deterministic (seeded workloads, no wall-clock logic in
// the measured code paths).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "bayesnet/imputation.h"
#include "common/random.h"
#include "crowd/platform.h"
#include "ctable/condition.h"
#include "ctable/expression.h"
#include "data/generators.h"
#include "data/missing.h"
#include "probability/evaluator.h"
#include "skyline/metrics.h"

namespace bayescrowd::bench {
namespace {

// Workload shape matters: a circuit replays exactly the arithmetic the
// search performs at its leaves, so compilation wins by deleting the
// per-node search bookkeeping (substituted-condition materialization,
// independence/hub scans, plan construction) — not the leaf math. The
// round-loop rows therefore use zigzag chains (v0 < v1 > v2 < ... —
// satisfiable at any arity, unlike a strict chain) with the star fast
// path ablated in *every* config, so both sides branch the cascade all
// the way down to constant-time leaves: 8^4 decision paths per solve
// whose search cost is pure bookkeeping. Star-heavy workloads spend
// their time in shared leaf enumeration instead and see commensurately
// less; the scratch rows below run one (star-on, default-options) for
// exactly that reason.
constexpr std::size_t kChains = 8;
constexpr std::size_t kChainDepth = 5;  // Six variables, 8^4 hub space.
constexpr Level kChainLevels = 8;
constexpr std::size_t kRounds = 10;

enum Config : std::int64_t {
  kAdpllExact = 0,
  kAdpllGoverned = 1,
  kCompiled = 2,
};

const char* ConfigName(std::int64_t config) {
  switch (config) {
    case kAdpllExact: return "adpll-exact";
    case kAdpllGoverned: return "adpll-governed";
    case kCompiled: return "compiled";
  }
  return "?";
}

BenchArtifact& Artifact() {
  static auto* artifact = new BenchArtifact("compile_vs_adpll");
  return *artifact;
}

std::vector<double> RandomDist(std::size_t levels, Rng& rng) {
  std::vector<double> weights(levels);
  double total = 0.0;
  for (double& w : weights) {
    w = 0.05 + rng.NextDouble();
    total += w;
  }
  for (double& w : weights) w /= total;
  return weights;
}

struct Workload {
  std::vector<Condition> conditions;
  std::vector<CellRef> vars;
  DistributionMap dists;
};

const Workload& ChainWorkload() {
  static const Workload* workload = [] {
    auto* w = new Workload;
    Rng rng(0xBE7C);
    for (std::size_t chain = 0; chain < kChains; ++chain) {
      const std::size_t base = chain * 100;
      std::vector<Conjunct> conjuncts;
      for (std::size_t i = 0; i < kChainDepth; ++i) {
        const CmpOp op = (i % 2 == 0) ? CmpOp::kLess : CmpOp::kGreater;
        conjuncts.push_back({Expression::VarVar(
            CellRef{base + i, 0}, op, CellRef{base + i + 1, 0})});
      }
      w->conditions.push_back(Condition::Cnf(std::move(conjuncts)));
      for (std::size_t i = 0; i <= kChainDepth; ++i) {
        const CellRef var{base + i, 0};
        w->vars.push_back(var);
        BAYESCROWD_CHECK_OK(
            w->dists.Set(var, RandomDist(kChainLevels, rng)));
      }
    }
    return w;
  }();
  return *workload;
}

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct RoundLoopOutcome {
  double seconds = 0.0;
  std::vector<double> values;  // Concatenated rounds, for bit-compare.
  std::uint64_t adpll_calls = 0;
  CircuitStats compile;
};

RoundLoopOutcome RunRoundLoop(std::int64_t config) {
  const Workload& w = ChainWorkload();
  ProbabilityOptions options;
  // Star ablated in *all three* configs (see the workload comment): the
  // comparison stays apples-to-apples, and every solve is the pure
  // decision cascade the round loop exists to amortize.
  options.adpll.star_fast_path = false;
  if (config != kAdpllExact) {
    options.governor.max_nodes = 1ull << 40;
    options.governor.ladder = LadderMode::kFull;
  }
  options.compile.mode =
      config == kCompiled ? CompileMode::kAuto : CompileMode::kOff;
  // The chains' decision cascades cost more nodes than the default
  // budget: the round loop is exactly the workload where paying a
  // bigger one-time compile is worth it.
  options.compile.max_nodes = 1ull << 22;
  ProbabilityEvaluator evaluator(options);
  for (const CellRef& var : w.vars) {
    auto dist = w.dists.Get(var);
    BAYESCROWD_CHECK_OK(dist.status());
    BAYESCROWD_CHECK_OK(
        evaluator.SetDistribution(var, std::move(dist).value()));
  }
  std::vector<const Condition*> batch;
  for (const Condition& condition : w.conditions) {
    batch.push_back(&condition);
  }
  // Warm-up round: first solves and, when compiling, the builds — the
  // one-time cost the loop amortizes.
  BAYESCROWD_CHECK_OK(evaluator.EvaluateBatch(batch).status());

  RoundLoopOutcome out;
  Rng rng(0x5EED);  // Same shift stream for every config.
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t round = 0; round < kRounds; ++round) {
    // One answered variable per chain per round — the crowd loop's
    // actual update pattern — touches (and so re-solves) every
    // condition while the posterior churn itself stays cheap.
    for (std::size_t chain = 0; chain < kChains; ++chain) {
      const CellRef var{chain * 100 + round % (kChainDepth + 1), 0};
      BAYESCROWD_CHECK_OK(
          evaluator.SetDistribution(var, RandomDist(kChainLevels, rng)));
    }
    auto values = evaluator.EvaluateBatch(batch);
    BAYESCROWD_CHECK_OK(values.status());
    out.values.insert(out.values.end(), values->begin(), values->end());
  }
  out.seconds = Seconds(start);
  out.adpll_calls = evaluator.adpll_stats().calls;
  out.compile = evaluator.compile_stats();
  return out;
}

void BM_CompileRoundLoop(benchmark::State& state) {
  const std::int64_t config = state.range(0);
  static auto* baselines = new std::vector<RoundLoopOutcome>(3);

  RoundLoopOutcome outcome;
  for (auto _ : state) {
    outcome = RunRoundLoop(config);
  }
  (*baselines)[static_cast<std::size_t>(config)] = outcome;

  const RoundLoopOutcome& exact = (*baselines)[kAdpllExact];
  bool bit_identical = outcome.values.size() == exact.values.size();
  for (std::size_t i = 0; bit_identical && i < outcome.values.size(); ++i) {
    bit_identical = outcome.values[i] == exact.values[i];
  }

  state.counters["round_ms"] =
      outcome.seconds / static_cast<double>(kRounds) * 1e3;
  state.counters["adpll_calls"] = static_cast<double>(outcome.adpll_calls);
  state.SetLabel(ConfigName(config));

  obs::JsonValue run_config = obs::JsonValue::Object();
  run_config["bench"] = std::string("round-loop");
  run_config["config"] = ConfigName(config);
  run_config["rounds"] = kRounds;
  run_config["conditions"] = kChains;
  obs::JsonValue row = obs::JsonValue::Object();
  row["seconds_per_round"] = outcome.seconds / static_cast<double>(kRounds);
  row["adpll_calls"] = outcome.adpll_calls;
  row["bit_identical_to_exact"] = bit_identical;
  obs::JsonValue compile = obs::JsonValue::Object();
  compile["builds"] = outcome.compile.builds;
  compile["reuses"] = outcome.compile.reuses;
  compile["fallbacks"] = outcome.compile.fallbacks;
  compile["nodes"] = outcome.compile.nodes;
  row["compile"] = std::move(compile);
  if (config == kCompiled && outcome.seconds > 0.0) {
    row["speedup_vs_exact"] = exact.seconds / outcome.seconds;
    row["speedup_vs_governed"] =
        (*baselines)[kAdpllGoverned].seconds / outcome.seconds;
    state.counters["speedup_vs_governed"] =
        (*baselines)[kAdpllGoverned].seconds / outcome.seconds;
  }
  Artifact().AddRun(std::string("round-loop/") + ConfigName(config),
                    1e3 * outcome.seconds, std::move(row),
                    std::move(run_config));
}

void RoundLoopArgs(benchmark::internal::Benchmark* bench) {
  for (std::int64_t config : {kAdpllExact, kAdpllGoverned, kCompiled}) {
    bench->Args({config});
  }
  bench->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_CompileRoundLoop)->Apply(RoundLoopArgs);

// ------------------------------------------------------------------ //
// Satellite: per-call scratch allocations vs. the reusable scratch
// ------------------------------------------------------------------ //

// The scratch satellite wants the opposite workload shape from the
// round loop: many *small* star-path solves, where the per-call
// allocations the reusable scratch eliminates (star plan, hub maps,
// expression tables, seen-vars) are a visible fraction of each solve
// rather than noise under a long enumeration.
const Workload& ScratchWorkload() {
  static const Workload* workload = [] {
    auto* w = new Workload;
    constexpr std::size_t kSmallChains = 8;
    constexpr std::size_t kSmallDepth = 3;   // Four variables, hub 4^2.
    constexpr Level kSmallLevels = 4;
    Rng rng(0x5C1A);
    for (std::size_t chain = 0; chain < kSmallChains; ++chain) {
      const std::size_t base = 10'000 + chain * 100;
      std::vector<Conjunct> conjuncts;
      for (std::size_t i = 0; i < kSmallDepth; ++i) {
        const CmpOp op = (i % 2 == 0) ? CmpOp::kLess : CmpOp::kGreater;
        conjuncts.push_back({Expression::VarVar(
            CellRef{base + i, 0}, op, CellRef{base + i + 1, 0})});
      }
      w->conditions.push_back(Condition::Cnf(std::move(conjuncts)));
      for (std::size_t i = 0; i <= kSmallDepth; ++i) {
        const CellRef var{base + i, 0};
        w->vars.push_back(var);
        BAYESCROWD_CHECK_OK(
            w->dists.Set(var, RandomDist(kSmallLevels, rng)));
      }
    }
    return w;
  }();
  return *workload;
}

void BM_AdpllScratch(benchmark::State& state) {
  const bool reuse = state.range(0) != 0;
  const Workload& w = ScratchWorkload();
  constexpr std::size_t kPasses = 500;
  static auto* per_call_seconds = new double(0.0);

  double seconds = 0.0;
  double checksum = 0.0;
  for (auto _ : state) {
    AdpllScratch scratch;
    checksum = 0.0;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t pass = 0; pass < kPasses; ++pass) {
      for (const Condition& condition : w.conditions) {
        const auto p = AdpllProbability(condition, w.dists, {}, nullptr,
                                        reuse ? &scratch : nullptr);
        BAYESCROWD_CHECK_OK(p.status());
        checksum += p.value();
      }
    }
    seconds = Seconds(start);
  }
  if (!reuse) *per_call_seconds = seconds;

  state.counters["solves_per_sec"] =
      static_cast<double>(kPasses * w.conditions.size()) / seconds;
  state.SetLabel(reuse ? "scratch-reused" : "scratch-per-call");

  obs::JsonValue run_config = obs::JsonValue::Object();
  run_config["bench"] = std::string("scratch");
  run_config["config"] = reuse ? "scratch-reused" : "scratch-per-call";
  run_config["solves"] = kPasses * w.conditions.size();
  obs::JsonValue row = obs::JsonValue::Object();
  row["checksum"] = checksum;
  if (reuse && seconds > 0.0) {
    row["speedup_vs_per_call"] = *per_call_seconds / seconds;
  }
  Artifact().AddRun(std::string("scratch/") +
                        (reuse ? "scratch-reused" : "scratch-per-call"),
                    1e3 * seconds, std::move(row), std::move(run_config));
}

BENCHMARK(BM_AdpllScratch)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// ------------------------------------------------------------------ //
// End-to-end guard: compilation must not move F1 (or a single bit)
// ------------------------------------------------------------------ //

void BM_CompilePipeline(benchmark::State& state) {
  const bool compiled = state.range(0) != 0;

  static const Table* complete =
      new Table(MakeCorrelated(/*n=*/40, /*d=*/8, /*levels=*/16,
                               /*seed=*/1003));
  Rng inject_rng(1003);
  const Table incomplete =
      InjectMissingUniform(*complete, 0.35, inject_rng);

  BayesCrowdOptions options;
  options.ctable.alpha = -1.0;
  options.strategy.kind = StrategyKind::kUbs;
  options.budget = 20;
  options.latency = 4;
  // A generous-but-real budget: most solves complete exactly (and so
  // compile), pathological ones degrade identically in both configs.
  options.probability.governor.max_nodes = 100'000;
  options.probability.governor.ladder = LadderMode::kFull;
  options.probability.compile.mode =
      compiled ? CompileMode::kAuto : CompileMode::kOff;

  BayesCrowdResult result;
  for (auto _ : state) {
    BayesCrowd framework(options);
    UniformPosteriorProvider posteriors(incomplete.schema());
    SimulatedCrowdPlatform platform(*complete, {});
    auto run = framework.Run(incomplete, posteriors, platform);
    BAYESCROWD_CHECK_OK(run.status());
    result = std::move(run).value();
  }

  static auto* baseline = new BayesCrowdResult();
  if (!compiled) *baseline = result;
  bool bit_identical =
      result.probabilities.size() == baseline->probabilities.size() &&
      result.result_objects == baseline->result_objects;
  for (std::size_t i = 0;
       bit_identical && i < result.probabilities.size(); ++i) {
    bit_identical = result.probabilities[i] == baseline->probabilities[i];
  }

  const SetMetrics quality = EvaluateResultSet(
      result.result_objects, GroundTruthSkyline(*complete));
  state.counters["f1"] = quality.f1;
  state.SetLabel(compiled ? "pipeline-compiled" : "pipeline-adpll");

  obs::JsonValue run_config = obs::JsonValue::Object();
  run_config["bench"] = std::string("pipeline");
  run_config["config"] = compiled ? "pipeline-compiled" : "pipeline-adpll";
  obs::JsonValue row = obs::JsonValue::Object();
  row["f1"] = quality.f1;
  row["precision"] = quality.precision;
  row["recall"] = quality.recall;
  row["tasks"] = result.tasks_posted;
  row["rounds"] = result.rounds;
  row["bit_identical_to_adpll"] = bit_identical;
  obs::JsonValue compile = obs::JsonValue::Object();
  compile["builds"] = result.compile.builds;
  compile["reuses"] = result.compile.reuses;
  compile["fallbacks"] = result.compile.fallbacks;
  compile["restored"] = result.compile.restored;
  row["compile"] = std::move(compile);
  Artifact().AddRun(std::string("pipeline/") +
                        (compiled ? "pipeline-compiled" : "pipeline-adpll"),
                    1e3 * result.total_seconds, std::move(row),
                    std::move(run_config));
}

BENCHMARK(BM_CompilePipeline)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace bayescrowd::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return bayescrowd::bench::Artifact().Write() ? 0 : 1;
}
