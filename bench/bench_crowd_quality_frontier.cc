// Crowd quality frontier: flat 3-vote majority vs joint-inference +
// adaptive vote allocation, swept over the adversarial fraction of the
// marketplace's arrival stream {0, 10, 20, 30, 40}%.
//
// Both arms face the *same* seeded worker stream (honest/sloppy workers
// plus uniform spammers and coordinated colluders, Poisson arrivals,
// churn). The flat arm is the paper's baseline: 3 votes per task, plain
// majority, no worker model. The defended arm runs the full
// marketplace defense — gold-anchored Dawid-Skene joint inference,
// approval/work-time/accuracy gates with latched quarantine, Fleiss-
// kappa collapse detection with the wide-fanout/abstain ladder, and
// confidence-driven extra votes (charged at 1/3 task cost each).
//
// The claim the sweep substantiates: from ~20% spam up, the defended
// arm dominates — F1 no worse at equal budget (in practice far higher),
// because the flat arm keeps folding colluder-majority answers into
// the knowledge base as permanent facts while the defended arm
// abstains until its reputations can tell workers apart.
//
// Writes BENCH_crowd_quality_frontier.json (one row per rate x arm).

#include <benchmark/benchmark.h>

#include <utility>

#include "bench_util.h"
#include "bayesnet/imputation.h"
#include "common/random.h"
#include "common/string_util.h"
#include "crowd/marketplace.h"
#include "data/generators.h"
#include "data/missing.h"
#include "skyline/metrics.h"

namespace bayescrowd::bench {
namespace {

BenchArtifact& Artifact() {
  static auto* artifact = new BenchArtifact("crowd_quality_frontier");
  return *artifact;
}

void BM_QualityFrontier(benchmark::State& state) {
  // state.range(0): spam rate in percent; state.range(1): 1 = defended.
  const double spam = static_cast<double>(state.range(0)) / 100.0;
  const bool defended = state.range(1) != 0;

  // Anticorrelated data keeps the skyline large and the queries
  // contentious; alpha = -1 disables modeling-phase pruning so answer
  // quality, not imputation, decides F1.
  const Table complete = MakeAnticorrelated(60, 4, 6, 5);
  Rng missing_rng(5);
  const Table incomplete =
      InjectMissingUniform(complete, 0.3, missing_rng);

  BayesCrowdOptions options;
  options.ctable.alpha = -1.0;
  options.budget = 300;
  options.latency = 3;
  if (defended) {
    options.adaptive.enabled = true;
    options.adaptive.base_votes = 3;
    options.adaptive.max_votes = 5;
  }

  MarketplaceOptions market_options;
  market_options.pool_size = 20;
  market_options.spam_rate = spam;
  market_options.seed = 99;
  market_options.defend = defended;
  market_options.max_votes = defended ? 5 : market_options.base_votes;

  BayesCrowdResult result;
  MarketplaceStats stats;
  std::size_t quarantined = 0;
  for (auto _ : state) {
    BayesCrowd framework(options);
    UniformPosteriorProvider posteriors(incomplete.schema());
    MarketplaceCrowdPlatform market(complete, market_options);
    auto run = framework.Run(incomplete, posteriors, market);
    BAYESCROWD_CHECK_OK(run.status());
    result = std::move(run).value();
    stats = market.stats();
    quarantined = market.quarantined_workers();
  }

  const double f1 = EvaluateResultSet(result.result_objects,
                                      GroundTruthSkyline(complete))
                        .f1;
  state.counters["spam_rate"] = spam;
  state.counters["defended"] = defended ? 1.0 : 0.0;
  state.counters["f1"] = f1;
  state.counters["cost_spent"] = result.cost_spent;
  state.counters["extra_votes"] =
      static_cast<double>(result.extra_votes);
  state.counters["quarantined"] = static_cast<double>(quarantined);

  obs::JsonValue config = obs::JsonValue::Object();
  config["spam_rate"] = spam;
  config["defended"] = defended;
  config["budget"] = options.budget;
  config["pool_size"] = market_options.pool_size;
  config["seed"] = market_options.seed;
  obs::JsonValue row = obs::JsonValue::Object();
  row["f1"] = f1;
  row["tasks"] = result.tasks_posted;
  row["tasks_unanswered"] = result.tasks_unanswered;
  row["rounds"] = result.rounds;
  row["cost_spent"] = result.cost_spent;
  row["extra_votes"] = result.extra_votes;
  row["votes_cast"] = stats.votes_cast;
  row["premium_votes"] = stats.premium_votes;
  row["abstained_tasks"] = stats.abstained_tasks;
  row["gold_tasks"] = stats.gold_tasks;
  row["quarantined_workers"] = quarantined;
  row["wide_rounds"] = stats.wide_rounds;
  row["low_kappa_rounds"] = stats.low_kappa_rounds;
  row["last_kappa"] = stats.last_kappa;
  row["arrivals"] = stats.arrivals;
  row["departures"] = stats.departures;
  Artifact().AddRun(
      StrFormat("crowd_quality_frontier/spam=%.2f/%s", spam,
                defended ? "defended" : "flat"),
      1e3 * result.total_seconds, std::move(row), std::move(config));
}

void SweepArgs(benchmark::internal::Benchmark* bench) {
  for (std::int64_t percent : {0, 10, 20, 30, 40}) {
    bench->Args({percent, 0});
    bench->Args({percent, 1});
  }
  bench->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_QualityFrontier)->Apply(SweepArgs);

}  // namespace
}  // namespace bayescrowd::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return bayescrowd::bench::Artifact().Write() ? 0 : 1;
}
