// Fault tolerance: result quality and recovery cost as the crowd
// platform degrades. One fixed workload, swept over the mixed-fault
// profile rate {0, 0.1, 0.3, 0.5} of FaultInjectingPlatform.
//
// The rate-0 row is the healthy baseline; higher rates show how much of
// the budget the retry layer still converts into answers (tasks vs
// refunds, rounds vs abandoned rounds, simulated backoff burned) and
// what that buys in F1 against the ground-truth skyline. Every row is
// deterministic: the fault schedule depends only on the seed and the
// batch sequence, so the series is diffable across commits.
//
// Writes BENCH_fault_sweep.json (telemetry envelope, one row per rate).

#include <benchmark/benchmark.h>

#include <utility>

#include "bench_util.h"
#include "bayesnet/imputation.h"
#include "common/string_util.h"
#include "crowd/fault_injection.h"
#include "crowd/platform.h"
#include "data/generators.h"
#include "skyline/metrics.h"

namespace bayescrowd::bench {
namespace {

constexpr std::uint64_t kFaultSeed = 11;

BenchArtifact& Artifact() {
  static auto* artifact = new BenchArtifact("fault_sweep");
  return *artifact;
}

void BM_FaultSweep(benchmark::State& state) {
  // state.range(0) is the fault rate in percent.
  const double rate = static_cast<double>(state.range(0)) / 100.0;

  const Table& complete = NbaComplete();
  const Table incomplete = WithMissingRate(complete, 0.15);
  const auto& network = LearnedNetwork(incomplete, "fault_sweep@0.15");

  BayesCrowdOptions options;
  options.ctable.alpha = 0.003;
  options.strategy.kind = StrategyKind::kHhs;
  options.strategy.m = 15;
  options.budget = 60;
  options.latency = 12;
  options.retry.max_attempts = 3;
  options.retry.round_deadline_seconds = 30.0;

  BayesCrowdResult result;
  FaultStats stats;
  for (auto _ : state) {
    BayesCrowd framework(options);
    BnPosteriorProvider posteriors(network, incomplete);
    SimulatedCrowdPlatform platform(complete, {});
    FaultInjectingPlatform faulter(platform,
                                   FaultOptions::Profile(rate, kFaultSeed));
    auto run = framework.Run(incomplete, posteriors, faulter);
    BAYESCROWD_CHECK_OK(run.status());
    result = std::move(run).value();
    stats = faulter.stats();
  }

  const double f1 = EvaluateResultSet(result.result_objects,
                                      GroundTruthSkyline(complete))
                        .f1;
  state.counters["fault_rate"] = rate;
  state.counters["f1"] = f1;
  state.counters["tasks"] = static_cast<double>(result.tasks_posted);
  state.counters["unanswered"] =
      static_cast<double>(result.tasks_unanswered);
  state.counters["rounds"] = static_cast<double>(result.rounds);
  state.counters["abandoned"] =
      static_cast<double>(result.rounds_abandoned);
  state.counters["retries"] = static_cast<double>(result.retries);
  state.counters["cost_spent"] = result.cost_spent;
  state.counters["cost_refunded"] = result.cost_refunded;
  state.counters["backoff_sim_seconds"] = result.backoff_seconds;
  state.counters["degraded"] = result.degraded ? 1.0 : 0.0;

  obs::JsonValue config = obs::JsonValue::Object();
  config["fault_rate"] = rate;
  config["fault_seed"] = kFaultSeed;
  obs::JsonValue row = obs::JsonValue::Object();
  row["f1"] = f1;
  row["tasks"] = result.tasks_posted;
  row["tasks_unanswered"] = result.tasks_unanswered;
  row["rounds"] = result.rounds;
  row["rounds_abandoned"] = result.rounds_abandoned;
  row["retries"] = result.retries;
  row["transient_failures"] = result.transient_failures;
  row["cost_spent"] = result.cost_spent;
  row["cost_refunded"] = result.cost_refunded;
  row["backoff_sim_seconds"] = result.backoff_seconds;
  row["platform_sim_seconds"] = result.simulated_seconds;
  row["degraded"] = result.degraded;
  row["stopped_confident"] = result.stopped_confident;
  obs::JsonValue injected = obs::JsonValue::Object();
  injected["transient_failures"] = stats.transient_failures;
  injected["timeouts"] = stats.timeouts;
  injected["abstained_tasks"] = stats.abstained_tasks;
  injected["partial_batches"] = stats.partial_batches;
  injected["dropped_tail_tasks"] = stats.dropped_tail_tasks;
  injected["batches_attempted"] = stats.batches_attempted;
  injected["batches_delivered"] = stats.batches_delivered;
  row["injected"] = std::move(injected);
  Artifact().AddRun(
      StrFormat("fault_sweep/rate=%.2f", rate),
      1e3 * result.total_seconds, std::move(row), std::move(config));
}

void SweepArgs(benchmark::internal::Benchmark* bench) {
  for (std::int64_t percent : {0, 10, 30, 50}) {
    bench->Args({percent});
  }
  bench->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_FaultSweep)->Apply(SweepArgs);

}  // namespace
}  // namespace bayescrowd::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return bayescrowd::bench::Artifact().Write() ? 0 : 1;
}
