// Figure 10: effect of the latency constraint L (number of rounds) on
// Synthetic with a fixed budget.
//
// Expected shape (paper): neither machine time nor F1 is very sensitive
// to L — the budget fixes the number of affordable tasks, L only splits
// them into batches. (BayesCrowd can therefore meet a requester's
// latency demand for free.)

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace bayescrowd::bench {
namespace {

void BM_Fig10_Synthetic(benchmark::State& state) {
  BayesCrowdOptions options = SyntheticDefaults();
  options.strategy.kind = static_cast<StrategyKind>(state.range(0));
  options.latency = static_cast<std::size_t>(state.range(1));
  const Table& complete = SyntheticComplete();
  const Table incomplete = WithMissingRate(complete, 0.1);
  const auto& net = LearnedNetwork(incomplete, "syn@0.1");
  PipelineOutcome outcome;
  for (auto _ : state) {
    outcome = RunPipeline(complete, incomplete, net, options);
  }
  state.counters["latency"] = static_cast<double>(options.latency);
  state.counters["rounds_used"] = static_cast<double>(outcome.rounds);
  state.counters["f1"] = outcome.f1;
  state.counters["tasks"] = static_cast<double>(outcome.tasks);
}

void SweepArgs(benchmark::internal::Benchmark* bench) {
  for (std::int64_t strategy : {0, 1, 2}) {
    for (std::int64_t latency : {2, 5, 10, 20, 40}) {
      bench->Args({strategy, latency});
    }
  }
  bench->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_Fig10_Synthetic)->Apply(SweepArgs);

}  // namespace
}  // namespace bayescrowd::bench

BC_BENCH_MAIN("fig10_latency");
