// Figure 11: effect of Synthetic cardinality (paper: 25k-125k; here
// 25%-125% of the configured Synthetic size, scaled via
// BAYESCROWD_BENCH_SCALE).
//
// Expected shape (paper): machine time climbs with the cardinality
// (larger dominator sets, more probability computations); F1 declines
// gradually because the budget is fixed while the candidate set grows.

#include <benchmark/benchmark.h>

#include <map>

#include "bench_util.h"
#include "data/generators.h"

namespace bayescrowd::bench {
namespace {

const Table& CompleteOf(std::size_t cardinality) {
  static auto* cache = new std::map<std::size_t, Table>();
  auto it = cache->find(cardinality);
  if (it == cache->end()) {
    it = cache->emplace(cardinality, MakeAdultLike(cardinality, 1996))
             .first;
  }
  return it->second;
}

void BM_Fig11_Synthetic(benchmark::State& state) {
  const auto cardinality = static_cast<std::size_t>(state.range(1));
  const Table& complete = CompleteOf(cardinality);
  const Table incomplete = WithMissingRate(complete, 0.1);
  const auto& net = LearnedNetwork(
      incomplete, "fig11-" + std::to_string(cardinality));

  BayesCrowdOptions options = SyntheticDefaults();
  options.strategy.kind = static_cast<StrategyKind>(state.range(0));
  // Fixed budget across cardinalities (the paper's setting: accuracy
  // declines because the budget does not grow with the data).
  options.budget = std::max<std::size_t>(50, SyntheticCardinality() / 100);

  PipelineOutcome outcome;
  for (auto _ : state) {
    outcome = RunPipeline(complete, incomplete, net, options);
  }
  state.counters["cardinality"] = static_cast<double>(cardinality);
  state.counters["f1"] = outcome.f1;
  state.counters["tasks"] = static_cast<double>(outcome.tasks);
}

void SweepArgs(benchmark::internal::Benchmark* bench) {
  const auto base = static_cast<std::int64_t>(SyntheticCardinality());
  for (std::int64_t strategy : {0, 1, 2}) {
    for (std::int64_t share = 1; share <= 5; ++share) {
      bench->Args({strategy, base * share / 4});  // 25% .. 125%.
    }
  }
  bench->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_Fig11_Synthetic)->Apply(SweepArgs);

}  // namespace
}  // namespace bayescrowd::bench

BC_BENCH_MAIN("fig11_cardinality");
