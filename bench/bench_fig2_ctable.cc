// Figure 2: c-table construction time vs missing rate.
//
// Series: Get-CTable (sorted per-dimension level bitsets, word-wide
// intersection) vs Baseline (pairwise comparisons), on NBA and
// Synthetic, missing rate 0.05-0.20.
//
// Expected shape (paper): Get-CTable clearly faster than Baseline on
// both datasets; both grow with the missing rate (larger dominator
// sets).

#include <benchmark/benchmark.h>

#include <map>

#include "bench_util.h"
#include "ctable/builder.h"

namespace bayescrowd::bench {
namespace {

// Per-mille missing rates used as benchmark arguments.
constexpr std::int64_t kRates[] = {50, 100, 150, 200};

const Table& IncompleteFor(const Table& complete, std::int64_t rate_pm) {
  static auto* cache = new std::map<std::pair<const Table*, std::int64_t>,
                                    Table>();
  const auto key = std::make_pair(&complete, rate_pm);
  auto it = cache->find(key);
  if (it == cache->end()) {
    it = cache->emplace(key, WithMissingRate(complete, rate_pm / 1000.0))
             .first;
  }
  return it->second;
}

void RunBuild(benchmark::State& state, const Table& complete,
              double alpha, bool fast) {
  const Table& incomplete = IncompleteFor(complete, state.range(0));
  CTableOptions options;
  options.alpha = alpha;
  options.use_fast_dominators = fast;
  std::size_t undecided = 0;
  for (auto _ : state) {
    auto ctable = BuildCTable(incomplete, options);
    BAYESCROWD_CHECK_OK(ctable.status());
    undecided = ctable->NumUndecided();
    benchmark::DoNotOptimize(ctable);
  }
  state.counters["missing_rate"] = static_cast<double>(state.range(0)) / 1000.0;
  state.counters["undecided"] = static_cast<double>(undecided);
}

void BM_Fig2_Nba_GetCTable(benchmark::State& state) {
  RunBuild(state, NbaComplete(), 0.003, /*fast=*/true);
}
void BM_Fig2_Nba_Baseline(benchmark::State& state) {
  RunBuild(state, NbaComplete(), 0.003, /*fast=*/false);
}
void BM_Fig2_Synthetic_GetCTable(benchmark::State& state) {
  RunBuild(state, SyntheticComplete(), 0.01, /*fast=*/true);
}
void BM_Fig2_Synthetic_Baseline(benchmark::State& state) {
  RunBuild(state, SyntheticComplete(), 0.01, /*fast=*/false);
}

void RateArgs(benchmark::internal::Benchmark* bench) {
  for (std::int64_t rate : kRates) bench->Arg(rate);
  bench->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_Fig2_Nba_GetCTable)->Apply(RateArgs);
BENCHMARK(BM_Fig2_Nba_Baseline)->Apply(RateArgs);
BENCHMARK(BM_Fig2_Synthetic_GetCTable)->Apply(RateArgs);
BENCHMARK(BM_Fig2_Synthetic_Baseline)->Apply(RateArgs);

}  // namespace
}  // namespace bayescrowd::bench

BC_BENCH_MAIN("fig2_ctable");
