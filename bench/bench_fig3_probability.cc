// Figure 3: probability-computation time vs missing rate, ADPLL vs
// Naive.
//
// Measures the total time to compute Pr(φ(o)) for the conditions of the
// initial c-table. Naive enumeration is exponential in the variable
// count, so both methods are timed over the subset of conditions with at
// most kNaiveVarCap variables (the `conditions` counter reports how many
// that is); ADPLL additionally gets an "_All" series over every
// undecided condition.
//
// Expected shape (paper): ADPLL consistently faster than Naive; the gap
// widens as the missing rate grows (more variables per condition).

#include <benchmark/benchmark.h>

#include <map>

#include "bench_util.h"
#include "ctable/builder.h"
#include "probability/adpll.h"
#include "probability/naive.h"

namespace bayescrowd::bench {
namespace {

constexpr std::int64_t kRates[] = {50, 100, 150, 200};
constexpr std::size_t kNaiveVarCap = 6;

struct PreparedCase {
  Table incomplete;
  CTable ctable;
  DistributionMap dists;
  std::vector<std::size_t> small_conditions;  // <= kNaiveVarCap variables.
  std::vector<std::size_t> all_conditions;    // Every undecided condition.
};

const PreparedCase& Prepare(const Table& complete, double alpha,
                            std::int64_t rate_pm, const char* tag) {
  static auto* cache = new std::map<std::string, PreparedCase>();
  const std::string key = std::string(tag) + ":" + std::to_string(rate_pm);
  auto it = cache->find(key);
  if (it != cache->end()) return it->second;

  PreparedCase c;
  c.incomplete = WithMissingRate(complete, rate_pm / 1000.0);
  auto ctable = BuildCTable(c.incomplete, {.alpha = alpha});
  BAYESCROWD_CHECK_OK(ctable.status());
  c.ctable = std::move(ctable).value();

  const auto& net = LearnedNetwork(c.incomplete, key);
  BnPosteriorProvider posteriors(net, c.incomplete);
  for (const CellRef& var : c.ctable.AllVariables()) {
    auto dist = posteriors.Posterior(var);
    BAYESCROWD_CHECK_OK(dist.status());
    BAYESCROWD_CHECK_OK(c.dists.Set(var, std::move(dist).value()));
  }
  for (std::size_t i : c.ctable.UndecidedObjects()) {
    c.all_conditions.push_back(i);
    if (c.ctable.condition(i).Variables().size() <= kNaiveVarCap) {
      c.small_conditions.push_back(i);
    }
  }
  return cache->emplace(key, std::move(c)).first->second;
}

enum class Method { kAdpll, kNaive, kAdpllAll };

void RunProbability(benchmark::State& state, const Table& complete,
                    double alpha, const char* tag, Method method) {
  const PreparedCase& c = Prepare(complete, alpha, state.range(0), tag);
  const auto& subset = (method == Method::kAdpllAll) ? c.all_conditions
                                                     : c.small_conditions;
  double checksum = 0.0;
  for (auto _ : state) {
    checksum = 0.0;
    for (std::size_t i : subset) {
      Result<double> p = (method == Method::kNaive)
                             ? NaiveProbability(c.ctable.condition(i),
                                                c.dists)
                             : AdpllProbability(c.ctable.condition(i),
                                                c.dists);
      BAYESCROWD_CHECK_OK(p.status());
      checksum += p.value();
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.counters["missing_rate"] =
      static_cast<double>(state.range(0)) / 1000.0;
  state.counters["conditions"] = static_cast<double>(subset.size());
}

void BM_Fig3_Nba_Adpll(benchmark::State& state) {
  RunProbability(state, NbaComplete(), 0.003, "nba", Method::kAdpll);
}
void BM_Fig3_Nba_Naive(benchmark::State& state) {
  RunProbability(state, NbaComplete(), 0.003, "nba", Method::kNaive);
}
void BM_Fig3_Nba_Adpll_All(benchmark::State& state) {
  RunProbability(state, NbaComplete(), 0.003, "nba", Method::kAdpllAll);
}
void BM_Fig3_Synthetic_Adpll(benchmark::State& state) {
  RunProbability(state, SyntheticComplete(), 0.01, "syn", Method::kAdpll);
}
void BM_Fig3_Synthetic_Naive(benchmark::State& state) {
  RunProbability(state, SyntheticComplete(), 0.01, "syn", Method::kNaive);
}
void BM_Fig3_Synthetic_Adpll_All(benchmark::State& state) {
  RunProbability(state, SyntheticComplete(), 0.01, "syn",
                 Method::kAdpllAll);
}

void RateArgs(benchmark::internal::Benchmark* bench) {
  for (std::int64_t rate : kRates) bench->Arg(rate);
  bench->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_Fig3_Nba_Adpll)->Apply(RateArgs);
BENCHMARK(BM_Fig3_Nba_Naive)->Apply(RateArgs);
BENCHMARK(BM_Fig3_Nba_Adpll_All)->Apply(RateArgs);
BENCHMARK(BM_Fig3_Synthetic_Adpll)->Apply(RateArgs);
BENCHMARK(BM_Fig3_Synthetic_Naive)->Apply(RateArgs);
BENCHMARK(BM_Fig3_Synthetic_Adpll_All)->Apply(RateArgs);

}  // namespace
}  // namespace bayescrowd::bench

BC_BENCH_MAIN("fig3_probability");
