// Figure 4: comparison with CrowdSky vs NBA cardinality.
//
// Setting (paper Section 7.3): NBA is adjusted so that two attributes
// are entirely missing (the crowd attributes) and the rest are complete;
// budget is effectively unconstrained; both systems post 20 tasks per
// round. Reported per cardinality and system: machine execution time
// (the benchmark time), number of posted tasks (monetary cost) and
// number of rounds (latency), plus F1.
//
// Expected shape (paper): BayesCrowd needs about an order of magnitude
// fewer tasks and rounds than CrowdSky, with the gap widening as the
// cardinality grows; accuracy comparable. (The paper also reports a
// large execution-time advantage for BayesCrowd; that axis reflects the
// authors' Java implementations — this repo's lean CrowdSky
// reimplementation is machine-time-cheap, so the time axis does not
// transfer. See EXPERIMENTS.md.)

#include <benchmark/benchmark.h>

#include <map>

#include "bench_util.h"
#include "bayesnet/imputation.h"
#include "crowd/platform.h"
#include "crowdsky/crowdsky.h"
#include "data/missing.h"
#include "skyline/metrics.h"

namespace bayescrowd::bench {
namespace {

struct Fig4Case {
  Table complete;
  Table incomplete;
  std::vector<std::size_t> observed;
  std::vector<std::size_t> crowd;
};

const Fig4Case& Prepare(std::size_t cardinality) {
  static auto* cache = new std::map<std::size_t, Fig4Case>();
  auto it = cache->find(cardinality);
  if (it != cache->end()) return it->second;
  Fig4Case c;
  c.complete = NbaComplete().Prefix(cardinality);
  const std::size_t d = c.complete.num_attributes();
  for (std::size_t j = 0; j + 2 < d; ++j) c.observed.push_back(j);
  c.crowd = {d - 2, d - 1};
  c.incomplete = InjectMissingAttributes(c.complete, c.crowd);
  return cache->emplace(cardinality, std::move(c)).first->second;
}

void ReportCommon(benchmark::State& state, std::size_t tasks,
                  std::size_t rounds, double f1) {
  state.counters["tasks"] = static_cast<double>(tasks);
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["f1"] = f1;
  state.counters["cardinality"] = static_cast<double>(state.range(0));
}

void RunBayesCrowd(benchmark::State& state, StrategyKind strategy) {
  const auto cardinality = static_cast<std::size_t>(state.range(0));
  const Fig4Case& c = Prepare(cardinality);
  const auto& net = LearnedNetwork(
      c.incomplete, "fig4-" + std::to_string(cardinality));

  BayesCrowdOptions options;
  // α·n = 30 candidate dominators, the paper's NBA pruning strength.
  options.ctable.alpha = 30.0 / static_cast<double>(cardinality);
  options.strategy.kind = strategy;
  options.strategy.m = 15;
  options.budget = 1'000'000;  // Effectively unconstrained.
  options.latency = options.budget / 20;  // 20 tasks per round.

  std::size_t tasks = 0;
  std::size_t rounds = 0;
  double f1 = 0.0;
  for (auto _ : state) {
    BayesCrowd framework(options);
    BnPosteriorProvider posteriors(net, c.incomplete);
    SimulatedCrowdPlatform platform(c.complete, {});
    auto result = framework.Run(c.incomplete, posteriors, platform);
    BAYESCROWD_CHECK_OK(result.status());
    tasks = result->tasks_posted;
    rounds = result->rounds;
    f1 = EvaluateResultSet(result->result_objects,
                           GroundTruthSkyline(c.complete))
             .f1;
  }
  ReportCommon(state, tasks, rounds, f1);
}

void BM_Fig4_BayesCrowd_FBS(benchmark::State& state) {
  RunBayesCrowd(state, StrategyKind::kFbs);
}
void BM_Fig4_BayesCrowd_UBS(benchmark::State& state) {
  RunBayesCrowd(state, StrategyKind::kUbs);
}
void BM_Fig4_BayesCrowd_HHS(benchmark::State& state) {
  RunBayesCrowd(state, StrategyKind::kHhs);
}

void BM_Fig4_CrowdSky(benchmark::State& state) {
  const Fig4Case& c = Prepare(static_cast<std::size_t>(state.range(0)));
  std::size_t tasks = 0;
  std::size_t rounds = 0;
  double f1 = 0.0;
  for (auto _ : state) {
    SimulatedCrowdPlatform platform(c.complete, {});
    auto result = RunCrowdSky(c.incomplete, c.observed, c.crowd, platform,
                              {.tasks_per_round = 20});
    BAYESCROWD_CHECK_OK(result.status());
    tasks = result->tasks_posted;
    rounds = result->rounds;
    f1 = EvaluateResultSet(result->skyline, GroundTruthSkyline(c.complete))
             .f1;
  }
  ReportCommon(state, tasks, rounds, f1);
}

void CardinalityArgs(benchmark::internal::Benchmark* bench) {
  const auto full = static_cast<std::int64_t>(NbaCardinality());
  for (std::int64_t share = 1; share <= 5; ++share) {
    bench->Arg(full * share / 5);
  }
  bench->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_Fig4_BayesCrowd_FBS)->Apply(CardinalityArgs);
BENCHMARK(BM_Fig4_BayesCrowd_UBS)->Apply(CardinalityArgs);
BENCHMARK(BM_Fig4_BayesCrowd_HHS)->Apply(CardinalityArgs);
BENCHMARK(BM_Fig4_CrowdSky)->Apply(CardinalityArgs);

}  // namespace
}  // namespace bayescrowd::bench

BC_BENCH_MAIN("fig4_crowdsky");
