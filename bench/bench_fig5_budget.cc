// Figure 5: BayesCrowd cost and accuracy vs budget B.
//
// Series: FBS / UBS / HHS on NBA (B = 10..120, paper default 50) and
// Synthetic (B scaled with cardinality, paper used up to 1000 at 100k).
//
// Expected shape (paper): F1 climbs with budget while machine time
// grows; FBS fastest, UBS most accurate, HHS between.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace bayescrowd::bench {
namespace {

void RunBudget(benchmark::State& state, const Table& complete,
               BayesCrowdOptions options, const char* tag) {
  options.strategy.kind = static_cast<StrategyKind>(state.range(0));
  options.budget = static_cast<std::size_t>(state.range(1));
  const Table incomplete = WithMissingRate(complete, 0.1);
  const auto& net = LearnedNetwork(incomplete, std::string(tag) + "@0.1");
  PipelineOutcome outcome;
  for (auto _ : state) {
    outcome = RunPipeline(complete, incomplete, net, options);
  }
  state.counters["budget"] = static_cast<double>(options.budget);
  state.counters["f1"] = outcome.f1;
  state.counters["tasks"] = static_cast<double>(outcome.tasks);
  state.counters["rounds"] = static_cast<double>(outcome.rounds);
}

void BM_Fig5_Nba(benchmark::State& state) {
  RunBudget(state, NbaComplete(), NbaDefaults(), "nba");
}
void BM_Fig5_Synthetic(benchmark::State& state) {
  RunBudget(state, SyntheticComplete(), SyntheticDefaults(), "syn");
}

void NbaArgs(benchmark::internal::Benchmark* bench) {
  for (std::int64_t strategy : {0, 1, 2}) {       // FBS, UBS, HHS.
    for (std::int64_t budget : {10, 30, 50, 80, 120}) {
      bench->Args({strategy, budget});
    }
  }
  bench->Unit(benchmark::kMillisecond)->Iterations(1);
}

void SyntheticArgs(benchmark::internal::Benchmark* bench) {
  const auto base = static_cast<std::int64_t>(SyntheticCardinality());
  for (std::int64_t strategy : {0, 1, 2}) {
    for (std::int64_t budget :
         {base / 400, base / 200, base / 100, base / 50, base / 25}) {
      bench->Args({strategy, budget});
    }
  }
  bench->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_Fig5_Nba)->Apply(NbaArgs);
BENCHMARK(BM_Fig5_Synthetic)->Apply(SyntheticArgs);

}  // namespace
}  // namespace bayescrowd::bench

BC_BENCH_MAIN("fig5_budget");
