// Figure 6: BayesCrowd cost and accuracy vs missing rate (0.05-0.20).
//
// Expected shape (paper): machine time increases with the missing rate
// (more expressions and variables per condition) while F1 decreases
// (fixed budget, more uncertainty); UBS most accurate, FBS fastest, HHS
// between.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace bayescrowd::bench {
namespace {

void RunMissingRate(benchmark::State& state, const Table& complete,
                    BayesCrowdOptions options, const char* tag) {
  options.strategy.kind = static_cast<StrategyKind>(state.range(0));
  const double rate = static_cast<double>(state.range(1)) / 1000.0;
  // Average F1 over three independent missing-cell draws: a single draw
  // adds enough variance to blur the rate trend.
  constexpr std::uint64_t kSalts[] = {0, 1, 2};
  double f1_total = 0.0;
  std::size_t tasks = 0;
  for (auto _ : state) {
    f1_total = 0.0;
    for (std::uint64_t salt : kSalts) {
      const Table incomplete = WithMissingRate(complete, rate, salt);
      const auto& net = LearnedNetwork(
          incomplete, std::string(tag) + "@" +
                          std::to_string(state.range(1)) + "#" +
                          std::to_string(salt));
      const PipelineOutcome outcome =
          RunPipeline(complete, incomplete, net, options);
      f1_total += outcome.f1;
      tasks = outcome.tasks;
    }
  }
  state.counters["missing_rate"] = rate;
  state.counters["f1"] = f1_total / static_cast<double>(std::size(kSalts));
  state.counters["tasks"] = static_cast<double>(tasks);
}

void BM_Fig6_Nba(benchmark::State& state) {
  RunMissingRate(state, NbaComplete(), NbaDefaults(), "nba");
}
void BM_Fig6_Synthetic(benchmark::State& state) {
  RunMissingRate(state, SyntheticComplete(), SyntheticDefaults(), "syn");
}

void SweepArgs(benchmark::internal::Benchmark* bench) {
  for (std::int64_t strategy : {0, 1, 2}) {
    for (std::int64_t rate : {50, 100, 150, 200}) {
      bench->Args({strategy, rate});
    }
  }
  bench->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_Fig6_Nba)->Apply(SweepArgs);
BENCHMARK(BM_Fig6_Synthetic)->Apply(SweepArgs);

}  // namespace
}  // namespace bayescrowd::bench

BC_BENCH_MAIN("fig6_missing_rate");
