// Figure 7: effect of HHS's stopping parameter m.
//
// Series: HHS with m in {1, 2, 5, 15, 50}, bracketed by FBS (m
// irrelevant, cheapest) and UBS (exhaustive utility search, the m->inf
// limit).
//
// Expected shape (paper): HHS accuracy approaches UBS as m grows while
// its machine time climbs toward UBS's; with small m it behaves more
// like FBS.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace bayescrowd::bench {
namespace {

void RunM(benchmark::State& state, const Table& complete,
          BayesCrowdOptions options, const char* tag) {
  options.strategy.kind = static_cast<StrategyKind>(state.range(0));
  options.strategy.m = static_cast<std::size_t>(state.range(1));
  const Table incomplete = WithMissingRate(complete, 0.1);
  const auto& net = LearnedNetwork(incomplete, std::string(tag) + "@0.1");
  PipelineOutcome outcome;
  for (auto _ : state) {
    outcome = RunPipeline(complete, incomplete, net, options);
  }
  state.counters["m"] = static_cast<double>(options.strategy.m);
  state.counters["f1"] = outcome.f1;
}

void BM_Fig7_Nba(benchmark::State& state) {
  RunM(state, NbaComplete(), NbaDefaults(), "nba");
}
void BM_Fig7_Synthetic(benchmark::State& state) {
  RunM(state, SyntheticComplete(), SyntheticDefaults(), "syn");
}

void SweepArgs(benchmark::internal::Benchmark* bench) {
  // HHS across m values.
  for (std::int64_t m : {1, 2, 5, 15, 50}) {
    bench->Args({static_cast<std::int64_t>(StrategyKind::kHhs), m});
  }
  // FBS / UBS reference points (m unused).
  bench->Args({static_cast<std::int64_t>(StrategyKind::kFbs), 15});
  bench->Args({static_cast<std::int64_t>(StrategyKind::kUbs), 15});
  bench->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_Fig7_Nba)->Apply(SweepArgs);
BENCHMARK(BM_Fig7_Synthetic)->Apply(SweepArgs);

}  // namespace
}  // namespace bayescrowd::bench

BC_BENCH_MAIN("fig7_m");
