// Figure 8: effect of the pruning threshold α (0.001 - 0.01).
//
// Expected shape (paper): larger α keeps more (and more complex)
// conditions alive, so machine time rises and accuracy improves
// slightly; a small α already suffices.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace bayescrowd::bench {
namespace {

void RunAlpha(benchmark::State& state, const Table& complete,
              BayesCrowdOptions options, const char* tag) {
  options.ctable.alpha = static_cast<double>(state.range(0)) / 100000.0;
  constexpr std::uint64_t kSalts[] = {0, 1, 2};
  double f1_total = 0.0;
  for (auto _ : state) {
    f1_total = 0.0;
    for (std::uint64_t salt : kSalts) {
      const Table incomplete = WithMissingRate(complete, 0.1, salt);
      const auto& net = LearnedNetwork(
          incomplete, std::string(tag) + "@0.1#" + std::to_string(salt));
      f1_total += RunPipeline(complete, incomplete, net, options).f1;
    }
  }
  state.counters["alpha"] = options.ctable.alpha;
  state.counters["f1"] = f1_total / static_cast<double>(std::size(kSalts));
}

void BM_Fig8_Nba(benchmark::State& state) {
  RunAlpha(state, NbaComplete(), NbaDefaults(), "nba");
}
void BM_Fig8_Synthetic(benchmark::State& state) {
  RunAlpha(state, SyntheticComplete(), SyntheticDefaults(), "syn");
}

void SweepArgs(benchmark::internal::Benchmark* bench) {
  // Arg unit: alpha * 1e5.
  for (std::int64_t alpha : {100, 300, 500, 1000}) bench->Arg(alpha);
  bench->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_Fig8_Nba)->Apply(SweepArgs);
BENCHMARK(BM_Fig8_Synthetic)->Apply(SweepArgs);

}  // namespace
}  // namespace bayescrowd::bench

BC_BENCH_MAIN("fig8_alpha");
