// Figure 9: effect of worker accuracy (0.7 - 1.0) under 3-worker
// majority voting.
//
// Expected shape (paper): machine time barely moves; F1 climbs with
// worker accuracy (NBA gains more than Synthetic).

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace bayescrowd::bench {
namespace {

void RunAccuracy(benchmark::State& state, const Table& complete,
                 BayesCrowdOptions options, const char* tag) {
  options.strategy.kind = static_cast<StrategyKind>(state.range(0));
  const double accuracy = static_cast<double>(state.range(1)) / 100.0;
  const Table incomplete = WithMissingRate(complete, 0.1);
  const auto& net = LearnedNetwork(incomplete, std::string(tag) + "@0.1");

  // Average F1 across three platform seeds: imperfect-worker runs are
  // stochastic.
  double f1_total = 0.0;
  int samples = 0;
  for (auto _ : state) {
    for (std::uint64_t seed : {11u, 22u, 33u}) {
      const PipelineOutcome outcome = RunPipeline(
          complete, incomplete, net, options, accuracy, seed);
      f1_total += outcome.f1;
      ++samples;
    }
  }
  state.counters["worker_accuracy"] = accuracy;
  state.counters["f1"] = f1_total / static_cast<double>(samples);
}

void BM_Fig9_Nba(benchmark::State& state) {
  RunAccuracy(state, NbaComplete(), NbaDefaults(), "nba");
}
void BM_Fig9_Synthetic(benchmark::State& state) {
  RunAccuracy(state, SyntheticComplete(), SyntheticDefaults(), "syn");
}

void SweepArgs(benchmark::internal::Benchmark* bench) {
  for (std::int64_t strategy : {0, 1, 2}) {
    for (std::int64_t accuracy : {70, 80, 90, 100}) {
      bench->Args({strategy, accuracy});
    }
  }
  bench->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_Fig9_Nba)->Apply(SweepArgs);
BENCHMARK(BM_Fig9_Synthetic)->Apply(SweepArgs);

}  // namespace
}  // namespace bayescrowd::bench

BC_BENCH_MAIN("fig9_worker_accuracy");
