// Governed solving: result quality vs. the cost of bounding Pr(φ).
//
// One hostile workload (correlated, 16 levels, 35% missing — enough
// conditions past ADPLL's star-path hub cap that a small node budget
// actually fires), swept over solver configurations:
//
//   exact          unlimited budget (the reference — also pins that an
//                  inert governor costs nothing in quality),
//   ladder-full    4-node budget, full degradation ladder
//                  (exact → partial bounds → sampling CI → [0, 1]),
//   ladder-strict  4-node budget, exact-or-unknown (no approximation),
//   sampler-only   no ADPLL at all: every solve is the forward sampler.
//
// The claim under test: the governed ladder converts a hard budget
// into bounded latency while keeping F1 at or above the sampler-only
// baseline — deductive partial bounds waste less of the crowd budget
// than sampling everything. Every row is deterministic.
//
// Writes BENCH_governor_ladder.json (one row per configuration).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <utility>

#include "bench_util.h"
#include "bayesnet/imputation.h"
#include "common/random.h"
#include "crowd/platform.h"
#include "data/generators.h"
#include "data/missing.h"
#include "skyline/metrics.h"

namespace bayescrowd::bench {
namespace {

enum Config : std::int64_t {
  kExact = 0,
  kLadderFull = 1,
  kLadderStrict = 2,
  kSamplerOnly = 3,
};

const char* ConfigName(std::int64_t config) {
  switch (config) {
    case kExact: return "exact";
    case kLadderFull: return "ladder-full";
    case kLadderStrict: return "ladder-strict";
    case kSamplerOnly: return "sampler-only";
  }
  return "?";
}

BenchArtifact& Artifact() {
  static auto* artifact = new BenchArtifact("governor_ladder");
  return *artifact;
}

const Table& HostileComplete() {
  static const Table* table =
      new Table(MakeCorrelated(/*n=*/40, /*d=*/8, /*levels=*/16,
                               /*seed=*/1003));
  return *table;
}

void BM_GovernorLadder(benchmark::State& state) {
  const std::int64_t config = state.range(0);

  const Table& complete = HostileComplete();
  Rng inject_rng(1003);
  const Table incomplete =
      InjectMissingUniform(complete, 0.35, inject_rng);

  BayesCrowdOptions options;
  options.ctable.alpha = -1.0;  // Keep the crowd loop exercised.
  options.strategy.kind = StrategyKind::kUbs;
  options.budget = 20;
  options.latency = 4;
  switch (config) {
    case kExact:
      break;  // Inert governor, exact ADPLL.
    case kLadderFull:
      options.probability.governor.max_nodes = 4;
      options.probability.governor.ladder = LadderMode::kFull;
      options.breaker_threshold = 2;
      break;
    case kLadderStrict:
      options.probability.governor.max_nodes = 4;
      options.probability.governor.ladder = LadderMode::kStrict;
      options.breaker_threshold = 2;
      break;
    case kSamplerOnly:
      options.probability.method = ProbabilityMethod::kSampled;
      options.probability.sampling.num_samples = 4096;
      break;
  }

  BayesCrowdResult result;
  for (auto _ : state) {
    BayesCrowd framework(options);
    UniformPosteriorProvider posteriors(incomplete.schema());
    SimulatedCrowdPlatform platform(complete, {});
    auto run = framework.Run(incomplete, posteriors, platform);
    BAYESCROWD_CHECK_OK(run.status());
    result = std::move(run).value();
  }

  const SetMetrics quality = EvaluateResultSet(
      result.result_objects, GroundTruthSkyline(complete));
  state.counters["f1"] = quality.f1;
  state.counters["tasks"] = static_cast<double>(result.tasks_posted);
  state.counters["budget_exhausted"] =
      static_cast<double>(result.solver.budget_exhausted);
  state.counters["degraded_objects"] =
      static_cast<double>(result.degraded_objects.size());
  state.SetLabel(ConfigName(config));

  obs::JsonValue run_config = obs::JsonValue::Object();
  run_config["ladder"] = ConfigName(config);
  obs::JsonValue row = obs::JsonValue::Object();
  row["f1"] = quality.f1;
  row["precision"] = quality.precision;
  row["recall"] = quality.recall;
  row["tasks"] = result.tasks_posted;
  row["rounds"] = result.rounds;
  obs::JsonValue solver = obs::JsonValue::Object();
  solver["budget_exhausted"] = result.solver.budget_exhausted;
  solver["tier_exact"] = result.solver.tier_exact;
  solver["tier_partial"] = result.solver.tier_partial;
  solver["tier_sampled"] = result.solver.tier_sampled;
  solver["tier_unknown"] = result.solver.tier_unknown;
  solver["breaker_trips"] = result.breaker_trips;
  solver["degraded_objects"] = result.degraded_objects.size();
  row["solver"] = std::move(solver);
  Artifact().AddRun(
      std::string("governor_ladder/") + ConfigName(config),
      1e3 * result.total_seconds, std::move(row), std::move(run_config));
}

void LadderArgs(benchmark::internal::Benchmark* bench) {
  for (std::int64_t config :
       {kExact, kLadderFull, kLadderStrict, kSamplerOnly}) {
    bench->Args({config});
  }
  bench->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_GovernorLadder)->Apply(LadderArgs);

}  // namespace
}  // namespace bayescrowd::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return bayescrowd::bench::Artifact().Write() ? 0 : 1;
}
