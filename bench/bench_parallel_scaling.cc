// Parallel + memoized evaluation: crowdsourcing-phase wall clock on one
// fixed synthetic workload, swept over 1/2/4/8 evaluation threads with
// the Pr(φ) memo cache on and off.
//
// Series: (threads, cache). The (1, off) point is the pre-optimization
// baseline — strictly sequential, every probability recomputed. The
// headline comparison for the perf trajectory is (8, on) vs (1, off) on
// crowd_seconds; select/update splits and the cache hit rate explain
// where the win comes from. Probabilities and selected tasks are
// bit-identical across every configuration (asserted by
// parallel_test.cc), so the series differ in time only.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "bayesnet/imputation.h"
#include "crowd/platform.h"
#include "data/generators.h"
#include "skyline/metrics.h"

namespace bayescrowd::bench {
namespace {

void BM_ParallelScaling(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const bool cache = state.range(1) != 0;

  // The shared NBA-like workload at 15% missing puts the c-table in the
  // ADPLL-heavy regime (tens of microseconds per condition), so the
  // crowd phase is dominated by Pr(φ) evaluation rather than bookkeeping.
  const Table& complete = NbaComplete();
  const Table incomplete = WithMissingRate(complete, 0.15);
  const auto& network = LearnedNetwork(incomplete, "scaling@0.15");

  // Many small rounds (ceil(B/L) = 1 task each): the regime the memo
  // cache targets, where each round re-ranks mostly-unchanged conditions.
  BayesCrowdOptions options;
  options.ctable.alpha = 0.003;
  options.strategy.kind = StrategyKind::kHhs;
  options.strategy.m = 15;
  options.budget = 60;
  options.latency = 60;
  options.threads = threads;
  options.probability.memoize = cache;

  BayesCrowdResult result;
  for (auto _ : state) {
    BayesCrowd framework(options);
    BnPosteriorProvider posteriors(network, incomplete);
    SimulatedCrowdPlatform platform(complete, {});
    auto run = framework.Run(incomplete, posteriors, platform);
    BAYESCROWD_CHECK_OK(run.status());
    result = std::move(run).value();
  }

  state.counters["threads"] = static_cast<double>(threads);
  state.counters["cache"] = cache ? 1.0 : 0.0;
  state.counters["crowd_seconds"] = result.crowdsourcing_seconds;
  state.counters["select_seconds"] = result.select_seconds;
  state.counters["update_seconds"] = result.update_seconds;
  state.counters["cache_hits"] = static_cast<double>(result.cache_hits);
  state.counters["cache_misses"] =
      static_cast<double>(result.cache_misses);
  const double lookups =
      static_cast<double>(result.cache_hits + result.cache_misses);
  state.counters["cache_hit_rate"] =
      lookups == 0.0 ? 0.0
                     : static_cast<double>(result.cache_hits) / lookups;
  state.counters["tasks"] = static_cast<double>(result.tasks_posted);
  state.counters["rounds"] = static_cast<double>(result.rounds);
  state.counters["f1"] =
      EvaluateResultSet(result.result_objects,
                        GroundTruthSkyline(complete))
          .f1;
}

void ScalingArgs(benchmark::internal::Benchmark* bench) {
  for (std::int64_t cache : {0, 1}) {
    for (std::int64_t threads : {1, 2, 4, 8}) {
      bench->Args({threads, cache});
    }
  }
  bench->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_ParallelScaling)->Apply(ScalingArgs);

}  // namespace
}  // namespace bayescrowd::bench

BENCHMARK_MAIN();
