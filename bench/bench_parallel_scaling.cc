// Parallel + memoized evaluation: crowdsourcing-phase wall clock on one
// fixed synthetic workload, swept over 1/2/4/8 evaluation threads with
// the Pr(φ) memo cache on and off.
//
// Series: (threads, cache). The (1, off) point is the pre-optimization
// baseline — strictly sequential, every probability recomputed. The
// headline comparison for the perf trajectory is (8, on) vs (1, off) on
// crowd_seconds; select/update splits and the cache hit rate explain
// where the win comes from. Probabilities and selected tasks are
// bit-identical across every configuration (asserted by
// parallel_test.cc), so the series differ in time only.

// In addition to the console/JSON output of the benchmark library, this
// binary writes BENCH_parallel_scaling.json (telemetry envelope, one row
// per configuration) via the observability layer, so the scaling series
// can be diffed across commits without scraping console output.

#include <benchmark/benchmark.h>

#include <utility>

#include "bench_util.h"
#include "bayesnet/imputation.h"
#include "common/string_util.h"
#include "crowd/platform.h"
#include "data/generators.h"
#include "skyline/metrics.h"

namespace bayescrowd::bench {
namespace {

BenchArtifact& Artifact() {
  static auto* artifact = new BenchArtifact("parallel_scaling");
  return *artifact;
}

void BM_ParallelScaling(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const bool cache = state.range(1) != 0;

  // The shared NBA-like workload at 15% missing puts the c-table in the
  // ADPLL-heavy regime (tens of microseconds per condition), so the
  // crowd phase is dominated by Pr(φ) evaluation rather than bookkeeping.
  const Table& complete = NbaComplete();
  const Table incomplete = WithMissingRate(complete, 0.15);
  const auto& network = LearnedNetwork(incomplete, "scaling@0.15");

  // Many small rounds (ceil(B/L) = 1 task each): the regime the memo
  // cache targets, where each round re-ranks mostly-unchanged conditions.
  BayesCrowdOptions options;
  options.ctable.alpha = 0.003;
  options.strategy.kind = StrategyKind::kHhs;
  options.strategy.m = 15;
  options.budget = 60;
  options.latency = 60;
  options.threads = threads;
  options.probability.memoize = cache;

  BayesCrowdResult result;
  for (auto _ : state) {
    BayesCrowd framework(options);
    BnPosteriorProvider posteriors(network, incomplete);
    SimulatedCrowdPlatform platform(complete, {});
    auto run = framework.Run(incomplete, posteriors, platform);
    BAYESCROWD_CHECK_OK(run.status());
    result = std::move(run).value();
  }

  state.counters["threads"] = static_cast<double>(threads);
  state.counters["cache"] = cache ? 1.0 : 0.0;
  state.counters["crowd_seconds"] = result.crowdsourcing_seconds;
  state.counters["select_seconds"] = result.select_seconds;
  state.counters["update_seconds"] = result.update_seconds;
  state.counters["cache_hits"] = static_cast<double>(result.cache_hits);
  state.counters["cache_misses"] =
      static_cast<double>(result.cache_misses);
  const double lookups =
      static_cast<double>(result.cache_hits + result.cache_misses);
  state.counters["cache_hit_rate"] =
      lookups == 0.0 ? 0.0
                     : static_cast<double>(result.cache_hits) / lookups;
  state.counters["tasks"] = static_cast<double>(result.tasks_posted);
  state.counters["rounds"] = static_cast<double>(result.rounds);
  const double f1 = EvaluateResultSet(result.result_objects,
                                      GroundTruthSkyline(complete))
                        .f1;
  state.counters["f1"] = f1;

  obs::JsonValue config = obs::JsonValue::Object();
  config["threads"] = threads;
  config["cache"] = cache;
  obs::JsonValue row = obs::JsonValue::Object();
  row["crowd_seconds"] = result.crowdsourcing_seconds;
  row["select_seconds"] = result.select_seconds;
  row["update_seconds"] = result.update_seconds;
  row["cache_hits"] = result.cache_hits;
  row["cache_misses"] = result.cache_misses;
  row["tasks"] = result.tasks_posted;
  row["rounds"] = result.rounds;
  row["adpll_calls"] = result.adpll.calls;
  row["adpll_branches"] = result.adpll.branches;
  row["f1"] = f1;
  obs::JsonValue lanes = obs::JsonValue::Array();
  for (const ThreadPool::LaneStats& lane : result.lane_usage) {
    obs::JsonValue entry = obs::JsonValue::Object();
    entry["tasks"] = lane.tasks;
    entry["busy_seconds"] = lane.busy_seconds;
    lanes.Append(std::move(entry));
  }
  row["lanes"] = std::move(lanes);
  Artifact().AddRun(
      StrFormat("parallel_scaling/threads=%zu/cache=%d", threads,
                cache ? 1 : 0),
      1e3 * result.total_seconds, std::move(row), std::move(config));
}

void ScalingArgs(benchmark::internal::Benchmark* bench) {
  for (std::int64_t cache : {0, 1}) {
    for (std::int64_t threads : {1, 2, 4, 8}) {
      bench->Args({threads, cache});
    }
  }
  bench->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_ParallelScaling)->Apply(ScalingArgs);

}  // namespace
}  // namespace bayescrowd::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return bayescrowd::bench::Artifact().Write() ? 0 : 1;
}
