// Serving-layer throughput: N resident sessions interleaved round by
// round on one shared worker pool, swept over the session count.
//
// Each configuration admits N single-tenant sessions over independent
// NBA-like workloads, then drains them with fair round-robin sweeps,
// timing every individual session-round Advance. Reported per series:
// aggregate rounds/sec across the whole drain, plus the p50/p95 of the
// per-round latency distribution — the number a multi-tenant operator
// actually provisions against. Because the manager serializes stepping
// work on its work mutex (sessions share the pool; parallelism lives in
// the pool's lanes), rounds/sec should stay roughly flat as sessions
// are added while per-round tail latency grows with queueing — this
// bench pins that shape.
//
// Writes BENCH_serve_multisession.json (one row per session count) via
// the shared artifact schema.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"
#include "data/generators.h"
#include "data/missing.h"
#include "serve/manager.h"

namespace bayescrowd::bench {
namespace {

serve::SessionSpec MakeSpec(std::size_t index) {
  serve::SessionSpec spec;
  spec.id = StrFormat("s%zu", index);
  spec.tenant = StrFormat("tenant%zu", index);
  spec.ground_truth = MakeNbaLike(120, 9 + index);
  Rng rng(5);
  spec.incomplete = InjectMissingUniform(spec.ground_truth, 0.15, rng);
  spec.cache_key = StrFormat("nba-%zu", 9 + index);
  spec.options.ctable.alpha = 0.01;
  spec.options.budget = 24;
  spec.options.latency = 4;
  spec.options.strategy.m = 5;
  return spec;
}

double PercentileMs(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(samples.size() - 1));
  return samples[rank];
}

void BM_ServeMultisession(benchmark::State& state) {
  const auto sessions = static_cast<std::size_t>(state.range(0));

  std::size_t total_rounds = 0;
  double advance_seconds = 0.0;
  std::vector<double> round_ms;
  for (auto _ : state) {
    serve::SessionManager::Options options;
    options.threads = 4;
    options.max_resident_sessions = 16;
    serve::SessionManager manager(options);
    std::vector<std::string> ids;
    for (std::size_t i = 0; i < sessions; ++i) {
      serve::SessionSpec spec = MakeSpec(i);
      ids.push_back(spec.id);
      BAYESCROWD_CHECK_OK(manager.Create(std::move(spec)));
    }

    total_rounds = 0;
    advance_seconds = 0.0;
    round_ms.clear();
    std::vector<bool> done(sessions, false);
    bool active = true;
    while (active) {
      active = false;
      for (std::size_t i = 0; i < sessions; ++i) {
        if (done[i]) continue;
        const auto start = std::chrono::steady_clock::now();
        auto advanced = manager.Advance(ids[i], 1);
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        BAYESCROWD_CHECK_OK(advanced.status());
        advance_seconds += elapsed.count();
        if (advanced.value().rounds_run > 0) {
          total_rounds += advanced.value().rounds_run;
          round_ms.push_back(1e3 * elapsed.count());
        }
        done[i] = advanced.value().done;
        active = active || !done[i];
      }
    }
    for (const std::string& id : ids) {
      BAYESCROWD_CHECK_OK(manager.Finish(id).status());
    }
  }

  state.counters["sessions"] = static_cast<double>(sessions);
  state.counters["total_rounds"] = static_cast<double>(total_rounds);
  state.counters["advance_seconds"] = advance_seconds;
  state.counters["rounds_per_sec"] =
      advance_seconds == 0.0
          ? 0.0
          : static_cast<double>(total_rounds) / advance_seconds;
  state.counters["p50_round_ms"] = PercentileMs(round_ms, 0.50);
  state.counters["p95_round_ms"] = PercentileMs(round_ms, 0.95);
}

BENCHMARK(BM_ServeMultisession)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace bayescrowd::bench

BC_BENCH_MAIN("serve_multisession")
