// Crash-only serving costs: (i) mass recovery — how long a restarted
// server takes to replay the manifest and resume 1/4/8/16 resident
// sessions from their newest checkpoints, and how quickly the first
// recovered session advances again (restart-to-first-progress, the
// operator-facing MTTR number); (ii) steady-state journaling — the
// rounds/sec drain throughput with the serve manifest on vs off, whose
// ratio is the durability overhead (budgeted at <= 2% in DESIGN.md
// §14).
//
// Writes BENCH_serve_recovery.json via the shared artifact schema: one
// row per session count for the recovery sweep plus one row per
// journaling mode.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"
#include "data/generators.h"
#include "data/missing.h"
#include "serve/manager.h"
#include "serve/manifest.h"

namespace bayescrowd::bench {
namespace {

serve::SessionSpec MakeSpec(std::size_t index) {
  serve::SessionSpec spec;
  spec.id = StrFormat("s%zu", index);
  spec.tenant = StrFormat("tenant%zu", index);
  spec.ground_truth = MakeNbaLike(120, 9 + index);
  Rng rng(5);
  spec.incomplete = InjectMissingUniform(spec.ground_truth, 0.15, rng);
  spec.cache_key = StrFormat("nba-%zu", 9 + index);
  spec.options.ctable.alpha = 0.01;
  spec.options.budget = 24;
  spec.options.latency = 4;
  spec.options.strategy.m = 5;
  return spec;
}

std::string FreshStateDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

serve::SessionManager::Options ServerOptions(const std::string& state_dir) {
  serve::SessionManager::Options options;
  options.threads = 4;
  options.max_resident_sessions = 32;
  options.state_dir = state_dir;
  return options;
}

/// The resolver a real server implements by re-parsing the journaled
/// create request; here specs are reproducible from the session index.
serve::SessionManager::SpecResolver IndexResolver() {
  return [](const serve::ManifestEvent& event)
             -> Result<serve::SessionSpec> {
    int index = 0;
    if (!ParseInt(event.session_id.substr(1), &index) || index < 0) {
      return Status::InvalidArgument("unexpected bench session id '" +
                                     event.session_id + "'");
    }
    return MakeSpec(static_cast<std::size_t>(index));
  };
}

/// Restart-after-crash: N sessions were resident, each 3 rounds in with
/// per-round checkpoints, when the process died. Timed region: build a
/// fresh manager, Recover() the whole set, then advance one round —
/// wall-clock to full residency and to first post-restart progress.
void BM_ServeRecovery(benchmark::State& state) {
  const auto sessions = static_cast<std::size_t>(state.range(0));

  double recover_seconds = 0.0;
  double first_advance_seconds = 0.0;
  std::size_t resumed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const std::string state_dir = FreshStateDir(
        StrFormat("bc_bench_recovery_%zu", sessions));
    {
      serve::SessionManager manager(ServerOptions(state_dir));
      for (std::size_t i = 0; i < sessions; ++i) {
        serve::SessionSpec spec = MakeSpec(i);
        spec.checkpoint_dir = state_dir + "/ckpt";
        spec.options.checkpoint_every = 1;
        const std::string id = spec.id;
        BAYESCROWD_CHECK_OK(manager.Create(std::move(spec)));
        BAYESCROWD_CHECK_OK(manager.Advance(id, 3).status());
      }
    }  // Dropped cold: the crash.
    state.ResumeTiming();

    const auto restart = std::chrono::steady_clock::now();
    serve::SessionManager recovered(ServerOptions(state_dir));
    auto report = recovered.Recover(IndexResolver());
    BAYESCROWD_CHECK_OK(report.status());
    const std::chrono::duration<double> recover_elapsed =
        std::chrono::steady_clock::now() - restart;
    auto advanced = recovered.Advance("s0", 1);
    BAYESCROWD_CHECK_OK(advanced.status());
    const std::chrono::duration<double> first_advance_elapsed =
        std::chrono::steady_clock::now() - restart;

    recover_seconds = recover_elapsed.count();
    first_advance_seconds = first_advance_elapsed.count();
    resumed = report->sessions_resumed;
  }

  state.counters["sessions"] = static_cast<double>(sessions);
  state.counters["sessions_resumed"] = static_cast<double>(resumed);
  state.counters["recover_seconds"] = recover_seconds;
  state.counters["first_advance_seconds"] = first_advance_seconds;
  state.counters["recover_per_session_ms"] =
      sessions == 0 ? 0.0
                    : 1e3 * recover_seconds /
                          static_cast<double>(sessions);
}

BENCHMARK(BM_ServeRecovery)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

/// Steady-state drain throughput with the manifest journal on (range=1)
/// vs off (range=0): the durability tax on every Advance. Four sessions
/// drained round-robin, rounds/sec reported; compare the two rows.
void BM_ServeJournalOverhead(benchmark::State& state) {
  const bool journaled = state.range(0) != 0;
  constexpr std::size_t kSessions = 4;

  std::size_t total_rounds = 0;
  double advance_seconds = 0.0;
  for (auto _ : state) {
    state.PauseTiming();
    const std::string state_dir = FreshStateDir(
        StrFormat("bc_bench_journal_%d", journaled ? 1 : 0));
    serve::SessionManager::Options options;
    options.threads = 4;
    options.max_resident_sessions = 16;
    if (journaled) options.state_dir = state_dir;
    serve::SessionManager manager(options);
    std::vector<std::string> ids;
    for (std::size_t i = 0; i < kSessions; ++i) {
      serve::SessionSpec spec = MakeSpec(i);
      ids.push_back(spec.id);
      BAYESCROWD_CHECK_OK(manager.Create(std::move(spec)));
    }
    total_rounds = 0;
    advance_seconds = 0.0;
    state.ResumeTiming();

    std::vector<bool> done(kSessions, false);
    bool active = true;
    while (active) {
      active = false;
      for (std::size_t i = 0; i < kSessions; ++i) {
        if (done[i]) continue;
        const auto start = std::chrono::steady_clock::now();
        auto advanced = manager.Advance(ids[i], 1);
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        BAYESCROWD_CHECK_OK(advanced.status());
        advance_seconds += elapsed.count();
        total_rounds += advanced.value().rounds_run;
        done[i] = advanced.value().done;
        active = active || !done[i];
      }
    }
    for (const std::string& id : ids) {
      BAYESCROWD_CHECK_OK(manager.Finish(id).status());
    }
  }

  state.counters["journaled"] = journaled ? 1.0 : 0.0;
  state.counters["total_rounds"] = static_cast<double>(total_rounds);
  state.counters["advance_seconds"] = advance_seconds;
  state.counters["rounds_per_sec"] =
      advance_seconds == 0.0
          ? 0.0
          : static_cast<double>(total_rounds) / advance_seconds;
  // The absolute per-round cost is the honest overhead number: these
  // memo-warmed micro-rounds are sub-millisecond, so the rounds/sec
  // *ratio* overstates the journaling tax relative to realistic
  // multi-millisecond solver rounds. Subtract the journaled=0 row's
  // ms_per_round from the journaled=1 row's to get the per-event cost.
  state.counters["ms_per_round"] =
      total_rounds == 0
          ? 0.0
          : 1e3 * advance_seconds / static_cast<double>(total_rounds);
}

BENCHMARK(BM_ServeJournalOverhead)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace bayescrowd::bench

BC_BENCH_MAIN("serve_recovery")
