// Table 6: the live-AMT practicality study, simulated.
//
// The paper ran BayesCrowd's three strategies against real Amazon
// Mechanical Turk workers on the NBA dataset with default parameters and
// measured F1 = 0.956 (FBS), 0.979 (UBS), 0.978 (HHS). Real
// marketplaces are heterogeneous, so the simulation draws each vote's
// worker from an accuracy pool (0.85-0.98) with 3-worker majority
// voting, and averages five runs.
//
// Expected shape: all three strategies in the ~0.9+ range, UBS >= HHS >
// FBS.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "bayesnet/imputation.h"
#include "crowd/platform.h"
#include "skyline/metrics.h"

namespace bayescrowd::bench {
namespace {

void BM_Table6_LiveAmt(benchmark::State& state) {
  const Table& complete = NbaComplete();
  const Table incomplete = WithMissingRate(complete, 0.1);
  const auto& net = LearnedNetwork(incomplete, "nba@0.1");

  BayesCrowdOptions options = NbaDefaults();
  options.strategy.kind = static_cast<StrategyKind>(state.range(0));

  double f1_total = 0.0;
  int samples = 0;
  for (auto _ : state) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      BayesCrowd framework(options);
      BnPosteriorProvider posteriors(net, incomplete);
      SimulatedPlatformOptions platform_options;
      platform_options.accuracy_pool = {0.85, 0.90, 0.94, 0.96, 0.98};
      platform_options.seed = seed * 7919;
      SimulatedCrowdPlatform platform(complete, platform_options);
      auto result = framework.Run(incomplete, posteriors, platform);
      BAYESCROWD_CHECK_OK(result.status());
      f1_total += EvaluateResultSet(result->result_objects,
                                    GroundTruthSkyline(complete))
                      .f1;
      ++samples;
    }
  }
  state.counters["f1"] = f1_total / static_cast<double>(samples);
}

BENCHMARK(BM_Table6_LiveAmt)
    ->Arg(static_cast<std::int64_t>(StrategyKind::kFbs))
    ->Arg(static_cast<std::int64_t>(StrategyKind::kUbs))
    ->Arg(static_cast<std::int64_t>(StrategyKind::kHhs))
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace bayescrowd::bench

BC_BENCH_MAIN("table6_live_amt");
