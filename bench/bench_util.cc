#include "bench_util.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>

#include <benchmark/benchmark.h>

#include "bayesnet/structure_learning.h"
#include "common/random.h"
#include "crowd/platform.h"
#include "data/generators.h"
#include "data/missing.h"
#include "skyline/algorithms.h"
#include "skyline/metrics.h"

namespace bayescrowd::bench {

double ScaleFactor() {
  static const double scale = [] {
    const char* env = std::getenv("BAYESCROWD_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    const double v = std::atof(env);
    return std::clamp(v > 0.0 ? v : 1.0, 0.01, 100.0);
  }();
  return scale;
}

std::size_t NbaCardinality() {
  return static_cast<std::size_t>(10000.0 * ScaleFactor());
}

std::size_t SyntheticCardinality() {
  return static_cast<std::size_t>(20000.0 * ScaleFactor());
}

const Table& NbaComplete() {
  static const Table* table =
      new Table(MakeNbaLike(NbaCardinality(), /*seed=*/1979));
  return *table;
}

const Table& SyntheticComplete() {
  static const Table* table =
      new Table(MakeAdultLike(SyntheticCardinality(), /*seed=*/1996));
  return *table;
}

Table WithMissingRate(const Table& complete, double missing_rate,
                      std::uint64_t salt) {
  Rng rng(0xC0FFEE ^ static_cast<std::uint64_t>(missing_rate * 1e6) ^
          (salt * 0x9E3779B97F4A7C15ULL));
  return InjectMissingUniform(complete, missing_rate, rng);
}

const BayesianNetwork& LearnedNetwork(const Table& incomplete,
                                      const std::string& cache_key) {
  static auto* cache =
      new std::map<std::string, std::unique_ptr<BayesianNetwork>>();
  const auto it = cache->find(cache_key);
  if (it != cache->end()) return *it->second;

  StructureLearningOptions options;
  options.max_parents = 2;
  auto dag = HillClimbStructure(incomplete, options);
  BAYESCROWD_CHECK_OK(dag.status());
  auto net = BayesianNetwork::Create(incomplete.schema(), dag.value());
  BAYESCROWD_CHECK_OK(net.status());
  BAYESCROWD_CHECK_OK(net->FitParameters(incomplete));
  auto owned = std::make_unique<BayesianNetwork>(std::move(net).value());
  const BayesianNetwork& ref = *owned;
  cache->emplace(cache_key, std::move(owned));
  return ref;
}

namespace {

// Content fingerprint so the skyline cache can never alias two distinct
// tables that happen to share an address.
std::uint64_t TableFingerprint(const Table& table) {
  std::uint64_t h = 0x9E3779B97F4A7C15ULL ^ table.num_objects();
  h = h * 1099511628211ULL ^ table.num_attributes();
  const std::size_t n = table.num_objects();
  const std::size_t d = table.num_attributes();
  const std::size_t stride = std::max<std::size_t>(1, n / 64);
  for (std::size_t i = 0; i < n; i += stride) {
    for (std::size_t j = 0; j < d; ++j) {
      h = h * 1099511628211ULL ^
          static_cast<std::uint64_t>(
              static_cast<std::uint32_t>(table.At(i, j)));
    }
  }
  return h;
}

}  // namespace

const std::vector<std::size_t>& GroundTruthSkyline(const Table& complete) {
  static auto* cache =
      new std::map<std::uint64_t, std::vector<std::size_t>>();
  const std::uint64_t key = TableFingerprint(complete);
  const auto it = cache->find(key);
  if (it != cache->end()) return it->second;
  auto skyline = SkylineSfs(complete);
  BAYESCROWD_CHECK_OK(skyline.status());
  return cache->emplace(key, std::move(skyline).value()).first->second;
}

PipelineOutcome RunPipeline(const Table& complete, const Table& incomplete,
                            const BayesianNetwork& network,
                            const BayesCrowdOptions& options,
                            double worker_accuracy,
                            std::uint64_t platform_seed) {
  BayesCrowd framework(options);
  BnPosteriorProvider posteriors(network, incomplete);
  SimulatedPlatformOptions platform_options;
  platform_options.worker_accuracy = worker_accuracy;
  platform_options.seed = platform_seed;
  SimulatedCrowdPlatform platform(complete, platform_options);

  auto result = framework.Run(incomplete, posteriors, platform);
  BAYESCROWD_CHECK_OK(result.status());

  PipelineOutcome outcome;
  outcome.machine_seconds = result->total_seconds;
  outcome.tasks = result->tasks_posted;
  outcome.rounds = result->rounds;
  outcome.f1 = EvaluateResultSet(result->result_objects,
                                 GroundTruthSkyline(complete))
                   .f1;
  return outcome;
}

BayesCrowdOptions NbaDefaults() {
  BayesCrowdOptions options;
  options.ctable.alpha = 0.003;
  options.strategy.kind = StrategyKind::kHhs;
  options.strategy.m = 15;
  options.budget = 50;
  options.latency = 5;
  return options;
}

BayesCrowdOptions SyntheticDefaults() {
  BayesCrowdOptions options;
  options.ctable.alpha = 0.01;
  options.strategy.kind = StrategyKind::kHhs;
  options.strategy.m = 50;
  // Paper: budget 1000 at 100k records; keep the per-record rate when
  // the dataset is scaled down.
  options.budget = std::max<std::size_t>(
      50, SyntheticCardinality() / 100);
  options.latency = 10;
  return options;
}

void BenchArtifact::AddRun(const std::string& run_name, double wall_ms,
                           obs::JsonValue metrics, obs::JsonValue config) {
  obs::JsonValue row = obs::JsonValue::Object();
  row["name"] = run_name;
  if (config.is_null()) config = obs::JsonValue::Object();
  config["scale"] = ScaleFactor();
  row["config"] = std::move(config);
  row["metrics"] = std::move(metrics);
  row["wall_ms"] = wall_ms;
  rows_.push_back(std::move(row));
}

bool BenchArtifact::Write() {
  obs::JsonValue payload = obs::JsonValue::Array();
  for (obs::JsonValue& row : rows_) payload.Append(std::move(row));
  rows_.clear();
  const Status st = obs::WriteBenchArtifact(name_, std::move(payload));
  if (!st.ok()) {
    std::fprintf(stderr, "failed to write BENCH_%s.json: %s\n",
                 name_.c_str(), st.ToString().c_str());
    return false;
  }
  std::printf("wrote BENCH_%s.json\n", name_.c_str());
  return true;
}

namespace {

// Tees every finished run into the artifact while still printing the
// normal console table.
class ArtifactReporter : public benchmark::ConsoleReporter {
 public:
  explicit ArtifactReporter(BenchArtifact* artifact)
      : artifact_(artifact) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      obs::JsonValue metrics = obs::JsonValue::Object();
      for (const auto& [key, counter] : run.counters) {
        metrics[key] = static_cast<double>(counter);
      }
      const double iterations =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      artifact_->AddRun(run.benchmark_name(),
                        1e3 * run.real_accumulated_time / iterations,
                        std::move(metrics));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  BenchArtifact* artifact_;
};

}  // namespace

int BenchmarkMainWithArtifact(const std::string& name, int argc,
                              char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  BenchArtifact artifact(name);
  ArtifactReporter reporter(&artifact);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return artifact.Write() ? 0 : 1;
}

}  // namespace bayescrowd::bench
