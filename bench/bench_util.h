// Shared plumbing for the benchmark harness.
//
// Every figure/table of the paper's evaluation section has its own
// binary (bench_fig2_* ... bench_table6_*). They share dataset
// construction, the preprocessing pipeline, and a scale knob:
// BAYESCROWD_BENCH_SCALE (default 1.0) multiplies dataset cardinalities
// so the suite stays tractable on small machines. Paper-scale runs:
//   BAYESCROWD_BENCH_SCALE=1 -> NBA 10,000 x 11 (paper scale)
//                               Synthetic 20,000 x 9 (paper: 100,000;
//                               set the scale to 5 to match).

#ifndef BAYESCROWD_BENCH_BENCH_UTIL_H_
#define BAYESCROWD_BENCH_BENCH_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "bayesnet/imputation.h"
#include "bayesnet/network.h"
#include "core/framework.h"
#include "data/table.h"
#include "obs/telemetry.h"

namespace bayescrowd::bench {

/// BAYESCROWD_BENCH_SCALE env var (default 1.0, clamped to [0.01, 100]).
double ScaleFactor();

/// Scaled dataset cardinalities.
std::size_t NbaCardinality();        // 10,000 * scale
std::size_t SyntheticCardinality();  // 20,000 * scale

/// Lazily-built complete datasets, cached per process.
const Table& NbaComplete();
const Table& SyntheticComplete();

/// Incomplete view of `complete` at `missing_rate` (deterministic seed
/// derived from the rate and `salt`; vary `salt` to average runs over
/// independent missing-cell draws).
Table WithMissingRate(const Table& complete, double missing_rate,
                      std::uint64_t salt = 0);

/// A Bayesian network learned (structure + parameters) from
/// `incomplete`, cached per (dataset pointer, missing-rate) — the
/// preprocessing step of BayesCrowd.
const BayesianNetwork& LearnedNetwork(const Table& incomplete,
                                      const std::string& cache_key);

/// One full BayesCrowd run against a simulated crowd plus its F1 versus
/// the complete-data skyline.
struct PipelineOutcome {
  double machine_seconds = 0.0;
  std::size_t tasks = 0;
  std::size_t rounds = 0;
  double f1 = 0.0;
};
PipelineOutcome RunPipeline(const Table& complete, const Table& incomplete,
                            const BayesianNetwork& network,
                            const BayesCrowdOptions& options,
                            double worker_accuracy = 1.0,
                            std::uint64_t platform_seed = 99);

/// The complete-data skyline of `complete` (cached per table pointer).
const std::vector<std::size_t>& GroundTruthSkyline(const Table& complete);

/// Paper-default BayesCrowd options for each dataset (Section 7:
/// NBA: alpha=0.003, B=50, m=15, L=5;
/// Synthetic: alpha=0.01, B=1000, m=50, L=10 — budget scaled with the
/// dataset).
BayesCrowdOptions NbaDefaults();
BayesCrowdOptions SyntheticDefaults();

/// Accumulates one JSON row per measured configuration and writes them
/// as BENCH_<name>.json (telemetry envelope) from the benchmark's
/// main(). Rows survive across benchmark repetitions; a bench binary
/// keeps one collector at namespace scope, appends from the benchmark
/// body, and calls Write() after RunSpecifiedBenchmarks().
class BenchArtifact {
 public:
  explicit BenchArtifact(std::string name) : name_(std::move(name)) {}

  void AddRow(obs::JsonValue row) { rows_.push_back(std::move(row)); }

  /// Appends a row in the shared artifact schema every bench binary
  /// emits: {"name", "config": {"scale", ...}, "metrics": {...},
  /// "wall_ms"}. `config` may be a null JsonValue; the scale knob is
  /// always stamped in.
  void AddRun(const std::string& run_name, double wall_ms,
              obs::JsonValue metrics,
              obs::JsonValue config = obs::JsonValue());

  /// Writes BENCH_<name>.json into the working directory. Returns
  /// false (after printing to stderr) on I/O failure.
  bool Write();

 private:
  std::string name_;
  std::vector<obs::JsonValue> rows_;
};

/// Drop-in replacement for BENCHMARK_MAIN() that additionally tees
/// every google-benchmark run into a BenchArtifact (one shared-schema
/// row per run, counters under "metrics") and writes BENCH_<name>.json
/// after RunSpecifiedBenchmarks(). Use via BC_BENCH_MAIN("name").
int BenchmarkMainWithArtifact(const std::string& name, int argc,
                              char** argv);

#define BC_BENCH_MAIN(name)                                          \
  int main(int argc, char** argv) {                                  \
    return bayescrowd::bench::BenchmarkMainWithArtifact(name, argc,  \
                                                        argv);       \
  }

}  // namespace bayescrowd::bench

#endif  // BAYESCROWD_BENCH_BENCH_UTIL_H_
