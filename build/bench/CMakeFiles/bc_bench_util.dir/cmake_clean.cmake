file(REMOVE_RECURSE
  "CMakeFiles/bc_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/bc_bench_util.dir/bench_util.cc.o.d"
  "libbc_bench_util.a"
  "libbc_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
