file(REMOVE_RECURSE
  "libbc_bench_util.a"
)
