# Empty dependencies file for bc_bench_util.
# This may be replaced when dependencies are built.
