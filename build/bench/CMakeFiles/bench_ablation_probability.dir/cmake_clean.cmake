file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_probability.dir/bench_ablation_probability.cc.o"
  "CMakeFiles/bench_ablation_probability.dir/bench_ablation_probability.cc.o.d"
  "bench_ablation_probability"
  "bench_ablation_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
