# Empty compiler generated dependencies file for bench_ablation_probability.
# This may be replaced when dependencies are built.
