file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_robustness.dir/bench_ablation_robustness.cc.o"
  "CMakeFiles/bench_ablation_robustness.dir/bench_ablation_robustness.cc.o.d"
  "bench_ablation_robustness"
  "bench_ablation_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
