file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_ctable.dir/bench_fig2_ctable.cc.o"
  "CMakeFiles/bench_fig2_ctable.dir/bench_fig2_ctable.cc.o.d"
  "bench_fig2_ctable"
  "bench_fig2_ctable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_ctable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
