# Empty dependencies file for bench_fig2_ctable.
# This may be replaced when dependencies are built.
