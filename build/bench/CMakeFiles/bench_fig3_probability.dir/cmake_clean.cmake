file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_probability.dir/bench_fig3_probability.cc.o"
  "CMakeFiles/bench_fig3_probability.dir/bench_fig3_probability.cc.o.d"
  "bench_fig3_probability"
  "bench_fig3_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
