file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_crowdsky.dir/bench_fig4_crowdsky.cc.o"
  "CMakeFiles/bench_fig4_crowdsky.dir/bench_fig4_crowdsky.cc.o.d"
  "bench_fig4_crowdsky"
  "bench_fig4_crowdsky.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_crowdsky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
