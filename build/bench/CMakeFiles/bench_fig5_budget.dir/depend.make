# Empty dependencies file for bench_fig5_budget.
# This may be replaced when dependencies are built.
