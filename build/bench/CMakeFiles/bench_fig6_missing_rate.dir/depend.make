# Empty dependencies file for bench_fig6_missing_rate.
# This may be replaced when dependencies are built.
