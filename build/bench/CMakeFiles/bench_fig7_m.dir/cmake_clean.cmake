file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_m.dir/bench_fig7_m.cc.o"
  "CMakeFiles/bench_fig7_m.dir/bench_fig7_m.cc.o.d"
  "bench_fig7_m"
  "bench_fig7_m.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
