
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig8_alpha.cc" "bench/CMakeFiles/bench_fig8_alpha.dir/bench_fig8_alpha.cc.o" "gcc" "bench/CMakeFiles/bench_fig8_alpha.dir/bench_fig8_alpha.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bc_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bayesnet/CMakeFiles/bc_bayesnet.dir/DependInfo.cmake"
  "/root/repo/build/src/probability/CMakeFiles/bc_probability.dir/DependInfo.cmake"
  "/root/repo/build/src/skyline/CMakeFiles/bc_skyline.dir/DependInfo.cmake"
  "/root/repo/build/src/crowdsky/CMakeFiles/bc_crowdsky.dir/DependInfo.cmake"
  "/root/repo/build/src/crowd/CMakeFiles/bc_crowd.dir/DependInfo.cmake"
  "/root/repo/build/src/ctable/CMakeFiles/bc_ctable.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/bc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
