# Empty dependencies file for bench_fig9_worker_accuracy.
# This may be replaced when dependencies are built.
