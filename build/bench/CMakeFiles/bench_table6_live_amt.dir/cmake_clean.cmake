file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_live_amt.dir/bench_table6_live_amt.cc.o"
  "CMakeFiles/bench_table6_live_amt.dir/bench_table6_live_amt.cc.o.d"
  "bench_table6_live_amt"
  "bench_table6_live_amt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_live_amt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
