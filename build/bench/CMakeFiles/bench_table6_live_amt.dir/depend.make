# Empty dependencies file for bench_table6_live_amt.
# This may be replaced when dependencies are built.
