file(REMOVE_RECURSE
  "CMakeFiles/nba_scouting.dir/nba_scouting.cpp.o"
  "CMakeFiles/nba_scouting.dir/nba_scouting.cpp.o.d"
  "nba_scouting"
  "nba_scouting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nba_scouting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
