file(REMOVE_RECURSE
  "CMakeFiles/resumable_session.dir/resumable_session.cpp.o"
  "CMakeFiles/resumable_session.dir/resumable_session.cpp.o.d"
  "resumable_session"
  "resumable_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resumable_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
