# Empty dependencies file for resumable_session.
# This may be replaced when dependencies are built.
