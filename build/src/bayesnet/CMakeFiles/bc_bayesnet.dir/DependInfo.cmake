
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bayesnet/cpt.cc" "src/bayesnet/CMakeFiles/bc_bayesnet.dir/cpt.cc.o" "gcc" "src/bayesnet/CMakeFiles/bc_bayesnet.dir/cpt.cc.o.d"
  "/root/repo/src/bayesnet/dag.cc" "src/bayesnet/CMakeFiles/bc_bayesnet.dir/dag.cc.o" "gcc" "src/bayesnet/CMakeFiles/bc_bayesnet.dir/dag.cc.o.d"
  "/root/repo/src/bayesnet/factor.cc" "src/bayesnet/CMakeFiles/bc_bayesnet.dir/factor.cc.o" "gcc" "src/bayesnet/CMakeFiles/bc_bayesnet.dir/factor.cc.o.d"
  "/root/repo/src/bayesnet/imputation.cc" "src/bayesnet/CMakeFiles/bc_bayesnet.dir/imputation.cc.o" "gcc" "src/bayesnet/CMakeFiles/bc_bayesnet.dir/imputation.cc.o.d"
  "/root/repo/src/bayesnet/inference.cc" "src/bayesnet/CMakeFiles/bc_bayesnet.dir/inference.cc.o" "gcc" "src/bayesnet/CMakeFiles/bc_bayesnet.dir/inference.cc.o.d"
  "/root/repo/src/bayesnet/network.cc" "src/bayesnet/CMakeFiles/bc_bayesnet.dir/network.cc.o" "gcc" "src/bayesnet/CMakeFiles/bc_bayesnet.dir/network.cc.o.d"
  "/root/repo/src/bayesnet/serialization.cc" "src/bayesnet/CMakeFiles/bc_bayesnet.dir/serialization.cc.o" "gcc" "src/bayesnet/CMakeFiles/bc_bayesnet.dir/serialization.cc.o.d"
  "/root/repo/src/bayesnet/structure_learning.cc" "src/bayesnet/CMakeFiles/bc_bayesnet.dir/structure_learning.cc.o" "gcc" "src/bayesnet/CMakeFiles/bc_bayesnet.dir/structure_learning.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/bc_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
