file(REMOVE_RECURSE
  "CMakeFiles/bc_bayesnet.dir/cpt.cc.o"
  "CMakeFiles/bc_bayesnet.dir/cpt.cc.o.d"
  "CMakeFiles/bc_bayesnet.dir/dag.cc.o"
  "CMakeFiles/bc_bayesnet.dir/dag.cc.o.d"
  "CMakeFiles/bc_bayesnet.dir/factor.cc.o"
  "CMakeFiles/bc_bayesnet.dir/factor.cc.o.d"
  "CMakeFiles/bc_bayesnet.dir/imputation.cc.o"
  "CMakeFiles/bc_bayesnet.dir/imputation.cc.o.d"
  "CMakeFiles/bc_bayesnet.dir/inference.cc.o"
  "CMakeFiles/bc_bayesnet.dir/inference.cc.o.d"
  "CMakeFiles/bc_bayesnet.dir/network.cc.o"
  "CMakeFiles/bc_bayesnet.dir/network.cc.o.d"
  "CMakeFiles/bc_bayesnet.dir/serialization.cc.o"
  "CMakeFiles/bc_bayesnet.dir/serialization.cc.o.d"
  "CMakeFiles/bc_bayesnet.dir/structure_learning.cc.o"
  "CMakeFiles/bc_bayesnet.dir/structure_learning.cc.o.d"
  "libbc_bayesnet.a"
  "libbc_bayesnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_bayesnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
