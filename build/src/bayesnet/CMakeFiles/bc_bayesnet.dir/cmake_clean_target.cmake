file(REMOVE_RECURSE
  "libbc_bayesnet.a"
)
