# Empty compiler generated dependencies file for bc_bayesnet.
# This may be replaced when dependencies are built.
