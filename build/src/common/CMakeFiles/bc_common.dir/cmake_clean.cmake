file(REMOVE_RECURSE
  "CMakeFiles/bc_common.dir/bitset.cc.o"
  "CMakeFiles/bc_common.dir/bitset.cc.o.d"
  "CMakeFiles/bc_common.dir/csv.cc.o"
  "CMakeFiles/bc_common.dir/csv.cc.o.d"
  "CMakeFiles/bc_common.dir/logging.cc.o"
  "CMakeFiles/bc_common.dir/logging.cc.o.d"
  "CMakeFiles/bc_common.dir/random.cc.o"
  "CMakeFiles/bc_common.dir/random.cc.o.d"
  "CMakeFiles/bc_common.dir/status.cc.o"
  "CMakeFiles/bc_common.dir/status.cc.o.d"
  "CMakeFiles/bc_common.dir/string_util.cc.o"
  "CMakeFiles/bc_common.dir/string_util.cc.o.d"
  "libbc_common.a"
  "libbc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
