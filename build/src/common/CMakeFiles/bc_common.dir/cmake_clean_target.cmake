file(REMOVE_RECURSE
  "libbc_common.a"
)
