# Empty compiler generated dependencies file for bc_common.
# This may be replaced when dependencies are built.
