file(REMOVE_RECURSE
  "CMakeFiles/bc_core.dir/entropy.cc.o"
  "CMakeFiles/bc_core.dir/entropy.cc.o.d"
  "CMakeFiles/bc_core.dir/framework.cc.o"
  "CMakeFiles/bc_core.dir/framework.cc.o.d"
  "CMakeFiles/bc_core.dir/report.cc.o"
  "CMakeFiles/bc_core.dir/report.cc.o.d"
  "CMakeFiles/bc_core.dir/strategy.cc.o"
  "CMakeFiles/bc_core.dir/strategy.cc.o.d"
  "CMakeFiles/bc_core.dir/update.cc.o"
  "CMakeFiles/bc_core.dir/update.cc.o.d"
  "CMakeFiles/bc_core.dir/utility.cc.o"
  "CMakeFiles/bc_core.dir/utility.cc.o.d"
  "libbc_core.a"
  "libbc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
