
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crowd/interactive.cc" "src/crowd/CMakeFiles/bc_crowd.dir/interactive.cc.o" "gcc" "src/crowd/CMakeFiles/bc_crowd.dir/interactive.cc.o.d"
  "/root/repo/src/crowd/platform.cc" "src/crowd/CMakeFiles/bc_crowd.dir/platform.cc.o" "gcc" "src/crowd/CMakeFiles/bc_crowd.dir/platform.cc.o.d"
  "/root/repo/src/crowd/quality.cc" "src/crowd/CMakeFiles/bc_crowd.dir/quality.cc.o" "gcc" "src/crowd/CMakeFiles/bc_crowd.dir/quality.cc.o.d"
  "/root/repo/src/crowd/record_replay.cc" "src/crowd/CMakeFiles/bc_crowd.dir/record_replay.cc.o" "gcc" "src/crowd/CMakeFiles/bc_crowd.dir/record_replay.cc.o.d"
  "/root/repo/src/crowd/task.cc" "src/crowd/CMakeFiles/bc_crowd.dir/task.cc.o" "gcc" "src/crowd/CMakeFiles/bc_crowd.dir/task.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/bc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/ctable/CMakeFiles/bc_ctable.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
