file(REMOVE_RECURSE
  "CMakeFiles/bc_crowd.dir/interactive.cc.o"
  "CMakeFiles/bc_crowd.dir/interactive.cc.o.d"
  "CMakeFiles/bc_crowd.dir/platform.cc.o"
  "CMakeFiles/bc_crowd.dir/platform.cc.o.d"
  "CMakeFiles/bc_crowd.dir/quality.cc.o"
  "CMakeFiles/bc_crowd.dir/quality.cc.o.d"
  "CMakeFiles/bc_crowd.dir/record_replay.cc.o"
  "CMakeFiles/bc_crowd.dir/record_replay.cc.o.d"
  "CMakeFiles/bc_crowd.dir/task.cc.o"
  "CMakeFiles/bc_crowd.dir/task.cc.o.d"
  "libbc_crowd.a"
  "libbc_crowd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_crowd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
