file(REMOVE_RECURSE
  "libbc_crowd.a"
)
