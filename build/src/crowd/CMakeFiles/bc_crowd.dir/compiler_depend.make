# Empty compiler generated dependencies file for bc_crowd.
# This may be replaced when dependencies are built.
