
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crowdsky/crowdsky.cc" "src/crowdsky/CMakeFiles/bc_crowdsky.dir/crowdsky.cc.o" "gcc" "src/crowdsky/CMakeFiles/bc_crowdsky.dir/crowdsky.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/bc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/ctable/CMakeFiles/bc_ctable.dir/DependInfo.cmake"
  "/root/repo/build/src/crowd/CMakeFiles/bc_crowd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
