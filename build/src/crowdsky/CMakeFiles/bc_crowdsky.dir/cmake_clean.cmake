file(REMOVE_RECURSE
  "CMakeFiles/bc_crowdsky.dir/crowdsky.cc.o"
  "CMakeFiles/bc_crowdsky.dir/crowdsky.cc.o.d"
  "libbc_crowdsky.a"
  "libbc_crowdsky.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_crowdsky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
