file(REMOVE_RECURSE
  "libbc_crowdsky.a"
)
