# Empty dependencies file for bc_crowdsky.
# This may be replaced when dependencies are built.
