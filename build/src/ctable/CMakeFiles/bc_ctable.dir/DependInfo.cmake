
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ctable/builder.cc" "src/ctable/CMakeFiles/bc_ctable.dir/builder.cc.o" "gcc" "src/ctable/CMakeFiles/bc_ctable.dir/builder.cc.o.d"
  "/root/repo/src/ctable/condition.cc" "src/ctable/CMakeFiles/bc_ctable.dir/condition.cc.o" "gcc" "src/ctable/CMakeFiles/bc_ctable.dir/condition.cc.o.d"
  "/root/repo/src/ctable/ctable.cc" "src/ctable/CMakeFiles/bc_ctable.dir/ctable.cc.o" "gcc" "src/ctable/CMakeFiles/bc_ctable.dir/ctable.cc.o.d"
  "/root/repo/src/ctable/dominator.cc" "src/ctable/CMakeFiles/bc_ctable.dir/dominator.cc.o" "gcc" "src/ctable/CMakeFiles/bc_ctable.dir/dominator.cc.o.d"
  "/root/repo/src/ctable/expression.cc" "src/ctable/CMakeFiles/bc_ctable.dir/expression.cc.o" "gcc" "src/ctable/CMakeFiles/bc_ctable.dir/expression.cc.o.d"
  "/root/repo/src/ctable/knowledge.cc" "src/ctable/CMakeFiles/bc_ctable.dir/knowledge.cc.o" "gcc" "src/ctable/CMakeFiles/bc_ctable.dir/knowledge.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/bc_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
