file(REMOVE_RECURSE
  "CMakeFiles/bc_ctable.dir/builder.cc.o"
  "CMakeFiles/bc_ctable.dir/builder.cc.o.d"
  "CMakeFiles/bc_ctable.dir/condition.cc.o"
  "CMakeFiles/bc_ctable.dir/condition.cc.o.d"
  "CMakeFiles/bc_ctable.dir/ctable.cc.o"
  "CMakeFiles/bc_ctable.dir/ctable.cc.o.d"
  "CMakeFiles/bc_ctable.dir/dominator.cc.o"
  "CMakeFiles/bc_ctable.dir/dominator.cc.o.d"
  "CMakeFiles/bc_ctable.dir/expression.cc.o"
  "CMakeFiles/bc_ctable.dir/expression.cc.o.d"
  "CMakeFiles/bc_ctable.dir/knowledge.cc.o"
  "CMakeFiles/bc_ctable.dir/knowledge.cc.o.d"
  "libbc_ctable.a"
  "libbc_ctable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_ctable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
