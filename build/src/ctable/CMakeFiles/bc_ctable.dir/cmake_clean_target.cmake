file(REMOVE_RECURSE
  "libbc_ctable.a"
)
