# Empty compiler generated dependencies file for bc_ctable.
# This may be replaced when dependencies are built.
