
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset_io.cc" "src/data/CMakeFiles/bc_data.dir/dataset_io.cc.o" "gcc" "src/data/CMakeFiles/bc_data.dir/dataset_io.cc.o.d"
  "/root/repo/src/data/discretizer.cc" "src/data/CMakeFiles/bc_data.dir/discretizer.cc.o" "gcc" "src/data/CMakeFiles/bc_data.dir/discretizer.cc.o.d"
  "/root/repo/src/data/generators.cc" "src/data/CMakeFiles/bc_data.dir/generators.cc.o" "gcc" "src/data/CMakeFiles/bc_data.dir/generators.cc.o.d"
  "/root/repo/src/data/missing.cc" "src/data/CMakeFiles/bc_data.dir/missing.cc.o" "gcc" "src/data/CMakeFiles/bc_data.dir/missing.cc.o.d"
  "/root/repo/src/data/table.cc" "src/data/CMakeFiles/bc_data.dir/table.cc.o" "gcc" "src/data/CMakeFiles/bc_data.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
