file(REMOVE_RECURSE
  "CMakeFiles/bc_data.dir/dataset_io.cc.o"
  "CMakeFiles/bc_data.dir/dataset_io.cc.o.d"
  "CMakeFiles/bc_data.dir/discretizer.cc.o"
  "CMakeFiles/bc_data.dir/discretizer.cc.o.d"
  "CMakeFiles/bc_data.dir/generators.cc.o"
  "CMakeFiles/bc_data.dir/generators.cc.o.d"
  "CMakeFiles/bc_data.dir/missing.cc.o"
  "CMakeFiles/bc_data.dir/missing.cc.o.d"
  "CMakeFiles/bc_data.dir/table.cc.o"
  "CMakeFiles/bc_data.dir/table.cc.o.d"
  "libbc_data.a"
  "libbc_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
