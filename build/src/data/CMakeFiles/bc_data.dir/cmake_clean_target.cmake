file(REMOVE_RECURSE
  "libbc_data.a"
)
