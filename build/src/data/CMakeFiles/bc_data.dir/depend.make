# Empty dependencies file for bc_data.
# This may be replaced when dependencies are built.
