
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/probability/adpll.cc" "src/probability/CMakeFiles/bc_probability.dir/adpll.cc.o" "gcc" "src/probability/CMakeFiles/bc_probability.dir/adpll.cc.o.d"
  "/root/repo/src/probability/distributions.cc" "src/probability/CMakeFiles/bc_probability.dir/distributions.cc.o" "gcc" "src/probability/CMakeFiles/bc_probability.dir/distributions.cc.o.d"
  "/root/repo/src/probability/evaluator.cc" "src/probability/CMakeFiles/bc_probability.dir/evaluator.cc.o" "gcc" "src/probability/CMakeFiles/bc_probability.dir/evaluator.cc.o.d"
  "/root/repo/src/probability/naive.cc" "src/probability/CMakeFiles/bc_probability.dir/naive.cc.o" "gcc" "src/probability/CMakeFiles/bc_probability.dir/naive.cc.o.d"
  "/root/repo/src/probability/possible_worlds.cc" "src/probability/CMakeFiles/bc_probability.dir/possible_worlds.cc.o" "gcc" "src/probability/CMakeFiles/bc_probability.dir/possible_worlds.cc.o.d"
  "/root/repo/src/probability/sampling.cc" "src/probability/CMakeFiles/bc_probability.dir/sampling.cc.o" "gcc" "src/probability/CMakeFiles/bc_probability.dir/sampling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/bc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/ctable/CMakeFiles/bc_ctable.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
