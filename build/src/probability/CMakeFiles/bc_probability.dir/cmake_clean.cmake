file(REMOVE_RECURSE
  "CMakeFiles/bc_probability.dir/adpll.cc.o"
  "CMakeFiles/bc_probability.dir/adpll.cc.o.d"
  "CMakeFiles/bc_probability.dir/distributions.cc.o"
  "CMakeFiles/bc_probability.dir/distributions.cc.o.d"
  "CMakeFiles/bc_probability.dir/evaluator.cc.o"
  "CMakeFiles/bc_probability.dir/evaluator.cc.o.d"
  "CMakeFiles/bc_probability.dir/naive.cc.o"
  "CMakeFiles/bc_probability.dir/naive.cc.o.d"
  "CMakeFiles/bc_probability.dir/possible_worlds.cc.o"
  "CMakeFiles/bc_probability.dir/possible_worlds.cc.o.d"
  "CMakeFiles/bc_probability.dir/sampling.cc.o"
  "CMakeFiles/bc_probability.dir/sampling.cc.o.d"
  "libbc_probability.a"
  "libbc_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
