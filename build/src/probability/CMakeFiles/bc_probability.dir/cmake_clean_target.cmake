file(REMOVE_RECURSE
  "libbc_probability.a"
)
