# Empty dependencies file for bc_probability.
# This may be replaced when dependencies are built.
