
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/skyline/algorithms.cc" "src/skyline/CMakeFiles/bc_skyline.dir/algorithms.cc.o" "gcc" "src/skyline/CMakeFiles/bc_skyline.dir/algorithms.cc.o.d"
  "/root/repo/src/skyline/dominance.cc" "src/skyline/CMakeFiles/bc_skyline.dir/dominance.cc.o" "gcc" "src/skyline/CMakeFiles/bc_skyline.dir/dominance.cc.o.d"
  "/root/repo/src/skyline/metrics.cc" "src/skyline/CMakeFiles/bc_skyline.dir/metrics.cc.o" "gcc" "src/skyline/CMakeFiles/bc_skyline.dir/metrics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/bc_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
