file(REMOVE_RECURSE
  "CMakeFiles/bc_skyline.dir/algorithms.cc.o"
  "CMakeFiles/bc_skyline.dir/algorithms.cc.o.d"
  "CMakeFiles/bc_skyline.dir/dominance.cc.o"
  "CMakeFiles/bc_skyline.dir/dominance.cc.o.d"
  "CMakeFiles/bc_skyline.dir/metrics.cc.o"
  "CMakeFiles/bc_skyline.dir/metrics.cc.o.d"
  "libbc_skyline.a"
  "libbc_skyline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bc_skyline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
