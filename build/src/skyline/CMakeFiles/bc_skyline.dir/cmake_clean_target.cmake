file(REMOVE_RECURSE
  "libbc_skyline.a"
)
