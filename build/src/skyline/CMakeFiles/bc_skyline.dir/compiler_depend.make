# Empty compiler generated dependencies file for bc_skyline.
# This may be replaced when dependencies are built.
