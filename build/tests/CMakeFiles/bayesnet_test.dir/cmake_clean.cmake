file(REMOVE_RECURSE
  "CMakeFiles/bayesnet_test.dir/bayesnet_test.cc.o"
  "CMakeFiles/bayesnet_test.dir/bayesnet_test.cc.o.d"
  "bayesnet_test"
  "bayesnet_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bayesnet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
