# Empty compiler generated dependencies file for bayesnet_test.
# This may be replaced when dependencies are built.
