file(REMOVE_RECURSE
  "CMakeFiles/crowdsky_test.dir/crowdsky_test.cc.o"
  "CMakeFiles/crowdsky_test.dir/crowdsky_test.cc.o.d"
  "crowdsky_test"
  "crowdsky_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdsky_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
