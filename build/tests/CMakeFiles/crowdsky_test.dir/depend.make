# Empty dependencies file for crowdsky_test.
# This may be replaced when dependencies are built.
