file(REMOVE_RECURSE
  "CMakeFiles/ctable_test.dir/ctable_test.cc.o"
  "CMakeFiles/ctable_test.dir/ctable_test.cc.o.d"
  "ctable_test"
  "ctable_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
