file(REMOVE_RECURSE
  "CMakeFiles/inference_property_test.dir/inference_property_test.cc.o"
  "CMakeFiles/inference_property_test.dir/inference_property_test.cc.o.d"
  "inference_property_test"
  "inference_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inference_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
