# Empty dependencies file for inference_property_test.
# This may be replaced when dependencies are built.
