file(REMOVE_RECURSE
  "CMakeFiles/record_replay_test.dir/record_replay_test.cc.o"
  "CMakeFiles/record_replay_test.dir/record_replay_test.cc.o.d"
  "record_replay_test"
  "record_replay_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/record_replay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
