file(REMOVE_RECURSE
  "CMakeFiles/bayescrowd_cli.dir/bayescrowd_cli.cc.o"
  "CMakeFiles/bayescrowd_cli.dir/bayescrowd_cli.cc.o.d"
  "bayescrowd_cli"
  "bayescrowd_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bayescrowd_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
