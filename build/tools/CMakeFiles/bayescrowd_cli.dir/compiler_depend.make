# Empty compiler generated dependencies file for bayescrowd_cli.
# This may be replaced when dependencies are built.
