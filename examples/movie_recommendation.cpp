// Movie recommendation: the paper's motivating scenario at scale.
//
// A catalogue of movies is rated by audiences; many ratings are missing
// because nobody watches everything. We want the skyline of movies —
// those not dominated on every rating dimension — and we may pay a crowd
// (here: simulated audience members who did watch the movie) to fill
// the decisive gaps.
//
// The example compares the three task-selection strategies (FBS, UBS,
// HHS) under one budget, reporting machine time, tasks, rounds and F1.
//
//   ./build/examples/movie_recommendation [num_movies] [missing_rate]

#include <cstdio>
#include <cstdlib>

#include "bayesnet/imputation.h"
#include "bayesnet/network.h"
#include "bayesnet/structure_learning.h"
#include "common/random.h"
#include "core/framework.h"
#include "crowd/platform.h"
#include "data/generators.h"
#include "data/missing.h"
#include "skyline/algorithms.h"
#include "skyline/metrics.h"

using namespace bayescrowd;  // Example code; the library never does this.

int main(int argc, char** argv) {
  const std::size_t num_movies =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 800;
  const double missing_rate = argc > 2 ? std::atof(argv[2]) : 0.1;

  // Audience ratings correlate (a good movie is rated well by most
  // audiences), which is exactly what the Bayesian network exploits.
  // 16 rating levels: fine enough that exact ties across all six
  // audiences (which Definition 1 cannot break) stay rare; noise 2.0
  // keeps correlation mild so the skyline has real contenders.
  const Table complete = MakeCorrelated(num_movies, /*d=*/6,
                                        /*levels=*/16, /*seed=*/2020,
                                        /*noise_scale=*/2.0);
  Rng rng(7);
  const Table incomplete =
      InjectMissingUniform(complete, missing_rate, rng);
  std::printf("catalogue: %zu movies x %zu audiences, %.0f%% ratings "
              "missing\n\n",
              incomplete.num_objects(), incomplete.num_attributes(),
              100.0 * incomplete.MissingRate());

  // Preprocessing: learn the Bayesian network from the incomplete data.
  StructureLearningOptions slo;
  slo.max_parents = 2;
  const auto dag = HillClimbStructure(incomplete, slo);
  BAYESCROWD_CHECK_OK(dag.status());
  auto net = BayesianNetwork::Create(incomplete.schema(), dag.value());
  BAYESCROWD_CHECK_OK(net.status());
  BAYESCROWD_CHECK_OK(net->FitParameters(incomplete));
  std::printf("learned Bayesian network: %zu edges\n\n",
              net->structure().num_edges());

  const auto truth = SkylineBnl(complete);
  BAYESCROWD_CHECK_OK(truth.status());
  std::printf("ground-truth skyline size: %zu\n\n", truth->size());

  std::printf("%-6s %10s %8s %8s %10s %10s %10s\n", "strat", "time(ms)",
              "tasks", "rounds", "precision", "recall", "F1");
  for (const StrategyKind kind :
       {StrategyKind::kFbs, StrategyKind::kUbs, StrategyKind::kHhs}) {
    BayesCrowdOptions options;
    options.ctable.alpha = 0.02;
    options.strategy.kind = kind;
    options.strategy.m = 15;
    options.budget = 100;
    options.latency = 5;
    BayesCrowd framework(options);

    BnPosteriorProvider posteriors(net.value(), incomplete);
    SimulatedCrowdPlatform platform(complete, {});
    const auto result = framework.Run(incomplete, posteriors, platform);
    BAYESCROWD_CHECK_OK(result.status());
    const auto metrics =
        EvaluateResultSet(result->result_objects, truth.value());
    std::printf("%-6s %10.1f %8zu %8zu %10.3f %10.3f %10.3f\n",
                StrategyKindToString(kind), result->total_seconds * 1e3,
                result->tasks_posted, result->rounds, metrics.precision,
                metrics.recall, metrics.f1);
  }

  std::printf("\nexpected shape: FBS fastest, UBS most accurate, HHS "
              "close to UBS at a fraction of the time.\n");
  return 0;
}
