// NBA scouting: BayesCrowd vs the CrowdSky baseline.
//
// A scout wants the skyline of player seasons over eleven stat
// categories. Two categories ("intangibles") are not in the box scores
// at all — every value must come from expert crowd judgement. This is
// exactly the CrowdSky setting (observed vs crowd attributes), so both
// systems can run head-to-head, reproducing the shape of the paper's
// Figure 4: BayesCrowd needs several times fewer tasks and rounds, with
// the gap widening as the roster grows (bench_fig4_crowdsky sweeps it).
//
//   ./build/examples/nba_scouting [num_players]

#include <cstdio>
#include <cstdlib>

#include "bayesnet/imputation.h"
#include "bayesnet/network.h"
#include "bayesnet/structure_learning.h"
#include "core/framework.h"
#include "crowd/platform.h"
#include "crowdsky/crowdsky.h"
#include "data/generators.h"
#include "data/missing.h"
#include "skyline/algorithms.h"
#include "skyline/metrics.h"

using namespace bayescrowd;  // Example code; the library never does this.

int main(int argc, char** argv) {
  const std::size_t num_players =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 600;

  const Table complete = MakeNbaLike(num_players, /*seed=*/1994);
  // The last two attributes become the crowd attributes.
  const std::size_t d = complete.num_attributes();
  std::vector<std::size_t> observed;
  for (std::size_t j = 0; j + 2 < d; ++j) observed.push_back(j);
  const std::vector<std::size_t> crowd = {d - 2, d - 1};
  const Table incomplete = InjectMissingAttributes(complete, crowd);

  std::printf("scouting %zu player seasons; attributes %zu observed + "
              "%zu crowd-only\n\n",
              num_players, observed.size(), crowd.size());

  const auto truth = SkylineBnl(complete);
  BAYESCROWD_CHECK_OK(truth.status());
  std::printf("true skyline size: %zu players\n\n", truth->size());

  std::printf("%-12s %10s %8s %8s %8s\n", "system", "time(ms)", "tasks",
              "rounds", "F1");

  // --- BayesCrowd (HHS) --------------------------------------------- //
  {
    StructureLearningOptions slo;
    slo.max_parents = 2;
    const auto dag = HillClimbStructure(incomplete, slo);
    BAYESCROWD_CHECK_OK(dag.status());
    auto net = BayesianNetwork::Create(incomplete.schema(), dag.value());
    BAYESCROWD_CHECK_OK(net.status());
    BAYESCROWD_CHECK_OK(net->FitParameters(incomplete));

    BayesCrowdOptions options;
    // With two fully-missing attributes dominator sets are large, so α
    // must allow a few dozen candidate dominators per object (the paper
    // notes large-|D| settings fit a larger α; here α·n = 30 as in the
    // paper's NBA default of 0.003 at 10,000 records).
    options.ctable.alpha = 0.05;
    options.strategy.kind = StrategyKind::kHhs;
    options.budget = 100000;  // Effectively unconstrained (Figure 4).
    options.latency = options.budget / 20;  // 20 tasks per round.
    BayesCrowd framework(options);
    BnPosteriorProvider posteriors(net.value(), incomplete);
    SimulatedCrowdPlatform platform(complete, {});
    const auto result = framework.Run(incomplete, posteriors, platform);
    BAYESCROWD_CHECK_OK(result.status());
    const auto metrics =
        EvaluateResultSet(result->result_objects, truth.value());
    std::printf("%-12s %10.1f %8zu %8zu %8.3f\n", "BayesCrowd",
                result->total_seconds * 1e3, result->tasks_posted,
                result->rounds, metrics.f1);
  }

  // --- CrowdSky ------------------------------------------------------ //
  {
    SimulatedCrowdPlatform platform(complete, {});
    const auto result =
        RunCrowdSky(incomplete, observed, crowd, platform,
                    {.tasks_per_round = 20});
    BAYESCROWD_CHECK_OK(result.status());
    const auto metrics = EvaluateResultSet(result->skyline, truth.value());
    std::printf("%-12s %10.1f %8zu %8zu %8.3f\n", "CrowdSky",
                result->seconds * 1e3, result->tasks_posted,
                result->rounds, metrics.f1);
  }

  std::printf("\nexpected shape: comparable F1, but CrowdSky buys "
              "several times more tasks and rounds (the gap grows "
              "with --num_players; see bench_fig4_crowdsky).\n");
  return 0;
}
