// Quickstart: the paper's running example, end to end.
//
// Walks the five-movie sample dataset (Table 1) through the whole
// BayesCrowd pipeline: dominator sets (Table 4), c-table construction
// (Table 3), probability computation (Example 3), and the crowdsourcing
// phase with the HHS strategy against a simulated crowd whose hidden
// ground truth matches Example 4's answers.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "bayesnet/imputation.h"
#include "core/framework.h"
#include "crowd/platform.h"
#include "ctable/builder.h"
#include "ctable/dominator.h"
#include "data/generators.h"
#include "probability/adpll.h"
#include "skyline/algorithms.h"
#include "skyline/metrics.h"

using namespace bayescrowd;  // Example code; the library never does this.

int main() {
  // ---------------------------------------------------------------- //
  // 1. The incomplete dataset (paper Table 1).
  // ---------------------------------------------------------------- //
  const Table incomplete = MakeSampleMovieDataset();
  std::printf("=== Sample dataset (missing cells marked '?') ===\n");
  for (std::size_t i = 0; i < incomplete.num_objects(); ++i) {
    std::printf("  %-18s", incomplete.object_name(i).c_str());
    for (std::size_t j = 0; j < incomplete.num_attributes(); ++j) {
      if (incomplete.IsMissing(i, j)) {
        std::printf("  ?");
      } else {
        std::printf("  %d", incomplete.At(i, j));
      }
    }
    std::printf("\n");
  }

  // ---------------------------------------------------------------- //
  // 2. Dominator sets (paper Table 4).
  // ---------------------------------------------------------------- //
  const auto sets = ComputeDominatorSets(incomplete, /*alpha=*/-1.0);
  BAYESCROWD_CHECK_OK(sets.status());
  std::printf("\n=== Dominator sets (Definition 5) ===\n");
  for (std::size_t i = 0; i < incomplete.num_objects(); ++i) {
    std::printf("  D(%s) = {", incomplete.object_name(i).c_str());
    for (std::size_t k = 0; k < sets->dominators[i].size(); ++k) {
      std::printf("%s%s", k > 0 ? ", " : "",
                  incomplete.object_name(sets->dominators[i][k]).c_str());
    }
    std::printf("}\n");
  }

  // ---------------------------------------------------------------- //
  // 3. The c-table (paper Table 3).
  // ---------------------------------------------------------------- //
  const auto ctable = BuildCTable(incomplete, {.alpha = -1.0});
  BAYESCROWD_CHECK_OK(ctable.status());
  std::printf("\n=== C-table conditions (Definition 3) ===\n");
  for (std::size_t i = 0; i < incomplete.num_objects(); ++i) {
    std::printf("  phi(%s) = %s\n", incomplete.object_name(i).c_str(),
                ctable->condition(i).ToString(incomplete).c_str());
  }

  // ---------------------------------------------------------------- //
  // 4. Probability computation with ADPLL (paper Example 3).
  // ---------------------------------------------------------------- //
  DistributionMap dists;
  const auto marginals = SampleMovieDistributions();
  for (const CellRef& cell : incomplete.MissingCells()) {
    BAYESCROWD_CHECK_OK(dists.Set(cell, marginals[cell.attribute]));
  }
  std::printf("\n=== Pr(phi(o)) via ADPLL (Example 3) ===\n");
  for (std::size_t i = 0; i < incomplete.num_objects(); ++i) {
    const auto p = AdpllProbability(ctable->condition(i), dists);
    BAYESCROWD_CHECK_OK(p.status());
    std::printf("  Pr(phi(%s)) = %.3f\n",
                incomplete.object_name(i).c_str(), p.value());
  }

  // ---------------------------------------------------------------- //
  // 5. The crowdsourcing phase (paper Example 4): budget 6, latency 3,
  //    HHS with m = 2, perfect simulated workers.
  // ---------------------------------------------------------------- //
  const Table ground_truth = MakeSampleMovieGroundTruth();
  BayesCrowdOptions options;
  options.ctable.alpha = -1.0;
  options.strategy.kind = StrategyKind::kHhs;
  options.strategy.m = 2;
  options.budget = 6;
  options.latency = 3;
  BayesCrowd framework(options);

  FixedMarginalsProvider posteriors(SampleMovieDistributions());
  SimulatedCrowdPlatform platform(ground_truth, {});
  const auto result = framework.Run(incomplete, posteriors, platform);
  BAYESCROWD_CHECK_OK(result.status());

  std::printf("\n=== Crowdsourcing phase (HHS, B=6, L=3) ===\n");
  std::printf("  tasks posted: %zu across %zu rounds\n",
              result->tasks_posted, result->rounds);
  std::printf("  final conditions:\n");
  for (std::size_t i = 0; i < incomplete.num_objects(); ++i) {
    std::printf("    phi(%s) = %s   (Pr = %.3f)\n",
                incomplete.object_name(i).c_str(),
                result->final_ctable.condition(i).ToString(incomplete).c_str(),
                result->probabilities[i]);
  }

  std::printf("  skyline answer: ");
  for (std::size_t id : result->result_objects) {
    std::printf("%s  ", incomplete.object_name(id).c_str());
  }
  std::printf("\n");

  // ---------------------------------------------------------------- //
  // 6. Verify against the complete-data ground truth.
  // ---------------------------------------------------------------- //
  const auto truth = SkylineBnl(ground_truth);
  BAYESCROWD_CHECK_OK(truth.status());
  const auto metrics = EvaluateResultSet(result->result_objects,
                                         truth.value());
  std::printf("\n=== Accuracy vs complete-data skyline ===\n");
  std::printf("  precision = %.3f, recall = %.3f, F1 = %.3f\n",
              metrics.precision, metrics.recall, metrics.f1);
  return 0;
}
