// Resumable crowdsourcing: pause a query, keep the answers, continue
// later — without serializing any framework state.
//
// BayesCrowd is deterministic, so replaying the already-bought answers
// through a ReplayingPlatform reconstructs the interrupted session
// exactly, and the live platform is only charged for the remaining
// tasks. This example simulates the three steps a real deployment would
// take across process restarts (the CLI exposes the same flow as
// `run --record F` / `run --replay-from F`).
//
//   ./build/examples/resumable_session

#include <cstdio>

#include "bayesnet/imputation.h"
#include "common/random.h"
#include "core/framework.h"
#include "crowd/platform.h"
#include "crowd/record_replay.h"
#include "data/generators.h"
#include "data/missing.h"
#include "skyline/algorithms.h"
#include "skyline/metrics.h"

using namespace bayescrowd;  // Example code; the library never does this.

int main() {
  const Table complete = MakeNbaLike(400, /*seed=*/2026, /*levels=*/8);
  Rng rng(5);
  const Table incomplete = InjectMissingUniform(complete, 0.1, rng);
  UniformPosteriorProvider posteriors(incomplete.schema());

  // The batch size must stay constant across sessions: task selection
  // adapts to each round's answers, so the replayed batches only line
  // up when ceil(budget / latency) does.
  constexpr std::size_t kTasksPerRound = 6;

  const auto options_for = [](std::size_t budget) {
    BayesCrowdOptions options;
    options.ctable.alpha = 0.1;
    options.budget = budget;
    options.latency =
        (budget + kTasksPerRound - 1) / kTasksPerRound;
    return options;
  };

  // --- Session 1: spend a third of the budget, then "walk away". ----- //
  AnswerLog saved_log;
  {
    SimulatedCrowdPlatform live(complete, {});
    RecordingPlatform recorder(live);
    BayesCrowd framework(options_for(30));
    const auto result = framework.Run(incomplete, posteriors, recorder);
    BAYESCROWD_CHECK_OK(result.status());
    saved_log = recorder.log();
    std::printf("session 1: spent %zu tasks over %zu rounds; transcript "
                "saved (%zu answers)\n",
                result->tasks_posted, result->rounds,
                saved_log.entries.size());
  }

  // In a real deployment the transcript would go to disk here:
  //   SaveAnswerLog(saved_log, "answers.log");
  const std::string serialized = SerializeAnswerLog(saved_log);
  const auto restored = ParseAnswerLog(serialized);
  BAYESCROWD_CHECK_OK(restored.status());

  // --- Session 2: resume with the full budget. ----------------------- //
  std::size_t resumed_tasks = 0;
  std::vector<std::size_t> resumed_answer;
  {
    SimulatedCrowdPlatform live(complete, {});
    ReplayingPlatform replay(restored.value(), &live);
    BayesCrowd framework(options_for(90));
    const auto result = framework.Run(incomplete, posteriors, replay);
    BAYESCROWD_CHECK_OK(result.status());
    resumed_tasks = result->tasks_posted;
    resumed_answer = result->result_objects;
    std::printf("session 2: replayed %zu answers, bought %zu new tasks "
                "(total %zu)\n",
                replay.replayed(), live.total_tasks(),
                result->tasks_posted);
  }

  // --- Reference: one uninterrupted run with the full budget. -------- //
  {
    SimulatedCrowdPlatform live(complete, {});
    BayesCrowd framework(options_for(90));
    const auto result = framework.Run(incomplete, posteriors, live);
    BAYESCROWD_CHECK_OK(result.status());
    const bool identical = result->result_objects == resumed_answer &&
                           result->tasks_posted == resumed_tasks;
    std::printf("reference:  %zu tasks, answers %s the resumed run\n",
                result->tasks_posted,
                identical ? "IDENTICAL to" : "DIFFER from");

    const auto truth = SkylineBnl(complete);
    BAYESCROWD_CHECK_OK(truth.status());
    std::printf("F1 vs ground truth: %.3f\n",
                EvaluateResultSet(resumed_answer, truth.value()).f1);
    return identical ? 0 : 1;
  }
}
