// Sensor-network monitoring: the value of modeling data correlation.
//
// A fleet of environmental stations reports correlated readings
// (upstream temperature predicts downstream temperature, etc.), but
// unstable radio links drop a fraction of the values — one of the
// paper's motivating sources of incompleteness. Operators can call a
// station crew (the "crowd") to read instruments on site, at a cost.
//
// The example runs BayesCrowd twice with the same budget: once with the
// learned Bayesian-network posteriors and once with the zero-knowledge
// uniform prior, showing how correlation awareness improves both the
// machine answer and the value bought per task.
//
//   ./build/examples/sensor_monitoring [num_stations] [missing_rate]

#include <cstdio>
#include <cstdlib>

#include "bayesnet/imputation.h"
#include "bayesnet/network.h"
#include "bayesnet/structure_learning.h"
#include "common/random.h"
#include "core/framework.h"
#include "crowd/platform.h"
#include "data/generators.h"
#include "data/missing.h"
#include "skyline/algorithms.h"
#include "skyline/metrics.h"

using namespace bayescrowd;  // Example code; the library never does this.

int main(int argc, char** argv) {
  const std::size_t num_stations =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 500;
  const double missing_rate = argc > 2 ? std::atof(argv[2]) : 0.15;

  // Correlated station profile: 9 attributes generated from a chain-like
  // dependency structure (the Adult-like generator's hand-built BN).
  const Table complete = MakeAdultLike(num_stations, /*seed=*/808);
  Rng rng(17);
  const Table incomplete =
      InjectMissingUniform(complete, missing_rate, rng);
  std::printf("%zu stations x %zu channels, %.0f%% readings lost\n\n",
              incomplete.num_objects(), incomplete.num_attributes(),
              100.0 * incomplete.MissingRate());

  const auto truth = SkylineBnl(complete);
  BAYESCROWD_CHECK_OK(truth.status());
  std::printf("true skyline (best stations): %zu\n\n", truth->size());

  // Learn the correlation model from the incomplete data itself.
  const auto dag = ChowLiuStructure(incomplete);
  BAYESCROWD_CHECK_OK(dag.status());
  auto net = BayesianNetwork::Create(incomplete.schema(), dag.value());
  BAYESCROWD_CHECK_OK(net.status());
  BAYESCROWD_CHECK_OK(net->FitParameters(incomplete));

  std::printf("%-18s %8s %8s %10s %10s %10s\n", "prior", "tasks",
              "rounds", "precision", "recall", "F1");
  for (const bool use_bn : {true, false}) {
    BayesCrowdOptions options;
    options.ctable.alpha = 0.05;
    options.strategy.kind = StrategyKind::kHhs;
    options.budget = 60;
    options.latency = 4;
    BayesCrowd framework(options);

    BnPosteriorProvider bn_posteriors(net.value(), incomplete);
    UniformPosteriorProvider uniform_posteriors(incomplete.schema());
    PosteriorProvider& posteriors =
        use_bn ? static_cast<PosteriorProvider&>(bn_posteriors)
               : static_cast<PosteriorProvider&>(uniform_posteriors);

    SimulatedCrowdPlatform platform(complete, {});
    const auto result = framework.Run(incomplete, posteriors, platform);
    BAYESCROWD_CHECK_OK(result.status());
    const auto metrics =
        EvaluateResultSet(result->result_objects, truth.value());
    std::printf("%-18s %8zu %8zu %10.3f %10.3f %10.3f\n",
                use_bn ? "bayesian-network" : "uniform",
                result->tasks_posted, result->rounds, metrics.precision,
                metrics.recall, metrics.f1);
  }

  std::printf("\nexpected shape: the Bayesian-network prior spends the "
              "same budget on better-chosen tasks and scores a higher "
              "F1.\n");
  return 0;
}
