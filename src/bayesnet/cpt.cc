#include "bayesnet/cpt.h"

#include <cassert>
#include <cmath>

#include "common/string_util.h"

namespace bayescrowd {

Cpt::Cpt(std::size_t node, Level cardinality,
         std::vector<std::size_t> parents,
         std::vector<Level> parent_cardinalities)
    : node_(node),
      cardinality_(cardinality),
      parents_(std::move(parents)),
      parent_cards_(std::move(parent_cardinalities)) {
  assert(parents_.size() == parent_cards_.size());
  for (Level card : parent_cards_) {
    num_configs_ *= static_cast<std::size_t>(card);
  }
  probs_.assign(num_configs_ * static_cast<std::size_t>(cardinality_),
                1.0 / static_cast<double>(cardinality_));
}

std::size_t Cpt::ConfigIndex(const std::vector<Level>& parent_values) const {
  assert(parent_values.size() == parents_.size());
  std::size_t index = 0;
  for (std::size_t i = 0; i < parents_.size(); ++i) {
    assert(parent_values[i] >= 0 && parent_values[i] < parent_cards_[i]);
    index = index * static_cast<std::size_t>(parent_cards_[i]) +
            static_cast<std::size_t>(parent_values[i]);
  }
  return index;
}

std::vector<double> Cpt::Distribution(std::size_t config) const {
  const auto card = static_cast<std::size_t>(cardinality_);
  std::vector<double> out(card);
  for (std::size_t v = 0; v < card; ++v) {
    out[v] = probs_[config * card + v];
  }
  return out;
}

void Cpt::ClearCounts() {
  probs_.assign(probs_.size(), 0.0);
}

void Cpt::AddCount(Level value, std::size_t config, double weight) {
  probs_[config * static_cast<std::size_t>(cardinality_) +
         static_cast<std::size_t>(value)] += weight;
}

void Cpt::NormalizeWithPrior(double alpha) {
  const auto card = static_cast<std::size_t>(cardinality_);
  for (std::size_t c = 0; c < num_configs_; ++c) {
    double total = 0.0;
    for (std::size_t v = 0; v < card; ++v) {
      total += probs_[c * card + v] + alpha;
    }
    for (std::size_t v = 0; v < card; ++v) {
      probs_[c * card + v] = (probs_[c * card + v] + alpha) / total;
    }
  }
}

Status Cpt::SetDistribution(std::size_t config,
                            const std::vector<double>& probabilities) {
  const auto card = static_cast<std::size_t>(cardinality_);
  if (config >= num_configs_) {
    return Status::OutOfRange("parent configuration out of range");
  }
  if (probabilities.size() != card) {
    return Status::InvalidArgument("distribution size mismatch");
  }
  double total = 0.0;
  for (double p : probabilities) {
    if (p < 0.0 || std::isnan(p)) {
      return Status::InvalidArgument("negative or NaN probability");
    }
    total += p;
  }
  if (std::abs(total - 1.0) > 1e-6) {
    return Status::InvalidArgument(
        StrFormat("distribution sums to %f, expected 1", total));
  }
  for (std::size_t v = 0; v < card; ++v) {
    probs_[config * card + v] = probabilities[v];
  }
  return Status::OK();
}

Level Cpt::Sample(std::size_t config, Rng& rng) const {
  const auto card = static_cast<std::size_t>(cardinality_);
  double target = rng.NextDouble();
  for (std::size_t v = 0; v < card; ++v) {
    target -= probs_[config * card + v];
    if (target < 0.0) return static_cast<Level>(v);
  }
  return cardinality_ - 1;
}

}  // namespace bayescrowd
