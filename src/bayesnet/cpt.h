// Conditional probability table P(X | Parents(X)) for one node of a
// discrete Bayesian network.

#ifndef BAYESCROWD_BAYESNET_CPT_H_
#define BAYESCROWD_BAYESNET_CPT_H_

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "data/value.h"

namespace bayescrowd {

/// CPT storage: for each parent configuration (mixed-radix index over the
/// parents in their stored order), a normalized distribution over the
/// node's own domain.
class Cpt {
 public:
  Cpt() = default;

  /// `parent_cardinalities[i]` is the domain size of parents[i];
  /// `cardinality` the node's own domain size. Probabilities start
  /// uniform.
  Cpt(std::size_t node, Level cardinality, std::vector<std::size_t> parents,
      std::vector<Level> parent_cardinalities);

  std::size_t node() const { return node_; }
  Level cardinality() const { return cardinality_; }
  const std::vector<std::size_t>& parents() const { return parents_; }
  std::size_t num_parent_configs() const { return num_configs_; }

  /// Mixed-radix index of a full parent assignment. `parent_values[i]`
  /// corresponds to parents()[i].
  std::size_t ConfigIndex(const std::vector<Level>& parent_values) const;

  double Prob(Level value, std::size_t config) const {
    return probs_[config * static_cast<std::size_t>(cardinality_) +
                  static_cast<std::size_t>(value)];
  }

  /// Distribution over the node's values for one parent configuration.
  std::vector<double> Distribution(std::size_t config) const;

  /// Resets the table to all-zero counts; call before a fitting pass of
  /// AddCount() + NormalizeWithPrior().
  void ClearCounts();

  /// Accumulates one observation (used by the fitting code).
  void AddCount(Level value, std::size_t config, double weight = 1.0);

  /// Converts accumulated counts to probabilities with a symmetric
  /// Dirichlet prior of strength `alpha` per cell.
  void NormalizeWithPrior(double alpha);

  /// Overwrites one parent configuration's distribution (must be
  /// normalized; used by deserialization).
  Status SetDistribution(std::size_t config,
                         const std::vector<double>& probabilities);

  /// Draws a value given a parent configuration.
  Level Sample(std::size_t config, Rng& rng) const;

 private:
  std::size_t node_ = 0;
  Level cardinality_ = 0;
  std::vector<std::size_t> parents_;
  std::vector<Level> parent_cards_;
  std::size_t num_configs_ = 1;
  std::vector<double> probs_;  // counts during fitting, probs after.
};

}  // namespace bayescrowd

#endif  // BAYESCROWD_BAYESNET_CPT_H_
