#include "bayesnet/dag.h"

#include <algorithm>

#include "common/string_util.h"

namespace bayescrowd {

bool Dag::HasEdge(std::size_t from, std::size_t to) const {
  const auto& ch = children_[from];
  return std::find(ch.begin(), ch.end(), to) != ch.end();
}

bool Dag::Reaches(std::size_t start, std::size_t target) const {
  if (start == target) return true;
  std::vector<bool> visited(num_nodes(), false);
  std::vector<std::size_t> stack = {start};
  visited[start] = true;
  while (!stack.empty()) {
    const std::size_t node = stack.back();
    stack.pop_back();
    for (std::size_t child : children_[node]) {
      if (child == target) return true;
      if (!visited[child]) {
        visited[child] = true;
        stack.push_back(child);
      }
    }
  }
  return false;
}

bool Dag::CanAddEdge(std::size_t from, std::size_t to) const {
  if (from == to || HasEdge(from, to)) return false;
  // from -> to creates a cycle iff to already reaches from.
  return !Reaches(to, from);
}

Status Dag::AddEdge(std::size_t from, std::size_t to) {
  if (from >= num_nodes() || to >= num_nodes()) {
    return Status::OutOfRange("edge endpoint out of range");
  }
  if (from == to) return Status::InvalidArgument("self-loop");
  if (HasEdge(from, to)) {
    return Status::AlreadyExists(
        StrFormat("edge %zu->%zu already present", from, to));
  }
  if (Reaches(to, from)) {
    return Status::FailedPrecondition(
        StrFormat("edge %zu->%zu would create a cycle", from, to));
  }
  children_[from].push_back(to);
  parents_[to].push_back(from);
  return Status::OK();
}

Status Dag::RemoveEdge(std::size_t from, std::size_t to) {
  auto& ch = children_[from];
  const auto cit = std::find(ch.begin(), ch.end(), to);
  if (cit == ch.end()) {
    return Status::NotFound(StrFormat("edge %zu->%zu absent", from, to));
  }
  ch.erase(cit);
  auto& pa = parents_[to];
  pa.erase(std::find(pa.begin(), pa.end(), from));
  return Status::OK();
}

std::size_t Dag::num_edges() const {
  std::size_t total = 0;
  for (const auto& ch : children_) total += ch.size();
  return total;
}

std::vector<std::size_t> Dag::TopologicalOrder() const {
  std::vector<std::size_t> in_degree(num_nodes());
  for (std::size_t v = 0; v < num_nodes(); ++v) {
    in_degree[v] = parents_[v].size();
  }
  std::vector<std::size_t> ready;
  for (std::size_t v = 0; v < num_nodes(); ++v) {
    if (in_degree[v] == 0) ready.push_back(v);
  }
  std::vector<std::size_t> order;
  order.reserve(num_nodes());
  while (!ready.empty()) {
    const std::size_t node = ready.back();
    ready.pop_back();
    order.push_back(node);
    for (std::size_t child : children_[node]) {
      if (--in_degree[child] == 0) ready.push_back(child);
    }
  }
  return order;  // Size == num_nodes() by the acyclicity invariant.
}

std::vector<std::pair<std::size_t, std::size_t>> Dag::Edges() const {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  out.reserve(num_edges());
  for (std::size_t from = 0; from < num_nodes(); ++from) {
    for (std::size_t to : children_[from]) out.emplace_back(from, to);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace bayescrowd
