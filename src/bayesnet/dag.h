// Directed acyclic graph over attribute indices, the structural half of
// a Bayesian network.

#ifndef BAYESCROWD_BAYESNET_DAG_H_
#define BAYESCROWD_BAYESNET_DAG_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace bayescrowd {

/// A simple adjacency-list DAG. Edges are parent -> child. All mutating
/// operations preserve acyclicity (AddEdge fails rather than creating a
/// cycle).
class Dag {
 public:
  Dag() = default;
  explicit Dag(std::size_t num_nodes)
      : parents_(num_nodes), children_(num_nodes) {}

  std::size_t num_nodes() const { return parents_.size(); }

  const std::vector<std::size_t>& parents(std::size_t node) const {
    return parents_[node];
  }
  const std::vector<std::size_t>& children(std::size_t node) const {
    return children_[node];
  }

  bool HasEdge(std::size_t from, std::size_t to) const;

  /// Adds from -> to; fails if it already exists or would create a cycle
  /// (including self-loops).
  Status AddEdge(std::size_t from, std::size_t to);

  /// Removes from -> to; fails if absent.
  Status RemoveEdge(std::size_t from, std::size_t to);

  /// True if adding from -> to keeps the graph acyclic (edge absent).
  bool CanAddEdge(std::size_t from, std::size_t to) const;

  std::size_t num_edges() const;

  /// Nodes in an order where every parent precedes its children.
  std::vector<std::size_t> TopologicalOrder() const;

  /// All (from, to) edges, lexicographic.
  std::vector<std::pair<std::size_t, std::size_t>> Edges() const;

 private:
  // True if `target` is reachable from `start` by directed edges.
  bool Reaches(std::size_t start, std::size_t target) const;

  std::vector<std::vector<std::size_t>> parents_;
  std::vector<std::vector<std::size_t>> children_;
};

}  // namespace bayescrowd

#endif  // BAYESCROWD_BAYESNET_DAG_H_
