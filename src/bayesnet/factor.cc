#include "bayesnet/factor.h"

#include <algorithm>
#include <cassert>

namespace bayescrowd {

Factor::Factor(std::vector<std::size_t> variables,
               std::vector<Level> cardinalities)
    : variables_(std::move(variables)), cards_(std::move(cardinalities)) {
  assert(variables_.size() == cards_.size());
  assert(std::is_sorted(variables_.begin(), variables_.end()));
  std::size_t total = 1;
  for (Level c : cards_) total *= static_cast<std::size_t>(c);
  values_.assign(total, 0.0);
}

std::size_t Factor::IndexOf(const std::vector<Level>& assignment) const {
  assert(assignment.size() == variables_.size());
  std::size_t index = 0;
  for (std::size_t i = 0; i < variables_.size(); ++i) {
    index = index * static_cast<std::size_t>(cards_[i]) +
            static_cast<std::size_t>(assignment[i]);
  }
  return index;
}

std::vector<Level> Factor::AssignmentOf(std::size_t flat_index) const {
  std::vector<Level> assignment(variables_.size());
  for (std::size_t i = variables_.size(); i-- > 0;) {
    const auto card = static_cast<std::size_t>(cards_[i]);
    assignment[i] = static_cast<Level>(flat_index % card);
    flat_index /= card;
  }
  return assignment;
}

bool Factor::ContainsVariable(std::size_t variable) const {
  return std::binary_search(variables_.begin(), variables_.end(), variable);
}

Factor Factor::Product(const Factor& a, const Factor& b) {
  // Union scope, sorted.
  std::vector<std::size_t> vars;
  std::vector<Level> cards;
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < a.variables_.size() || ib < b.variables_.size()) {
    if (ib == b.variables_.size() ||
        (ia < a.variables_.size() && a.variables_[ia] < b.variables_[ib])) {
      vars.push_back(a.variables_[ia]);
      cards.push_back(a.cards_[ia]);
      ++ia;
    } else if (ia == a.variables_.size() ||
               b.variables_[ib] < a.variables_[ia]) {
      vars.push_back(b.variables_[ib]);
      cards.push_back(b.cards_[ib]);
      ++ib;
    } else {
      assert(a.cards_[ia] == b.cards_[ib]);
      vars.push_back(a.variables_[ia]);
      cards.push_back(a.cards_[ia]);
      ++ia;
      ++ib;
    }
  }
  Factor out(vars, cards);

  // Position of each output variable inside a's and b's scopes (or npos).
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> a_pos(vars.size(), kNone);
  std::vector<std::size_t> b_pos(vars.size(), kNone);
  for (std::size_t i = 0; i < vars.size(); ++i) {
    const auto ait =
        std::lower_bound(a.variables_.begin(), a.variables_.end(), vars[i]);
    if (ait != a.variables_.end() && *ait == vars[i]) {
      a_pos[i] = static_cast<std::size_t>(ait - a.variables_.begin());
    }
    const auto bit =
        std::lower_bound(b.variables_.begin(), b.variables_.end(), vars[i]);
    if (bit != b.variables_.end() && *bit == vars[i]) {
      b_pos[i] = static_cast<std::size_t>(bit - b.variables_.begin());
    }
  }

  std::vector<Level> assignment(vars.size(), 0);
  std::vector<Level> a_assign(a.variables_.size());
  std::vector<Level> b_assign(b.variables_.size());
  for (std::size_t flat = 0; flat < out.values_.size(); ++flat) {
    const std::vector<Level> asg = out.AssignmentOf(flat);
    for (std::size_t i = 0; i < vars.size(); ++i) {
      if (a_pos[i] != kNone) a_assign[a_pos[i]] = asg[i];
      if (b_pos[i] != kNone) b_assign[b_pos[i]] = asg[i];
    }
    out.values_[flat] = a.values_[a.IndexOf(a_assign)] *
                        b.values_[b.IndexOf(b_assign)];
  }
  return out;
}

Factor Factor::Marginalize(std::size_t variable) const {
  const auto it =
      std::lower_bound(variables_.begin(), variables_.end(), variable);
  assert(it != variables_.end() && *it == variable);
  const auto pos = static_cast<std::size_t>(it - variables_.begin());

  std::vector<std::size_t> vars = variables_;
  std::vector<Level> cards = cards_;
  vars.erase(vars.begin() + static_cast<std::ptrdiff_t>(pos));
  cards.erase(cards.begin() + static_cast<std::ptrdiff_t>(pos));
  Factor out(vars, cards);

  for (std::size_t flat = 0; flat < values_.size(); ++flat) {
    std::vector<Level> asg = AssignmentOf(flat);
    asg.erase(asg.begin() + static_cast<std::ptrdiff_t>(pos));
    out.values_[out.IndexOf(asg)] += values_[flat];
  }
  return out;
}

Factor Factor::Reduce(std::size_t variable, Level value) const {
  const auto it =
      std::lower_bound(variables_.begin(), variables_.end(), variable);
  assert(it != variables_.end() && *it == variable);
  const auto pos = static_cast<std::size_t>(it - variables_.begin());

  std::vector<std::size_t> vars = variables_;
  std::vector<Level> cards = cards_;
  vars.erase(vars.begin() + static_cast<std::ptrdiff_t>(pos));
  cards.erase(cards.begin() + static_cast<std::ptrdiff_t>(pos));
  Factor out(vars, cards);

  for (std::size_t flat = 0; flat < out.values_.size(); ++flat) {
    std::vector<Level> asg = out.AssignmentOf(flat);
    asg.insert(asg.begin() + static_cast<std::ptrdiff_t>(pos), value);
    out.values_[flat] = values_[IndexOf(asg)];
  }
  return out;
}

void Factor::Normalize() {
  double total = 0.0;
  for (double v : values_) total += v;
  if (total <= 0.0) {
    const double uniform = 1.0 / static_cast<double>(values_.size());
    for (double& v : values_) v = uniform;
    return;
  }
  for (double& v : values_) v /= total;
}

}  // namespace bayescrowd
