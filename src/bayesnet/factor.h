// Factor: a non-negative function over an ordered subset of discrete
// variables, the workhorse of variable-elimination inference.

#ifndef BAYESCROWD_BAYESNET_FACTOR_H_
#define BAYESCROWD_BAYESNET_FACTOR_H_

#include <cstddef>
#include <vector>

#include "data/value.h"

namespace bayescrowd {

/// Dense tabular factor. Variables are identified by node index and kept
/// sorted ascending; values are stored with the *last* variable varying
/// fastest (row-major in variable order).
class Factor {
 public:
  Factor() = default;

  /// `cardinalities[i]` is the domain size of variables[i]. `variables`
  /// must be sorted ascending and duplicate-free. Values start at zero.
  Factor(std::vector<std::size_t> variables,
         std::vector<Level> cardinalities);

  const std::vector<std::size_t>& variables() const { return variables_; }
  const std::vector<Level>& cardinalities() const { return cards_; }
  std::size_t size() const { return values_.size(); }

  double& At(std::size_t flat_index) { return values_[flat_index]; }
  double At(std::size_t flat_index) const { return values_[flat_index]; }

  /// Flat index of an assignment (one level per variable, in variable
  /// order).
  std::size_t IndexOf(const std::vector<Level>& assignment) const;

  /// Decodes a flat index into per-variable levels.
  std::vector<Level> AssignmentOf(std::size_t flat_index) const;

  /// Pointwise product. The result's scope is the union of scopes.
  static Factor Product(const Factor& a, const Factor& b);

  /// Sums out `variable` (which must be in scope).
  Factor Marginalize(std::size_t variable) const;

  /// Restricts `variable` to `value` and drops it from the scope.
  Factor Reduce(std::size_t variable, Level value) const;

  /// Scales so entries sum to one; a uniform factor results if the total
  /// is zero (degenerate evidence).
  void Normalize();

  bool ContainsVariable(std::size_t variable) const;

 private:
  std::vector<std::size_t> variables_;  // sorted ascending
  std::vector<Level> cards_;
  std::vector<double> values_;
};

}  // namespace bayescrowd

#endif  // BAYESCROWD_BAYESNET_FACTOR_H_
