#include "bayesnet/imputation.h"

#include "common/string_util.h"

namespace bayescrowd {

Result<std::vector<double>> BnPosteriorProvider::Posterior(
    const CellRef& cell) {
  const auto it = cache_.find(cell);
  if (it != cache_.end()) return it->second;

  if (cell.object >= table_.num_objects() ||
      cell.attribute >= table_.num_attributes()) {
    return Status::OutOfRange("cell outside table");
  }
  if (!table_.IsMissing(cell.object, cell.attribute)) {
    return Status::InvalidArgument(StrFormat(
        "cell (%zu, %zu) is observed, not missing", cell.object,
        cell.attribute));
  }

  Evidence evidence;
  for (std::size_t j = 0; j < table_.num_attributes(); ++j) {
    if (j == cell.attribute) continue;
    const Level v = table_.At(cell.object, j);
    if (!IsMissingLevel(v)) evidence[j] = v;
  }
  BAYESCROWD_ASSIGN_OR_RETURN(
      std::vector<double> posterior,
      VariableElimination(network_, evidence, cell.attribute));
  cache_.emplace(cell, posterior);
  return posterior;
}

Result<std::vector<double>> FixedMarginalsProvider::Posterior(
    const CellRef& cell) {
  if (cell.attribute >= marginals_.size()) {
    return Status::OutOfRange("attribute outside marginals");
  }
  return marginals_[cell.attribute];
}

Result<std::vector<double>> UniformPosteriorProvider::Posterior(
    const CellRef& cell) {
  if (cell.attribute >= schema_.num_attributes()) {
    return Status::OutOfRange("attribute outside schema");
  }
  const auto card =
      static_cast<std::size_t>(schema_.domain_size(cell.attribute));
  return std::vector<double>(card, 1.0 / static_cast<double>(card));
}

}  // namespace bayescrowd
