// Per-cell posterior distributions for missing values.
//
// This is the output of BayesCrowd's preprocessing step: for each missing
// cell Var(o, a), the distribution P(a | observed attributes of o) under
// the learned Bayesian network. The PosteriorProvider interface decouples
// consumers (the probability evaluator, task-utility computation) from
// how the distribution is obtained, so tests can plug in the fixed
// marginals of the paper's Example 3.

#ifndef BAYESCROWD_BAYESNET_IMPUTATION_H_
#define BAYESCROWD_BAYESNET_IMPUTATION_H_

#include <map>
#include <vector>

#include "bayesnet/inference.h"
#include "bayesnet/network.h"
#include "common/result.h"
#include "data/table.h"

namespace bayescrowd {

/// Source of value distributions for missing cells.
class PosteriorProvider {
 public:
  virtual ~PosteriorProvider() = default;

  /// Normalized distribution over the attribute domain of `cell`.
  virtual Result<std::vector<double>> Posterior(const CellRef& cell) = 0;
};

/// Bayesian-network-backed provider: P(attribute | row's observed cells),
/// computed by exact variable elimination and memoized per cell.
class BnPosteriorProvider : public PosteriorProvider {
 public:
  /// Both references must outlive the provider. `incomplete` is the
  /// queried table whose missing cells will be asked about.
  BnPosteriorProvider(const BayesianNetwork& network, const Table& incomplete)
      : network_(network), table_(incomplete) {}

  Result<std::vector<double>> Posterior(const CellRef& cell) override;

 private:
  const BayesianNetwork& network_;
  const Table& table_;
  std::map<CellRef, std::vector<double>> cache_;
};

/// Fixed per-attribute marginals, independent of the object (used by
/// tests and the paper's worked examples).
class FixedMarginalsProvider : public PosteriorProvider {
 public:
  /// `marginals[j]` is the distribution of attribute j; must be
  /// normalized and sized to the attribute domain.
  explicit FixedMarginalsProvider(std::vector<std::vector<double>> marginals)
      : marginals_(std::move(marginals)) {}

  Result<std::vector<double>> Posterior(const CellRef& cell) override;

 private:
  std::vector<std::vector<double>> marginals_;
};

/// Uniform distributions over each attribute domain (the zero-knowledge
/// baseline: "no prior knowledge on the missing values").
class UniformPosteriorProvider : public PosteriorProvider {
 public:
  explicit UniformPosteriorProvider(const Schema& schema)
      : schema_(schema) {}

  Result<std::vector<double>> Posterior(const CellRef& cell) override;

 private:
  Schema schema_;
};

}  // namespace bayescrowd

#endif  // BAYESCROWD_BAYESNET_IMPUTATION_H_
