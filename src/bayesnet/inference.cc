#include "bayesnet/inference.h"

#include <algorithm>
#include <set>

#include "bayesnet/factor.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace bayescrowd {
namespace {

// Inference sits below the framework layer, so its counters live in the
// process-wide registry. Handles are resolved once per process; the
// per-event cost is one relaxed atomic add.
obs::Counter* FactorProducts() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Default().GetCounter("bayesnet.factor_products");
  return counter;
}

obs::Counter* Marginalizations() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Default().GetCounter(
          "bayesnet.marginalizations");
  return counter;
}

obs::Counter* VeQueries() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Default().GetCounter("bayesnet.ve_queries");
  return counter;
}

obs::Counter* LwSamples() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Default().GetCounter("bayesnet.lw_samples");
  return counter;
}

obs::Counter* GibbsSweeps() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Default().GetCounter("bayesnet.gibbs_sweeps");
  return counter;
}

// Builds the CPT of `node` as a factor over {node} ∪ parents(node).
Factor CptFactor(const BayesianNetwork& net, std::size_t node) {
  const Cpt& cpt = net.cpt(node);
  std::vector<std::size_t> vars = cpt.parents();
  vars.push_back(node);
  std::sort(vars.begin(), vars.end());
  std::vector<Level> cards;
  cards.reserve(vars.size());
  for (std::size_t v : vars) cards.push_back(net.schema().domain_size(v));
  Factor factor(vars, cards);

  // Enumerate all assignments of the factor scope and fill from the CPT.
  std::vector<Level> parent_values(cpt.parents().size());
  for (std::size_t flat = 0; flat < factor.size(); ++flat) {
    const std::vector<Level> asg = factor.AssignmentOf(flat);
    Level node_value = 0;
    for (std::size_t i = 0; i < vars.size(); ++i) {
      if (vars[i] == node) {
        node_value = asg[i];
        continue;
      }
      // Position of vars[i] in the CPT's parent order.
      for (std::size_t p = 0; p < cpt.parents().size(); ++p) {
        if (cpt.parents()[p] == vars[i]) {
          parent_values[p] = asg[i];
          break;
        }
      }
    }
    factor.At(flat) = cpt.Prob(node_value, cpt.ConfigIndex(parent_values));
  }
  return factor;
}

Status ValidateQuery(const BayesianNetwork& net, const Evidence& evidence,
                     std::size_t query) {
  if (query >= net.num_nodes()) {
    return Status::OutOfRange("query node out of range");
  }
  if (evidence.count(query) > 0) {
    return Status::InvalidArgument("query node is also evidence");
  }
  for (const auto& [node, value] : evidence) {
    if (node >= net.num_nodes()) {
      return Status::OutOfRange("evidence node out of range");
    }
    if (value < 0 || value >= net.schema().domain_size(node)) {
      return Status::OutOfRange(StrFormat(
          "evidence value %d outside domain of node %zu", value, node));
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<double>> VariableElimination(const BayesianNetwork& net,
                                                const Evidence& evidence,
                                                std::size_t query) {
  BAYESCROWD_RETURN_NOT_OK(ValidateQuery(net, evidence, query));
  VeQueries()->Increment();

  // Build reduced CPT factors.
  std::vector<Factor> factors;
  factors.reserve(net.num_nodes());
  for (std::size_t node = 0; node < net.num_nodes(); ++node) {
    Factor f = CptFactor(net, node);
    for (const auto& [ev_node, ev_value] : evidence) {
      if (f.ContainsVariable(ev_node)) f = f.Reduce(ev_node, ev_value);
    }
    factors.push_back(std::move(f));
  }

  // Hidden variables to eliminate (everything but query and evidence).
  std::set<std::size_t> hidden;
  for (std::size_t v = 0; v < net.num_nodes(); ++v) {
    if (v != query && evidence.count(v) == 0) hidden.insert(v);
  }

  while (!hidden.empty()) {
    // Min-degree heuristic: eliminate the variable whose combined factor
    // scope is smallest.
    std::size_t best_var = 0;
    std::size_t best_scope = static_cast<std::size_t>(-1);
    for (std::size_t var : hidden) {
      std::set<std::size_t> scope;
      for (const Factor& f : factors) {
        if (!f.ContainsVariable(var)) continue;
        scope.insert(f.variables().begin(), f.variables().end());
      }
      if (scope.size() < best_scope) {
        best_scope = scope.size();
        best_var = var;
      }
    }

    // Multiply the factors mentioning best_var, sum it out.
    Factor combined;
    bool have = false;
    std::vector<Factor> remaining;
    remaining.reserve(factors.size());
    for (Factor& f : factors) {
      if (f.ContainsVariable(best_var)) {
        if (have) {
          combined = Factor::Product(combined, f);
          FactorProducts()->Increment();
        } else {
          combined = std::move(f);
        }
        have = true;
      } else {
        remaining.push_back(std::move(f));
      }
    }
    if (have) {
      remaining.push_back(combined.Marginalize(best_var));
      Marginalizations()->Increment();
    }
    factors = std::move(remaining);
    hidden.erase(best_var);
  }

  // Multiply what is left; everything is now over {query} (or empty).
  Factor result({query}, {net.schema().domain_size(query)});
  for (std::size_t i = 0; i < result.size(); ++i) result.At(i) = 1.0;
  for (const Factor& f : factors) {
    if (f.variables().empty()) continue;  // Constant from evidence.
    result = Factor::Product(result, f);
    FactorProducts()->Increment();
  }
  result.Normalize();

  std::vector<double> out(
      static_cast<std::size_t>(net.schema().domain_size(query)));
  for (std::size_t v = 0; v < out.size(); ++v) {
    out[v] = result.At(v);
  }
  return out;
}

Result<std::vector<double>> LikelihoodWeighting(const BayesianNetwork& net,
                                                const Evidence& evidence,
                                                std::size_t query,
                                                std::size_t num_samples,
                                                Rng& rng) {
  BAYESCROWD_RETURN_NOT_OK(ValidateQuery(net, evidence, query));
  if (num_samples == 0) {
    return Status::InvalidArgument("num_samples must be > 0");
  }
  LwSamples()->Increment(num_samples);

  const auto order = net.structure().TopologicalOrder();
  std::vector<double> accum(
      static_cast<std::size_t>(net.schema().domain_size(query)), 0.0);
  std::vector<Level> row(net.num_nodes(), kMissingLevel);
  std::vector<Level> parent_values;
  for (std::size_t s = 0; s < num_samples; ++s) {
    double weight = 1.0;
    for (std::size_t node : order) {
      const Cpt& cpt = net.cpt(node);
      parent_values.clear();
      for (std::size_t p : cpt.parents()) parent_values.push_back(row[p]);
      const std::size_t config = cpt.ConfigIndex(parent_values);
      const auto ev = evidence.find(node);
      if (ev != evidence.end()) {
        row[node] = ev->second;
        weight *= cpt.Prob(ev->second, config);
      } else {
        row[node] = cpt.Sample(config, rng);
      }
    }
    accum[static_cast<std::size_t>(row[query])] += weight;
  }
  double total = 0.0;
  for (double v : accum) total += v;
  if (total <= 0.0) {
    const double uniform = 1.0 / static_cast<double>(accum.size());
    for (double& v : accum) v = uniform;
    return accum;
  }
  for (double& v : accum) v /= total;
  return accum;
}

Result<std::vector<double>> GibbsSampling(const BayesianNetwork& net,
                                          const Evidence& evidence,
                                          std::size_t query,
                                          std::size_t num_samples,
                                          std::size_t burn_in, Rng& rng) {
  BAYESCROWD_RETURN_NOT_OK(ValidateQuery(net, evidence, query));
  if (num_samples == 0) {
    return Status::InvalidArgument("num_samples must be > 0");
  }
  GibbsSweeps()->Increment(burn_in + num_samples);

  const std::size_t d = net.num_nodes();
  std::vector<std::size_t> hidden;
  for (std::size_t v = 0; v < d; ++v) {
    if (evidence.count(v) == 0) hidden.push_back(v);
  }

  // Initialize: evidence fixed, hidden variables forward-sampled.
  std::vector<Level> row(d, kMissingLevel);
  std::vector<Level> parent_values;
  for (std::size_t node : net.structure().TopologicalOrder()) {
    const auto ev = evidence.find(node);
    if (ev != evidence.end()) {
      row[node] = ev->second;
      continue;
    }
    const Cpt& cpt = net.cpt(node);
    parent_values.clear();
    for (std::size_t p : cpt.parents()) parent_values.push_back(row[p]);
    row[node] = cpt.Sample(cpt.ConfigIndex(parent_values), rng);
  }

  // Full conditional of `node`: P(node = v | rest) ∝
  // P(node = v | parents) * Π_{children c} P(c | parents(c) with node=v).
  const auto resample = [&](std::size_t node) {
    const Cpt& cpt = net.cpt(node);
    const auto card = static_cast<std::size_t>(cpt.cardinality());
    std::vector<double> weights(card, 1.0);
    parent_values.clear();
    for (std::size_t p : cpt.parents()) parent_values.push_back(row[p]);
    const std::size_t config = cpt.ConfigIndex(parent_values);
    for (std::size_t v = 0; v < card; ++v) {
      weights[v] = cpt.Prob(static_cast<Level>(v), config);
    }
    for (std::size_t child : net.structure().children(node)) {
      const Cpt& child_cpt = net.cpt(child);
      const Level saved = row[node];
      for (std::size_t v = 0; v < card; ++v) {
        row[node] = static_cast<Level>(v);
        std::vector<Level> child_parents;
        child_parents.reserve(child_cpt.parents().size());
        for (std::size_t p : child_cpt.parents()) {
          child_parents.push_back(row[p]);
        }
        weights[v] *= child_cpt.Prob(
            row[child], child_cpt.ConfigIndex(child_parents));
      }
      row[node] = saved;
    }
    row[node] = static_cast<Level>(rng.NextDiscrete(weights));
  };

  std::vector<double> accum(
      static_cast<std::size_t>(net.schema().domain_size(query)), 0.0);
  for (std::size_t sweep = 0; sweep < burn_in + num_samples; ++sweep) {
    for (std::size_t node : hidden) resample(node);
    if (sweep >= burn_in) {
      accum[static_cast<std::size_t>(row[query])] += 1.0;
    }
  }
  for (double& p : accum) p /= static_cast<double>(num_samples);
  return accum;
}

}  // namespace bayescrowd
