// Posterior inference over a fitted Bayesian network.
//
// The BayesCrowd preprocessing step "learns the probability distributions
// of missing values leveraging Bayes rules"; concretely this is
// P(X_j | observed attributes of the row), computed exactly by variable
// elimination (the network is over at most ~11 attributes). A
// likelihood-weighting sampler is provided as an approximate fallback
// for larger networks.

#ifndef BAYESCROWD_BAYESNET_INFERENCE_H_
#define BAYESCROWD_BAYESNET_INFERENCE_H_

#include <map>
#include <vector>

#include "bayesnet/network.h"
#include "common/random.h"
#include "common/result.h"

namespace bayescrowd {

/// Evidence: node index -> observed level.
using Evidence = std::map<std::size_t, Level>;

/// Exact posterior P(query | evidence) via variable elimination with a
/// min-degree elimination order. Returns a normalized distribution of
/// length domain_size(query).
Result<std::vector<double>> VariableElimination(const BayesianNetwork& net,
                                                const Evidence& evidence,
                                                std::size_t query);

/// Approximate posterior via likelihood weighting with `num_samples`
/// weighted forward samples.
Result<std::vector<double>> LikelihoodWeighting(const BayesianNetwork& net,
                                                const Evidence& evidence,
                                                std::size_t query,
                                                std::size_t num_samples,
                                                Rng& rng);

/// Approximate posterior via Gibbs sampling: `num_samples` sweeps over
/// the hidden variables after `burn_in` discarded sweeps, resampling
/// each hidden variable from its full conditional (its Markov blanket).
/// More robust than likelihood weighting under unlikely evidence.
Result<std::vector<double>> GibbsSampling(const BayesianNetwork& net,
                                          const Evidence& evidence,
                                          std::size_t query,
                                          std::size_t num_samples,
                                          std::size_t burn_in, Rng& rng);

}  // namespace bayescrowd

#endif  // BAYESCROWD_BAYESNET_INFERENCE_H_
