#include "bayesnet/network.h"

#include <cmath>

#include "common/string_util.h"

namespace bayescrowd {

Result<BayesianNetwork> BayesianNetwork::Create(const Schema& schema,
                                                const Dag& structure) {
  if (structure.num_nodes() != schema.num_attributes()) {
    return Status::InvalidArgument(StrFormat(
        "DAG has %zu nodes, schema has %zu attributes",
        structure.num_nodes(), schema.num_attributes()));
  }
  BayesianNetwork net;
  net.schema_ = schema;
  net.dag_ = structure;
  net.cpts_.reserve(schema.num_attributes());
  for (std::size_t node = 0; node < schema.num_attributes(); ++node) {
    const auto& parents = structure.parents(node);
    std::vector<Level> parent_cards;
    parent_cards.reserve(parents.size());
    for (std::size_t p : parents) {
      parent_cards.push_back(schema.domain_size(p));
    }
    net.cpts_.emplace_back(node, schema.domain_size(node), parents,
                           std::move(parent_cards));
  }
  net.topo_order_ = structure.TopologicalOrder();
  return net;
}

Status BayesianNetwork::FitParameters(const Table& data, double alpha) {
  if (!(data.schema() == schema_)) {
    return Status::InvalidArgument("data schema differs from network schema");
  }
  if (alpha <= 0.0) {
    return Status::InvalidArgument("Dirichlet alpha must be positive");
  }
  std::vector<Level> parent_values;
  for (Cpt& cpt : cpts_) {
    cpt.ClearCounts();
    const std::size_t node = cpt.node();
    for (std::size_t i = 0; i < data.num_objects(); ++i) {
      const Level value = data.At(i, node);
      if (IsMissingLevel(value)) continue;
      parent_values.clear();
      bool usable = true;
      for (std::size_t p : cpt.parents()) {
        const Level pv = data.At(i, p);
        if (IsMissingLevel(pv)) {
          usable = false;
          break;
        }
        parent_values.push_back(pv);
      }
      if (!usable) continue;
      cpt.AddCount(value, cpt.ConfigIndex(parent_values));
    }
    cpt.NormalizeWithPrior(alpha);
  }
  return Status::OK();
}

double BayesianNetwork::LogJointProbability(
    const std::vector<Level>& row) const {
  double log_prob = 0.0;
  std::vector<Level> parent_values;
  for (const Cpt& cpt : cpts_) {
    parent_values.clear();
    for (std::size_t p : cpt.parents()) parent_values.push_back(row[p]);
    log_prob +=
        std::log(cpt.Prob(row[cpt.node()], cpt.ConfigIndex(parent_values)));
  }
  return log_prob;
}

std::vector<Level> BayesianNetwork::SampleRow(Rng& rng) const {
  std::vector<Level> row(num_nodes(), kMissingLevel);
  std::vector<Level> parent_values;
  for (std::size_t node : topo_order_) {
    const Cpt& cpt = cpts_[node];
    parent_values.clear();
    for (std::size_t p : cpt.parents()) parent_values.push_back(row[p]);
    row[node] = cpt.Sample(cpt.ConfigIndex(parent_values), rng);
  }
  return row;
}

Table BayesianNetwork::SampleTable(std::size_t n, Rng& rng) const {
  Table table(schema_);
  table.Reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    BAYESCROWD_CHECK_OK(
        table.AppendRow(StrFormat("s%zu", i + 1), SampleRow(rng)));
  }
  return table;
}

}  // namespace bayescrowd
