// BayesianNetwork: a fitted discrete Bayesian network over the
// attributes of a Table.
//
// The paper trains its network with Banjo (structure) and Infer.Net
// (parameters); here structure learning lives in structure_learning.h
// and parameters are fitted by maximum likelihood with a Dirichlet
// prior.

#ifndef BAYESCROWD_BAYESNET_NETWORK_H_
#define BAYESCROWD_BAYESNET_NETWORK_H_

#include <vector>

#include "bayesnet/cpt.h"
#include "bayesnet/dag.h"
#include "common/random.h"
#include "common/result.h"
#include "data/table.h"

namespace bayescrowd {

/// A discrete Bayesian network with one node per table attribute.
class BayesianNetwork {
 public:
  BayesianNetwork() = default;

  /// Builds the network skeleton for `schema` over `structure` with
  /// uniform CPTs. The DAG must have one node per attribute.
  static Result<BayesianNetwork> Create(const Schema& schema,
                                        const Dag& structure);

  /// Fits CPT parameters by maximum likelihood with a symmetric
  /// Dirichlet(alpha) prior. Rows where the node or any of its parents
  /// is missing are skipped for that node's family (available-case
  /// analysis).
  Status FitParameters(const Table& data, double alpha = 1.0);

  const Schema& schema() const { return schema_; }
  const Dag& structure() const { return dag_; }
  const Cpt& cpt(std::size_t node) const { return cpts_[node]; }
  std::size_t num_nodes() const { return cpts_.size(); }

  /// log P(row) for a complete assignment (one level per attribute).
  double LogJointProbability(const std::vector<Level>& row) const;

  /// Draws one complete row in topological order.
  std::vector<Level> SampleRow(Rng& rng) const;

  /// Materializes `n` sampled rows into a complete table.
  Table SampleTable(std::size_t n, Rng& rng) const;

 private:
  Schema schema_;
  Dag dag_;
  std::vector<Cpt> cpts_;
  std::vector<std::size_t> topo_order_;
};

}  // namespace bayescrowd

#endif  // BAYESCROWD_BAYESNET_NETWORK_H_
