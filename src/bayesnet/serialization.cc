#include "bayesnet/serialization.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace bayescrowd {

std::string SerializeNetwork(const BayesianNetwork& network) {
  std::ostringstream out;
  out << "bayesnet v1\n";
  out << "nodes " << network.num_nodes() << "\n";
  for (std::size_t v = 0; v < network.num_nodes(); ++v) {
    out << "node " << v << " " << network.schema().attribute(v).name
        << " " << network.schema().domain_size(v) << "\n";
  }
  const auto edges = network.structure().Edges();
  out << "edges " << edges.size() << "\n";
  for (const auto& [from, to] : edges) {
    out << "edge " << from << " " << to << "\n";
  }
  out.precision(17);
  for (std::size_t v = 0; v < network.num_nodes(); ++v) {
    const Cpt& cpt = network.cpt(v);
    out << "cpt " << v;
    for (std::size_t c = 0; c < cpt.num_parent_configs(); ++c) {
      for (Level value = 0; value < cpt.cardinality(); ++value) {
        out << " " << cpt.Prob(value, c);
      }
    }
    out << "\n";
  }
  out << "end\n";
  return out.str();
}

Result<BayesianNetwork> DeserializeNetwork(const std::string& text) {
  std::istringstream in(text);
  std::string line;

  const auto next_line = [&in, &line]() {
    while (std::getline(in, line)) {
      const auto trimmed = Trim(line);
      if (!trimmed.empty() && trimmed[0] != '#') {
        line = std::string(trimmed);
        return true;
      }
    }
    return false;
  };
  const auto malformed = [](const std::string& what) {
    return Status::InvalidArgument("bayesnet parse error: " + what);
  };

  if (!next_line() || line != "bayesnet v1") {
    return malformed("missing 'bayesnet v1' header");
  }
  if (!next_line()) return malformed("missing 'nodes'");
  std::istringstream nodes_line(line);
  std::string keyword;
  std::size_t d = 0;
  if (!(nodes_line >> keyword >> d) || keyword != "nodes" || d == 0) {
    return malformed("bad 'nodes' line");
  }

  Schema schema;
  std::vector<std::string> names(d);
  std::vector<Level> cards(d, 0);
  for (std::size_t i = 0; i < d; ++i) {
    if (!next_line()) return malformed("missing 'node' line");
    std::istringstream node_line(line);
    std::size_t index = 0;
    std::string name;
    int card = 0;
    if (!(node_line >> keyword >> index >> name >> card) ||
        keyword != "node" || index >= d || card <= 0) {
      return malformed("bad 'node' line: " + line);
    }
    names[index] = name;
    cards[index] = static_cast<Level>(card);
  }
  for (std::size_t i = 0; i < d; ++i) {
    schema.AddAttribute(names[i], cards[i]);
  }

  if (!next_line()) return malformed("missing 'edges'");
  std::istringstream edges_line(line);
  std::size_t m = 0;
  if (!(edges_line >> keyword >> m) || keyword != "edges") {
    return malformed("bad 'edges' line");
  }
  Dag dag(d);
  for (std::size_t e = 0; e < m; ++e) {
    if (!next_line()) return malformed("missing 'edge' line");
    std::istringstream edge_line(line);
    std::size_t from = 0;
    std::size_t to = 0;
    if (!(edge_line >> keyword >> from >> to) || keyword != "edge") {
      return malformed("bad 'edge' line: " + line);
    }
    BAYESCROWD_RETURN_NOT_OK(dag.AddEdge(from, to));
  }

  BAYESCROWD_ASSIGN_OR_RETURN(BayesianNetwork network,
                              BayesianNetwork::Create(schema, dag));
  for (std::size_t v = 0; v < d; ++v) {
    if (!next_line()) return malformed("missing 'cpt' line");
    std::istringstream cpt_line(line);
    std::size_t node = 0;
    if (!(cpt_line >> keyword >> node) || keyword != "cpt" || node >= d) {
      return malformed("bad 'cpt' line: " + line);
    }
    auto& cpt = const_cast<Cpt&>(network.cpt(node));
    const auto card = static_cast<std::size_t>(cpt.cardinality());
    std::vector<double> dist(card);
    for (std::size_t c = 0; c < cpt.num_parent_configs(); ++c) {
      for (std::size_t value = 0; value < card; ++value) {
        if (!(cpt_line >> dist[value])) {
          return malformed("truncated cpt for node " +
                           std::to_string(node));
        }
      }
      BAYESCROWD_RETURN_NOT_OK(cpt.SetDistribution(c, dist));
    }
  }
  if (!next_line() || line != "end") return malformed("missing 'end'");
  return network;
}

Status SaveNetwork(const BayesianNetwork& network,
                   const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << SerializeNetwork(network);
  if (!out) return Status::IOError("write to " + path + " failed");
  return Status::OK();
}

Result<BayesianNetwork> LoadNetwork(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return DeserializeNetwork(buffer.str());
}

}  // namespace bayescrowd
