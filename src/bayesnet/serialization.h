// Bayesian-network persistence: a plain-text format so a trained
// network (the expensive preprocessing output) can be reused across
// query sessions.
//
// Format (line-oriented, '#' comments allowed):
//   bayesnet v1
//   nodes <d>
//   node <index> <name> <cardinality>
//   edges <m>
//   edge <from> <to>
//   cpt <node> <num_configs * cardinality probabilities...>
//   end

#ifndef BAYESCROWD_BAYESNET_SERIALIZATION_H_
#define BAYESCROWD_BAYESNET_SERIALIZATION_H_

#include <string>

#include "bayesnet/network.h"
#include "common/result.h"

namespace bayescrowd {

/// Serializes `network` to the text format above.
std::string SerializeNetwork(const BayesianNetwork& network);

/// Parses a network previously produced by SerializeNetwork.
Result<BayesianNetwork> DeserializeNetwork(const std::string& text);

/// File convenience wrappers.
Status SaveNetwork(const BayesianNetwork& network, const std::string& path);
Result<BayesianNetwork> LoadNetwork(const std::string& path);

}  // namespace bayescrowd

#endif  // BAYESCROWD_BAYESNET_SERIALIZATION_H_
