#include "bayesnet/structure_learning.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "common/random.h"
#include "obs/metrics.h"

namespace bayescrowd {
namespace {

// Process-wide counters (structure learning runs below the framework
// layer; see obs/metrics.h on registry scoping).
obs::Counter* ScoreEvals() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Default().GetCounter("bayesnet.score_evals");
  return counter;
}

obs::Counter* ScoreCacheHits() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Default().GetCounter(
          "bayesnet.score_cache_hits");
  return counter;
}

// Computes the BIC family score of `node` with parent set `parents`
// (sorted): available-case log-likelihood minus the BIC complexity
// penalty.
double FamilyScore(const Table& data, std::size_t node,
                   const std::vector<std::size_t>& parents) {
  const Schema& schema = data.schema();
  const auto card = static_cast<std::size_t>(schema.domain_size(node));
  std::size_t num_configs = 1;
  for (std::size_t p : parents) {
    num_configs *= static_cast<std::size_t>(schema.domain_size(p));
  }

  std::vector<double> counts(num_configs * card, 0.0);
  std::vector<double> config_totals(num_configs, 0.0);
  std::size_t rows_used = 0;
  for (std::size_t i = 0; i < data.num_objects(); ++i) {
    const Level value = data.At(i, node);
    if (IsMissingLevel(value)) continue;
    std::size_t config = 0;
    bool usable = true;
    for (std::size_t p : parents) {
      const Level pv = data.At(i, p);
      if (IsMissingLevel(pv)) {
        usable = false;
        break;
      }
      config = config * static_cast<std::size_t>(schema.domain_size(p)) +
               static_cast<std::size_t>(pv);
    }
    if (!usable) continue;
    counts[config * card + static_cast<std::size_t>(value)] += 1.0;
    config_totals[config] += 1.0;
    ++rows_used;
  }
  if (rows_used == 0) return 0.0;

  double log_likelihood = 0.0;
  for (std::size_t c = 0; c < num_configs; ++c) {
    if (config_totals[c] <= 0.0) continue;
    for (std::size_t v = 0; v < card; ++v) {
      const double n = counts[c * card + v];
      if (n > 0.0) log_likelihood += n * std::log(n / config_totals[c]);
    }
  }
  const double penalty = 0.5 * std::log(static_cast<double>(rows_used)) *
                         static_cast<double>((card - 1) * num_configs);
  return log_likelihood - penalty;
}

// Memoizes family scores across hill-climbing iterations and restarts.
class ScoreCache {
 public:
  explicit ScoreCache(const Table& data) : data_(data) {}

  double Get(std::size_t node, std::vector<std::size_t> parents) {
    std::sort(parents.begin(), parents.end());
    const auto key = std::make_pair(node, std::move(parents));
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      ScoreCacheHits()->Increment();
      return it->second;
    }
    ScoreEvals()->Increment();
    const double score = FamilyScore(data_, key.first, key.second);
    cache_.emplace(key, score);
    return score;
  }

 private:
  const Table& data_;
  std::map<std::pair<std::size_t, std::vector<std::size_t>>, double> cache_;
};

struct Move {
  enum class Kind { kAdd, kRemove, kReverse } kind;
  std::size_t from;
  std::size_t to;
  double delta;
};

// One greedy run from `dag`, mutating it in place; returns final score.
double HillClimbFrom(const Table& data, ScoreCache& cache, Dag& dag,
                     const StructureLearningOptions& options) {
  const std::size_t d = data.num_attributes();
  std::vector<double> node_score(d);
  for (std::size_t v = 0; v < d; ++v) {
    node_score[v] = cache.Get(v, dag.parents(v));
  }

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    Move best{Move::Kind::kAdd, 0, 0, 0.0};
    bool found = false;

    auto consider = [&](Move::Kind kind, std::size_t from, std::size_t to,
                        double delta) {
      if (delta > options.epsilon && (!found || delta > best.delta)) {
        best = {kind, from, to, delta};
        found = true;
      }
    };

    for (std::size_t from = 0; from < d; ++from) {
      for (std::size_t to = 0; to < d; ++to) {
        if (from == to) continue;
        if (dag.HasEdge(from, to)) {
          // Remove from->to.
          std::vector<std::size_t> reduced = dag.parents(to);
          reduced.erase(std::find(reduced.begin(), reduced.end(), from));
          const double remove_delta =
              cache.Get(to, reduced) - node_score[to];
          consider(Move::Kind::kRemove, from, to, remove_delta);

          // Reverse from->to (to->from must stay acyclic after removal;
          // conservatively require no other path from `from` to `to`).
          if (dag.parents(from).size() < options.max_parents) {
            Dag trial = dag;
            BAYESCROWD_CHECK_OK(trial.RemoveEdge(from, to));
            if (trial.CanAddEdge(to, from)) {
              std::vector<std::size_t> from_parents = dag.parents(from);
              from_parents.push_back(to);
              const double delta =
                  (cache.Get(to, reduced) - node_score[to]) +
                  (cache.Get(from, from_parents) - node_score[from]);
              consider(Move::Kind::kReverse, from, to, delta);
            }
          }
        } else if (dag.parents(to).size() < options.max_parents &&
                   dag.CanAddEdge(from, to)) {
          std::vector<std::size_t> extended = dag.parents(to);
          extended.push_back(from);
          const double add_delta = cache.Get(to, extended) - node_score[to];
          consider(Move::Kind::kAdd, from, to, add_delta);
        }
      }
    }

    if (!found) break;
    switch (best.kind) {
      case Move::Kind::kAdd:
        BAYESCROWD_CHECK_OK(dag.AddEdge(best.from, best.to));
        break;
      case Move::Kind::kRemove:
        BAYESCROWD_CHECK_OK(dag.RemoveEdge(best.from, best.to));
        break;
      case Move::Kind::kReverse:
        BAYESCROWD_CHECK_OK(dag.RemoveEdge(best.from, best.to));
        BAYESCROWD_CHECK_OK(dag.AddEdge(best.to, best.from));
        node_score[best.from] = cache.Get(best.from, dag.parents(best.from));
        break;
    }
    node_score[best.to] = cache.Get(best.to, dag.parents(best.to));
  }

  double total = 0.0;
  for (std::size_t v = 0; v < d; ++v) total += node_score[v];
  return total;
}

}  // namespace

Result<double> BicScore(const Table& data, const Dag& dag) {
  if (dag.num_nodes() != data.num_attributes()) {
    return Status::InvalidArgument("DAG size does not match table");
  }
  double total = 0.0;
  for (std::size_t v = 0; v < dag.num_nodes(); ++v) {
    std::vector<std::size_t> parents = dag.parents(v);
    std::sort(parents.begin(), parents.end());
    total += FamilyScore(data, v, parents);
  }
  return total;
}

Result<Dag> HillClimbStructure(const Table& data,
                               const StructureLearningOptions& options) {
  if (data.num_objects() == 0 || data.num_attributes() == 0) {
    return Status::InvalidArgument("empty table");
  }
  const std::size_t d = data.num_attributes();
  ScoreCache cache(data);

  Dag best(d);
  double best_score = HillClimbFrom(data, cache, best, options);

  Rng rng(options.seed);
  for (std::size_t r = 0; r < options.num_restarts; ++r) {
    // Random initial DAG: a handful of random edges under a random node
    // permutation (guaranteeing acyclicity).
    Dag dag(d);
    std::vector<std::size_t> perm(d);
    for (std::size_t i = 0; i < d; ++i) perm[i] = i;
    rng.Shuffle(perm);
    const std::size_t tries = d * 2;
    for (std::size_t t = 0; t < tries; ++t) {
      const std::size_t i = rng.NextBelow(d);
      const std::size_t j = rng.NextBelow(d);
      if (i >= j) continue;
      if (dag.parents(perm[j]).size() >= options.max_parents) continue;
      (void)dag.AddEdge(perm[i], perm[j]);  // AlreadyExists is fine.
    }
    const double score = HillClimbFrom(data, cache, dag, options);
    if (score > best_score) {
      best_score = score;
      best = dag;
    }
  }
  return best;
}

Result<Dag> K2Structure(const Table& data,
                        const std::vector<std::size_t>& ordering,
                        std::size_t max_parents) {
  const std::size_t d = data.num_attributes();
  if (data.num_objects() == 0 || d == 0) {
    return Status::InvalidArgument("empty table");
  }
  if (ordering.size() != d) {
    return Status::InvalidArgument("ordering must cover every attribute");
  }
  std::vector<bool> seen(d, false);
  for (std::size_t v : ordering) {
    if (v >= d || seen[v]) {
      return Status::InvalidArgument("ordering is not a permutation");
    }
    seen[v] = true;
  }

  Dag dag(d);
  for (std::size_t pos = 0; pos < d; ++pos) {
    const std::size_t node = ordering[pos];
    std::vector<std::size_t> parents;
    double best = FamilyScore(data, node, parents);
    while (parents.size() < max_parents) {
      double candidate_score = best;
      std::size_t candidate = d;
      for (std::size_t prev = 0; prev < pos; ++prev) {
        const std::size_t p = ordering[prev];
        if (std::find(parents.begin(), parents.end(), p) !=
            parents.end()) {
          continue;
        }
        std::vector<std::size_t> trial = parents;
        trial.push_back(p);
        std::sort(trial.begin(), trial.end());
        const double score = FamilyScore(data, node, trial);
        if (score > candidate_score) {
          candidate_score = score;
          candidate = p;
        }
      }
      if (candidate == d) break;  // No improving parent.
      parents.push_back(candidate);
      best = candidate_score;
    }
    for (std::size_t p : parents) {
      BAYESCROWD_RETURN_NOT_OK(dag.AddEdge(p, node));
    }
  }
  return dag;
}

Result<Dag> ChowLiuStructure(const Table& data) {
  const std::size_t d = data.num_attributes();
  if (data.num_objects() == 0 || d == 0) {
    return Status::InvalidArgument("empty table");
  }
  const Schema& schema = data.schema();

  // Pairwise mutual information over available cases.
  std::vector<std::vector<double>> mi(d, std::vector<double>(d, 0.0));
  for (std::size_t a = 0; a < d; ++a) {
    for (std::size_t b = a + 1; b < d; ++b) {
      const auto ca = static_cast<std::size_t>(schema.domain_size(a));
      const auto cb = static_cast<std::size_t>(schema.domain_size(b));
      std::vector<double> joint(ca * cb, 0.0);
      std::vector<double> ma(ca, 0.0);
      std::vector<double> mb(cb, 0.0);
      double n = 0.0;
      for (std::size_t i = 0; i < data.num_objects(); ++i) {
        const Level va = data.At(i, a);
        const Level vb = data.At(i, b);
        if (IsMissingLevel(va) || IsMissingLevel(vb)) continue;
        joint[static_cast<std::size_t>(va) * cb +
              static_cast<std::size_t>(vb)] += 1.0;
        ma[static_cast<std::size_t>(va)] += 1.0;
        mb[static_cast<std::size_t>(vb)] += 1.0;
        n += 1.0;
      }
      if (n == 0.0) continue;
      double info = 0.0;
      for (std::size_t x = 0; x < ca; ++x) {
        for (std::size_t y = 0; y < cb; ++y) {
          const double pxy = joint[x * cb + y] / n;
          if (pxy <= 0.0) continue;
          info += pxy * std::log(pxy * n * n / (ma[x] * mb[y]));
        }
      }
      mi[a][b] = mi[b][a] = info;
    }
  }

  // Prim's maximum spanning tree from node 0, directing edges outward.
  Dag dag(d);
  std::vector<bool> in_tree(d, false);
  std::vector<double> best_weight(d, -1.0);
  std::vector<std::size_t> best_parent(d, 0);
  in_tree[0] = true;
  for (std::size_t v = 1; v < d; ++v) {
    best_weight[v] = mi[0][v];
    best_parent[v] = 0;
  }
  for (std::size_t step = 1; step < d; ++step) {
    std::size_t pick = d;
    double pick_weight = -1.0;
    for (std::size_t v = 0; v < d; ++v) {
      if (!in_tree[v] && best_weight[v] > pick_weight) {
        pick_weight = best_weight[v];
        pick = v;
      }
    }
    if (pick == d) break;
    in_tree[pick] = true;
    BAYESCROWD_RETURN_NOT_OK(dag.AddEdge(best_parent[pick], pick));
    for (std::size_t v = 0; v < d; ++v) {
      if (!in_tree[v] && mi[pick][v] > best_weight[v]) {
        best_weight[v] = mi[pick][v];
        best_parent[v] = pick;
      }
    }
  }
  return dag;
}

}  // namespace bayescrowd
