// Bayesian-network structure learning.
//
// Stand-in for the Banjo framework the paper uses: score-based greedy
// hill-climbing over DAGs with the BIC score (add / delete / reverse
// moves, optional random restarts), plus a Chow-Liu tree learner as a
// fast alternative. Rows with missing entries in a family are skipped
// when scoring that family (available-case analysis), so learning works
// directly on incomplete tables too.

#ifndef BAYESCROWD_BAYESNET_STRUCTURE_LEARNING_H_
#define BAYESCROWD_BAYESNET_STRUCTURE_LEARNING_H_

#include <cstdint>

#include "bayesnet/dag.h"
#include "common/result.h"
#include "data/table.h"

namespace bayescrowd {

struct StructureLearningOptions {
  std::size_t max_parents = 3;     // Parent-set size cap per node.
  std::size_t max_iterations = 200;  // Hill-climbing step cap.
  std::size_t num_restarts = 0;    // Extra random-restart runs.
  std::uint64_t seed = 42;         // Restart randomization seed.
  double epsilon = 1e-9;           // Minimum score improvement to move.
};

/// BIC score of a full DAG on `data` (sum of family scores). Exposed for
/// tests and diagnostics.
Result<double> BicScore(const Table& data, const Dag& dag);

/// Greedy hill-climbing structure search maximizing BIC.
Result<Dag> HillClimbStructure(const Table& data,
                               const StructureLearningOptions& options = {});

/// Chow-Liu: maximum-spanning-tree over pairwise mutual information,
/// rooted at node 0, edges directed away from the root.
Result<Dag> ChowLiuStructure(const Table& data);

/// K2 (Cooper & Herskovits): greedy parent selection under a fixed
/// variable ordering — each node greedily adds the predecessor that
/// most improves its BIC family score, up to `max_parents`. Fast and
/// deterministic; quality depends on the ordering.
Result<Dag> K2Structure(const Table& data,
                        const std::vector<std::size_t>& ordering,
                        std::size_t max_parents = 3);

}  // namespace bayescrowd

#endif  // BAYESCROWD_BAYESNET_STRUCTURE_LEARNING_H_
