// Bounds-checked little-endian binary encoding for checkpoint payloads.
//
// BinWriter appends fixed-width integers, doubles, and length-prefixed
// strings to a std::string. BinReader walks the same layout and returns
// Status::OutOfRange instead of reading past the buffer, so a truncated
// or corrupt payload can never produce out-of-bounds access — the
// checkpoint loader relies on this as its second line of defence after
// the CRC.
//
// All multi-byte values are serialized little-endian byte-by-byte, so
// the format is independent of host endianness.

#ifndef BAYESCROWD_COMMON_BINIO_H_
#define BAYESCROWD_COMMON_BINIO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"

namespace bayescrowd {

class BinWriter {
 public:
  explicit BinWriter(std::string* out) : out_(out) {}

  void WriteU8(std::uint8_t v) { out_->push_back(static_cast<char>(v)); }

  void WriteU32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
    }
  }

  void WriteU64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
    }
  }

  void WriteI32(std::int32_t v) { WriteU32(static_cast<std::uint32_t>(v)); }
  void WriteI64(std::int64_t v) { WriteU64(static_cast<std::uint64_t>(v)); }

  void WriteDouble(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    WriteU64(bits);
  }

  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }

  /// u64 length prefix + raw bytes.
  void WriteString(std::string_view s) {
    WriteU64(s.size());
    out_->append(s.data(), s.size());
  }

 private:
  std::string* out_;
};

class BinReader {
 public:
  explicit BinReader(std::string_view data) : data_(data) {}

  std::size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  Status ReadU8(std::uint8_t* v) {
    BAYESCROWD_RETURN_NOT_OK(Need(1));
    *v = static_cast<std::uint8_t>(data_[pos_++]);
    return Status::OK();
  }

  Status ReadU32(std::uint32_t* v) {
    BAYESCROWD_RETURN_NOT_OK(Need(4));
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<std::uint32_t>(
                static_cast<unsigned char>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 4;
    return Status::OK();
  }

  Status ReadU64(std::uint64_t* v) {
    BAYESCROWD_RETURN_NOT_OK(Need(8));
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<std::uint64_t>(
                static_cast<unsigned char>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 8;
    return Status::OK();
  }

  Status ReadI32(std::int32_t* v) {
    std::uint32_t u = 0;
    BAYESCROWD_RETURN_NOT_OK(ReadU32(&u));
    *v = static_cast<std::int32_t>(u);
    return Status::OK();
  }

  Status ReadI64(std::int64_t* v) {
    std::uint64_t u = 0;
    BAYESCROWD_RETURN_NOT_OK(ReadU64(&u));
    *v = static_cast<std::int64_t>(u);
    return Status::OK();
  }

  Status ReadDouble(double* v) {
    std::uint64_t bits = 0;
    BAYESCROWD_RETURN_NOT_OK(ReadU64(&bits));
    std::memcpy(v, &bits, sizeof bits);
    return Status::OK();
  }

  Status ReadBool(bool* v) {
    std::uint8_t b = 0;
    BAYESCROWD_RETURN_NOT_OK(ReadU8(&b));
    *v = b != 0;
    return Status::OK();
  }

  Status ReadString(std::string* s) {
    std::uint64_t len = 0;
    BAYESCROWD_RETURN_NOT_OK(ReadU64(&len));
    if (len > remaining()) {
      return Status::OutOfRange("binio: string length exceeds payload");
    }
    s->assign(data_.data() + pos_, static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return Status::OK();
  }

  /// Reads a u64 element count and rejects counts that cannot possibly
  /// fit in the remaining bytes (each element occupies >= min_elem_size
  /// bytes), so a corrupt count cannot trigger a huge allocation.
  Status ReadCount(std::uint64_t* count, std::size_t min_elem_size) {
    BAYESCROWD_RETURN_NOT_OK(ReadU64(count));
    if (min_elem_size > 0 && *count > remaining() / min_elem_size) {
      return Status::OutOfRange("binio: element count exceeds payload");
    }
    return Status::OK();
  }

 private:
  Status Need(std::size_t n) {
    if (remaining() < n) {
      return Status::OutOfRange("binio: truncated payload");
    }
    return Status::OK();
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace bayescrowd

#endif  // BAYESCROWD_COMMON_BINIO_H_
