#include "common/bitset.h"

#include <cassert>

namespace bayescrowd {

DynamicBitset::DynamicBitset(std::size_t num_bits, bool initial_value)
    : num_bits_(num_bits),
      words_((num_bits + 63) / 64,
             initial_value ? ~std::uint64_t{0} : std::uint64_t{0}) {
  if (initial_value) ClearPadding();
}

void DynamicBitset::Set(std::size_t index) {
  assert(index < num_bits_);
  words_[index / 64] |= std::uint64_t{1} << (index % 64);
}

void DynamicBitset::Reset(std::size_t index) {
  assert(index < num_bits_);
  words_[index / 64] &= ~(std::uint64_t{1} << (index % 64));
}

bool DynamicBitset::Test(std::size_t index) const {
  assert(index < num_bits_);
  return (words_[index / 64] >> (index % 64)) & 1;
}

void DynamicBitset::Fill(bool value) {
  const std::uint64_t fill = value ? ~std::uint64_t{0} : std::uint64_t{0};
  for (auto& w : words_) w = fill;
  if (value) ClearPadding();
}

std::size_t DynamicBitset::Count() const {
  std::size_t total = 0;
  for (std::uint64_t w : words_) {
    total += static_cast<std::size_t>(__builtin_popcountll(w));
  }
  return total;
}

bool DynamicBitset::None() const {
  for (std::uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  assert(num_bits_ == other.num_bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  assert(num_bits_ == other.num_bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

void DynamicBitset::SetRange(std::size_t begin, std::size_t end) {
  assert(begin <= end && end <= num_bits_);
  if (begin >= end) return;
  const std::size_t first_word = begin / 64;
  const std::size_t last_word = (end - 1) / 64;
  const std::uint64_t first_mask = ~std::uint64_t{0} << (begin % 64);
  const std::uint64_t last_mask =
      ~std::uint64_t{0} >> (63 - ((end - 1) % 64));
  if (first_word == last_word) {
    words_[first_word] |= first_mask & last_mask;
    return;
  }
  words_[first_word] |= first_mask;
  for (std::size_t w = first_word + 1; w < last_word; ++w) {
    words_[w] = ~std::uint64_t{0};
  }
  words_[last_word] |= last_mask;
}

std::vector<std::size_t> DynamicBitset::ToIndices() const {
  std::vector<std::size_t> out;
  out.reserve(Count());
  ForEachSetBit([&out](std::size_t i) { out.push_back(i); });
  return out;
}

void DynamicBitset::ClearPadding() {
  const std::size_t tail = num_bits_ % 64;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (~std::uint64_t{0}) >> (64 - tail);
  }
}

}  // namespace bayescrowd
