// DynamicBitset: fixed-size-at-construction bitset with fast bulk
// operations. The Get-CTable dominator-set derivation (Definition 5)
// represents each per-dimension candidate set D_i(o) as a bitset over
// object ids and intersects them with word-wide ANDs, which is what makes
// it much faster than the pairwise Baseline (Figure 2).

#ifndef BAYESCROWD_COMMON_BITSET_H_
#define BAYESCROWD_COMMON_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bayescrowd {

/// A bitset whose size is chosen at runtime. All binary operations
/// require operands of identical size.
class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t num_bits, bool initial_value = false);

  std::size_t size() const { return num_bits_; }

  void Set(std::size_t index);
  void Reset(std::size_t index);
  bool Test(std::size_t index) const;

  /// Sets all bits to `value`.
  void Fill(bool value);

  /// Number of set bits.
  std::size_t Count() const;

  /// True if no bit is set.
  bool None() const;

  /// this &= other. Sizes must match.
  DynamicBitset& operator&=(const DynamicBitset& other);
  /// this |= other. Sizes must match.
  DynamicBitset& operator|=(const DynamicBitset& other);

  /// Sets bits [begin, end) in one pass (word-wise).
  void SetRange(std::size_t begin, std::size_t end);

  /// Calls `fn(index)` for every set bit in ascending order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(w * 64 + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

  /// Collects the indices of set bits.
  std::vector<std::size_t> ToIndices() const;

  friend bool operator==(const DynamicBitset& a, const DynamicBitset& b) {
    return a.num_bits_ == b.num_bits_ && a.words_ == b.words_;
  }

 private:
  void ClearPadding();

  std::size_t num_bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace bayescrowd

#endif  // BAYESCROWD_COMMON_BITSET_H_
