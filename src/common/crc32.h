// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over byte buffers.
//
// Used by the checkpoint subsystem to detect truncated or bit-rotted
// snapshot files before any field is trusted. Not cryptographic.

#ifndef BAYESCROWD_COMMON_CRC32_H_
#define BAYESCROWD_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace bayescrowd {

/// Extends a running CRC-32 with `size` bytes. Start from `crc == 0`.
std::uint32_t Crc32Update(std::uint32_t crc, const void* data,
                          std::size_t size);

/// One-shot CRC-32 of a buffer.
inline std::uint32_t Crc32(std::string_view data) {
  return Crc32Update(0, data.data(), data.size());
}

}  // namespace bayescrowd

#endif  // BAYESCROWD_COMMON_CRC32_H_
