#include "common/csv.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace bayescrowd {
namespace {

// Parses one logical CSV record starting at `pos`; advances `pos` past
// the record terminator. Returns false (without error) at end of input.
bool ParseRecord(const std::string& text, std::size_t& pos,
                 std::vector<std::string>* fields, bool* any_quotes,
                 Status* error) {
  if (pos >= text.size()) return false;
  fields->clear();
  *any_quotes = false;
  std::string field;
  bool in_quotes = false;
  while (pos < text.size()) {
    const char c = text[pos];
    if (in_quotes) {
      if (c == '"') {
        if (pos + 1 < text.size() && text[pos + 1] == '"') {
          field.push_back('"');
          pos += 2;
        } else {
          in_quotes = false;
          ++pos;
        }
      } else {
        field.push_back(c);
        ++pos;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) {
          *error = Status::InvalidArgument(
              "CSV: quote in the middle of an unquoted field");
          return false;
        }
        in_quotes = true;
        *any_quotes = true;
        ++pos;
        break;
      case ',':
        fields->push_back(std::move(field));
        field.clear();
        ++pos;
        break;
      case '\r':
        if (pos + 1 < text.size() && text[pos + 1] == '\n') ++pos;
        [[fallthrough]];
      case '\n':
        ++pos;
        fields->push_back(std::move(field));
        return true;
      default:
        field.push_back(c);
        ++pos;
    }
  }
  if (in_quotes) {
    *error = Status::InvalidArgument("CSV: unterminated quoted field");
    return false;
  }
  fields->push_back(std::move(field));
  return true;
}

}  // namespace

Result<CsvDocument> ParseCsv(const std::string& text, bool has_header) {
  CsvDocument doc;
  std::size_t pos = 0;
  std::vector<std::string> fields;
  Status error;
  std::size_t expected_width = 0;
  std::size_t record = 0;  // 1-based physical record, for messages.
  bool first = true;
  bool any_quotes = false;
  while (ParseRecord(text, pos, &fields, &any_quotes, &error)) {
    ++record;
    // A blank line parses as one empty field; tolerate it anywhere (a
    // trailing blank line is the most common hand-edit artifact) rather
    // than reporting a confusing arity error. A quoted empty field
    // ("") is an intentional value, not a blank line, and is kept.
    if (fields.size() == 1 && fields[0].empty() && !any_quotes) continue;
    if (first) {
      expected_width = fields.size();
      first = false;
      if (has_header) {
        doc.header = std::move(fields);
        continue;
      }
    }
    if (fields.size() != expected_width) {
      return Status::InvalidArgument(StrFormat(
          "CSV: record %zu has %zu fields, expected %zu", record,
          fields.size(), expected_width));
    }
    doc.rows.push_back(std::move(fields));
  }
  if (!error.ok()) return error;
  return doc;
}

Result<CsvDocument> ReadCsvFile(const std::string& path, bool has_header) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str(), has_header);
}

std::string FormatCsvRow(const std::vector<std::string>& fields) {
  // A row that is one empty field would serialize as a blank line,
  // which the parser skips; quote it so the row round-trips.
  if (fields.size() == 1 && fields[0].empty()) return "\"\"\n";
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back(',');
    const std::string& f = fields[i];
    const bool needs_quotes = f.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes) {
      out += f;
      continue;
    }
    out.push_back('"');
    for (char c : f) {
      if (c == '"') out.push_back('"');
      out.push_back(c);
    }
    out.push_back('"');
  }
  out.push_back('\n');
  return out;
}

Status WriteCsvFile(const std::string& path, const CsvDocument& doc) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  if (!doc.header.empty()) out << FormatCsvRow(doc.header);
  for (const auto& row : doc.rows) out << FormatCsvRow(row);
  if (!out) return Status::IOError("write to " + path + " failed");
  return Status::OK();
}

}  // namespace bayescrowd
