// CSV reading and writing, used for dataset import/export and for
// dumping benchmark series to files.
//
// The dialect is deliberately simple: comma-separated, optional
// double-quote quoting with "" escapes, '\n' or '\r\n' record
// terminators, first record optionally a header.

#ifndef BAYESCROWD_COMMON_CSV_H_
#define BAYESCROWD_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace bayescrowd {

/// A fully-parsed CSV document.
struct CsvDocument {
  std::vector<std::string> header;              // Empty when has_header=false.
  std::vector<std::vector<std::string>> rows;   // Data records.
};

/// Parses CSV text. When `has_header` is true the first record is moved
/// into `header`. Rows with differing field counts are an error.
Result<CsvDocument> ParseCsv(const std::string& text, bool has_header);

/// Reads and parses a CSV file.
Result<CsvDocument> ReadCsvFile(const std::string& path, bool has_header);

/// Serializes fields with quoting where needed.
std::string FormatCsvRow(const std::vector<std::string>& fields);

/// Writes a document (header first when non-empty) to `path`.
Status WriteCsvFile(const std::string& path, const CsvDocument& doc);

}  // namespace bayescrowd

#endif  // BAYESCROWD_COMMON_CSV_H_
