#include "common/fileio.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

#include "common/string_util.h"

#ifdef _WIN32
#include <io.h>
#else
#include <fcntl.h>
#include <unistd.h>
#endif

namespace bayescrowd {
namespace {

namespace fs = std::filesystem;

Status ErrnoStatus(const char* op, const std::string& path) {
  return Status::IOError(
      StrFormat("%s failed for '%s': %s", op, path.c_str(),
                std::strerror(errno)));
}

Status FsyncFile(std::FILE* file, const std::string& path) {
#ifdef _WIN32
  (void)file;
  (void)path;
  return Status::OK();
#else
  if (fsync(fileno(file)) != 0) return ErrnoStatus("fsync", path);
  return Status::OK();
#endif
}

class RealAppendFile : public AppendFile {
 public:
  RealAppendFile(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}
  ~RealAppendFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Append(std::string_view bytes) override {
    if (bytes.empty()) return Status::OK();
    if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
      return ErrnoStatus("fwrite", path_);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (std::fflush(file_) != 0) return ErrnoStatus("fflush", path_);
    return FsyncFile(file_, path_);
  }

  Result<std::uint64_t> Size() override {
    if (std::fflush(file_) != 0) return ErrnoStatus("fflush", path_);
    const long pos = std::ftell(file_);
    if (pos < 0) return ErrnoStatus("ftell", path_);
    return static_cast<std::uint64_t>(pos);
  }

  const std::string& path() const override { return path_; }

 private:
  std::FILE* file_;
  std::string path_;
};

class RealFileIoImpl : public FileIo {
 public:
  Result<std::string> ReadFile(const std::string& path) override {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) return ErrnoStatus("open", path);
    std::string bytes;
    char buffer[1 << 16];
    std::size_t got = 0;
    while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
      bytes.append(buffer, got);
    }
    const bool failed = std::ferror(file) != 0;
    std::fclose(file);
    if (failed) return ErrnoStatus("read", path);
    return bytes;
  }

  Status WriteFileDurable(const std::string& path,
                          std::string_view bytes) override {
    std::FILE* file = std::fopen(path.c_str(), "wb");
    if (file == nullptr) return ErrnoStatus("open", path);
    Status status;
    if (!bytes.empty() &&
        std::fwrite(bytes.data(), 1, bytes.size(), file) != bytes.size()) {
      status = ErrnoStatus("fwrite", path);
    }
    if (status.ok() && std::fflush(file) != 0) {
      status = ErrnoStatus("fflush", path);
    }
    if (status.ok()) status = FsyncFile(file, path);
    if (std::fclose(file) != 0 && status.ok()) {
      status = ErrnoStatus("fclose", path);
    }
    return status;
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IOError(
          StrFormat("rename failed for '%s' -> '%s': %s", from.c_str(),
                    to.c_str(), std::strerror(errno)));
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (std::remove(path.c_str()) != 0) return ErrnoStatus("remove", path);
    return Status::OK();
  }

  Status SyncDir(const std::string& dir) override {
#ifdef _WIN32
    (void)dir;
    return Status::OK();
#else
    const int fd = open(dir.c_str(), O_RDONLY);
    if (fd < 0) return ErrnoStatus("open dir", dir);
    Status status;
    if (fsync(fd) != 0) status = ErrnoStatus("fsync dir", dir);
    close(fd);
    return status;
#endif
  }

  Status CreateDirs(const std::string& dir) override {
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
      return Status::IOError(StrFormat("create_directories failed for '%s': %s",
                                       dir.c_str(), ec.message().c_str()));
    }
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    std::vector<std::string> names;
    std::error_code ec;
    if (!fs::exists(dir, ec) || ec) return names;
    for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
      names.push_back(it->path().filename().string());
    }
    if (ec) {
      return Status::IOError(StrFormat("list failed for '%s': %s", dir.c_str(),
                                       ec.message().c_str()));
    }
    return names;
  }

  Result<std::unique_ptr<AppendFile>> OpenAppend(const std::string& path,
                                                 bool truncate) override {
    std::FILE* file = std::fopen(path.c_str(), truncate ? "wb" : "ab");
    if (file == nullptr) return ErrnoStatus("open", path);
    if (std::fseek(file, 0, SEEK_END) != 0) {
      std::fclose(file);
      return ErrnoStatus("fseek", path);
    }
    return std::unique_ptr<AppendFile>(new RealAppendFile(file, path));
  }
};

}  // namespace

FileIo* RealFileIo() {
  static RealFileIoImpl* io = new RealFileIoImpl();
  return io;
}

// An append handle whose Append/Sync consult the owning injector's fault
// plan. A tripped Append lands a torn prefix (half the bytes) before
// reporting failure — the on-disk state a real ENOSPC leaves behind.
class FaultInjectingAppendFile : public AppendFile {
 public:
  FaultInjectingAppendFile(FaultInjectingFileIo* owner,
                           std::unique_ptr<AppendFile> inner, bool faultable)
      : owner_(owner), inner_(std::move(inner)), faultable_(faultable) {}

  Status Append(std::string_view bytes) override {
    if (faultable_ &&
        owner_->Trip(owner_->plan_.write_fail_rate,
                     &FaultInjectingFileIo::Stats::writes_failed)) {
      (void)inner_->Append(bytes.substr(0, bytes.size() / 2));
      return Status::IOError(StrFormat("injected short write for '%s'",
                                       inner_->path().c_str()));
    }
    return inner_->Append(bytes);
  }

  Status Sync() override {
    if (faultable_ &&
        owner_->Trip(owner_->plan_.sync_fail_rate,
                     &FaultInjectingFileIo::Stats::syncs_failed)) {
      return Status::IOError(
          StrFormat("injected fsync failure for '%s'", inner_->path().c_str()));
    }
    return inner_->Sync();
  }

  Result<std::uint64_t> Size() override { return inner_->Size(); }
  const std::string& path() const override { return inner_->path(); }

 private:
  FaultInjectingFileIo* owner_;
  std::unique_ptr<AppendFile> inner_;
  bool faultable_;
};

FaultInjectingFileIo::FaultInjectingFileIo(FaultPlan plan, FileIo* base)
    : plan_(std::move(plan)),
      base_(base != nullptr ? base : RealFileIo()),
      rng_(plan_.seed) {}

bool FaultInjectingFileIo::Matches(const std::string& path) const {
  return plan_.path_match.empty() ||
         path.find(plan_.path_match) != std::string::npos;
}

bool FaultInjectingFileIo::Trip(double rate, std::uint64_t Stats::*counter) {
  std::lock_guard<std::mutex> lock(mu_);
  if (rate > 0.0 && rng_.NextDouble() < rate) {
    stats_.*counter += 1;
    return true;
  }
  stats_.ops_passed += 1;
  return false;
}

Result<std::string> FaultInjectingFileIo::ReadFile(const std::string& path) {
  if (Matches(path) && Trip(plan_.read_corrupt_rate, &Stats::reads_corrupted)) {
    BAYESCROWD_ASSIGN_OR_RETURN(std::string bytes, base_->ReadFile(path));
    bytes.resize(bytes.size() / 2);
    return bytes;
  }
  return base_->ReadFile(path);
}

Status FaultInjectingFileIo::WriteFileDurable(const std::string& path,
                                              std::string_view bytes) {
  if (Matches(path) && Trip(plan_.write_fail_rate, &Stats::writes_failed)) {
    (void)base_->WriteFileDurable(path, bytes.substr(0, bytes.size() / 2));
    return Status::IOError(
        StrFormat("injected short write for '%s'", path.c_str()));
  }
  if (Matches(path) && Trip(plan_.sync_fail_rate, &Stats::syncs_failed)) {
    (void)base_->WriteFileDurable(path, bytes);
    return Status::IOError(
        StrFormat("injected fsync failure for '%s'", path.c_str()));
  }
  return base_->WriteFileDurable(path, bytes);
}

Status FaultInjectingFileIo::Rename(const std::string& from,
                                    const std::string& to) {
  return base_->Rename(from, to);
}

Status FaultInjectingFileIo::RemoveFile(const std::string& path) {
  return base_->RemoveFile(path);
}

Status FaultInjectingFileIo::SyncDir(const std::string& dir) {
  if (Matches(dir) && Trip(plan_.sync_fail_rate, &Stats::syncs_failed)) {
    return Status::IOError(
        StrFormat("injected fsync failure for dir '%s'", dir.c_str()));
  }
  return base_->SyncDir(dir);
}

Status FaultInjectingFileIo::CreateDirs(const std::string& dir) {
  return base_->CreateDirs(dir);
}

Result<std::vector<std::string>> FaultInjectingFileIo::ListDir(
    const std::string& dir) {
  return base_->ListDir(dir);
}

Result<std::unique_ptr<AppendFile>> FaultInjectingFileIo::OpenAppend(
    const std::string& path, bool truncate) {
  BAYESCROWD_ASSIGN_OR_RETURN(std::unique_ptr<AppendFile> inner,
                              base_->OpenAppend(path, truncate));
  return std::unique_ptr<AppendFile>(new FaultInjectingAppendFile(
      this, std::move(inner), Matches(path)));
}

FaultInjectingFileIo::Stats FaultInjectingFileIo::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace bayescrowd
