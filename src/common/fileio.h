// Injectable file IO: every durable write the serving stack performs
// (checkpoint generations, the serve manifest, answer logs) flows
// through this seam so tests can inject disk faults deterministically.
//
// Two implementations ship:
//  * RealFileIo() — the process-wide passthrough to the OS. Write paths
//    are durable (fflush + fsync) and every failure carries the path
//    and errno context, so an ENOSPC surfaces as a clean Status instead
//    of a silent truncation.
//  * FaultInjectingFileIo — wraps a base IO with a seeded deterministic
//    fault plan: short writes (a torn prefix actually lands on disk,
//    exactly what a full disk or a kill mid-write leaves), fsync
//    failures, and corrupt-on-read (truncated bytes handed back). An
//    optional path substring confines the chaos to one session's files
//    so a test can poison a single tenant while the rest of the server
//    stays healthy.
//
// The fault plan is deterministic given its seed and the op sequence —
// the chaos harness replays the same fault schedule on every run, so a
// failing chaos test reproduces.

#ifndef BAYESCROWD_COMMON_FILEIO_H_
#define BAYESCROWD_COMMON_FILEIO_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"

namespace bayescrowd {

/// An open append-mode file handle. Append buffers into the OS; Sync
/// makes everything appended so far durable (fflush + fsync).
class AppendFile {
 public:
  virtual ~AppendFile() = default;
  virtual Status Append(std::string_view bytes) = 0;
  virtual Status Sync() = 0;
  /// Current file size (append position) in bytes.
  virtual Result<std::uint64_t> Size() = 0;
  virtual const std::string& path() const = 0;
};

/// The durable-IO seam. All paths are plain filesystem paths; "durable"
/// means flushed and fsynced before the call returns OK.
class FileIo {
 public:
  virtual ~FileIo() = default;

  virtual Result<std::string> ReadFile(const std::string& path) = 0;

  /// Creates/truncates `path`, writes `bytes`, fflush + fsync. On
  /// failure the file may hold a prefix (exactly what a real ENOSPC
  /// leaves); the caller owns cleanup.
  virtual Status WriteFileDurable(const std::string& path,
                                  std::string_view bytes) = 0;

  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  virtual Status SyncDir(const std::string& dir) = 0;
  virtual Status CreateDirs(const std::string& dir) = 0;

  /// File names (not paths) in `dir`; a missing directory reads empty.
  virtual Result<std::vector<std::string>> ListDir(
      const std::string& dir) = 0;

  virtual Result<std::unique_ptr<AppendFile>> OpenAppend(
      const std::string& path, bool truncate) = 0;
};

/// The process-wide passthrough implementation.
FileIo* RealFileIo();

/// A seeded deterministic disk-fault schedule. Rates are per faultable
/// operation; draws are consumed only for operations whose path matches
/// `path_match`, so targeted injection never perturbs the schedule of
/// unrelated files.
struct FaultPlan {
  std::uint64_t seed = 1;

  /// Probability a WriteFileDurable / Append fails after landing only a
  /// prefix of its bytes on disk (the short-write / ENOSPC model).
  double write_fail_rate = 0.0;

  /// Probability a Sync / SyncDir reports failure (data not durable).
  double sync_fail_rate = 0.0;

  /// Probability a ReadFile hands back truncated bytes (corrupt media /
  /// torn page model). The file on disk is untouched.
  double read_corrupt_rate = 0.0;

  /// When non-empty, only paths containing this substring are eligible
  /// for injection; everything else passes straight through.
  std::string path_match;
};

class FaultInjectingFileIo : public FileIo {
 public:
  struct Stats {
    std::uint64_t writes_failed = 0;   // Short writes injected.
    std::uint64_t syncs_failed = 0;    // fsync failures injected.
    std::uint64_t reads_corrupted = 0; // Truncated reads handed back.
    std::uint64_t ops_passed = 0;      // Faultable ops that passed clean.
  };

  /// `base` must outlive this wrapper (null = RealFileIo()).
  explicit FaultInjectingFileIo(FaultPlan plan, FileIo* base = nullptr);

  Result<std::string> ReadFile(const std::string& path) override;
  Status WriteFileDurable(const std::string& path,
                          std::string_view bytes) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status SyncDir(const std::string& dir) override;
  Status CreateDirs(const std::string& dir) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  Result<std::unique_ptr<AppendFile>> OpenAppend(const std::string& path,
                                                 bool truncate) override;

  Stats stats() const;

 private:
  friend class FaultInjectingAppendFile;
  bool Matches(const std::string& path) const;
  /// One deterministic Bernoulli draw against `rate`; counts the op.
  bool Trip(double rate, std::uint64_t Stats::*counter);

  FaultPlan plan_;
  FileIo* base_;
  mutable std::mutex mu_;
  Rng rng_;
  Stats stats_;
};

}  // namespace bayescrowd

#endif  // BAYESCROWD_COMMON_FILEIO_H_
