#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <string>

namespace bayescrowd {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

bool LogLevelEnabled(LogLevel level) {
  return static_cast<int>(level) >=
         g_min_level.load(std::memory_order_relaxed);
}

bool ParseLogLevel(std::string_view name, LogLevel* out) {
  std::string lower(name);
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug") {
    *out = LogLevel::kDebug;
  } else if (lower == "info") {
    *out = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn") {
    *out = LogLevel::kWarning;
  } else if (lower == "error") {
    *out = LogLevel::kError;
  } else if (lower == "off") {
    *out = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

}  // namespace internal_logging
}  // namespace bayescrowd
