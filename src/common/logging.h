// Minimal leveled logging to stderr. Intended for library diagnostics;
// benchmarks and examples print their own structured output to stdout.
//
//   BAYESCROWD_LOG(Warning) << "pruned " << n << " conditions";

#ifndef BAYESCROWD_COMMON_LOGGING_H_
#define BAYESCROWD_COMMON_LOGGING_H_

#include <sstream>

namespace bayescrowd {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Sets the minimum level that is emitted (default: kWarning, so library
/// internals stay quiet unless something is off).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Accumulates one log line and emits it (if enabled) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace bayescrowd

#define BAYESCROWD_LOG(level)                               \
  ::bayescrowd::internal_logging::LogMessage(               \
      ::bayescrowd::LogLevel::k##level, __FILE__, __LINE__) \
      .stream()

#endif  // BAYESCROWD_COMMON_LOGGING_H_
