// Minimal leveled logging to stderr. Intended for library diagnostics;
// benchmarks and examples print their own structured output to stdout.
//
//   BAYESCROWD_LOG(Warning) << "pruned " << n << " conditions";

#ifndef BAYESCROWD_COMMON_LOGGING_H_
#define BAYESCROWD_COMMON_LOGGING_H_

#include <sstream>
#include <string_view>

namespace bayescrowd {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Sets the minimum level that is emitted (default: kWarning, so library
/// internals stay quiet unless something is off). The level is a single
/// atomic: SetLogLevel may race with logging from pool lanes, and each
/// emitted line is written with one stdio call, so concurrent lines never
/// interleave mid-line.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// True when a statement at `level` would be emitted. The BAYESCROWD_LOG
/// macro checks this before constructing the message, so disabled log
/// statements cost one relaxed atomic load — no ostringstream.
bool LogLevelEnabled(LogLevel level);

/// Parses "debug" / "info" / "warning" (or "warn") / "error" / "off",
/// case-insensitively. Returns false on unknown names, leaving *out
/// untouched.
bool ParseLogLevel(std::string_view name, LogLevel* out);

namespace internal_logging {

/// Accumulates one log line and emits it (if enabled) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Makes the enabled/disabled ternary branches agree on type void.
/// operator& binds looser than operator<<, so the whole chained message
/// expression is swallowed.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging
}  // namespace bayescrowd

#define BAYESCROWD_LOG(level)                                          \
  !::bayescrowd::LogLevelEnabled(::bayescrowd::LogLevel::k##level)     \
      ? (void)0                                                        \
      : ::bayescrowd::internal_logging::Voidify() &                    \
            ::bayescrowd::internal_logging::LogMessage(                \
                ::bayescrowd::LogLevel::k##level, __FILE__, __LINE__)  \
                .stream()

#endif  // BAYESCROWD_COMMON_LOGGING_H_
