#include "common/random.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace bayescrowd {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

std::uint64_t Rng::NextUint64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  // Lemire's nearly-divisionless bounded sampling.
  std::uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

int Rng::NextInt(int lo, int hi) {
  return lo + static_cast<int>(
                  NextBelow(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p_true) { return NextDouble() < p_true; }

double Rng::NextGaussian() {
  double u1 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

std::size_t Rng::NextDiscrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (weights.empty() || total <= 0.0) {
    std::fprintf(stderr, "Rng::NextDiscrete: empty or all-zero weights\n");
    std::abort();
  }
  double target = NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

std::array<std::uint64_t, 4> Rng::SaveState() const {
  return {state_[0], state_[1], state_[2], state_[3]};
}

void Rng::LoadState(const std::array<std::uint64_t, 4>& state) {
  for (std::size_t i = 0; i < 4; ++i) state_[i] = state[i];
}

}  // namespace bayescrowd
