// Deterministic, fast pseudo-random number generation.
//
// All stochastic components of the library (data generators, simulated
// crowd workers, sampling estimators, tie-breaking) draw from an Rng
// seeded explicitly, so every experiment is reproducible bit-for-bit.

#ifndef BAYESCROWD_COMMON_RANDOM_H_
#define BAYESCROWD_COMMON_RANDOM_H_

#include <array>
#include <cstdint>
#include <vector>

namespace bayescrowd {

/// xoshiro256** PRNG with SplitMix64 seeding. Not cryptographic; fast and
/// high-quality for simulation purposes.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  std::uint64_t NextUint64();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int NextInt(int lo, int hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw.
  bool NextBool(double p_true);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Draws an index from an (unnormalized) non-negative weight vector.
  /// Returns weights.size()-1 on accumulated rounding; aborts if all
  /// weights are zero or the vector is empty.
  std::size_t NextDiscrete(const std::vector<double>& weights);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = NextBelow(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Derives an independent child generator (for parallel streams).
  Rng Fork();

  /// Raw xoshiro256** state, for checkpointing. LoadState restores the
  /// exact stream position a SaveState captured.
  std::array<std::uint64_t, 4> SaveState() const;
  void LoadState(const std::array<std::uint64_t, 4>& state);

 private:
  std::uint64_t state_[4];
};

}  // namespace bayescrowd

#endif  // BAYESCROWD_COMMON_RANDOM_H_
