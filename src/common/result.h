// Result<T>: a value-or-Status holder, the companion of Status for
// functions that produce a value on success.
//
//   Result<CTable> BuildCTable(...);
//
//   BAYESCROWD_ASSIGN_OR_RETURN(CTable table, BuildCTable(...));

#ifndef BAYESCROWD_COMMON_RESULT_H_
#define BAYESCROWD_COMMON_RESULT_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>

#include "common/status.h"

namespace bayescrowd {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent. Accessing the value of an errored Result aborts.
template <typename T>
class Result {
 public:
  /// Implicit conversion from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit conversion from a non-OK status (failure). Constructing a
  /// Result from an OK status is a bug and is converted to an Internal
  /// error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present.
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckHasValue();
    return *value_;
  }
  T& value() & {
    CheckHasValue();
    return *value_;
  }
  T&& value() && {
    CheckHasValue();
    return std::move(*value_);
  }

  /// Moves the value out, or returns `fallback` on error.
  T value_or(T fallback) && {
    if (ok()) return std::move(*value_);
    return fallback;
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckHasValue() const {
    if (value_.has_value()) return;
    std::fprintf(stderr, "Result::value() on errored Result: %s\n",
                 status_.ToString().c_str());
    std::abort();
  }

  Status status_;  // OK iff value_ present.
  std::optional<T> value_;
};

}  // namespace bayescrowd

#define BAYESCROWD_CONCAT_IMPL_(x, y) x##y
#define BAYESCROWD_CONCAT_(x, y) BAYESCROWD_CONCAT_IMPL_(x, y)

/// Evaluates `rexpr` (a Result<T>), propagating its Status on error,
/// otherwise binding the value to `lhs`.
#define BAYESCROWD_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  BAYESCROWD_ASSIGN_OR_RETURN_IMPL_(                                       \
      BAYESCROWD_CONCAT_(_bc_result_, __LINE__), lhs, rexpr)

#define BAYESCROWD_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                      \
  if (!tmp.ok()) return tmp.status();                      \
  lhs = std::move(tmp).value()

#endif  // BAYESCROWD_COMMON_RESULT_H_
