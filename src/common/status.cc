#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace bayescrowd {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal_status {

void CheckOk(const Status& status, const char* file, int line) {
  if (status.ok()) return;
  std::fprintf(stderr, "BAYESCROWD_CHECK_OK failed at %s:%d: %s\n", file, line,
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal_status
}  // namespace bayescrowd
