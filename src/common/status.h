// Status: lightweight error propagation without exceptions.
//
// Library code in bayescrowd never throws; fallible operations return a
// Status (or Result<T>, see result.h). The idiom follows RocksDB/Arrow:
//
//   Status DoThing() {
//     BAYESCROWD_RETURN_NOT_OK(Step1());
//     if (bad) return Status::InvalidArgument("step2 needs a frob");
//     return Status::OK();
//   }

#ifndef BAYESCROWD_COMMON_STATUS_H_
#define BAYESCROWD_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>

namespace bayescrowd {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kResourceExhausted = 6,
  kIOError = 7,
  kNotImplemented = 8,
  kInternal = 9,
  kUnavailable = 10,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Value type describing the outcome of a fallible operation.
///
/// A Status is either OK (the default) or carries a code plus a message.
/// It is cheap to copy in the OK case and cheap to move always.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// Transient failure of an external dependency (crowd platform down,
  /// batch timed out). The only code the framework's retry layer treats
  /// as retryable; everything else stays fatal.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace bayescrowd

/// Propagates a non-OK Status to the caller.
#define BAYESCROWD_RETURN_NOT_OK(expr)             \
  do {                                             \
    ::bayescrowd::Status _st = (expr);             \
    if (!_st.ok()) return _st;                     \
  } while (false)

/// Aborts the process if `expr` is not OK. For use in tests, examples and
/// benchmarks where an error is a programming bug.
#define BAYESCROWD_CHECK_OK(expr) \
  ::bayescrowd::internal_status::CheckOk((expr), __FILE__, __LINE__)

namespace bayescrowd::internal_status {
void CheckOk(const Status& status, const char* file, int line);
}  // namespace bayescrowd::internal_status

#endif  // BAYESCROWD_COMMON_STATUS_H_
