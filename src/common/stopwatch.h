// Wall-clock stopwatch used by experiments and run statistics.

#ifndef BAYESCROWD_COMMON_STOPWATCH_H_
#define BAYESCROWD_COMMON_STOPWATCH_H_

#include <chrono>

namespace bayescrowd {

/// Measures elapsed wall-clock time. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace bayescrowd

#endif  // BAYESCROWD_COMMON_STOPWATCH_H_
