#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cctype>
#include <charconv>

namespace bayescrowd {

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (true) {
    const std::size_t pos = text.find(delim, begin);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(begin));
      return out;
    }
    out.emplace_back(text.substr(begin, pos - begin));
    begin = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ParseInt(std::string_view text, int* out) {
  text = Trim(text);
  if (text.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

bool ParseDouble(std::string_view text, double* out) {
  text = Trim(text);
  if (text.empty()) return false;
  // std::from_chars for double is not reliably available on older
  // libstdc++; use strtod on a bounded copy.
  std::string buf(text);
  char* end = nullptr;
  *out = std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size();
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int size = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (size < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<std::size_t>(size), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace bayescrowd
