// Small string helpers shared across the library (no dependency on
// anything but the standard library).

#ifndef BAYESCROWD_COMMON_STRING_UTIL_H_
#define BAYESCROWD_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace bayescrowd {

/// Splits `text` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char delim);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Parses a decimal integer; returns false on malformed input.
bool ParseInt(std::string_view text, int* out);

/// Parses a floating-point number; returns false on malformed input.
bool ParseDouble(std::string_view text, double* out);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace bayescrowd

#endif  // BAYESCROWD_COMMON_STRING_UTIL_H_
