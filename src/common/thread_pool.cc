#include "common/thread_pool.h"

#include <atomic>
#include <chrono>

namespace bayescrowd {

std::size_t ThreadPool::ResolveThreads(std::size_t threads) {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads)
    : lane_accum_(ResolveThreads(threads)) {
  const std::size_t lanes = lane_accum_.size();
  workers_.reserve(lanes - 1);
  for (std::size_t i = 0; i + 1 < lanes; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

bool ThreadPool::RunOne(std::unique_lock<std::mutex>& lock) {
  if (queue_.empty()) return false;
  std::function<void()> task = std::move(queue_.front());
  queue_.pop_front();
  ++in_flight_;
  lock.unlock();
  task();
  lock.lock();
  --in_flight_;
  if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
  return true;
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (RunOne(lock)) continue;
    if (stopping_) return;
    task_ready_.wait(
        lock, [this] { return stopping_ || !queue_.empty(); });
  }
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (RunOne(lock)) continue;
    if (in_flight_ == 0) return;
    all_done_.wait(
        lock, [this] { return !queue_.empty() || in_flight_ == 0; });
  }
}

void ThreadPool::ParallelFor(
    std::size_t count,
    const std::function<void(std::size_t lane, std::size_t index)>& fn) {
  if (count == 0) return;
  const std::size_t lanes = std::min(size(), count);
  // One shared cursor; every lane pulls the next unclaimed index. The
  // body outlives every Submit because Wait() below is a barrier. Each
  // lane accounts its item count and body wall-clock once per call.
  std::atomic<std::size_t> next{0};
  const auto body = [this, &next, count, &fn](std::size_t lane) {
    const auto start = std::chrono::steady_clock::now();
    std::uint64_t executed = 0;
    for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
         i < count;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      fn(lane, i);
      ++executed;
    }
    const auto busy = std::chrono::steady_clock::now() - start;
    lane_accum_[lane].tasks.fetch_add(executed, std::memory_order_relaxed);
    lane_accum_[lane].busy_ns.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(busy)
                .count()),
        std::memory_order_relaxed);
  };
  if (lanes <= 1) {
    body(0);
    return;
  }
  for (std::size_t lane = 1; lane < lanes; ++lane) {
    Submit([&body, lane] { body(lane); });
  }
  body(0);
  Wait();
}

std::vector<ThreadPool::LaneStats> ThreadPool::lane_stats() const {
  std::vector<LaneStats> out(lane_accum_.size());
  for (std::size_t lane = 0; lane < lane_accum_.size(); ++lane) {
    out[lane].tasks =
        lane_accum_[lane].tasks.load(std::memory_order_relaxed);
    out[lane].busy_seconds =
        static_cast<double>(
            lane_accum_[lane].busy_ns.load(std::memory_order_relaxed)) /
        1e9;
  }
  return out;
}

}  // namespace bayescrowd
