#include "common/thread_pool.h"

#include <atomic>

namespace bayescrowd {

std::size_t ThreadPool::ResolveThreads(std::size_t threads) {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t lanes = ResolveThreads(threads);
  workers_.reserve(lanes - 1);
  for (std::size_t i = 0; i + 1 < lanes; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

bool ThreadPool::RunOne(std::unique_lock<std::mutex>& lock) {
  if (queue_.empty()) return false;
  std::function<void()> task = std::move(queue_.front());
  queue_.pop_front();
  ++in_flight_;
  lock.unlock();
  task();
  lock.lock();
  --in_flight_;
  if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
  return true;
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (RunOne(lock)) continue;
    if (stopping_) return;
    task_ready_.wait(
        lock, [this] { return stopping_ || !queue_.empty(); });
  }
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (RunOne(lock)) continue;
    if (in_flight_ == 0) return;
    all_done_.wait(
        lock, [this] { return !queue_.empty() || in_flight_ == 0; });
  }
}

void ThreadPool::ParallelFor(
    std::size_t count,
    const std::function<void(std::size_t lane, std::size_t index)>& fn) {
  if (count == 0) return;
  const std::size_t lanes = std::min(size(), count);
  if (lanes <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(0, i);
    return;
  }
  // One shared cursor; every lane pulls the next unclaimed index. The
  // body outlives every Submit because Wait() below is a barrier.
  std::atomic<std::size_t> next{0};
  const auto body = [&next, count, &fn](std::size_t lane) {
    for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
         i < count;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      fn(lane, i);
    }
  };
  for (std::size_t lane = 1; lane < lanes; ++lane) {
    Submit([&body, lane] { body(lane); });
  }
  body(0);
  Wait();
}

}  // namespace bayescrowd
