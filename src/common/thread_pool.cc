#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <exception>

#include "common/string_util.h"

namespace bayescrowd {

std::size_t ThreadPool::ResolveThreads(std::size_t threads) {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads)
    : lane_accum_(ResolveThreads(threads)) {
  const std::size_t lanes = lane_accum_.size();
  workers_.reserve(lanes - 1);
  for (std::size_t i = 0; i + 1 < lanes; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

namespace {

/// Converts the in-flight exception (call inside a catch block) to a
/// Status. Shared by the pool-global Submit path and ParallelFor's
/// per-call error slot.
Status CurrentExceptionToStatus() {
  try {
    throw;
  } catch (const std::exception& e) {
    return Status::Internal(StrFormat("pool task threw: %s", e.what()));
  } catch (...) {
    return Status::Internal("pool task threw a non-exception object");
  }
}

}  // namespace

void ThreadPool::RecordException() {
  Status error = CurrentExceptionToStatus();
  std::unique_lock<std::mutex> lock(error_mu_);
  if (first_error_.ok()) first_error_ = std::move(error);
}

Status ThreadPool::TakeError() {
  std::unique_lock<std::mutex> lock(error_mu_);
  Status out = std::move(first_error_);
  first_error_ = Status::OK();
  return out;
}

bool ThreadPool::RunOne(std::unique_lock<std::mutex>& lock) {
  if (queue_.empty()) return false;
  std::function<void()> task = std::move(queue_.front());
  queue_.pop_front();
  ++in_flight_;
  lock.unlock();
  // The lane boundary: an escaping exception would unwind into the
  // worker's start function and terminate the process, so convert it
  // to the pool's first-error Status instead.
  try {
    task();
  } catch (...) {
    RecordException();
  }
  lock.lock();
  --in_flight_;
  if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
  return true;
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (RunOne(lock)) continue;
    if (stopping_) return;
    task_ready_.wait(
        lock, [this] { return stopping_ || !queue_.empty(); });
  }
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (RunOne(lock)) continue;
    if (in_flight_ == 0) return;
    all_done_.wait(
        lock, [this] { return !queue_.empty() || in_flight_ == 0; });
  }
}

Status ThreadPool::ParallelFor(
    std::size_t count,
    const std::function<void(std::size_t lane, std::size_t index)>& fn) {
  if (count == 0) return Status::OK();
  const std::size_t lanes = std::min(size(), count);
  // One shared cursor; every lane pulls the next unclaimed index. The
  // body outlives every Submit because Wait() below is a barrier. Each
  // lane accounts its item count and body wall-clock once per call. A
  // throwing body poisons the loop: the exception becomes the returned
  // Status and the remaining unclaimed indices are skipped.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> poisoned{false};
  // The error slot is local to this call, not the pool: a co-resident
  // caller's failure (a different serve session sharing the pool) must
  // never surface here, and this call's failure must never latch the
  // pool for later callers. The pool-global first_error_ slot remains
  // for raw Submit()/Wait() users only.
  std::mutex call_error_mu;
  Status call_error = Status::OK();
  const auto record_call_error = [&call_error_mu, &call_error]() {
    Status error = CurrentExceptionToStatus();
    std::unique_lock<std::mutex> lock(call_error_mu);
    if (call_error.ok()) call_error = std::move(error);
  };
  const auto body = [this, &next, &poisoned, &record_call_error, count,
                     &fn](std::size_t lane) {
    const auto start = std::chrono::steady_clock::now();
    std::uint64_t executed = 0;
    for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
         i < count && !poisoned.load(std::memory_order_relaxed);
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      try {
        fn(lane, i);
      } catch (...) {
        record_call_error();
        poisoned.store(true, std::memory_order_relaxed);
      }
      ++executed;
    }
    const auto busy = std::chrono::steady_clock::now() - start;
    lane_accum_[lane].tasks.fetch_add(executed, std::memory_order_relaxed);
    lane_accum_[lane].busy_ns.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(busy)
                .count()),
        std::memory_order_relaxed);
  };
  if (lanes <= 1) {
    body(0);
    return call_error;
  }
  for (std::size_t lane = 1; lane < lanes; ++lane) {
    // body() catches everything itself, so these wrappers never throw
    // and never touch the pool-global error slot.
    Submit([&body, lane] { body(lane); });
  }
  body(0);
  Wait();
  return call_error;
}

std::vector<ThreadPool::LaneStats> ThreadPool::lane_stats() const {
  std::vector<LaneStats> out(lane_accum_.size());
  for (std::size_t lane = 0; lane < lane_accum_.size(); ++lane) {
    out[lane].tasks =
        lane_accum_[lane].tasks.load(std::memory_order_relaxed);
    out[lane].busy_seconds =
        static_cast<double>(
            lane_accum_[lane].busy_ns.load(std::memory_order_relaxed)) /
        1e9;
  }
  return out;
}

}  // namespace bayescrowd
