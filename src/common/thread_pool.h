// ThreadPool: a fixed-size worker pool with a submit/wait and a
// parallel-for API, shared by the batch probability evaluator and the
// benchmark harness.
//
// Design constraints (see DESIGN.md, "Concurrency & caching model"):
//  * The calling thread participates as lane 0, so a pool of size 1
//    never spawns a thread and ParallelFor degenerates to a plain loop —
//    the single-threaded path stays bit-identical to the pre-pool code.
//  * Work items receive (lane, index). Writing results into
//    per-index slots (and accumulating statistics per lane, merged after
//    the barrier) keeps outputs deterministic for any pool size: the
//    schedule may vary, the values may not.
//  * Expected error handling flows through Status/Result values stored
//    into per-index slots. A task that *throws* anyway is caught at the
//    lane boundary — never allowed to unwind into a worker thread's
//    start function, which would terminate the process. ParallelFor
//    surfaces the first exception of *that call* as its returned Status
//    (the error slot is per-call, so a failing caller can never latch
//    the shared pool for co-resident callers); raw Submit/Wait users
//    poll the pool-global TakeError().

#ifndef BAYESCROWD_COMMON_THREAD_POOL_H_
#define BAYESCROWD_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace bayescrowd {

class ThreadPool {
 public:
  /// `threads` is the total number of execution lanes including the
  /// caller; 0 resolves to the hardware concurrency. A pool of size 1
  /// spawns no threads at all.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of execution lanes (worker threads + the calling thread).
  std::size_t size() const { return workers_.size() + 1; }

  /// Resolves a thread-count knob the way the pool constructor does.
  static std::size_t ResolveThreads(std::size_t threads);

  /// Enqueues one task for the worker threads. Pair with Wait().
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished; the calling thread
  /// helps drain the queue while waiting.
  void Wait();

  /// Runs fn(lane, index) for every index in [0, count), spreading
  /// indices over the lanes via a shared atomic counter, and returns
  /// after all indices completed. lane is in [0, size()); the caller
  /// executes as one of the lanes. If any invocation throws, the first
  /// exception *of this call* is converted to an Internal Status
  /// (remaining unclaimed indices are skipped); OK otherwise. Errors
  /// never cross calls: concurrent or later ParallelFor callers on the
  /// same pool are unaffected, and exceptions recorded by raw Submit()
  /// tasks are never returned here.
  Status ParallelFor(std::size_t count,
                     const std::function<void(std::size_t lane,
                                              std::size_t index)>& fn);

  /// Returns and clears the first error recorded since the last call:
  /// an exception thrown by a raw Submit()ed task (caught at the lane
  /// boundary instead of terminating the process). OK when none.
  /// ParallelFor does not feed this slot — its errors are per-call.
  Status TakeError();

  /// Cumulative per-lane utilization across every ParallelFor on this
  /// pool: work items executed and wall-clock spent inside the loop
  /// body, attributed to the *logical* lane (the caller is lane 0).
  /// Cheap to record — one clock pair and two relaxed atomic adds per
  /// lane per ParallelFor call, nothing per index.
  struct LaneStats {
    std::uint64_t tasks = 0;       // Work items executed by the lane.
    double busy_seconds = 0.0;     // Time inside ParallelFor bodies.
  };
  std::vector<LaneStats> lane_stats() const;

 private:
  void WorkerLoop();
  /// Pops and runs one task if available. `lock` must hold mu_; it is
  /// released while the task runs and re-acquired after. Returns false
  /// when the queue was empty.
  bool RunOne(std::unique_lock<std::mutex>& lock);
  /// Records the currently in-flight exception as the pool's first
  /// error (later ones are dropped).
  void RecordException();

  struct LaneAccum {
    std::atomic<std::uint64_t> tasks{0};
    std::atomic<std::uint64_t> busy_ns{0};
  };

  std::vector<std::thread> workers_;
  std::vector<LaneAccum> lane_accum_;  // size() entries, fixed at ctor.
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;  // Popped but not yet finished.
  bool stopping_ = false;

  std::mutex error_mu_;
  Status first_error_ = Status::OK();  // Guarded by error_mu_.
};

}  // namespace bayescrowd

#endif  // BAYESCROWD_COMMON_THREAD_POOL_H_
