#include "core/checkpoint.h"

#include <algorithm>
#include <utility>

#include "common/crc32.h"
#include "common/string_util.h"

namespace bayescrowd {
namespace {

// ------------------------------------------------------------------ //
// Component serializers. Each Read* validates enum domains and element
// counts; BinReader bounds-checks every access, so corrupt payloads
// fail with a Status instead of undefined behavior.
// ------------------------------------------------------------------ //

void WriteExpression(BinWriter* w, const Expression& e) {
  w->WriteU64(e.lhs.object);
  w->WriteU64(e.lhs.attribute);
  w->WriteU8(static_cast<std::uint8_t>(e.op));
  w->WriteBool(e.rhs_is_var);
  if (e.rhs_is_var) {
    w->WriteU64(e.rhs_var.object);
    w->WriteU64(e.rhs_var.attribute);
  } else {
    w->WriteI32(e.rhs_const);
  }
}

Status ReadExpression(BinReader* r, Expression* e) {
  std::uint64_t object = 0;
  std::uint64_t attribute = 0;
  BAYESCROWD_RETURN_NOT_OK(r->ReadU64(&object));
  BAYESCROWD_RETURN_NOT_OK(r->ReadU64(&attribute));
  e->lhs.object = static_cast<std::size_t>(object);
  e->lhs.attribute = static_cast<std::size_t>(attribute);
  std::uint8_t op = 0;
  BAYESCROWD_RETURN_NOT_OK(r->ReadU8(&op));
  if (op > static_cast<std::uint8_t>(CmpOp::kLess)) {
    return Status::OutOfRange("checkpoint: bad comparison operator");
  }
  e->op = static_cast<CmpOp>(op);
  BAYESCROWD_RETURN_NOT_OK(r->ReadBool(&e->rhs_is_var));
  if (e->rhs_is_var) {
    BAYESCROWD_RETURN_NOT_OK(r->ReadU64(&object));
    BAYESCROWD_RETURN_NOT_OK(r->ReadU64(&attribute));
    e->rhs_var.object = static_cast<std::size_t>(object);
    e->rhs_var.attribute = static_cast<std::size_t>(attribute);
  } else {
    BAYESCROWD_RETURN_NOT_OK(r->ReadI32(&e->rhs_const));
  }
  return Status::OK();
}

// Minimum serialized expression: 2 u64 + op + flag + i32 = 22 bytes.
constexpr std::size_t kMinExpressionBytes = 22;

void WriteCondition(BinWriter* w, const Condition& c) {
  Truth state = Truth::kUnknown;
  if (c.IsTrue()) state = Truth::kTrue;
  if (c.IsFalse()) state = Truth::kFalse;
  w->WriteU8(static_cast<std::uint8_t>(state));
  w->WriteU64(c.conjuncts().size());
  for (const Conjunct& conj : c.conjuncts()) {
    w->WriteU64(conj.size());
    for (const Expression& e : conj) WriteExpression(w, e);
  }
}

Status ReadCondition(BinReader* r, Condition* out) {
  std::uint8_t state = 0;
  BAYESCROWD_RETURN_NOT_OK(r->ReadU8(&state));
  if (state > static_cast<std::uint8_t>(Truth::kUnknown)) {
    return Status::OutOfRange("checkpoint: bad condition state");
  }
  std::uint64_t num_conjuncts = 0;
  BAYESCROWD_RETURN_NOT_OK(r->ReadCount(&num_conjuncts, 8));
  std::vector<Conjunct> conjuncts;
  conjuncts.reserve(num_conjuncts);
  for (std::uint64_t c = 0; c < num_conjuncts; ++c) {
    std::uint64_t num_exprs = 0;
    BAYESCROWD_RETURN_NOT_OK(r->ReadCount(&num_exprs, kMinExpressionBytes));
    Conjunct conj(num_exprs);
    for (Expression& e : conj) {
      BAYESCROWD_RETURN_NOT_OK(ReadExpression(r, &e));
    }
    conjuncts.push_back(std::move(conj));
  }
  // Decided conditions always serialize with zero conjuncts (the
  // simplifier clears them), so the three cases rebuild exactly.
  switch (static_cast<Truth>(state)) {
    case Truth::kTrue:
      *out = Condition::True();
      break;
    case Truth::kFalse:
      *out = Condition::False();
      break;
    case Truth::kUnknown:
      if (conjuncts.empty()) {
        return Status::OutOfRange(
            "checkpoint: undecided condition without conjuncts");
      }
      *out = Condition::Cnf(std::move(conjuncts));
      break;
  }
  return Status::OK();
}

void WriteRoundLog(BinWriter* w, const RoundLog& log) {
  w->WriteU64(log.round);
  w->WriteU64(log.tasks);
  w->WriteDouble(log.seconds);
  w->WriteDouble(log.select_seconds);
  w->WriteDouble(log.update_seconds);
  w->WriteU64(log.attempts);
  w->WriteU64(log.answered);
  w->WriteU64(log.unanswered);
  w->WriteDouble(log.cost_refunded);
  w->WriteDouble(log.backoff_seconds);
  w->WriteDouble(log.simulated_seconds);
  w->WriteBool(log.abandoned);
  w->WriteU64(log.cache_hits);
  w->WriteU64(log.cache_misses);
}

Status ReadRoundLog(BinReader* r, RoundLog* log) {
  std::uint64_t u = 0;
  BAYESCROWD_RETURN_NOT_OK(r->ReadU64(&u));
  log->round = static_cast<std::size_t>(u);
  BAYESCROWD_RETURN_NOT_OK(r->ReadU64(&u));
  log->tasks = static_cast<std::size_t>(u);
  BAYESCROWD_RETURN_NOT_OK(r->ReadDouble(&log->seconds));
  BAYESCROWD_RETURN_NOT_OK(r->ReadDouble(&log->select_seconds));
  BAYESCROWD_RETURN_NOT_OK(r->ReadDouble(&log->update_seconds));
  BAYESCROWD_RETURN_NOT_OK(r->ReadU64(&u));
  log->attempts = static_cast<std::size_t>(u);
  BAYESCROWD_RETURN_NOT_OK(r->ReadU64(&u));
  log->answered = static_cast<std::size_t>(u);
  BAYESCROWD_RETURN_NOT_OK(r->ReadU64(&u));
  log->unanswered = static_cast<std::size_t>(u);
  BAYESCROWD_RETURN_NOT_OK(r->ReadDouble(&log->cost_refunded));
  BAYESCROWD_RETURN_NOT_OK(r->ReadDouble(&log->backoff_seconds));
  BAYESCROWD_RETURN_NOT_OK(r->ReadDouble(&log->simulated_seconds));
  BAYESCROWD_RETURN_NOT_OK(r->ReadBool(&log->abandoned));
  BAYESCROWD_RETURN_NOT_OK(r->ReadU64(&log->cache_hits));
  BAYESCROWD_RETURN_NOT_OK(r->ReadU64(&log->cache_misses));
  return Status::OK();
}

// Minimum serialized round log: 7 u64 + 6 double + bool = 105 bytes.
constexpr std::size_t kMinRoundLogBytes = 105;

void WriteMetricsSnapshot(BinWriter* w, const obs::MetricsSnapshot& m) {
  w->WriteU64(m.counters.size());
  for (const auto& [name, value] : m.counters) {
    w->WriteString(name);
    w->WriteU64(value);
  }
  w->WriteU64(m.gauges.size());
  for (const auto& [name, value] : m.gauges) {
    w->WriteString(name);
    w->WriteDouble(value);
  }
  w->WriteU64(m.histograms.size());
  for (const auto& [name, hist] : m.histograms) {
    w->WriteString(name);
    w->WriteU64(hist.bounds.size());
    for (const double b : hist.bounds) w->WriteDouble(b);
    w->WriteU64(hist.bucket_counts.size());
    for (const std::uint64_t c : hist.bucket_counts) w->WriteU64(c);
    w->WriteU64(hist.count);
    w->WriteDouble(hist.sum);
  }
}

Status ReadMetricsSnapshot(BinReader* r, obs::MetricsSnapshot* m) {
  std::uint64_t n = 0;
  BAYESCROWD_RETURN_NOT_OK(r->ReadCount(&n, 16));
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name;
    std::uint64_t value = 0;
    BAYESCROWD_RETURN_NOT_OK(r->ReadString(&name));
    BAYESCROWD_RETURN_NOT_OK(r->ReadU64(&value));
    m->counters[std::move(name)] = value;
  }
  BAYESCROWD_RETURN_NOT_OK(r->ReadCount(&n, 16));
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name;
    double value = 0.0;
    BAYESCROWD_RETURN_NOT_OK(r->ReadString(&name));
    BAYESCROWD_RETURN_NOT_OK(r->ReadDouble(&value));
    m->gauges[std::move(name)] = value;
  }
  BAYESCROWD_RETURN_NOT_OK(r->ReadCount(&n, 40));
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name;
    BAYESCROWD_RETURN_NOT_OK(r->ReadString(&name));
    obs::HistogramSnapshot hist;
    std::uint64_t count = 0;
    BAYESCROWD_RETURN_NOT_OK(r->ReadCount(&count, 8));
    hist.bounds.resize(count);
    for (double& b : hist.bounds) {
      BAYESCROWD_RETURN_NOT_OK(r->ReadDouble(&b));
    }
    BAYESCROWD_RETURN_NOT_OK(r->ReadCount(&count, 8));
    hist.bucket_counts.resize(count);
    for (std::uint64_t& c : hist.bucket_counts) {
      BAYESCROWD_RETURN_NOT_OK(r->ReadU64(&c));
    }
    BAYESCROWD_RETURN_NOT_OK(r->ReadU64(&hist.count));
    BAYESCROWD_RETURN_NOT_OK(r->ReadDouble(&hist.sum));
    m->histograms[std::move(name)] = std::move(hist);
  }
  return Status::OK();
}

void WriteBreakerRecord(BinWriter* w, const SolverBreakerRecord& b) {
  w->WriteU64(b.object);
  w->WriteU64(b.fingerprint.first);
  w->WriteU64(b.fingerprint.second);
  w->WriteU64(b.consecutive);
  w->WriteBool(b.open);
  w->WriteDouble(b.last.lo);
  w->WriteDouble(b.last.hi);
  w->WriteU8(static_cast<std::uint8_t>(b.last.quality));
}

Status ReadBreakerRecord(BinReader* r, SolverBreakerRecord* b) {
  std::uint64_t u = 0;
  BAYESCROWD_RETURN_NOT_OK(r->ReadU64(&u));
  b->object = static_cast<std::size_t>(u);
  BAYESCROWD_RETURN_NOT_OK(r->ReadU64(&b->fingerprint.first));
  BAYESCROWD_RETURN_NOT_OK(r->ReadU64(&b->fingerprint.second));
  BAYESCROWD_RETURN_NOT_OK(r->ReadU64(&u));
  b->consecutive = static_cast<std::size_t>(u);
  BAYESCROWD_RETURN_NOT_OK(r->ReadBool(&b->open));
  BAYESCROWD_RETURN_NOT_OK(r->ReadDouble(&b->last.lo));
  BAYESCROWD_RETURN_NOT_OK(r->ReadDouble(&b->last.hi));
  std::uint8_t quality = 0;
  BAYESCROWD_RETURN_NOT_OK(r->ReadU8(&quality));
  if (quality > static_cast<std::uint8_t>(ProbQuality::kUnknown)) {
    return Status::OutOfRange("checkpoint: bad breaker interval quality");
  }
  b->last.quality = static_cast<ProbQuality>(quality);
  if (!(b->last.lo >= 0.0 && b->last.lo <= b->last.hi &&
        b->last.hi <= 1.0)) {
    return Status::OutOfRange("checkpoint: breaker interval out of [0,1]");
  }
  return Status::OK();
}

// Minimum serialized breaker record: 4 u64 + 2 double + bool + u8.
constexpr std::size_t kMinBreakerBytes = 50;

Status ReadSize(BinReader* r, std::size_t* out) {
  std::uint64_t u = 0;
  BAYESCROWD_RETURN_NOT_OK(r->ReadU64(&u));
  *out = static_cast<std::size_t>(u);
  return Status::OK();
}

// ------------------------------------------------------------------ //
// File helpers.
// ------------------------------------------------------------------ //

/// Parses "ckpt-NNNNNNNN.bin" (empty `session_id`) or
/// "ckpt-<session_id>-NNNNNNNN.bin" (non-empty); returns false for
/// anything else — tmp files left by a killed write, and any other
/// session's namespace. The two forms never match each other: the
/// legacy parse requires a digit right after "ckpt-", and the
/// namespaced parse requires its exact session prefix.
bool ParseGenerationName(const std::string& name,
                         const std::string& session_id,
                         std::size_t* rounds) {
  std::string prefix = "ckpt-";
  if (!session_id.empty()) prefix += session_id + "-";
  constexpr std::string_view kSuffix = ".bin";
  if (name.size() != prefix.size() + 8 + kSuffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                   kSuffix) != 0) {
    return false;
  }
  std::size_t value = 0;
  for (std::size_t i = prefix.size(); i < prefix.size() + 8; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  *rounds = value;
  return true;
}

}  // namespace

void SerializeSessionState(const SessionState& state, std::string* out) {
  BinWriter w(out);
  w.WriteDouble(state.budget_left);
  w.WriteU64(state.consecutive_barren);
  w.WriteU64(state.rounds);
  w.WriteU64(state.tasks_posted);
  w.WriteDouble(state.cost_spent);
  w.WriteDouble(state.cost_refunded);
  w.WriteU64(state.tasks_unanswered);
  w.WriteU64(state.retries);
  w.WriteU64(state.transient_failures);
  w.WriteU64(state.rounds_abandoned);
  w.WriteU64(state.order_conflicts);
  w.WriteDouble(state.backoff_seconds);
  w.WriteDouble(state.simulated_seconds);
  w.WriteU64(state.initial_true);
  w.WriteU64(state.initial_false);
  w.WriteU64(state.initial_undecided);
  w.WriteU64(state.round_logs.size());
  for (const RoundLog& log : state.round_logs) WriteRoundLog(&w, log);
  w.WriteU64(state.conditions.size());
  for (const Condition& c : state.conditions) WriteCondition(&w, c);
  w.WriteString(state.knowledge_blob);
  w.WriteString(state.evaluator_blob);
  WriteMetricsSnapshot(&w, state.metrics);
  w.WriteString(state.platform_state);
  w.WriteU64(state.platform_tasks);
  w.WriteU64(state.platform_rounds);
  w.WriteU64(state.answer_log_offset);
  w.WriteString(state.network_blob);
  w.WriteU64(state.config_fingerprint);
  // v2 fields. v1 payloads ended at the config fingerprint.
  w.WriteU64(state.solver_breakers.size());
  for (const SolverBreakerRecord& b : state.solver_breakers) {
    WriteBreakerRecord(&w, b);
  }
}

Status DeserializeSessionState(BinReader* reader, SessionState* out,
                               std::uint32_t version) {
  if (version == 0 || version > kCheckpointVersion) {
    return Status::InvalidArgument(StrFormat(
        "checkpoint: unsupported payload version %u",
        static_cast<unsigned>(version)));
  }
  BAYESCROWD_RETURN_NOT_OK(reader->ReadDouble(&out->budget_left));
  BAYESCROWD_RETURN_NOT_OK(ReadSize(reader, &out->consecutive_barren));
  BAYESCROWD_RETURN_NOT_OK(ReadSize(reader, &out->rounds));
  BAYESCROWD_RETURN_NOT_OK(ReadSize(reader, &out->tasks_posted));
  BAYESCROWD_RETURN_NOT_OK(reader->ReadDouble(&out->cost_spent));
  BAYESCROWD_RETURN_NOT_OK(reader->ReadDouble(&out->cost_refunded));
  BAYESCROWD_RETURN_NOT_OK(ReadSize(reader, &out->tasks_unanswered));
  BAYESCROWD_RETURN_NOT_OK(ReadSize(reader, &out->retries));
  BAYESCROWD_RETURN_NOT_OK(ReadSize(reader, &out->transient_failures));
  BAYESCROWD_RETURN_NOT_OK(ReadSize(reader, &out->rounds_abandoned));
  BAYESCROWD_RETURN_NOT_OK(ReadSize(reader, &out->order_conflicts));
  BAYESCROWD_RETURN_NOT_OK(reader->ReadDouble(&out->backoff_seconds));
  BAYESCROWD_RETURN_NOT_OK(reader->ReadDouble(&out->simulated_seconds));
  BAYESCROWD_RETURN_NOT_OK(ReadSize(reader, &out->initial_true));
  BAYESCROWD_RETURN_NOT_OK(ReadSize(reader, &out->initial_false));
  BAYESCROWD_RETURN_NOT_OK(ReadSize(reader, &out->initial_undecided));
  std::uint64_t count = 0;
  BAYESCROWD_RETURN_NOT_OK(reader->ReadCount(&count, kMinRoundLogBytes));
  out->round_logs.resize(count);
  for (RoundLog& log : out->round_logs) {
    BAYESCROWD_RETURN_NOT_OK(ReadRoundLog(reader, &log));
  }
  BAYESCROWD_RETURN_NOT_OK(reader->ReadCount(&count, 9));
  out->conditions.resize(count);
  for (Condition& c : out->conditions) {
    BAYESCROWD_RETURN_NOT_OK(ReadCondition(reader, &c));
  }
  BAYESCROWD_RETURN_NOT_OK(reader->ReadString(&out->knowledge_blob));
  BAYESCROWD_RETURN_NOT_OK(reader->ReadString(&out->evaluator_blob));
  BAYESCROWD_RETURN_NOT_OK(ReadMetricsSnapshot(reader, &out->metrics));
  BAYESCROWD_RETURN_NOT_OK(reader->ReadString(&out->platform_state));
  BAYESCROWD_RETURN_NOT_OK(ReadSize(reader, &out->platform_tasks));
  BAYESCROWD_RETURN_NOT_OK(ReadSize(reader, &out->platform_rounds));
  BAYESCROWD_RETURN_NOT_OK(ReadSize(reader, &out->answer_log_offset));
  BAYESCROWD_RETURN_NOT_OK(reader->ReadString(&out->network_blob));
  BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&out->config_fingerprint));
  if (version >= 2) {
    BAYESCROWD_RETURN_NOT_OK(reader->ReadCount(&count, kMinBreakerBytes));
    out->solver_breakers.resize(count);
    std::size_t last_object = 0;
    for (std::size_t i = 0; i < out->solver_breakers.size(); ++i) {
      SolverBreakerRecord& b = out->solver_breakers[i];
      BAYESCROWD_RETURN_NOT_OK(ReadBreakerRecord(reader, &b));
      if (i > 0 && b.object <= last_object) {
        return Status::OutOfRange(
            "checkpoint: breaker records not ascending by object");
      }
      last_object = b.object;
    }
    // v2 envelopes predate compiled-circuit artifacts; their blobs are
    // format 2 (graded intervals, no artifact appendix).
    out->evaluator_blob_format = version == 2 ? 2 : kMemoStateFormat;
  } else {
    out->solver_breakers.clear();
    out->evaluator_blob_format = 1;  // Pre-governor point-probability blobs.
  }
  if (!reader->AtEnd()) {
    return Status::OutOfRange(
        "checkpoint: trailing bytes after session state");
  }
  return Status::OK();
}

std::string WrapCheckpoint(const std::string& payload) {
  std::string out;
  out.reserve(payload.size() + 20);
  out.append("BCKP", 4);
  BinWriter w(&out);
  w.WriteU32(kCheckpointVersion);
  w.WriteU64(payload.size());
  out.append(payload);
  w.WriteU32(Crc32(payload));
  return out;
}

Result<std::string> UnwrapCheckpoint(const std::string& file_bytes,
                                     std::uint32_t* version_out) {
  constexpr std::size_t kHeaderBytes = 4 + 4 + 8;  // magic+version+size.
  if (file_bytes.size() < kHeaderBytes + 4) {
    return Status::IOError("checkpoint corrupt: file too short");
  }
  if (file_bytes.compare(0, 4, "BCKP") != 0) {
    return Status::IOError("checkpoint corrupt: bad magic");
  }
  BinReader r(std::string_view(file_bytes).substr(4));
  std::uint32_t version = 0;
  std::uint64_t payload_size = 0;
  BAYESCROWD_RETURN_NOT_OK(r.ReadU32(&version));
  BAYESCROWD_RETURN_NOT_OK(r.ReadU64(&payload_size));
  if (version == 0 || version > kCheckpointVersion) {
    return Status::InvalidArgument(StrFormat(
        "checkpoint version %u is %s than this build supports (%u)",
        static_cast<unsigned>(version),
        version > kCheckpointVersion ? "newer" : "older",
        static_cast<unsigned>(kCheckpointVersion)));
  }
  if (version_out != nullptr) *version_out = version;
  if (file_bytes.size() != kHeaderBytes + payload_size + 4) {
    return Status::IOError("checkpoint corrupt: truncated payload");
  }
  const std::string payload =
      file_bytes.substr(kHeaderBytes, static_cast<std::size_t>(payload_size));
  std::uint32_t stored_crc = 0;
  BinReader tail(
      std::string_view(file_bytes).substr(kHeaderBytes + payload_size));
  BAYESCROWD_RETURN_NOT_OK(tail.ReadU32(&stored_crc));
  if (Crc32(payload) != stored_crc) {
    return Status::IOError("checkpoint corrupt: CRC mismatch");
  }
  return payload;
}

CheckpointStore::CheckpointStore(Options options)
    : options_(std::move(options)) {
  if (options_.keep == 0) options_.keep = 1;
  if (options_.io == nullptr) options_.io = RealFileIo();
}

std::vector<std::string> CheckpointStore::ListGenerations() const {
  std::vector<std::string> names;
  auto listed = options_.io->ListDir(options_.dir);
  if (!listed.ok()) return names;
  for (const std::string& name : listed.value()) {
    std::size_t rounds = 0;
    if (ParseGenerationName(name, options_.session_id, &rounds)) {
      names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

Status CheckpointStore::Write(const SessionState& state) {
  BAYESCROWD_RETURN_NOT_OK(options_.io->CreateDirs(options_.dir));
  std::string payload;
  SerializeSessionState(state, &payload);
  const std::string file = WrapCheckpoint(payload);

  const std::string name =
      options_.session_id.empty()
          ? StrFormat("ckpt-%08zu.bin", state.rounds)
          : StrFormat("ckpt-%s-%08zu.bin", options_.session_id.c_str(),
                      state.rounds);
  const std::string final_path = options_.dir + "/" + name;
  const std::string tmp_path = final_path + ".tmp";

  const Status wrote = options_.io->WriteFileDurable(tmp_path, file);
  if (!wrote.ok()) {
    // An ENOSPC/short write may have left a torn tmp file; drop it so
    // the directory holds only trusted generations (the loader skips
    // tmp names anyway). The write error — with its path context — is
    // what the caller sees.
    (void)options_.io->RemoveFile(tmp_path);
    return wrote;
  }
  if (options_.pre_rename_hook) {
    BAYESCROWD_RETURN_NOT_OK(options_.pre_rename_hook(tmp_path));
  }
  const Status renamed = options_.io->Rename(tmp_path, final_path);
  if (!renamed.ok()) {
    (void)options_.io->RemoveFile(tmp_path);
    return renamed;
  }
  BAYESCROWD_RETURN_NOT_OK(options_.io->SyncDir(options_.dir));

  // Prune beyond `keep`, oldest first. A failed unlink is not fatal —
  // extra generations only cost disk.
  std::vector<std::string> names = ListGenerations();
  while (names.size() > options_.keep) {
    (void)options_.io->RemoveFile(options_.dir + "/" + names.front());
    names.erase(names.begin());
  }
  return Status::OK();
}

Result<SessionState> CheckpointStore::LoadLatest(
    std::size_t max_valid_log_entries, std::size_t* fallbacks) const {
  if (fallbacks != nullptr) *fallbacks = 0;
  const std::vector<std::string> names = ListGenerations();
  for (auto it = names.rbegin(); it != names.rend(); ++it) {
    const std::string path = options_.dir + "/" + *it;
    const auto attempt = [&]() -> Result<SessionState> {
      BAYESCROWD_ASSIGN_OR_RETURN(const std::string bytes,
                                  options_.io->ReadFile(path));
      std::uint32_t version = 0;
      BAYESCROWD_ASSIGN_OR_RETURN(const std::string payload,
                                  UnwrapCheckpoint(bytes, &version));
      SessionState state;
      BinReader reader(payload);
      BAYESCROWD_RETURN_NOT_OK(
          DeserializeSessionState(&reader, &state, version));
      if (state.answer_log_offset > max_valid_log_entries) {
        return Status::FailedPrecondition(StrFormat(
            "checkpoint %s references %zu answer-log entries but only "
            "%zu survived",
            it->c_str(), state.answer_log_offset, max_valid_log_entries));
      }
      return state;
    }();
    if (attempt.ok()) return attempt;
    if (fallbacks != nullptr) ++*fallbacks;
  }
  return Status::NotFound("no usable checkpoint generation in " +
                          options_.dir);
}

}  // namespace bayescrowd
