// Crash-safe query sessions: checksummed checkpoints of the round
// loop's full state, written atomically at round boundaries and
// recovered after a kill.
//
// A checkpoint captures everything Run() needs to continue a session
// bit-identically: per-object conditions, the knowledge base's facts,
// the evaluator's memo cache and RNG stream, budget/refund and retry
// accumulators, per-round logs, the metrics snapshot, and the crowd
// platform's own serialized state (simulator RNG, fault injector,
// worker-quality counters). The answer-log offset ties each snapshot to
// the durable answer log: recovery replays the log tail past the
// snapshot to rebuild any rounds that ran after the last checkpoint.
//
// File format (one generation per file, `ckpt-NNNNNNNN.bin` — or
// `ckpt-<session_id>-NNNNNNNN.bin` for a namespaced store hosting one
// of several resident sessions — numbered by round count):
//
//   "BCKP"  magic, 4 bytes
//   u32     format version (little-endian); currently 1
//   u64     payload size in bytes
//   payload SerializeSessionState bytes
//   u32     CRC-32 (IEEE 802.3) of the payload
//
// Writes are atomic: tmp file + fsync + rename + directory fsync. A
// kill mid-write leaves either the previous generation set intact or a
// tmp file the loader never looks at. Recovery walks generations newest
// first and falls back past any snapshot that is truncated, fails the
// CRC, carries an unknown version, or references more answer-log
// entries than survived on disk.

#ifndef BAYESCROWD_CORE_CHECKPOINT_H_
#define BAYESCROWD_CORE_CHECKPOINT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/binio.h"
#include "common/fileio.h"
#include "common/result.h"
#include "core/framework.h"
#include "ctable/condition.h"
#include "obs/metrics.h"

namespace bayescrowd {

/// Checkpoint format version written by this build. Readers accept
/// this version and every older one (v1 files load with governor-era
/// fields defaulted); a newer file fails with a clear error instead of
/// a misparse. Version history:
///   1  pre-governor sessions (point-probability memo blobs)
///   2  + solver circuit-breaker records, interval memo blobs
///   3  memo blobs carry compiled-circuit artifacts (format 3)
inline constexpr std::uint32_t kCheckpointVersion = 3;

/// Everything Run() snapshots at a round boundary. Field order here is
/// the serialization order; extend only by bumping kCheckpointVersion.
struct SessionState {
  // -- Round-loop state --------------------------------------------- //
  double budget_left = 0.0;
  std::size_t consecutive_barren = 0;

  // -- Result accumulators (BayesCrowdResult mirror) ---------------- //
  std::size_t rounds = 0;
  std::size_t tasks_posted = 0;
  double cost_spent = 0.0;
  double cost_refunded = 0.0;
  std::size_t tasks_unanswered = 0;
  std::size_t retries = 0;
  std::size_t transient_failures = 0;
  std::size_t rounds_abandoned = 0;
  std::size_t order_conflicts = 0;
  double backoff_seconds = 0.0;
  double simulated_seconds = 0.0;
  std::size_t initial_true = 0;
  std::size_t initial_false = 0;
  std::size_t initial_undecided = 0;
  std::vector<RoundLog> round_logs;

  // -- Knowledge state ---------------------------------------------- //
  /// Per-object conditions, index = object id. Simplification is
  /// order-dependent, so conditions are snapshotted, not recomputed.
  std::vector<Condition> conditions;
  std::string knowledge_blob;  // KnowledgeBase::SerializeFacts.
  std::string evaluator_blob;  // ProbabilityEvaluator::SerializeMemoState.
  obs::MetricsSnapshot metrics;

  // -- Crowd platform ----------------------------------------------- //
  std::string platform_state;  // CrowdPlatform::SaveState chunk(s).
  std::size_t platform_tasks = 0;   // total_tasks() at the boundary.
  std::size_t platform_rounds = 0;  // total_rounds() at the boundary.

  // -- Session layer (filled by the sink, not by Run) --------------- //
  /// Durable answer-log entries at the boundary; recovery replays the
  /// log tail past this offset.
  std::size_t answer_log_offset = 0;
  /// Serialized Bayes net (or empty when posteriors come from
  /// elsewhere); informational for tooling, not consumed by Run.
  std::string network_blob;
  /// Hash of options + dataset + platform config (threads excluded).
  /// Resume refuses a checkpoint whose fingerprint mismatches.
  std::uint64_t config_fingerprint = 0;

  // -- v2 fields ---------------------------------------------------- //
  /// Per-object solver circuit breakers, ascending object id (empty on
  /// ungoverned runs and in every v1 checkpoint).
  std::vector<SolverBreakerRecord> solver_breakers;

  /// Layout of `evaluator_blob`. Not serialized: the loader derives it
  /// from the envelope version (v1 payloads carry format-1 blobs), and
  /// Run() passes it to ProbabilityEvaluator::RestoreMemoState.
  std::uint32_t evaluator_blob_format = kMemoStateFormat;
};

/// Payload (de)serialization. Deserialize validates counts and enum
/// ranges, returning OutOfRange/InvalidArgument on anything truncated
/// or out of domain. `version` is the envelope version the payload was
/// written under; v1 payloads stop before the v2 fields and load with
/// them defaulted (no breakers, format-1 evaluator blob).
void SerializeSessionState(const SessionState& state, std::string* out);
Status DeserializeSessionState(BinReader* reader, SessionState* out,
                               std::uint32_t version = kCheckpointVersion);

/// Wraps a payload in the checksummed envelope / validates and strips
/// it. Unwrap fails with IOError on magic/CRC/truncation damage and
/// InvalidArgument on version 0 or one newer than kCheckpointVersion;
/// the accepted version is reported through `version` (may be null).
std::string WrapCheckpoint(const std::string& payload);
Result<std::string> UnwrapCheckpoint(const std::string& file_bytes,
                                     std::uint32_t* version = nullptr);

/// Where Run() hands finished round boundaries. Implementations
/// persist the state; a failed Write fails the run (the round itself is
/// already durable in the answer log, so nothing is lost).
class CheckpointSink {
 public:
  virtual ~CheckpointSink() = default;
  virtual Status Write(const SessionState& state) = 0;
};

/// Generation-managed checkpoint directory: atomic writes, bounded
/// retention, corruption-tolerant loading.
class CheckpointStore : public CheckpointSink {
 public:
  struct Options {
    std::string dir;

    /// Namespaces this store's generations within `dir`. Empty (the
    /// legacy default) writes `ckpt-NNNNNNNN.bin`; non-empty writes
    /// `ckpt-<session_id>-NNNNNNNN.bin`, and listing/pruning/loading
    /// only ever touch the own session's files — so two resident
    /// sessions sharing one checkpoint directory cannot prune or load
    /// each other's snapshots. Each form is invisible to the other,
    /// keeping pre-existing single-session directories readable.
    std::string session_id;

    /// Generations retained on disk; older ones are pruned after each
    /// successful write. Minimum 1.
    std::size_t keep = 3;

    /// Test hook, invoked on the tmp file after its fsync and before
    /// the rename. Returning non-OK aborts the write (simulates a kill
    /// mid-checkpoint); the hook may also truncate/corrupt the file.
    std::function<Status(const std::string& tmp_path)> pre_rename_hook;

    /// IO seam every read/write/rename/fsync flows through; null means
    /// the real filesystem. Tests inject FaultInjectingFileIo here to
    /// exercise ENOSPC/short-write/fsync-failure handling — a failed
    /// write surfaces as an IOError with path context, never as a
    /// silently truncated generation.
    FileIo* io = nullptr;
  };

  explicit CheckpointStore(Options options);

  /// Writes `state` as generation `state.rounds` (tmp + fsync + rename
  /// + dir fsync), then prunes to `keep` generations.
  Status Write(const SessionState& state) override;

  /// Loads the newest generation that (a) unwraps and deserializes
  /// cleanly and (b) references at most `max_valid_log_entries` durable
  /// answer-log entries. Every newer generation skipped on the way down
  /// increments `*fallbacks` (may be null). NotFound when no usable
  /// generation exists.
  Result<SessionState> LoadLatest(std::size_t max_valid_log_entries,
                                  std::size_t* fallbacks) const;

  /// Generation file names currently in the directory belonging to
  /// this store's session namespace, oldest first. Missing directory
  /// reads as empty.
  std::vector<std::string> ListGenerations() const;

  const std::string& dir() const { return options_.dir; }

 private:
  Options options_;
};

}  // namespace bayescrowd

#endif  // BAYESCROWD_CORE_CHECKPOINT_H_
