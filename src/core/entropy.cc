#include "core/entropy.h"

#include <cmath>
#include <cstddef>

namespace bayescrowd {

double BinaryEntropy(double p) {
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -(p * std::log2(p) + (1.0 - p) * std::log2(1.0 - p));
}

std::vector<double> BinaryEntropies(const std::vector<double>& ps) {
  std::vector<double> out(ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) out[i] = BinaryEntropy(ps[i]);
  return out;
}

}  // namespace bayescrowd
