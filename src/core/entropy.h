// Shannon entropy of "is o a query answer" (Eq. 3).

#ifndef BAYESCROWD_CORE_ENTROPY_H_
#define BAYESCROWD_CORE_ENTROPY_H_

#include <vector>

namespace bayescrowd {

/// H(p) = -(p log2 p + (1-p) log2 (1-p)), with H(0) = H(1) = 0.
double BinaryEntropy(double p);

/// Element-wise BinaryEntropy over a batch of probabilities (the shape
/// the batch evaluator produces for one round's entropy ranking).
std::vector<double> BinaryEntropies(const std::vector<double>& ps);

}  // namespace bayescrowd

#endif  // BAYESCROWD_CORE_ENTROPY_H_
