#include "core/framework.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/checkpoint.h"
#include "core/entropy.h"
#include "core/update.h"
#include "obs/trace.h"

namespace bayescrowd {

Result<BayesCrowdResult> BayesCrowd::Run(const Table& incomplete,
                                         PosteriorProvider& posteriors,
                                         CrowdPlatform& platform) {
  if (options_.latency == 0) {
    return Status::InvalidArgument("latency must be >= 1 round");
  }
  if (options_.retry.max_attempts == 0) {
    return Status::InvalidArgument("retry.max_attempts must be >= 1");
  }
  if (options_.retry.max_barren_rounds == 0) {
    return Status::InvalidArgument("retry.max_barren_rounds must be >= 1");
  }
  if (options_.retry.attempt_seconds < 0.0 ||
      options_.retry.backoff_initial_seconds < 0.0 ||
      options_.retry.backoff_multiplier < 1.0 ||
      options_.retry.round_deadline_seconds < 0.0) {
    return Status::InvalidArgument("retry policy times must be >= 0 and "
                                   "the backoff multiplier >= 1");
  }

  BayesCrowdResult out;
  Stopwatch total_watch;
  BAYESCROWD_TRACE_SPAN("bayescrowd.run");

  // Per-run registry unless the caller injected one: repeated runs in
  // one process start from zeroed counters either way the caller set it
  // up, and the snapshot still lands in the result.
  obs::MetricsRegistry local_metrics;
  obs::MetricsRegistry* const metrics =
      options_.metrics != nullptr ? options_.metrics : &local_metrics;

  // ---------------------------------------------------------------- //
  // Modeling phase (Algorithm 1, line 1).
  // ---------------------------------------------------------------- //
  obs::TraceSpan modeling_span("modeling");
  Stopwatch modeling_watch;
  BAYESCROWD_ASSIGN_OR_RETURN(CTable ctable,
                              BuildCTable(incomplete, options_.ctable));

  // Attach distributions for every variable the c-table mentions. The
  // framework-level fallback switch feeds every probability call,
  // including the marginal-utility computations inside task selection.
  ProbabilityOptions probability_options = options_.probability;
  probability_options.sampling_fallback =
      probability_options.sampling_fallback || options_.sampling_fallback;
  ProbabilityEvaluator evaluator(probability_options);
  // Context before binding: BindMetrics resolves the labeled cost
  // instruments, and resolving under the default (s0, adhoc) context
  // would leave phantom zero-valued series in the run's registry.
  evaluator.SetCostContext(options_.session, "modeling");
  evaluator.BindMetrics(metrics);
  std::map<CellRef, std::vector<double>> raw_posteriors;
  for (const CellRef& var : ctable.AllVariables()) {
    BAYESCROWD_ASSIGN_OR_RETURN(std::vector<double> dist,
                                posteriors.Posterior(var));
    raw_posteriors[var] = dist;
    BAYESCROWD_RETURN_NOT_OK(
        evaluator.SetDistribution(var, std::move(dist)));
  }
  out.modeling_seconds = modeling_watch.ElapsedSeconds();
  modeling_span.End();
  out.initial_true = ctable.NumTrue();
  out.initial_false = ctable.NumFalse();
  out.initial_undecided = ctable.NumUndecided();

  obs::Counter* const rounds_counter =
      metrics->GetCounter("framework.rounds");
  obs::Counter* const tasks_counter = metrics->GetCounter(
      std::string("framework.tasks_posted.") +
      StrategyKindToString(options_.strategy.kind));
  obs::Counter* const retries_counter =
      metrics->GetCounter("framework.retries");
  obs::Counter* const transient_counter =
      metrics->GetCounter("framework.transient_failures");
  obs::Counter* const abandoned_counter =
      metrics->GetCounter("framework.rounds_abandoned");
  obs::Counter* const unanswered_counter =
      metrics->GetCounter("framework.tasks_unanswered");
  obs::Counter* const conflicts_counter =
      metrics->GetCounter("framework.order_conflicts");
  obs::Counter* const breaker_trips_counter =
      metrics->GetCounter("framework.breaker.trips");
  obs::Counter* const breaker_skips_counter =
      metrics->GetCounter("framework.breaker.skips");

  // Crowd-side deterministic cost units, labeled like the evaluator's:
  // the "crowd" phase has no solver tier or compile state.
  const auto crowd_cost = [&](const char* name) {
    return metrics->GetCounter(name, {{"session", options_.session},
                                      {"phase", "crowd"},
                                      {"solver_tier", "none"},
                                      {"compile_state", "none"}});
  };
  obs::Counter* const cost_crowd_tasks = crowd_cost("cost.crowd_tasks");
  obs::Counter* const cost_retry_refunds =
      crowd_cost("cost.retry_refunds");

  obs::FlightRecorder* const flight = options_.flight;
  // Per-round deltas of the governed/compiled counters drive the
  // degradation and compile-refusal flight events (one summary event
  // per round, not one per solve — the ring is for triage, not volume).
  GovernorTally solver_before = evaluator.solver_stats();
  CircuitStats compile_before = evaluator.compile_stats();
  const auto flight_round_summary = [&](std::uint64_t round,
                                        double sim_seconds) {
    if (flight == nullptr) return;
    const GovernorTally solver_now = evaluator.solver_stats();
    const CircuitStats compile_now = evaluator.compile_stats();
    const std::uint64_t degraded =
        solver_now.budget_exhausted - solver_before.budget_exhausted;
    if (degraded > 0) {
      flight->Record(obs::FlightEventKind::kDegradation, round, -1,
                     sim_seconds, static_cast<double>(degraded),
                     "solver budget exhausted below the exact tier");
    }
    const std::uint64_t refused =
        compile_now.fallbacks - compile_before.fallbacks;
    if (refused > 0) {
      flight->Record(obs::FlightEventKind::kCompileRefusal, round, -1,
                     sim_seconds, static_cast<double>(refused),
                     "knowledge compilation refused or fell back");
    }
    solver_before = solver_now;
    compile_before = compile_now;
  };

  // Live export: one full snapshot per finished round, driven from this
  // thread only.
  const auto notify_round = [&](std::uint64_t round) -> Status {
    if (options_.round_sink == nullptr) return Status::OK();
    return options_.round_sink->OnRound(round, metrics->Snapshot());
  };

  // ---------------------------------------------------------------- //
  // Crowdsourcing phase (Algorithm 4).
  // ---------------------------------------------------------------- //
  // One pool for the whole phase; every probability batch (entropy
  // ranking here, counterfactual scoring inside SelectTasks) fans out
  // over it through the evaluator. Spawned before the phase watch
  // starts: thread startup is setup cost, not round work, and keeping
  // it out of crowdsourcing_seconds is what lets the select/update
  // phase timers account for (nearly) all of that window.
  ThreadPool pool(options_.threads);
  evaluator.set_thread_pool(&pool);
  KnowledgeBase knowledge(incomplete.schema());

  Stopwatch crowd_watch;

  const std::size_t mu = (options_.budget + options_.latency - 1) /
                         options_.latency;  // ceil(B / L)
  const UniformCostModel unit_cost;
  const TaskCostModel& cost_model =
      options_.cost_model != nullptr ? *options_.cost_model : unit_cost;
  double budget_left = static_cast<double>(options_.budget);
  const RetryPolicy& retry = options_.retry;
  std::size_t consecutive_barren = 0;  // Rounds with zero applied answers.

  // Per-object solver circuit breakers (breaker_threshold). Only a
  // governed evaluator produces non-exact grades, so the map stays
  // empty — and the round loop byte-identical — on ungoverned runs.
  // std::map: checkpoint serialization wants ascending object ids.
  const bool breakers_enabled =
      options_.breaker_threshold > 0 &&
      evaluator.options().governor.enabled();
  std::map<std::size_t, SolverBreakerRecord> breakers;

  // ---------------------------------------------------------------- //
  // Resume from a checkpoint snapshot. The modeling phase above rebuilt
  // the pristine c-table and raw posteriors (deterministic from the
  // inputs); everything the crowd rounds changed is overwritten from
  // the snapshot, in dependency order: conditions and knowledge first,
  // then the re-conditioned distributions (whose cache evictions land
  // on an empty cache), then the memo cache keyed by those conditions,
  // then the platform stack, and the metrics snapshot last so setup-
  // time increments are reset to the checkpointed counts.
  // ---------------------------------------------------------------- //
  if (options_.resume != nullptr) {
    const SessionState& st = *options_.resume;
    if (st.conditions.size() != ctable.num_objects()) {
      return Status::InvalidArgument(StrFormat(
          "resume: checkpoint holds %zu conditions but the dataset has "
          "%zu objects",
          st.conditions.size(), ctable.num_objects()));
    }
    for (std::size_t i = 0; i < st.conditions.size(); ++i) {
      if (!(st.conditions[i] == ctable.condition(i))) {
        ctable.SetCondition(i, st.conditions[i]);
      }
    }
    BinReader knowledge_reader(st.knowledge_blob);
    BAYESCROWD_RETURN_NOT_OK(knowledge.RestoreFacts(&knowledge_reader));
    for (const auto& [var, raw] : raw_posteriors) {
      BAYESCROWD_RETURN_NOT_OK(evaluator.SetDistribution(
          var, knowledge.ConditionDistribution(var, raw)));
    }
    BinReader memo_reader(st.evaluator_blob);
    BAYESCROWD_RETURN_NOT_OK(evaluator.RestoreMemoState(
        &memo_reader, st.evaluator_blob_format));
    for (const SolverBreakerRecord& b : st.solver_breakers) {
      breakers[b.object] = b;
    }
    if (!st.platform_state.empty()) {
      BinReader platform_reader(st.platform_state);
      BAYESCROWD_RETURN_NOT_OK(platform.LoadState(&platform_reader));
    }
    metrics->Restore(st.metrics);
    solver_before = evaluator.solver_stats();
    compile_before = evaluator.compile_stats();
    obs::RecordFlight(flight, obs::FlightEventKind::kResume, st.rounds, -1,
                      st.simulated_seconds,
                      static_cast<double>(st.rounds),
                      "session restored from checkpoint snapshot");
    budget_left = st.budget_left;
    consecutive_barren = st.consecutive_barren;
    out.rounds = st.rounds;
    out.tasks_posted = st.tasks_posted;
    out.cost_spent = st.cost_spent;
    out.cost_refunded = st.cost_refunded;
    out.tasks_unanswered = st.tasks_unanswered;
    out.retries = st.retries;
    out.transient_failures = st.transient_failures;
    out.rounds_abandoned = st.rounds_abandoned;
    out.order_conflicts = st.order_conflicts;
    out.backoff_seconds = st.backoff_seconds;
    out.simulated_seconds = st.simulated_seconds;
    out.initial_true = st.initial_true;
    out.initial_false = st.initial_false;
    out.initial_undecided = st.initial_undecided;
    out.round_logs = st.round_logs;
    out.resumed = true;
  }

  // Snapshots the full session at a round boundary and hands it to the
  // checkpoint sink. `out.rounds` names the generation.
  CheckpointSink* const checkpoint_sink = options_.checkpoint_sink;
  const std::size_t checkpoint_every =
      checkpoint_sink != nullptr ? options_.checkpoint_every : 0;
  const auto maybe_checkpoint = [&]() -> Status {
    if (checkpoint_every == 0 || out.rounds % checkpoint_every != 0) {
      return Status::OK();
    }
    SessionState state;
    state.budget_left = budget_left;
    state.consecutive_barren = consecutive_barren;
    state.rounds = out.rounds;
    state.tasks_posted = out.tasks_posted;
    state.cost_spent = out.cost_spent;
    state.cost_refunded = out.cost_refunded;
    state.tasks_unanswered = out.tasks_unanswered;
    state.retries = out.retries;
    state.transient_failures = out.transient_failures;
    state.rounds_abandoned = out.rounds_abandoned;
    state.order_conflicts = out.order_conflicts;
    state.backoff_seconds = out.backoff_seconds;
    state.simulated_seconds = out.simulated_seconds;
    state.initial_true = out.initial_true;
    state.initial_false = out.initial_false;
    state.initial_undecided = out.initial_undecided;
    state.round_logs = out.round_logs;
    state.conditions.reserve(ctable.num_objects());
    for (std::size_t i = 0; i < ctable.num_objects(); ++i) {
      state.conditions.push_back(ctable.condition(i));
    }
    knowledge.SerializeFacts(&state.knowledge_blob);
    evaluator.SerializeMemoState(&state.evaluator_blob);
    state.solver_breakers.reserve(breakers.size());
    for (const auto& [id, b] : breakers) state.solver_breakers.push_back(b);
    state.metrics = metrics->Snapshot();
    platform.SaveState(&state.platform_state);
    state.platform_tasks = platform.total_tasks();
    state.platform_rounds = platform.total_rounds();
    BAYESCROWD_RETURN_NOT_OK(checkpoint_sink->Write(state));
    obs::RecordFlight(flight, obs::FlightEventKind::kCheckpointWrite,
                      out.rounds, -1, out.simulated_seconds,
                      static_cast<double>(out.rounds),
                      "session snapshot persisted");
    return Status::OK();
  };

  while (budget_left > 1e-9) {
    obs::TraceSpan select_span("round.select");
    Stopwatch select_watch;
    evaluator.SetCostContext(options_.session, "select");
    const EvaluatorCacheStats cache_before = evaluator.cache_stats();

    // Rank undecided objects by entropy (Eq. 3). Unchanged conditions
    // hit the evaluator's memo cache; the rest evaluate in parallel.
    std::vector<std::size_t> undecided;
    for (std::size_t i : ctable.UndecidedObjects()) {
      if (ctable.condition(i).NumExpressions() > 0) undecided.push_back(i);
    }
    // Objects whose breaker is open on an unchanged condition reuse
    // their last interval (re-solving would burn budget on another
    // non-answer — the memo cache cannot help once a crowd answer
    // re-conditioned a mentioned distribution); the rest solve as one
    // governed batch.
    std::vector<ProbInterval> intervals(undecided.size());
    std::vector<std::size_t> to_solve;
    std::vector<std::size_t> solve_slot;
    to_solve.reserve(undecided.size());
    solve_slot.reserve(undecided.size());
    for (std::size_t u = 0; u < undecided.size(); ++u) {
      const std::size_t id = undecided[u];
      if (breakers_enabled) {
        const auto it = breakers.find(id);
        if (it != breakers.end() && it->second.open &&
            it->second.fingerprint == ctable.condition(id).Fingerprint()) {
          intervals[u] = it->second.last;
          breaker_skips_counter->Increment();
          continue;
        }
      }
      to_solve.push_back(id);
      solve_slot.push_back(u);
    }
    BAYESCROWD_ASSIGN_OR_RETURN(
        const std::vector<ProbInterval> solved,
        evaluator.EvaluateAllIntervals(ctable, to_solve));
    for (std::size_t s = 0; s < to_solve.size(); ++s) {
      intervals[solve_slot[s]] = solved[s];
      if (!breakers_enabled) continue;
      SolverBreakerRecord& b = breakers[to_solve[s]];
      b.object = to_solve[s];
      b.fingerprint = ctable.condition(to_solve[s]).Fingerprint();
      b.last = solved[s];
      if (solved[s].exact()) {
        b.consecutive = 0;
        b.open = false;
      } else if (++b.consecutive >= options_.breaker_threshold &&
                 !b.open) {
        b.open = true;
        breaker_trips_counter->Increment();
        obs::RecordFlight(flight, obs::FlightEventKind::kBreakerTrip,
                          out.rounds + 1,
                          static_cast<std::int64_t>(b.object),
                          out.simulated_seconds,
                          static_cast<double>(b.consecutive),
                          "solver breaker opened after consecutive "
                          "inexact intervals");
      }
    }
    std::vector<double> probabilities(undecided.size());
    std::vector<double> rank_points(undecided.size());
    for (std::size_t u = 0; u < undecided.size(); ++u) {
      probabilities[u] = intervals[u].midpoint();
      rank_points[u] = options_.strategy.pessimistic
                           ? PessimisticPoint(intervals[u])
                           : probabilities[u];
    }
    const std::vector<double> entropies = BinaryEntropies(rank_points);
    std::vector<ObjectEntropy> ranked;
    ranked.reserve(undecided.size());
    for (std::size_t u = 0; u < undecided.size(); ++u) {
      ObjectEntropy entry;
      entry.object = undecided[u];
      entry.probability = probabilities[u];
      entry.entropy = entropies[u];
      ranked.push_back(entry);
    }
    if (ranked.empty()) {
      // Terminal partial round: the ranking work still happened, so it
      // stays attributed to the select phase (no RoundLog — nothing
      // was bought).
      out.select_seconds += select_watch.ElapsedSeconds();
      select_span.End();
      break;  // No expression left to crowdsource.
    }
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const ObjectEntropy& a, const ObjectEntropy& b) {
                       if (a.entropy != b.entropy) {
                         return a.entropy > b.entropy;
                       }
                       return a.object < b.object;
                     });
    if (options_.confidence_stop_entropy > 0.0 &&
        ranked.front().entropy < options_.confidence_stop_entropy) {
      out.stopped_confident = true;  // Every object is near-certain.
      out.select_seconds += select_watch.ElapsedSeconds();
      select_span.End();
      break;
    }

    // Per-round size: latency splits the budget into ceil(B/L) task
    // slots; variable costs additionally trim the batch to what the
    // remaining budget affords.
    const std::size_t k = std::min(
        mu, static_cast<std::size_t>(budget_left) + 1);
    BAYESCROWD_ASSIGN_OR_RETURN(
        std::vector<Task> batch,
        SelectTasks(ctable, ranked, k, evaluator, options_.strategy));
    double batch_cost = 0.0;
    std::size_t affordable = 0;
    for (const Task& task : batch) {
      const double cost = cost_model.Cost(task);
      if (cost <= 0.0) {
        return Status::InvalidArgument("task cost must be positive");
      }
      if (batch_cost + cost > budget_left + 1e-9) break;
      batch_cost += cost;
      ++affordable;
    }
    batch.resize(affordable);
    if (batch.empty()) {
      out.select_seconds += select_watch.ElapsedSeconds();
      select_span.End();
      break;
    }
    const double select_seconds = select_watch.ElapsedSeconds();
    select_span.End();

    // Worker latency (simulated or real) is deliberately outside both
    // phase timers. Transient platform failures are retried with
    // deterministic exponential backoff on a simulated clock; the
    // per-round deadline caps how much simulated time one round may
    // burn on attempts and waits (see RetryPolicy).
    const double deadline = retry.round_deadline_seconds;
    std::vector<TaskAnswer> answers;
    bool delivered = false;
    std::size_t attempts = 0;
    double round_clock = 0.0;
    double round_backoff = 0.0;
    Stopwatch platform_watch;
    while (attempts < retry.max_attempts) {
      if (deadline > 0.0 &&
          round_clock + retry.attempt_seconds > deadline + 1e-12) {
        break;  // No time left for another attempt: abandon the round.
      }
      ++attempts;
      round_clock += retry.attempt_seconds;
      auto posted = platform.PostBatch(batch);
      if (posted.ok()) {
        answers = std::move(posted).value();
        delivered = true;
        break;
      }
      if (!posted.status().IsUnavailable()) {
        return posted.status();  // Fatal: not a transient platform error.
      }
      ++out.transient_failures;
      transient_counter->Increment();
      if (attempts >= retry.max_attempts) break;
      const double backoff =
          retry.backoff_initial_seconds *
          std::pow(retry.backoff_multiplier,
                   static_cast<double>(attempts - 1));
      if (deadline > 0.0 &&
          round_clock + backoff + retry.attempt_seconds > deadline + 1e-12) {
        break;  // Waiting out the backoff would blow the deadline.
      }
      round_clock += backoff;
      round_backoff += backoff;
      ++out.retries;
      retries_counter->Increment();
      obs::RecordFlight(flight, obs::FlightEventKind::kRetry, out.rounds + 1,
                        -1, out.simulated_seconds + round_clock, backoff,
                        "transient platform failure; backing off");
    }
    out.platform_wall_seconds += platform_watch.ElapsedSeconds();
    out.backoff_seconds += round_backoff;
    out.simulated_seconds += round_clock;

    if (!delivered) {
      // Round abandoned: nothing was bought, nothing is charged, and
      // the batch's tasks stay in the candidate pool for later rounds.
      RoundLog log;
      log.round = out.rounds + 1;
      log.select_seconds = select_seconds;
      log.seconds = select_seconds;
      log.attempts = attempts;
      log.backoff_seconds = round_backoff;
      log.simulated_seconds = round_clock;
      log.abandoned = true;
      out.select_seconds += select_seconds;
      out.round_logs.push_back(log);
      ++out.rounds;
      ++out.rounds_abandoned;
      rounds_counter->Increment();
      abandoned_counter->Increment();
      obs::RecordFlight(flight, obs::FlightEventKind::kRoundAbandoned,
                        out.rounds, -1, out.simulated_seconds,
                        static_cast<double>(attempts),
                        "no answer batch delivered before the round "
                        "deadline");
      {
        Stopwatch export_watch;
        BAYESCROWD_RETURN_NOT_OK(maybe_checkpoint());
        flight_round_summary(out.rounds, out.simulated_seconds);
        BAYESCROWD_RETURN_NOT_OK(notify_round(out.rounds));
        out.export_seconds += export_watch.ElapsedSeconds();
      }
      if (++consecutive_barren >= retry.max_barren_rounds) {
        out.degraded = true;  // Platform presumed down; degrade.
        break;
      }
      continue;
    }
    if (answers.size() != batch.size()) {
      return Status::Internal("platform returned misaligned answers");
    }

    // Everything from budget accounting through re-simplification is
    // update-phase work; the watch starts here so the phase timers
    // explain the round's wall-clock (inspect grades the coverage).
    obs::TraceSpan update_span("round.update");
    Stopwatch update_watch;
    evaluator.SetCostContext(options_.session, "update");

    // Budget accounting: only answered tasks are charged; abstained or
    // dropped tasks are refunded and fall back into the pool.
    double charged = 0.0;
    double refunded = 0.0;
    std::size_t answered = 0;
    for (std::size_t t = 0; t < batch.size(); ++t) {
      const double cost = cost_model.Cost(batch[t]);
      if (answers[t].answered) {
        charged += cost;
        ++answered;
      } else {
        refunded += cost;
      }
    }
    budget_left -= charged;
    out.cost_spent += charged;
    out.cost_refunded += refunded;
    out.tasks_unanswered += batch.size() - answered;
    unanswered_counter->Increment(batch.size() - answered);
    cost_crowd_tasks->Increment(answered);
    cost_retry_refunds->Increment(batch.size() - answered);

    // Fold the answers that arrived into the knowledge base.
    std::set<CellRef> touched;
    for (std::size_t t = 0; t < batch.size(); ++t) {
      if (!answers[t].answered) continue;
      const Status applied = ApplyAnswer(batch[t], answers[t], &knowledge);
      if (!applied.ok()) {
        // A noisy crowd can answer the same ordering both ways. Keep
        // the first recorded fact, drop the contradiction (its cost
        // stays spent — the marketplace doesn't refund wrong answers),
        // and keep the session alive. Anything else is fatal.
        if (applied.IsInvalidArgument() &&
            StartsWith(applied.message(), "contradictory var-var fact")) {
          ++out.order_conflicts;
          conflicts_counter->Increment();
          BAYESCROWD_LOG(Warning)
              << "dropping conflicting crowd answer: " << applied.message();
          continue;
        }
        return applied;
      }
      for (const CellRef& var : batch[t].expression.Variables()) {
        touched.insert(var);
      }
    }

    // Re-condition the distributions of touched variables. Each
    // SetDistribution evicts exactly the cached conditions mentioning
    // that variable; everything else keeps serving hits next round.
    for (const CellRef& var : touched) {
      const auto raw = raw_posteriors.find(var);
      if (raw == raw_posteriors.end()) continue;
      BAYESCROWD_RETURN_NOT_OK(evaluator.SetDistribution(
          var, knowledge.ConditionDistribution(var, raw->second)));
    }

    // Re-simplify every undecided condition against the knowledge base.
    // Changed conditions get new fingerprints; their old cache entries
    // were just evicted through the answered variables.
    for (std::size_t i : ctable.UndecidedObjects()) {
      Condition simplified = ctable.condition(i).SimplifyWith(
          [&knowledge](const Expression& e) {
            return knowledge.Evaluate(e);
          });
      if (!(simplified == ctable.condition(i))) {
        ctable.SetCondition(i, std::move(simplified));
      }
    }

    RoundLog log;
    log.round = out.rounds + 1;
    log.tasks = batch.size();
    log.select_seconds = select_seconds;
    log.attempts = attempts;
    log.answered = answered;
    log.unanswered = batch.size() - answered;
    log.cost_refunded = refunded;
    log.backoff_seconds = round_backoff;
    log.simulated_seconds = round_clock;
    const EvaluatorCacheStats cache_after = evaluator.cache_stats();
    log.cache_hits = cache_after.hits - cache_before.hits;
    log.cache_misses = cache_after.misses - cache_before.misses;
    out.select_seconds += log.select_seconds;
    out.tasks_posted += batch.size();
    ++out.rounds;
    rounds_counter->Increment();
    tasks_counter->Increment(batch.size());
    // The update window closes after the round's bookkeeping so the
    // phase timers explain the loop's wall-clock; checkpoint I/O and
    // the export sinks get their own bucket below.
    log.update_seconds = update_watch.ElapsedSeconds();
    update_span.End();
    log.seconds = log.select_seconds + log.update_seconds;
    out.update_seconds += log.update_seconds;
    out.round_logs.push_back(log);
    {
      Stopwatch export_watch;
      BAYESCROWD_RETURN_NOT_OK(maybe_checkpoint());
      flight_round_summary(out.rounds, out.simulated_seconds);
      BAYESCROWD_RETURN_NOT_OK(notify_round(out.rounds));
      out.export_seconds += export_watch.ElapsedSeconds();
    }

    // A delivered round that applied nothing still counts as barren:
    // with every worker abstaining, more rounds buy no information.
    if (answered == 0) {
      if (++consecutive_barren >= retry.max_barren_rounds) {
        out.degraded = true;
        break;
      }
    } else {
      consecutive_barren = 0;
    }
  }
  out.crowdsourcing_seconds = crowd_watch.ElapsedSeconds();
  if (budget_left <= 1e-9) {
    obs::RecordFlight(flight, obs::FlightEventKind::kBudgetExhausted,
                      out.rounds, -1, out.simulated_seconds, budget_left,
                      "crowdsourcing budget fully spent");
  } else if (out.degraded) {
    obs::RecordFlight(flight, obs::FlightEventKind::kNote, out.rounds, -1,
                      out.simulated_seconds,
                      static_cast<double>(consecutive_barren),
                      "stopped after consecutive barren rounds; platform "
                      "presumed down");
  }

  // ---------------------------------------------------------------- //
  // Answer inference (Algorithm 1, line 5).
  // ---------------------------------------------------------------- //
  // The final phase always solves fresh (no breaker skip): reported
  // probabilities and their grades reflect the current conditions and
  // distributions, never a stale breaker interval.
  std::vector<std::size_t> all_objects(ctable.num_objects());
  for (std::size_t i = 0; i < ctable.num_objects(); ++i) all_objects[i] = i;
  evaluator.SetCostContext(options_.session, "answer");
  Stopwatch answer_watch;
  BAYESCROWD_ASSIGN_OR_RETURN(
      out.probability_intervals,
      evaluator.EvaluateAllIntervals(ctable, all_objects));
  out.answer_seconds = answer_watch.ElapsedSeconds();
  out.probabilities.resize(ctable.num_objects());
  for (std::size_t i = 0; i < ctable.num_objects(); ++i) {
    out.probabilities[i] = out.probability_intervals[i].midpoint();
    if (!out.probability_intervals[i].exact()) {
      out.degraded_objects.push_back(i);
    }
    if (out.probabilities[i] > options_.answer_threshold ||
        ctable.condition(i).IsTrue()) {
      out.result_objects.push_back(i);
    }
  }
  out.solver = evaluator.solver_stats();
  out.compile = evaluator.compile_stats();
  out.breaker_trips = breaker_trips_counter->value();
  out.breaker_skips = breaker_skips_counter->value();
  const EvaluatorCacheStats cache_stats = evaluator.cache_stats();
  out.cache_hits = cache_stats.hits;
  out.cache_misses = cache_stats.misses;
  out.cache_evictions = cache_stats.evictions;
  out.adpll = evaluator.adpll_stats();
  out.final_ctable = std::move(ctable);
  out.total_seconds = total_watch.ElapsedSeconds();

  // Per-lane pool utilization, both on the result and as gauges so the
  // metrics rendering is self-contained.
  out.lane_usage = pool.lane_stats();
  for (std::size_t lane = 0; lane < out.lane_usage.size(); ++lane) {
    metrics
        ->GetGauge(StrFormat("pool.lane%zu.busy_seconds", lane))
        ->Set(out.lane_usage[lane].busy_seconds);
    metrics->GetGauge(StrFormat("pool.lane%zu.tasks", lane))
        ->Set(static_cast<double>(out.lane_usage[lane].tasks));
  }
  out.metrics = metrics->Snapshot();
  return out;
}

}  // namespace bayescrowd
