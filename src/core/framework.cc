#include "core/framework.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <set>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/entropy.h"
#include "core/update.h"

namespace bayescrowd {

Result<BayesCrowdResult> BayesCrowd::Run(const Table& incomplete,
                                         PosteriorProvider& posteriors,
                                         CrowdPlatform& platform) {
  if (options_.latency == 0) {
    return Status::InvalidArgument("latency must be >= 1 round");
  }

  BayesCrowdResult out;
  Stopwatch total_watch;

  // ---------------------------------------------------------------- //
  // Modeling phase (Algorithm 1, line 1).
  // ---------------------------------------------------------------- //
  Stopwatch modeling_watch;
  BAYESCROWD_ASSIGN_OR_RETURN(CTable ctable,
                              BuildCTable(incomplete, options_.ctable));

  // Attach distributions for every variable the c-table mentions. The
  // framework-level fallback switch feeds every probability call,
  // including the marginal-utility computations inside task selection.
  ProbabilityOptions probability_options = options_.probability;
  probability_options.sampling_fallback =
      probability_options.sampling_fallback || options_.sampling_fallback;
  ProbabilityEvaluator evaluator(probability_options);
  std::map<CellRef, std::vector<double>> raw_posteriors;
  for (const CellRef& var : ctable.AllVariables()) {
    BAYESCROWD_ASSIGN_OR_RETURN(std::vector<double> dist,
                                posteriors.Posterior(var));
    raw_posteriors[var] = dist;
    BAYESCROWD_RETURN_NOT_OK(
        evaluator.distributions().Set(var, std::move(dist)));
  }
  out.modeling_seconds = modeling_watch.ElapsedSeconds();
  out.initial_true = ctable.NumTrue();
  out.initial_false = ctable.NumFalse();
  out.initial_undecided = ctable.NumUndecided();

  // ---------------------------------------------------------------- //
  // Crowdsourcing phase (Algorithm 4).
  // ---------------------------------------------------------------- //
  Stopwatch crowd_watch;
  KnowledgeBase knowledge(incomplete.schema());

  const std::size_t mu = (options_.budget + options_.latency - 1) /
                         options_.latency;  // ceil(B / L)
  const UniformCostModel unit_cost;
  const TaskCostModel& cost_model =
      options_.cost_model != nullptr ? *options_.cost_model : unit_cost;
  double budget_left = static_cast<double>(options_.budget);

  // Per-object probability cache, invalidated when a condition changes.
  std::vector<std::optional<double>> prob_cache(ctable.num_objects());

  while (budget_left > 1e-9) {
    Stopwatch round_watch;

    // Rank undecided objects by entropy (Eq. 3).
    std::vector<ObjectEntropy> ranked;
    for (std::size_t i : ctable.UndecidedObjects()) {
      if (ctable.condition(i).NumExpressions() == 0) continue;
      if (!prob_cache[i].has_value()) {
        BAYESCROWD_ASSIGN_OR_RETURN(
            const double p, evaluator.Probability(ctable.condition(i)));
        prob_cache[i] = p;
      }
      ObjectEntropy entry;
      entry.object = i;
      entry.probability = *prob_cache[i];
      entry.entropy = BinaryEntropy(entry.probability);
      ranked.push_back(entry);
    }
    if (ranked.empty()) break;  // No expression left to crowdsource.
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const ObjectEntropy& a, const ObjectEntropy& b) {
                       if (a.entropy != b.entropy) {
                         return a.entropy > b.entropy;
                       }
                       return a.object < b.object;
                     });
    if (options_.confidence_stop_entropy > 0.0 &&
        ranked.front().entropy < options_.confidence_stop_entropy) {
      out.stopped_confident = true;  // Every object is near-certain.
      break;
    }

    // Per-round size: latency splits the budget into ceil(B/L) task
    // slots; variable costs additionally trim the batch to what the
    // remaining budget affords.
    const std::size_t k = std::min(
        mu, static_cast<std::size_t>(budget_left) + 1);
    BAYESCROWD_ASSIGN_OR_RETURN(
        std::vector<Task> batch,
        SelectTasks(ctable, ranked, k, evaluator, options_.strategy));
    double batch_cost = 0.0;
    std::size_t affordable = 0;
    for (const Task& task : batch) {
      const double cost = cost_model.Cost(task);
      if (cost <= 0.0) {
        return Status::InvalidArgument("task cost must be positive");
      }
      if (batch_cost + cost > budget_left + 1e-9) break;
      batch_cost += cost;
      ++affordable;
    }
    batch.resize(affordable);
    if (batch.empty()) break;

    BAYESCROWD_ASSIGN_OR_RETURN(const std::vector<TaskAnswer> answers,
                                platform.PostBatch(batch));
    if (answers.size() != batch.size()) {
      return Status::Internal("platform returned misaligned answers");
    }
    budget_left -= batch_cost;
    out.cost_spent += batch_cost;

    // Fold answers into the knowledge base.
    std::set<CellRef> touched;
    for (std::size_t t = 0; t < batch.size(); ++t) {
      BAYESCROWD_RETURN_NOT_OK(
          ApplyAnswer(batch[t], answers[t], &knowledge));
      for (const CellRef& var : batch[t].expression.Variables()) {
        touched.insert(var);
      }
    }

    // Re-condition the distributions of touched variables.
    for (const CellRef& var : touched) {
      const auto raw = raw_posteriors.find(var);
      if (raw == raw_posteriors.end()) continue;
      BAYESCROWD_RETURN_NOT_OK(evaluator.distributions().Set(
          var, knowledge.ConditionDistribution(var, raw->second)));
    }

    // Re-simplify every undecided condition against the knowledge base;
    // invalidate probability caches of conditions that changed.
    for (std::size_t i : ctable.UndecidedObjects()) {
      Condition simplified = ctable.condition(i).SimplifyWith(
          [&knowledge](const Expression& e) {
            return knowledge.Evaluate(e);
          });
      if (!(simplified == ctable.condition(i))) {
        ctable.SetCondition(i, std::move(simplified));
        prob_cache[i].reset();
      } else {
        // The condition text is unchanged, but a touched variable's
        // distribution may have shifted.
        for (const CellRef& var : ctable.condition(i).Variables()) {
          if (touched.count(var) > 0) {
            prob_cache[i].reset();
            break;
          }
        }
      }
    }

    RoundLog log;
    log.round = out.rounds + 1;
    log.tasks = batch.size();
    log.seconds = round_watch.ElapsedSeconds();
    out.round_logs.push_back(log);
    out.tasks_posted += batch.size();
    ++out.rounds;
  }
  out.crowdsourcing_seconds = crowd_watch.ElapsedSeconds();

  // ---------------------------------------------------------------- //
  // Answer inference (Algorithm 1, line 5).
  // ---------------------------------------------------------------- //
  out.probabilities.assign(ctable.num_objects(), 0.0);
  for (std::size_t i = 0; i < ctable.num_objects(); ++i) {
    const Condition& cond = ctable.condition(i);
    if (cond.IsTrue()) {
      out.probabilities[i] = 1.0;
      out.result_objects.push_back(i);
      continue;
    }
    if (cond.IsFalse()) continue;
    double p;
    if (prob_cache[i].has_value()) {
      p = *prob_cache[i];
    } else {
      BAYESCROWD_ASSIGN_OR_RETURN(p, evaluator.Probability(cond));
    }
    out.probabilities[i] = p;
    if (p > options_.answer_threshold) out.result_objects.push_back(i);
  }
  out.final_ctable = std::move(ctable);
  out.total_seconds = total_watch.ElapsedSeconds();
  return out;
}

}  // namespace bayescrowd
