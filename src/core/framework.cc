#include "core/framework.h"

#include "core/runner.h"

namespace bayescrowd {

// The one-shot pipeline is the stepping runner driven to completion;
// see core/runner.h. Keeping Run() as this trivial driver (instead of
// a separate code path) is what guarantees the resident server's
// per-round stepping executes exactly the statements the one-shot
// path always did.
Result<BayesCrowdResult> BayesCrowd::Run(const Table& incomplete,
                                         PosteriorProvider& posteriors,
                                         CrowdPlatform& platform) {
  QueryRunner runner(options_);
  BAYESCROWD_RETURN_NOT_OK(runner.Init(incomplete, posteriors, platform));
  while (!runner.Done()) {
    BAYESCROWD_RETURN_NOT_OK(runner.Step());
  }
  BAYESCROWD_RETURN_NOT_OK(runner.Finish());
  return runner.TakeResult();
}

}  // namespace bayescrowd
