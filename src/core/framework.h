// BayesCrowd: the full crowd skyline query framework (Algorithms 1 & 4).
//
// Modeling phase: build the c-table (Get-CTable) and attach per-variable
// value distributions (Bayesian-network posteriors, or any
// PosteriorProvider). Crowdsourcing phase: iteratively select
// conflict-free task batches under budget B and latency L, post them to
// a CrowdPlatform, fold answers into the knowledge base, re-simplify
// conditions and re-condition distributions, and finally return the
// objects whose condition is true or whose probability exceeds 0.5.

#ifndef BAYESCROWD_CORE_FRAMEWORK_H_
#define BAYESCROWD_CORE_FRAMEWORK_H_

#include <cstdint>
#include <vector>

#include "bayesnet/imputation.h"
#include "common/result.h"
#include "core/strategy.h"
#include "crowd/cost.h"
#include "crowd/platform.h"
#include "ctable/builder.h"
#include "ctable/condition.h"
#include "ctable/ctable.h"
#include "ctable/knowledge.h"
#include "data/table.h"
#include "obs/export.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "probability/evaluator.h"
#include "probability/governor.h"
#include "probability/interval.h"

namespace bayescrowd {

struct SessionState;   // core/checkpoint.h
class CheckpointSink;  // core/checkpoint.h

/// How the round loop survives a flaky platform. A PostBatch returning
/// Status::Unavailable (transient failure, timeout) is retried with
/// deterministic exponential backoff on a *simulated* clock; when the
/// attempts or the per-round deadline run out, the round is abandoned
/// and its tasks fall back into the candidate pool. Unanswered tasks
/// (`TaskAnswer::answered == false`) are refunded, so the budget only
/// pays for answers actually bought. All of it is driven from the
/// single-threaded round loop, so recovery is bit-identical at any
/// thread count.
struct RetryPolicy {
  /// PostBatch attempts per round (first try + retries). Transient
  /// failures beyond this abandon the round.
  std::size_t max_attempts = 3;

  /// Simulated seconds charged per PostBatch attempt.
  double attempt_seconds = 1.0;

  /// First retry waits this many simulated seconds; each further retry
  /// multiplies by `backoff_multiplier`.
  double backoff_initial_seconds = 1.0;
  double backoff_multiplier = 2.0;

  /// Per-round deadline on the simulated clock (attempts + backoff).
  /// An attempt that cannot finish before the deadline is not made and
  /// the round is abandoned. 0 disables the deadline.
  double round_deadline_seconds = 0.0;

  /// Give up on the crowdsourcing phase after this many consecutive
  /// rounds that applied zero answers (all attempts failed, or every
  /// task came back unanswered): the platform is presumed down and the
  /// query degrades to the current probabilistic state. Guarantees
  /// termination even at fault rate 1.0.
  std::size_t max_barren_rounds = 3;
};

/// Budget accounting for adaptive vote allocation (the marketplace
/// platform buys extra votes on low-confidence tasks). The platform
/// decides *where* to spend votes; this policy tells the round loop how
/// to charge them: each vote beyond `base_votes` on an answered task
/// costs `extra_vote_cost` × the task's cost, drawn from the same
/// budget with the same refund semantics as tasks themselves.
/// Disabled (the default) keeps budget math bit-identical to the fixed
/// 3-vote world even when a vote-reporting platform is attached.
struct AdaptiveVotePolicy {
  bool enabled = false;

  /// Votes included in a task's base price.
  std::size_t base_votes = 3;

  /// The platform's fan-out ceiling, used to reserve budget
  /// pessimistically when deciding how many tasks fit in a round.
  std::size_t max_votes = 3;

  /// Cost of one extra vote, as a fraction of the task's cost (one
  /// vote of a 3-vote task = 1/3).
  double extra_vote_cost = 1.0 / 3.0;
};

struct BayesCrowdOptions {
  /// Modeling-phase options (α pruning, dominator algorithm).
  CTableOptions ctable;

  /// Probability computation (ADPLL by default).
  ProbabilityOptions probability;

  /// Task selection strategy and its HHS parameter m.
  StrategyOptions strategy;

  /// Budget B, in cost units. With the default (uniform, cost-1) model
  /// this is the number of affordable tasks, the paper's reading.
  std::size_t budget = 50;

  /// Optional variable-task-difficulty pricing (Section 6.1's
  /// extension). Non-owning; must outlive the framework. nullptr means
  /// every task costs 1.
  const TaskCostModel* cost_model = nullptr;

  /// Latency constraint L: the number of task-selection rounds. The
  /// per-round batch size is ceil(B / L).
  std::size_t latency = 5;

  /// Result threshold: an undecided object is returned when
  /// Pr(φ(o)) > answer_threshold (paper: 0.5).
  double answer_threshold = 0.5;

  /// When exact ADPLL exhausts its recursion budget on a pathological
  /// condition, fall back to sampling instead of failing the query.
  bool sampling_fallback = true;

  /// Per-object solver circuit breaker (active only with a governed
  /// evaluator, `probability.governor`): after this many consecutive
  /// degraded (non-exact) Pr(φ) solves of one object, the round loop
  /// stops re-solving it — while its condition is unchanged, its last
  /// interval is reused for ranking instead of burning solver budget on
  /// another non-answer. A condition change (new crowd evidence
  /// simplified it) triggers one probe solve; an exact result closes
  /// the breaker. The final answer phase always solves fresh, so
  /// reported probabilities are never stale. 0 disables the breaker.
  std::size_t breaker_threshold = 3;

  /// Early stop: end the crowdsourcing phase (possibly under budget)
  /// once every undecided object's entropy falls below this threshold —
  /// i.e. every remaining probability is within
  /// BinaryEntropy^-1(threshold) of 0 or 1 and further tasks buy little
  /// information. 0 disables (the paper always spends the budget).
  double confidence_stop_entropy = 0.0;

  /// Fault tolerance for the crowdsourcing rounds. The defaults are
  /// inert on a healthy platform: one attempt per round, nothing
  /// refunded, behavior bit-identical to the pre-retry framework.
  RetryPolicy retry;

  /// Adaptive vote-allocation charging (inert by default).
  AdaptiveVotePolicy adaptive;

  /// Worker lanes for probability evaluation (entropy ranking and
  /// UBS/HHS counterfactual scoring). 0 = hardware concurrency; 1 runs
  /// everything on the calling thread. Results are bit-identical for
  /// any value (see DESIGN.md, "Concurrency & caching model").
  /// Ignored when `pool` is set.
  std::size_t threads = 0;

  /// Shared worker pool for a serving process hosting many sessions
  /// (see src/serve/). Non-owning; must outlive the run. nullptr (the
  /// default) spawns a private pool of `threads` lanes — the one-shot
  /// behavior. With a shared pool the per-lane pool gauges and
  /// BayesCrowdResult::lane_usage are skipped: shared-lane tallies mix
  /// sessions and would leak scheduling order into a session's
  /// otherwise deterministic result.
  ThreadPool* pool = nullptr;

  /// Metrics sink for the run ("evaluator.cache.*", "adpll.*",
  /// "framework.*"). Non-owning; must outlive Run(). nullptr means Run
  /// uses a private registry (its final state still lands in
  /// BayesCrowdResult::metrics), so repeated runs never see each
  /// other's counts. Inject a registry to aggregate across runs.
  obs::MetricsRegistry* metrics = nullptr;

  /// Session label for cost attribution: every deterministic cost unit
  /// ("cost.*" series) is charged to {session, phase, solver_tier,
  /// compile_state}. One label value per run today; ROADMAP item 1's
  /// multi-tenant server makes this the per-tenant dimension.
  std::string session = "s0";

  /// Flight recorder for structured runtime events (degradations,
  /// breaker trips, compile refusals, retries, checkpoint writes,
  /// budget exhaustion). Non-owning; nullptr disables. Purely
  /// observational — recording never feeds back into the query.
  obs::FlightRecorder* flight = nullptr;

  /// Live export: receives the full metrics snapshot after every round
  /// (abandoned rounds included) from the single-threaded round loop.
  /// Non-owning; nullptr disables. A sink failure fails the run.
  obs::RoundSnapshotSink* round_sink = nullptr;

  /// Crash safety: snapshot the session into `checkpoint_sink` every
  /// this many finished rounds (abandoned rounds included). 0 disables
  /// checkpointing; a sink failure fails the run.
  std::size_t checkpoint_every = 0;
  CheckpointSink* checkpoint_sink = nullptr;  // Non-owning.

  /// Resume a checkpointed session: after the modeling phase the round
  /// loop's state is overwritten from this snapshot and the loop
  /// continues from the checkpointed round. The caller is responsible
  /// for platform alignment (replaying the answer-log tail past the
  /// snapshot, LoadState on the platform stack). Non-owning; must
  /// outlive Run().
  const SessionState* resume = nullptr;
};

/// One crowd round's bookkeeping.
struct RoundLog {
  std::size_t round = 0;
  std::size_t tasks = 0;        // Tasks posted (answered + unanswered).
  double seconds = 0.0;         // select_seconds + update_seconds.
  double select_seconds = 0.0;  // Entropy ranking + task selection.
  double update_seconds = 0.0;  // Answer folding + re-simplification.

  /// Recovery bookkeeping (all zero / false on a healthy platform).
  std::size_t attempts = 1;       // PostBatch attempts this round.
  std::size_t answered = 0;       // Tasks whose answer was applied.
  std::size_t unanswered = 0;     // Abstained/dropped tasks (refunded).
  double cost_refunded = 0.0;     // Budget returned for unanswered tasks.
  double backoff_seconds = 0.0;   // Simulated backoff spent this round.
  double simulated_seconds = 0.0; // Attempts + backoff, simulated clock.
  bool abandoned = false;         // Every attempt failed; nothing posted.

  /// Evaluator memo-cache traffic attributable to this round.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  double CacheHitRate() const {
    const std::uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }
};

/// One object's solver circuit-breaker state at a round boundary (see
/// BayesCrowdOptions::breaker_threshold). Snapshotted into v2
/// checkpoints so a resumed session skips exactly the solves the
/// uninterrupted run would have skipped.
struct SolverBreakerRecord {
  std::size_t object = 0;
  /// Condition fingerprint the breaker state refers to; a mismatch at
  /// lookup time forces a probe solve.
  ConditionFingerprint fingerprint{0, 0};
  /// Consecutive degraded solves (survives condition changes — the
  /// breaker tracks the *object*, not one condition text).
  std::size_t consecutive = 0;
  bool open = false;
  /// Last solved interval, reused while open on an unchanged condition.
  ProbInterval last = ProbInterval::Unknown();
};

/// Everything a Run() produces.
struct BayesCrowdResult {
  /// Object ids answered as skyline members.
  std::vector<std::size_t> result_objects;

  /// Cost/latency actually spent.
  std::size_t tasks_posted = 0;
  std::size_t rounds = 0;   // All rounds attempted, abandoned included.
  double cost_spent = 0.0;  // Answered tasks only; refunds excluded.

  /// Fault-recovery totals (all zero on a healthy platform).
  std::size_t tasks_unanswered = 0;   // Abstained/dropped, refunded.
  /// Extra votes charged under the adaptive policy (0 when disabled).
  std::size_t extra_votes = 0;
  std::size_t retries = 0;            // Re-posts after transient failures.
  std::size_t transient_failures = 0; // Unavailable PostBatch attempts.
  std::size_t rounds_abandoned = 0;   // Rounds where no attempt landed.
  double cost_refunded = 0.0;         // Budget refunded for unanswered.
  double backoff_seconds = 0.0;       // Total simulated backoff.
  double simulated_seconds = 0.0;     // Total simulated platform time.

  /// True when the barren-round stop ended the phase early (the
  /// platform stopped delivering answers before the budget ran out).
  /// The result set is still well-defined — undecided objects answer by
  /// their current probability — just computed from less evidence than
  /// budgeted, so the probabilistic skyline may be wider.
  bool degraded = false;

  /// Machine-side wall-clock (excludes simulated worker time).
  double modeling_seconds = 0.0;
  double crowdsourcing_seconds = 0.0;
  double total_seconds = 0.0;

  /// Per-phase totals across rounds (machine side). Platform wall is
  /// the machine-side cost of talking to the crowd platform (post,
  /// retry bookkeeping) — distinct from the *simulated* worker clock.
  double select_seconds = 0.0;
  double update_seconds = 0.0;
  double platform_wall_seconds = 0.0;
  /// Round-boundary I/O: checkpoint writes plus the export sinks
  /// (Prometheus scrape file, JSONL round stream, flight summaries).
  /// Dominated by file I/O when live export is enabled, ~zero otherwise.
  double export_seconds = 0.0;

  /// Final answer-inference phase (machine side). Together with
  /// modeling/select/update this covers the run's attributable
  /// wall-clock; `inspect` reports the coverage ratio.
  double answer_seconds = 0.0;

  /// Evaluator memo-cache totals for the whole run.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;

  /// ADPLL search totals for the whole run.
  AdpllStats adpll;

  /// Per-lane thread-pool utilization (lane 0 is the calling thread).
  std::vector<ThreadPool::LaneStats> lane_usage;

  /// Final state of every instrument in the run's metrics registry.
  obs::MetricsSnapshot metrics;

  /// Final per-object probabilities (1/0 for decided conditions).
  /// Midpoints of `probability_intervals`; exactly the interval value
  /// when the governor is inert.
  std::vector<double> probabilities;

  /// Interval-valued final probabilities, aligned with `probabilities`.
  /// All kExact (lo == hi) when the solver governor is inert.
  std::vector<ProbInterval> probability_intervals;

  /// Objects whose final probability carries a degraded (non-exact)
  /// ProbQuality grade — the solver budget did not suffice for them.
  std::vector<std::size_t> degraded_objects;

  /// Governor counters for the whole run (all zero when inert).
  GovernorTally solver;

  /// Knowledge-compilation counters for the whole run (all zero when
  /// compilation is off or the configuration is ineligible).
  CircuitStats compile;

  /// Circuit-breaker activity: breakers opened, and round-loop solves
  /// skipped by an open breaker.
  std::size_t breaker_trips = 0;
  std::size_t breaker_skips = 0;

  /// State of the c-table after all updates.
  CTable final_ctable;

  std::vector<RoundLog> round_logs;

  /// True when the confidence stop ended the run before the budget.
  bool stopped_confident = false;

  /// True when this run continued from a checkpoint snapshot.
  bool resumed = false;

  /// Crowd answers skipped because they contradicted an earlier
  /// recorded ordering (the knowledge base keeps the first answer; the
  /// conflicting one is dropped, its cost stays spent).
  std::size_t order_conflicts = 0;

  /// Modeling-phase statistics.
  std::size_t initial_true = 0;
  std::size_t initial_false = 0;
  std::size_t initial_undecided = 0;
};

/// The framework. Construct once per query; Run() drives both phases.
class BayesCrowd {
 public:
  explicit BayesCrowd(BayesCrowdOptions options = {})
      : options_(std::move(options)) {}

  const BayesCrowdOptions& options() const { return options_; }

  /// Executes the full pipeline on `incomplete`. `posteriors` supplies
  /// missing-value distributions (preprocessing output); `platform`
  /// answers tasks.
  Result<BayesCrowdResult> Run(const Table& incomplete,
                               PosteriorProvider& posteriors,
                               CrowdPlatform& platform);

 private:
  BayesCrowdOptions options_;
};

}  // namespace bayescrowd

#endif  // BAYESCROWD_CORE_FRAMEWORK_H_
