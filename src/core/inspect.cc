#include "core/inspect.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <utility>

#include "common/string_util.h"

namespace bayescrowd {
namespace {

double NumberOr(const obs::JsonValue* value, double fallback) {
  if (value == nullptr || !value->is_number()) return fallback;
  return value->AsDouble();
}

std::string StringOr(const obs::JsonValue* value,
                     const std::string& fallback) {
  if (value == nullptr) return fallback;
  return value->AsString();
}

/// The run payload inside the telemetry envelope, or an error when the
/// document is not a kind-"run" envelope.
Result<const obs::JsonValue*> RunPayload(const obs::JsonValue& telemetry) {
  const obs::JsonValue* kind = telemetry.Find("kind");
  if (kind == nullptr || kind->AsString() != "run") {
    return Status::InvalidArgument(
        "not a run telemetry document (expected envelope kind \"run\"; "
        "pass the --telemetry-out file of a run)");
  }
  const obs::JsonValue* payload = telemetry.Find("payload");
  if (payload == nullptr) {
    return Status::InvalidArgument("telemetry envelope has no payload");
  }
  return payload;
}

struct AttributionRow {
  std::string unit;
  std::string session;
  std::string phase;
  std::string solver_tier;
  std::string compile_state;
  std::uint64_t units = 0;
};

std::vector<AttributionRow> AttributionRows(const obs::JsonValue& payload) {
  std::vector<AttributionRow> rows;
  const obs::JsonValue* attribution = payload.Find("attribution");
  if (attribution == nullptr) return rows;
  const obs::JsonValue* raw = attribution->Find("rows");
  if (raw == nullptr) return rows;
  for (std::size_t i = 0; i < raw->size(); ++i) {
    const obs::JsonValue& entry = raw->at(i);
    AttributionRow row;
    row.unit = StringOr(entry.Find("unit"), "");
    row.session = StringOr(entry.Find("session"), "");
    row.phase = StringOr(entry.Find("phase"), "");
    row.solver_tier = StringOr(entry.Find("solver_tier"), "");
    row.compile_state = StringOr(entry.Find("compile_state"), "");
    row.units =
        static_cast<std::uint64_t>(NumberOr(entry.Find("units"), 0.0));
    rows.push_back(std::move(row));
  }
  return rows;
}

void AppendGroupTable(const std::string& title,
                      const std::map<std::string, std::uint64_t>& groups,
                      std::uint64_t total, std::string* out) {
  out->append(title);
  out->append("\n");
  for (const auto& [key, units] : groups) {
    const double share =
        total > 0 ? 100.0 * static_cast<double>(units) /
                        static_cast<double>(total)
                  : 0.0;
    out->append(StrFormat("  %-28s %12llu  %5.1f%%\n", key.c_str(),
                          static_cast<unsigned long long>(units), share));
  }
}

// ----------------------------------------------------------------- //
// Diff
// ----------------------------------------------------------------- //

bool SkipKey(const std::string& key) {
  // Wall-clock fields and the one wall-clock-dependent solver count are
  // machine-dependent; simulated clocks (deterministic) stay in. Lane
  // usage is scheduling-dependent even on identical seeds, so it is
  // skipped the same way `normalize --strip-lanes` drops it.
  const bool is_seconds =
      key.size() >= 7 && key.compare(key.size() - 7, 7, "seconds") == 0;
  if (is_seconds && key.find("sim") == std::string::npos) return true;
  if (key == "lanes" || key == "threads" ||
      key.rfind("pool.lane", 0) == 0) {
    return true;
  }
  return key == "deadline_hits" || key == "wall_ms";
}

void CollectNumericLeaves(const obs::JsonValue& value,
                          const std::string& path,
                          std::map<std::string, double>* out) {
  if (value.is_number()) {
    (*out)[path] = value.AsDouble();
    return;
  }
  if (value.kind() == obs::JsonValue::Kind::kObject) {
    for (const auto& [key, member] : value.members()) {
      if (SkipKey(key)) continue;
      CollectNumericLeaves(member, path.empty() ? key : path + "." + key,
                           out);
    }
    return;
  }
  if (value.kind() == obs::JsonValue::Kind::kArray) {
    for (std::size_t i = 0; i < value.size(); ++i) {
      CollectNumericLeaves(value.at(i), StrFormat("%s[%zu]", path.c_str(), i),
                           out);
    }
  }
}

}  // namespace

Result<InspectionReport> RenderRunInspection(
    const obs::JsonValue& telemetry, const obs::FlightLoad* flight) {
  BAYESCROWD_ASSIGN_OR_RETURN(const obs::JsonValue* payload,
                              RunPayload(telemetry));
  InspectionReport report;
  std::string& out = report.text;

  const obs::JsonValue* options = payload->Find("options");
  const obs::JsonValue* result = payload->Find("result");
  if (result == nullptr) {
    return Status::InvalidArgument("run telemetry has no result section");
  }
  out.append(StrFormat(
      "run: %s\n",
      StringOr(telemetry.Find("name"), "(unnamed)").c_str()));
  if (options != nullptr) {
    out.append(StrFormat(
        "config: strategy=%s budget=%.0f latency=%.0f threads=%.0f\n",
        StringOr(options->Find("strategy"), "?").c_str(),
        NumberOr(options->Find("budget"), 0),
        NumberOr(options->Find("latency"), 0),
        NumberOr(options->Find("threads"), 0)));
  }
  out.append(StrFormat(
      "outcome: rounds=%.0f tasks=%.0f cost_spent=%.1f degraded=%s\n\n",
      NumberOr(result->Find("rounds"), 0),
      NumberOr(result->Find("tasks_posted"), 0),
      NumberOr(result->Find("cost_spent"), 0),
      result->Find("degraded") != nullptr &&
              result->Find("degraded")->AsBool()
          ? "yes"
          : "no"));

  // -- Wall-clock attribution ------------------------------------- //
  const double modeling = NumberOr(result->Find("modeling_seconds"), 0.0);
  const double select = NumberOr(result->Find("select_seconds"), 0.0);
  const double update = NumberOr(result->Find("update_seconds"), 0.0);
  const double answer = NumberOr(result->Find("answer_seconds"), 0.0);
  const double platform =
      NumberOr(result->Find("platform_wall_seconds"), 0.0);
  const double exported = NumberOr(result->Find("export_seconds"), 0.0);
  const double crowd = NumberOr(result->Find("crowdsourcing_seconds"), 0.0);
  const double total = NumberOr(result->Find("total_seconds"), 0.0);
  // Coverage is graded over the phase-covered windows (modeling +
  // crowdsourcing + answer): the round loop's wall-clock must be
  // explained by its select/platform/update/export timers.
  // total_seconds additionally holds fixed setup and report assembly,
  // shown for context only.
  const double attributed =
      modeling + select + platform + update + exported + answer;
  const double windows = modeling + crowd + answer;
  report.wall_coverage =
      windows > 0.0 ? std::min(1.0, attributed / windows) : 1.0;
  out.append("wall-clock attribution\n");
  out.append(StrFormat("  %-28s %12.6fs\n", "modeling", modeling));
  out.append(StrFormat("  %-28s %12.6fs\n", "select", select));
  out.append(StrFormat("  %-28s %12.6fs\n", "crowd (platform wall)",
                       platform));
  out.append(StrFormat("  %-28s %12.6fs\n", "update", update));
  out.append(StrFormat("  %-28s %12.6fs\n", "export (sinks + checkpoint)",
                       exported));
  out.append(StrFormat("  %-28s %12.6fs\n", "answer", answer));
  out.append(StrFormat("  %-28s %12.6fs\n", "rounds (crowdsourcing)",
                       crowd));
  out.append(StrFormat("  %-28s %12.6fs\n", "total (incl. setup)", total));
  out.append(StrFormat("  wall_coverage: %.1f%% of phase wall-clock "
                       "attributed\n\n",
                       100.0 * report.wall_coverage));

  // -- Deterministic cost units ----------------------------------- //
  const std::vector<AttributionRow> rows = AttributionRows(*payload);
  std::uint64_t total_units = 0;
  std::uint64_t labeled_units = 0;
  std::map<std::string, std::uint64_t> by_phase;
  std::map<std::string, std::uint64_t> by_tier;
  std::map<std::string, std::uint64_t> by_unit;
  for (const AttributionRow& row : rows) {
    total_units += row.units;
    if (!row.session.empty() && !row.phase.empty() &&
        !row.solver_tier.empty()) {
      labeled_units += row.units;
    }
    by_phase[row.phase.empty() ? "(unlabeled)" : row.phase] += row.units;
    by_tier[row.solver_tier.empty() ? "(unlabeled)" : row.solver_tier] +=
        row.units;
    by_unit[row.unit] += row.units;
  }
  report.total_units = total_units;
  report.unit_coverage =
      total_units > 0
          ? static_cast<double>(labeled_units) /
                static_cast<double>(total_units)
          : 1.0;
  out.append(StrFormat("deterministic cost units (total %llu)\n",
                       static_cast<unsigned long long>(total_units)));
  out.append(StrFormat("  unit_coverage: %.1f%% carry a full (session, "
                       "phase, solver_tier) triple\n",
                       100.0 * report.unit_coverage));
  AppendGroupTable("by unit", by_unit, total_units, &out);
  AppendGroupTable("by phase", by_phase, total_units, &out);
  AppendGroupTable("by solver tier", by_tier, total_units, &out);
  out.append("\n");

  // -- Per-round breakdown ---------------------------------------- //
  const obs::JsonValue* rounds = payload->Find("rounds");
  if (rounds != nullptr && rounds->size() > 0) {
    out.append("per-round\n");
    out.append(
        "  round  tasks  answered  select_s   update_s   cache_hit%  "
        "flags\n");
    for (std::size_t i = 0; i < rounds->size(); ++i) {
      const obs::JsonValue& r = rounds->at(i);
      const double hits = NumberOr(r.Find("cache_hits"), 0.0);
      const double misses = NumberOr(r.Find("cache_misses"), 0.0);
      const double rate =
          hits + misses > 0 ? 100.0 * hits / (hits + misses) : 0.0;
      const bool abandoned = r.Find("abandoned") != nullptr &&
                             r.Find("abandoned")->AsBool();
      out.append(StrFormat(
          "  %5.0f  %5.0f  %8.0f  %9.6f  %9.6f  %9.1f  %s\n",
          NumberOr(r.Find("round"), 0), NumberOr(r.Find("tasks"), 0),
          NumberOr(r.Find("answered"), 0),
          NumberOr(r.Find("select_seconds"), 0),
          NumberOr(r.Find("update_seconds"), 0), rate,
          abandoned ? "abandoned" : "-"));
    }
    out.append("\n");
  }

  // -- Per-object solver quality ---------------------------------- //
  const obs::JsonValue* solver = payload->Find("solver");
  if (solver != nullptr) {
    const obs::JsonValue* intervals = solver->Find("intervals");
    std::map<std::string, std::uint64_t> by_quality;
    if (intervals != nullptr) {
      for (std::size_t i = 0; i < intervals->size(); ++i) {
        by_quality[StringOr(intervals->at(i).Find("quality"), "?")] += 1;
      }
    }
    out.append("per-object final quality\n");
    for (const auto& [quality, count] : by_quality) {
      out.append(StrFormat("  %-28s %12llu\n", quality.c_str(),
                           static_cast<unsigned long long>(count)));
    }
    const obs::JsonValue* degraded = solver->Find("degraded_objects");
    if (degraded != nullptr && degraded->size() > 0) {
      out.append("  degraded objects:");
      for (std::size_t i = 0; i < degraded->size(); ++i) {
        out.append(StrFormat(" %lld",
                             static_cast<long long>(degraded->at(i).AsInt())));
      }
      out.append("\n");
    }
    out.append("\n");
  }

  // -- Flight timeline -------------------------------------------- //
  if (flight != nullptr) {
    out.append(StrFormat(
        "flight recorder: %llu event(s) recorded, %zu retained, %zu "
        "corrupt line(s) skipped\n",
        static_cast<unsigned long long>(flight->total_recorded),
        flight->events.size(), flight->corrupt_lines));
    for (const obs::FlightEvent& event : flight->events) {
      out.append(StrFormat(
          "  #%llu r%llu %-18s obj=%lld sim=%.3fs value=%.3f  %s\n",
          static_cast<unsigned long long>(event.seq),
          static_cast<unsigned long long>(event.round),
          obs::FlightEventKindToString(event.kind),
          static_cast<long long>(event.object), event.sim_seconds,
          event.value, event.detail.c_str()));
    }
  }
  return report;
}

Result<TelemetryDiff> DiffRunTelemetry(const obs::JsonValue& baseline,
                                       const obs::JsonValue& candidate,
                                       double threshold) {
  if (threshold < 0.0) {
    return Status::InvalidArgument("diff threshold must be >= 0");
  }
  BAYESCROWD_ASSIGN_OR_RETURN(const obs::JsonValue* base_payload,
                              RunPayload(baseline));
  BAYESCROWD_ASSIGN_OR_RETURN(const obs::JsonValue* cand_payload,
                              RunPayload(candidate));
  std::map<std::string, double> base_leaves;
  std::map<std::string, double> cand_leaves;
  CollectNumericLeaves(*base_payload, "", &base_leaves);
  CollectNumericLeaves(*cand_payload, "", &cand_leaves);

  TelemetryDiff diff;
  std::set<std::string> paths;
  for (const auto& [path, value] : base_leaves) paths.insert(path);
  for (const auto& [path, value] : cand_leaves) paths.insert(path);
  for (const std::string& path : paths) {
    const auto b = base_leaves.find(path);
    const auto c = cand_leaves.find(path);
    TelemetryRegression reg;
    reg.path = path;
    // A leaf missing on one side counts as 0 there: an optional metric
    // that is absent vs present-but-zero is the same measurement, while
    // a new nonzero metric still trips the relative rule below.
    reg.baseline = b == base_leaves.end() ? 0.0 : b->second;
    reg.candidate = c == cand_leaves.end() ? 0.0 : c->second;
    const double denom = std::max(std::abs(reg.baseline), 1.0);
    reg.relative = std::abs(reg.candidate - reg.baseline) / denom;
    if (reg.relative > threshold) {
      diff.regressions.push_back(std::move(reg));
    }
  }
  if (diff.regressions.empty()) {
    diff.text = StrFormat(
        "no regressions: %zu comparable metric(s) within threshold "
        "%.3f\n",
        paths.size(), threshold);
  } else {
    diff.text = StrFormat("%zu metric(s) drifted beyond threshold %.3f\n",
                          diff.regressions.size(), threshold);
    for (const TelemetryRegression& reg : diff.regressions) {
      diff.text.append(StrFormat("  %-48s %14.4f -> %14.4f  (%+.1f%%)\n",
                                 reg.path.c_str(), reg.baseline,
                                 reg.candidate, 100.0 * reg.relative));
    }
  }
  return diff;
}

}  // namespace bayescrowd
