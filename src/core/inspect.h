// Run inspection: turns the machine-readable artifacts a run leaves
// behind (telemetry JSON, flight-recorder JSONL) into cost breakdowns
// a person can act on, and diffs two runs' telemetry to flag metric
// regressions. Backs the `bayescrowd_cli inspect` subcommand; see
// tools/README.md for worked examples.

#ifndef BAYESCROWD_CORE_INSPECT_H_
#define BAYESCROWD_CORE_INSPECT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/flight.h"
#include "obs/json.h"

namespace bayescrowd {

/// A rendered inspection of one run's telemetry document plus the
/// coverage ratios the report is graded on.
struct InspectionReport {
  std::string text;
  /// Fraction of the run's wall-clock attributed to a named phase
  /// (modeling / select / platform / update / export / answer). The
  /// remainder is loop bookkeeping and report assembly.
  double wall_coverage = 0.0;
  /// Fraction of deterministic cost units carrying a full
  /// (session, phase, solver_tier) label triple. Anything below 1.0
  /// means an instrumentation site lost its labels.
  double unit_coverage = 0.0;
  std::uint64_t total_units = 0;
};

/// Renders per-phase / per-tier / per-round cost breakdowns from a
/// telemetry document (obs envelope, kind "run"). `flight` is optional;
/// when present its events are appended as an incident timeline.
Result<InspectionReport> RenderRunInspection(const obs::JsonValue& telemetry,
                                             const obs::FlightLoad* flight);

/// One flagged metric drift between two runs.
struct TelemetryRegression {
  std::string path;      // Dotted path into the payload.
  double baseline = 0.0;
  double candidate = 0.0;
  double relative = 0.0;  // |candidate - baseline| / max(|baseline|, 1).
};

/// Diff result: every numeric leaf whose relative drift exceeded the
/// threshold. Wall-clock fields (keys ending in "seconds" that are not
/// simulated clocks) and deadline hits are skipped, mirroring the
/// normalize tool, so identical-seed runs diff clean.
struct TelemetryDiff {
  std::string text;
  std::vector<TelemetryRegression> regressions;
};

Result<TelemetryDiff> DiffRunTelemetry(const obs::JsonValue& baseline,
                                       const obs::JsonValue& candidate,
                                       double threshold);

}  // namespace bayescrowd

#endif  // BAYESCROWD_CORE_INSPECT_H_
