#include "core/report.h"

#include "common/string_util.h"

namespace bayescrowd {

std::string FormatRunReport(const BayesCrowdResult& result,
                            const Table& table,
                            const ReportOptions& options) {
  std::string out;
  out += StrFormat(
      "BayesCrowd run: %zu objects -> %zu answers\n",
      table.num_objects(), result.result_objects.size());
  out += StrFormat(
      "  modeling: %zu certain-in, %zu certain-out, %zu undecided "
      "(%.1f ms)\n",
      result.initial_true, result.initial_false, result.initial_undecided,
      result.modeling_seconds * 1e3);
  out += StrFormat(
      "  crowdsourcing: %zu tasks over %zu rounds, cost %.2f (%.1f ms)%s%s\n",
      result.tasks_posted, result.rounds, result.cost_spent,
      result.crowdsourcing_seconds * 1e3,
      result.stopped_confident ? ", stopped confident" : "",
      result.degraded ? ", degraded (platform stopped answering)" : "");
  if (result.transient_failures > 0 || result.tasks_unanswered > 0 ||
      result.rounds_abandoned > 0) {
    out += StrFormat(
        "    recovery: %zu transient failure(s), %zu retrie(s), %zu "
        "round(s) abandoned, %zu task(s) unanswered, %.2f refunded, "
        "%.1f s simulated backoff\n",
        result.transient_failures, result.retries, result.rounds_abandoned,
        result.tasks_unanswered, result.cost_refunded,
        result.backoff_seconds);
  }
  out += StrFormat(
      "    select %.1f ms, update %.1f ms; evaluator cache %llu hits / "
      "%llu misses / %llu evictions\n",
      result.select_seconds * 1e3, result.update_seconds * 1e3,
      static_cast<unsigned long long>(result.cache_hits),
      static_cast<unsigned long long>(result.cache_misses),
      static_cast<unsigned long long>(result.cache_evictions));
  out += StrFormat(
      "    adpll: %llu calls, %llu branches, %llu direct evals, "
      "%llu component splits, %llu star evals\n",
      static_cast<unsigned long long>(result.adpll.calls),
      static_cast<unsigned long long>(result.adpll.branches),
      static_cast<unsigned long long>(result.adpll.direct_evals),
      static_cast<unsigned long long>(result.adpll.component_splits),
      static_cast<unsigned long long>(result.adpll.star_evals));
  const GovernorTally& solver = result.solver;
  if (solver.budget_exhausted > 0 || solver.deadline_hits > 0 ||
      solver.tier_partial > 0 || solver.tier_sampled > 0 ||
      solver.tier_unknown > 0 || !result.degraded_objects.empty()) {
    out += StrFormat(
        "    solver: %llu budget exhaustion(s), %llu deadline hit(s); "
        "tiers exact/partial/sampled/unknown = %llu/%llu/%llu/%llu; "
        "%zu object(s) degraded\n",
        static_cast<unsigned long long>(solver.budget_exhausted),
        static_cast<unsigned long long>(solver.deadline_hits),
        static_cast<unsigned long long>(solver.tier_exact),
        static_cast<unsigned long long>(solver.tier_partial),
        static_cast<unsigned long long>(solver.tier_sampled),
        static_cast<unsigned long long>(solver.tier_unknown),
        result.degraded_objects.size());
  }
  if (result.breaker_trips > 0 || result.breaker_skips > 0) {
    out += StrFormat(
        "    breaker: %zu object breaker(s) opened, %zu re-solve(s) "
        "skipped\n",
        result.breaker_trips, result.breaker_skips);
  }
  if (!result.lane_usage.empty()) {
    std::uint64_t lane_tasks = 0;
    double busy = 0.0;
    for (const ThreadPool::LaneStats& lane : result.lane_usage) {
      lane_tasks += lane.tasks;
      busy += lane.busy_seconds;
    }
    out += StrFormat(
        "    pool: %zu lane(s), %llu work item(s), %.1f ms busy\n",
        result.lane_usage.size(),
        static_cast<unsigned long long>(lane_tasks), busy * 1e3);
  }
  out += StrFormat("  total machine time: %.1f ms\n",
                   result.total_seconds * 1e3);

  if (options.show_metrics) {
    out += "  metrics:\n";
    const std::string text = result.metrics.ToText();
    std::size_t start = 0;
    while (start < text.size()) {
      std::size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      out += "    " + text.substr(start, end - start) + "\n";
      start = end + 1;
    }
  }

  if (options.show_rounds) {
    for (const RoundLog& log : result.round_logs) {
      out += StrFormat(
          "    round %zu: %zu task(s), select %.1f ms + update %.1f ms, "
          "cache hit rate %.0f%%\n",
          log.round, log.tasks, log.select_seconds * 1e3,
          log.update_seconds * 1e3, log.CacheHitRate() * 100.0);
    }
  }

  out += "  answers:\n";
  std::size_t listed = 0;
  for (std::size_t id : result.result_objects) {
    if (options.max_objects != 0 && listed >= options.max_objects) {
      out += StrFormat("    ... and %zu more\n",
                       result.result_objects.size() - listed);
      break;
    }
    // Non-exact answers show their sound interval and ProbQuality
    // grade; exact ones print as before.
    std::string grade;
    if (id < result.probability_intervals.size() &&
        !result.probability_intervals[id].exact()) {
      const ProbInterval& interval = result.probability_intervals[id];
      grade = StrFormat(" in [%.3f, %.3f] (%s)", interval.lo, interval.hi,
                        ProbQualityToString(interval.quality));
    }
    out += StrFormat("    %-24s Pr=%.3f%s\n", table.object_name(id).c_str(),
                     result.probabilities[id], grade.c_str());
    ++listed;
  }

  if (options.show_conditions) {
    out += "  final conditions:\n";
    for (std::size_t i = 0; i < table.num_objects(); ++i) {
      const Condition& cond = result.final_ctable.condition(i);
      if (cond.IsFalse()) continue;
      out += StrFormat("    phi(%s) = %s\n",
                       table.object_name(i).c_str(),
                       cond.ToString(table).c_str());
    }
  }
  return out;
}

}  // namespace bayescrowd
