// Human-readable run reports for BayesCrowdResult, shared by the CLI
// and the examples.

#ifndef BAYESCROWD_CORE_REPORT_H_
#define BAYESCROWD_CORE_REPORT_H_

#include <string>

#include "core/framework.h"
#include "data/table.h"

namespace bayescrowd {

struct ReportOptions {
  /// Include the final condition of every undecided/true object.
  bool show_conditions = false;

  /// Include the per-round task/time trace.
  bool show_rounds = false;

  /// Include the full metrics-registry snapshot (one line per
  /// instrument; the ADPLL/lane summary is always printed).
  bool show_metrics = false;

  /// Cap on listed result objects (0 = unlimited).
  std::size_t max_objects = 0;
};

/// Formats a multi-line summary of `result` for the query over `table`.
std::string FormatRunReport(const BayesCrowdResult& result,
                            const Table& table,
                            const ReportOptions& options = {});

}  // namespace bayescrowd

#endif  // BAYESCROWD_CORE_REPORT_H_
