#include "core/runner.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/checkpoint.h"
#include "core/entropy.h"
#include "core/update.h"

namespace bayescrowd {

Status QueryRunner::Init(const Table& incomplete,
                         PosteriorProvider& posteriors,
                         CrowdPlatform& platform) {
  if (initialized_) {
    return Status::FailedPrecondition("QueryRunner::Init called twice");
  }
  if (options_.latency == 0) {
    return Status::InvalidArgument("latency must be >= 1 round");
  }
  if (options_.retry.max_attempts == 0) {
    return Status::InvalidArgument("retry.max_attempts must be >= 1");
  }
  if (options_.retry.max_barren_rounds == 0) {
    return Status::InvalidArgument("retry.max_barren_rounds must be >= 1");
  }
  if (options_.retry.attempt_seconds < 0.0 ||
      options_.retry.backoff_initial_seconds < 0.0 ||
      options_.retry.backoff_multiplier < 1.0 ||
      options_.retry.round_deadline_seconds < 0.0) {
    return Status::InvalidArgument("retry policy times must be >= 0 and "
                                   "the backoff multiplier >= 1");
  }
  if (options_.adaptive.enabled &&
      (options_.adaptive.base_votes == 0 ||
       options_.adaptive.max_votes < options_.adaptive.base_votes ||
       options_.adaptive.extra_vote_cost < 0.0)) {
    return Status::InvalidArgument(
        "adaptive votes: base_votes must be >= 1, max_votes >= "
        "base_votes, and extra_vote_cost >= 0");
  }

  Stopwatch init_watch;
  run_span_.emplace("bayescrowd.run");
  platform_ = &platform;

  // Per-run registry unless the caller injected one: repeated runs in
  // one process start from zeroed counters either way the caller set it
  // up, and the snapshot still lands in the result.
  metrics_ = options_.metrics != nullptr ? options_.metrics : &local_metrics_;
  obs::MetricsRegistry* const metrics = metrics_;

  // ---------------------------------------------------------------- //
  // Modeling phase (Algorithm 1, line 1).
  // ---------------------------------------------------------------- //
  obs::TraceSpan modeling_span("modeling");
  Stopwatch modeling_watch;
  BAYESCROWD_ASSIGN_OR_RETURN(ctable_,
                              BuildCTable(incomplete, options_.ctable));

  // Attach distributions for every variable the c-table mentions. The
  // framework-level fallback switch feeds every probability call,
  // including the marginal-utility computations inside task selection.
  ProbabilityOptions probability_options = options_.probability;
  probability_options.sampling_fallback =
      probability_options.sampling_fallback || options_.sampling_fallback;
  evaluator_.emplace(probability_options);
  ProbabilityEvaluator& evaluator = *evaluator_;
  // Context before binding: BindMetrics resolves the labeled cost
  // instruments, and resolving under the default (s0, adhoc) context
  // would leave phantom zero-valued series in the run's registry.
  evaluator.SetCostContext(options_.session, "modeling");
  evaluator.BindMetrics(metrics);
  for (const CellRef& var : ctable_.AllVariables()) {
    BAYESCROWD_ASSIGN_OR_RETURN(std::vector<double> dist,
                                posteriors.Posterior(var));
    raw_posteriors_[var] = dist;
    BAYESCROWD_RETURN_NOT_OK(
        evaluator.SetDistribution(var, std::move(dist)));
  }
  out_.modeling_seconds = modeling_watch.ElapsedSeconds();
  modeling_span.End();
  out_.initial_true = ctable_.NumTrue();
  out_.initial_false = ctable_.NumFalse();
  out_.initial_undecided = ctable_.NumUndecided();

  rounds_counter_ = metrics->GetCounter("framework.rounds");
  tasks_counter_ = metrics->GetCounter(
      std::string("framework.tasks_posted.") +
      StrategyKindToString(options_.strategy.kind));
  retries_counter_ = metrics->GetCounter("framework.retries");
  transient_counter_ = metrics->GetCounter("framework.transient_failures");
  abandoned_counter_ = metrics->GetCounter("framework.rounds_abandoned");
  unanswered_counter_ = metrics->GetCounter("framework.tasks_unanswered");
  conflicts_counter_ = metrics->GetCounter("framework.order_conflicts");
  breaker_trips_counter_ = metrics->GetCounter("framework.breaker.trips");
  breaker_skips_counter_ = metrics->GetCounter("framework.breaker.skips");

  // Crowd-side deterministic cost units, labeled like the evaluator's:
  // the "crowd" phase has no solver tier or compile state.
  const auto crowd_cost = [&](const char* name) {
    return metrics->GetCounter(name, {{"session", options_.session},
                                      {"phase", "crowd"},
                                      {"solver_tier", "none"},
                                      {"compile_state", "none"}});
  };
  cost_crowd_tasks_ = crowd_cost("cost.crowd_tasks");
  cost_retry_refunds_ = crowd_cost("cost.retry_refunds");
  cost_extra_votes_ = crowd_cost("cost.extra_votes");

  flight_ = options_.flight;
  solver_before_ = evaluator.solver_stats();
  compile_before_ = evaluator.compile_stats();

  // ---------------------------------------------------------------- //
  // Crowdsourcing-phase setup (Algorithm 4).
  // ---------------------------------------------------------------- //
  // One pool for the whole phase; every probability batch (entropy
  // ranking here, counterfactual scoring inside SelectTasks) fans out
  // over it through the evaluator. Spawned before the first Step's
  // watch starts: thread startup is setup cost, not round work. A
  // serving process passes its shared pool instead (options_.pool) and
  // no thread is spawned here at all.
  if (options_.pool != nullptr) {
    pool_ = options_.pool;
  } else {
    owned_pool_ = std::make_unique<ThreadPool>(options_.threads);
    pool_ = owned_pool_.get();
  }
  evaluator.set_thread_pool(pool_);
  knowledge_.emplace(incomplete.schema());
  KnowledgeBase& knowledge = *knowledge_;

  mu_ = (options_.budget + options_.latency - 1) /
        options_.latency;  // ceil(B / L)
  cost_model_ =
      options_.cost_model != nullptr ? options_.cost_model : &unit_cost_;
  budget_left_ = static_cast<double>(options_.budget);
  consecutive_barren_ = 0;

  // Per-object solver circuit breakers (breaker_threshold). Only a
  // governed evaluator produces non-exact grades, so the map stays
  // empty — and the round loop byte-identical — on ungoverned runs.
  breakers_enabled_ = options_.breaker_threshold > 0 &&
                      evaluator.options().governor.enabled();

  // ---------------------------------------------------------------- //
  // Resume from a checkpoint snapshot. The modeling phase above rebuilt
  // the pristine c-table and raw posteriors (deterministic from the
  // inputs); everything the crowd rounds changed is overwritten from
  // the snapshot, in dependency order: conditions and knowledge first,
  // then the re-conditioned distributions (whose cache evictions land
  // on an empty cache), then the memo cache keyed by those conditions,
  // then the platform stack, and the metrics snapshot last so setup-
  // time increments are reset to the checkpointed counts.
  // ---------------------------------------------------------------- //
  if (options_.resume != nullptr) {
    const SessionState& st = *options_.resume;
    if (st.conditions.size() != ctable_.num_objects()) {
      return Status::InvalidArgument(StrFormat(
          "resume: checkpoint holds %zu conditions but the dataset has "
          "%zu objects",
          st.conditions.size(), ctable_.num_objects()));
    }
    for (std::size_t i = 0; i < st.conditions.size(); ++i) {
      if (!(st.conditions[i] == ctable_.condition(i))) {
        ctable_.SetCondition(i, st.conditions[i]);
      }
    }
    BinReader knowledge_reader(st.knowledge_blob);
    BAYESCROWD_RETURN_NOT_OK(knowledge.RestoreFacts(&knowledge_reader));
    for (const auto& [var, raw] : raw_posteriors_) {
      BAYESCROWD_RETURN_NOT_OK(evaluator.SetDistribution(
          var, knowledge.ConditionDistribution(var, raw)));
    }
    BinReader memo_reader(st.evaluator_blob);
    BAYESCROWD_RETURN_NOT_OK(evaluator.RestoreMemoState(
        &memo_reader, st.evaluator_blob_format));
    for (const SolverBreakerRecord& b : st.solver_breakers) {
      breakers_[b.object] = b;
    }
    if (!st.platform_state.empty()) {
      BinReader platform_reader(st.platform_state);
      BAYESCROWD_RETURN_NOT_OK(platform.LoadState(&platform_reader));
    }
    metrics->Restore(st.metrics);
    solver_before_ = evaluator.solver_stats();
    compile_before_ = evaluator.compile_stats();
    obs::RecordFlight(flight_, obs::FlightEventKind::kResume, st.rounds, -1,
                      st.simulated_seconds,
                      static_cast<double>(st.rounds),
                      "session restored from checkpoint snapshot");
    budget_left_ = st.budget_left;
    consecutive_barren_ = st.consecutive_barren;
    out_.rounds = st.rounds;
    out_.tasks_posted = st.tasks_posted;
    out_.cost_spent = st.cost_spent;
    out_.cost_refunded = st.cost_refunded;
    out_.tasks_unanswered = st.tasks_unanswered;
    // Not a SessionState field (the envelope is byte-pinned by the v2
    // golden): the restored metrics snapshot carries the labeled
    // cost.extra_votes counter, which is the same total.
    out_.extra_votes =
        static_cast<std::size_t>(cost_extra_votes_->value());
    out_.retries = st.retries;
    out_.transient_failures = st.transient_failures;
    out_.rounds_abandoned = st.rounds_abandoned;
    out_.order_conflicts = st.order_conflicts;
    out_.backoff_seconds = st.backoff_seconds;
    out_.simulated_seconds = st.simulated_seconds;
    out_.initial_true = st.initial_true;
    out_.initial_false = st.initial_false;
    out_.initial_undecided = st.initial_undecided;
    out_.round_logs = st.round_logs;
    out_.resumed = true;
  }

  checkpoint_sink_ = options_.checkpoint_sink;
  checkpoint_every_ =
      checkpoint_sink_ != nullptr ? options_.checkpoint_every : 0;

  initialized_ = true;
  out_.total_seconds += init_watch.ElapsedSeconds();
  return Status::OK();
}

// Snapshots the full session at a round boundary and hands it to the
// checkpoint sink. `out_.rounds` names the generation.
Status QueryRunner::WriteCheckpoint() {
  SessionState state;
  state.budget_left = budget_left_;
  state.consecutive_barren = consecutive_barren_;
  state.rounds = out_.rounds;
  state.tasks_posted = out_.tasks_posted;
  state.cost_spent = out_.cost_spent;
  state.cost_refunded = out_.cost_refunded;
  state.tasks_unanswered = out_.tasks_unanswered;
  state.retries = out_.retries;
  state.transient_failures = out_.transient_failures;
  state.rounds_abandoned = out_.rounds_abandoned;
  state.order_conflicts = out_.order_conflicts;
  state.backoff_seconds = out_.backoff_seconds;
  state.simulated_seconds = out_.simulated_seconds;
  state.initial_true = out_.initial_true;
  state.initial_false = out_.initial_false;
  state.initial_undecided = out_.initial_undecided;
  state.round_logs = out_.round_logs;
  state.conditions.reserve(ctable_.num_objects());
  for (std::size_t i = 0; i < ctable_.num_objects(); ++i) {
    state.conditions.push_back(ctable_.condition(i));
  }
  knowledge_->SerializeFacts(&state.knowledge_blob);
  evaluator_->SerializeMemoState(&state.evaluator_blob);
  state.solver_breakers.reserve(breakers_.size());
  for (const auto& [id, b] : breakers_) state.solver_breakers.push_back(b);
  state.metrics = metrics_->Snapshot();
  platform_->SaveState(&state.platform_state);
  state.platform_tasks = platform_->total_tasks();
  state.platform_rounds = platform_->total_rounds();
  BAYESCROWD_RETURN_NOT_OK(checkpoint_sink_->Write(state));
  obs::RecordFlight(flight_, obs::FlightEventKind::kCheckpointWrite,
                    out_.rounds, -1, out_.simulated_seconds,
                    static_cast<double>(out_.rounds),
                    "session snapshot persisted");
  return Status::OK();
}

Status QueryRunner::WriteCheckpointNow() {
  if (!initialized_) {
    return Status::FailedPrecondition(
        "WriteCheckpointNow: runner not initialized");
  }
  if (checkpoint_sink_ == nullptr) {
    return Status::FailedPrecondition(
        "WriteCheckpointNow: no checkpoint sink configured");
  }
  Stopwatch export_watch;
  const Status written = WriteCheckpoint();
  out_.export_seconds += export_watch.ElapsedSeconds();
  return written;
}

Status QueryRunner::ApplyGovernor(const GovernorOptions& governor) {
  if (!initialized_ || finished_) {
    return Status::FailedPrecondition(
        "ApplyGovernor: runner not initialized or already finished");
  }
  options_.probability.governor = governor;
  evaluator_->SetGovernor(governor);
  return Status::OK();
}

Result<std::string> QueryRunner::ExportMemoState() const {
  if (!initialized_) {
    return Status::FailedPrecondition(
        "ExportMemoState: runner not initialized");
  }
  std::string blob;
  evaluator_->SerializeMemoState(&blob);
  return blob;
}

Result<std::size_t> QueryRunner::ImportMemoState(const std::string& blob) {
  if (!initialized_) {
    return Status::FailedPrecondition(
        "ImportMemoState: runner not initialized");
  }
  if (out_.rounds != 0) {
    return Status::FailedPrecondition(
        "ImportMemoState: session already stepped; a mid-session merge "
        "would change the hit/miss sequence checkpoints replay");
  }
  BinReader reader(blob);
  return evaluator_->MergeMemoState(&reader);
}

// Per-round deltas of the governed/compiled counters drive the
// degradation and compile-refusal flight events (one summary event per
// round, not one per solve — the ring is for triage, not volume).
void QueryRunner::FlightRoundSummary() {
  if (flight_ == nullptr) return;
  const GovernorTally solver_now = evaluator_->solver_stats();
  const CircuitStats compile_now = evaluator_->compile_stats();
  const std::uint64_t degraded =
      solver_now.budget_exhausted - solver_before_.budget_exhausted;
  if (degraded > 0) {
    flight_->Record(obs::FlightEventKind::kDegradation, out_.rounds, -1,
                    out_.simulated_seconds, static_cast<double>(degraded),
                    "solver budget exhausted below the exact tier");
  }
  const std::uint64_t refused =
      compile_now.fallbacks - compile_before_.fallbacks;
  if (refused > 0) {
    flight_->Record(obs::FlightEventKind::kCompileRefusal, out_.rounds, -1,
                    out_.simulated_seconds, static_cast<double>(refused),
                    "knowledge compilation refused or fell back");
  }
  solver_before_ = solver_now;
  compile_before_ = compile_now;
}

Status QueryRunner::RoundExports() {
  Stopwatch export_watch;
  if (checkpoint_every_ != 0 && out_.rounds % checkpoint_every_ == 0) {
    BAYESCROWD_RETURN_NOT_OK(WriteCheckpoint());
  }
  FlightRoundSummary();
  // Live export: one full snapshot per finished round, driven from the
  // stepping thread only.
  if (options_.round_sink != nullptr) {
    BAYESCROWD_RETURN_NOT_OK(
        options_.round_sink->OnRound(out_.rounds, metrics_->Snapshot()));
  }
  out_.export_seconds += export_watch.ElapsedSeconds();
  return Status::OK();
}

Status QueryRunner::Step() {
  if (!initialized_) {
    return Status::FailedPrecondition("QueryRunner::Step before Init");
  }
  if (finished_) {
    return Status::FailedPrecondition("QueryRunner::Step after Finish");
  }
  if (Done()) return Status::OK();
  Stopwatch step_watch;
  const Status status = StepImpl();
  const double elapsed = step_watch.ElapsedSeconds();
  out_.crowdsourcing_seconds += elapsed;
  out_.total_seconds += elapsed;
  return status;
}

Status QueryRunner::StepImpl() {
  ProbabilityEvaluator& evaluator = *evaluator_;
  KnowledgeBase& knowledge = *knowledge_;
  const RetryPolicy& retry = options_.retry;

  obs::TraceSpan select_span("round.select");
  Stopwatch select_watch;
  evaluator.SetCostContext(options_.session, "select");
  const EvaluatorCacheStats cache_before = evaluator.cache_stats();

  // Rank undecided objects by entropy (Eq. 3). Unchanged conditions
  // hit the evaluator's memo cache; the rest evaluate in parallel.
  std::vector<std::size_t> undecided;
  for (std::size_t i : ctable_.UndecidedObjects()) {
    if (ctable_.condition(i).NumExpressions() > 0) undecided.push_back(i);
  }
  // Objects whose breaker is open on an unchanged condition reuse
  // their last interval (re-solving would burn budget on another
  // non-answer — the memo cache cannot help once a crowd answer
  // re-conditioned a mentioned distribution); the rest solve as one
  // governed batch.
  std::vector<ProbInterval> intervals(undecided.size());
  std::vector<std::size_t> to_solve;
  std::vector<std::size_t> solve_slot;
  to_solve.reserve(undecided.size());
  solve_slot.reserve(undecided.size());
  for (std::size_t u = 0; u < undecided.size(); ++u) {
    const std::size_t id = undecided[u];
    if (breakers_enabled_) {
      const auto it = breakers_.find(id);
      if (it != breakers_.end() && it->second.open &&
          it->second.fingerprint == ctable_.condition(id).Fingerprint()) {
        intervals[u] = it->second.last;
        breaker_skips_counter_->Increment();
        continue;
      }
    }
    to_solve.push_back(id);
    solve_slot.push_back(u);
  }
  BAYESCROWD_ASSIGN_OR_RETURN(
      const std::vector<ProbInterval> solved,
      evaluator.EvaluateAllIntervals(ctable_, to_solve));
  for (std::size_t s = 0; s < to_solve.size(); ++s) {
    intervals[solve_slot[s]] = solved[s];
    if (!breakers_enabled_) continue;
    SolverBreakerRecord& b = breakers_[to_solve[s]];
    b.object = to_solve[s];
    b.fingerprint = ctable_.condition(to_solve[s]).Fingerprint();
    b.last = solved[s];
    if (solved[s].exact()) {
      b.consecutive = 0;
      b.open = false;
    } else if (++b.consecutive >= options_.breaker_threshold &&
               !b.open) {
      b.open = true;
      breaker_trips_counter_->Increment();
      obs::RecordFlight(flight_, obs::FlightEventKind::kBreakerTrip,
                        out_.rounds + 1,
                        static_cast<std::int64_t>(b.object),
                        out_.simulated_seconds,
                        static_cast<double>(b.consecutive),
                        "solver breaker opened after consecutive "
                        "inexact intervals");
    }
  }
  std::vector<double> probabilities(undecided.size());
  std::vector<double> rank_points(undecided.size());
  for (std::size_t u = 0; u < undecided.size(); ++u) {
    probabilities[u] = intervals[u].midpoint();
    rank_points[u] = options_.strategy.pessimistic
                         ? PessimisticPoint(intervals[u])
                         : probabilities[u];
  }
  const std::vector<double> entropies = BinaryEntropies(rank_points);
  std::vector<ObjectEntropy> ranked;
  ranked.reserve(undecided.size());
  for (std::size_t u = 0; u < undecided.size(); ++u) {
    ObjectEntropy entry;
    entry.object = undecided[u];
    entry.probability = probabilities[u];
    entry.entropy = entropies[u];
    ranked.push_back(entry);
  }
  if (ranked.empty()) {
    // Terminal partial round: the ranking work still happened, so it
    // stays attributed to the select phase (no RoundLog — nothing
    // was bought).
    out_.select_seconds += select_watch.ElapsedSeconds();
    select_span.End();
    done_ = true;  // No expression left to crowdsource.
    return Status::OK();
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const ObjectEntropy& a, const ObjectEntropy& b) {
                     if (a.entropy != b.entropy) {
                       return a.entropy > b.entropy;
                     }
                     return a.object < b.object;
                   });
  if (options_.confidence_stop_entropy > 0.0 &&
      ranked.front().entropy < options_.confidence_stop_entropy) {
    out_.stopped_confident = true;  // Every object is near-certain.
    out_.select_seconds += select_watch.ElapsedSeconds();
    select_span.End();
    done_ = true;
    return Status::OK();
  }

  // Per-round size: latency splits the budget into ceil(B/L) task
  // slots; variable costs additionally trim the batch to what the
  // remaining budget affords.
  const std::size_t k = std::min(
      mu_, static_cast<std::size_t>(budget_left_) + 1);
  BAYESCROWD_ASSIGN_OR_RETURN(
      std::vector<Task> batch,
      SelectTasks(ctable_, ranked, k, evaluator, options_.strategy));
  // Adaptive allocation can buy up to (max - base) extra votes per
  // answered task, each at extra_vote_cost x the task's price. The trim
  // reserves for the worst case so a round can never overdraw the
  // budget, whatever the marketplace spends.
  const AdaptiveVotePolicy& adaptive = options_.adaptive;
  const double vote_reserve =
      adaptive.enabled
          ? 1.0 + adaptive.extra_vote_cost *
                      static_cast<double>(adaptive.max_votes -
                                          adaptive.base_votes)
          : 1.0;
  double batch_cost = 0.0;
  std::size_t affordable = 0;
  for (const Task& task : batch) {
    const double cost = cost_model_->Cost(task);
    if (cost <= 0.0) {
      return Status::InvalidArgument("task cost must be positive");
    }
    if (batch_cost + cost * vote_reserve > budget_left_ + 1e-9) break;
    batch_cost += cost * vote_reserve;
    ++affordable;
  }
  batch.resize(affordable);
  if (batch.empty()) {
    out_.select_seconds += select_watch.ElapsedSeconds();
    select_span.End();
    done_ = true;
    return Status::OK();
  }
  const double select_seconds = select_watch.ElapsedSeconds();
  select_span.End();

  // Worker latency (simulated or real) is deliberately outside both
  // phase timers. Transient platform failures are retried with
  // deterministic exponential backoff on a simulated clock; the
  // per-round deadline caps how much simulated time one round may
  // burn on attempts and waits (see RetryPolicy).
  const double deadline = retry.round_deadline_seconds;
  std::vector<TaskAnswer> answers;
  bool delivered = false;
  std::size_t attempts = 0;
  double round_clock = 0.0;
  double round_backoff = 0.0;
  Stopwatch platform_watch;
  while (attempts < retry.max_attempts) {
    if (deadline > 0.0 &&
        round_clock + retry.attempt_seconds > deadline + 1e-12) {
      break;  // No time left for another attempt: abandon the round.
    }
    ++attempts;
    round_clock += retry.attempt_seconds;
    auto posted = platform_->PostBatch(batch);
    if (posted.ok()) {
      answers = std::move(posted).value();
      delivered = true;
      break;
    }
    if (!posted.status().IsUnavailable()) {
      return posted.status();  // Fatal: not a transient platform error.
    }
    ++out_.transient_failures;
    transient_counter_->Increment();
    if (attempts >= retry.max_attempts) break;
    const double backoff =
        retry.backoff_initial_seconds *
        std::pow(retry.backoff_multiplier,
                 static_cast<double>(attempts - 1));
    if (deadline > 0.0 &&
        round_clock + backoff + retry.attempt_seconds > deadline + 1e-12) {
      break;  // Waiting out the backoff would blow the deadline.
    }
    round_clock += backoff;
    round_backoff += backoff;
    ++out_.retries;
    retries_counter_->Increment();
    obs::RecordFlight(flight_, obs::FlightEventKind::kRetry,
                      out_.rounds + 1, -1,
                      out_.simulated_seconds + round_clock, backoff,
                      "transient platform failure; backing off");
  }
  out_.platform_wall_seconds += platform_watch.ElapsedSeconds();
  out_.backoff_seconds += round_backoff;
  out_.simulated_seconds += round_clock;

  if (!delivered) {
    // Round abandoned: nothing was bought, nothing is charged, and
    // the batch's tasks stay in the candidate pool for later rounds.
    RoundLog log;
    log.round = out_.rounds + 1;
    log.select_seconds = select_seconds;
    log.seconds = select_seconds;
    log.attempts = attempts;
    log.backoff_seconds = round_backoff;
    log.simulated_seconds = round_clock;
    log.abandoned = true;
    out_.select_seconds += select_seconds;
    out_.round_logs.push_back(log);
    ++out_.rounds;
    ++out_.rounds_abandoned;
    rounds_counter_->Increment();
    abandoned_counter_->Increment();
    obs::RecordFlight(flight_, obs::FlightEventKind::kRoundAbandoned,
                      out_.rounds, -1, out_.simulated_seconds,
                      static_cast<double>(attempts),
                      "no answer batch delivered before the round "
                      "deadline");
    BAYESCROWD_RETURN_NOT_OK(RoundExports());
    if (++consecutive_barren_ >= retry.max_barren_rounds) {
      out_.degraded = true;  // Platform presumed down; degrade.
      done_ = true;
    }
    return Status::OK();
  }
  if (answers.size() != batch.size()) {
    return Status::Internal("platform returned misaligned answers");
  }

  // Everything from budget accounting through re-simplification is
  // update-phase work; the watch starts here so the phase timers
  // explain the round's wall-clock (inspect grades the coverage).
  obs::TraceSpan update_span("round.update");
  Stopwatch update_watch;
  evaluator.SetCostContext(options_.session, "update");

  // Budget accounting: only answered tasks are charged; abstained or
  // dropped tasks are refunded and fall back into the pool.
  double charged = 0.0;
  double refunded = 0.0;
  std::size_t answered = 0;
  std::size_t round_extra_votes = 0;
  for (std::size_t t = 0; t < batch.size(); ++t) {
    const double cost = cost_model_->Cost(batch[t]);
    if (answers[t].answered) {
      charged += cost;
      ++answered;
      // Adaptive allocation: each vote the platform bought beyond the
      // base fan-out on an *answered* task is charged at a fraction of
      // that task's price (abstained tasks refund in full, extras
      // included — the marketplace eats its own exploration cost).
      if (adaptive.enabled &&
          answers[t].votes.size() > adaptive.base_votes) {
        const std::size_t extra =
            answers[t].votes.size() - adaptive.base_votes;
        charged += static_cast<double>(extra) *
                   adaptive.extra_vote_cost * cost;
        round_extra_votes += extra;
      }
    } else {
      refunded += cost;
    }
  }
  budget_left_ -= charged;
  out_.cost_spent += charged;
  out_.cost_refunded += refunded;
  out_.tasks_unanswered += batch.size() - answered;
  out_.extra_votes += round_extra_votes;
  unanswered_counter_->Increment(batch.size() - answered);
  cost_crowd_tasks_->Increment(answered);
  cost_retry_refunds_->Increment(batch.size() - answered);
  cost_extra_votes_->Increment(round_extra_votes);

  // Fold the answers that arrived into the knowledge base.
  std::set<CellRef> touched;
  for (std::size_t t = 0; t < batch.size(); ++t) {
    if (!answers[t].answered) continue;
    const Status applied = ApplyAnswer(batch[t], answers[t], &knowledge);
    if (!applied.ok()) {
      // A noisy crowd can answer the same ordering both ways. Keep
      // the first recorded fact, drop the contradiction (its cost
      // stays spent — the marketplace doesn't refund wrong answers),
      // and keep the session alive. Anything else is fatal.
      if (applied.IsInvalidArgument() &&
          StartsWith(applied.message(), "contradictory var-var fact")) {
        ++out_.order_conflicts;
        conflicts_counter_->Increment();
        BAYESCROWD_LOG(Warning)
            << "dropping conflicting crowd answer: " << applied.message();
        continue;
      }
      return applied;
    }
    for (const CellRef& var : batch[t].expression.Variables()) {
      touched.insert(var);
    }
  }

  // Re-condition the distributions of touched variables. Each
  // SetDistribution evicts exactly the cached conditions mentioning
  // that variable; everything else keeps serving hits next round.
  for (const CellRef& var : touched) {
    const auto raw = raw_posteriors_.find(var);
    if (raw == raw_posteriors_.end()) continue;
    BAYESCROWD_RETURN_NOT_OK(evaluator.SetDistribution(
        var, knowledge.ConditionDistribution(var, raw->second)));
  }

  // Re-simplify every undecided condition against the knowledge base.
  // Changed conditions get new fingerprints; their old cache entries
  // were just evicted through the answered variables.
  for (std::size_t i : ctable_.UndecidedObjects()) {
    Condition simplified = ctable_.condition(i).SimplifyWith(
        [&knowledge](const Expression& e) {
          return knowledge.Evaluate(e);
        });
    if (!(simplified == ctable_.condition(i))) {
      ctable_.SetCondition(i, std::move(simplified));
    }
  }

  RoundLog log;
  log.round = out_.rounds + 1;
  log.tasks = batch.size();
  log.select_seconds = select_seconds;
  log.attempts = attempts;
  log.answered = answered;
  log.unanswered = batch.size() - answered;
  log.cost_refunded = refunded;
  log.backoff_seconds = round_backoff;
  log.simulated_seconds = round_clock;
  const EvaluatorCacheStats cache_after = evaluator.cache_stats();
  log.cache_hits = cache_after.hits - cache_before.hits;
  log.cache_misses = cache_after.misses - cache_before.misses;
  out_.select_seconds += log.select_seconds;
  out_.tasks_posted += batch.size();
  ++out_.rounds;
  rounds_counter_->Increment();
  tasks_counter_->Increment(batch.size());
  // The update window closes after the round's bookkeeping so the
  // phase timers explain the loop's wall-clock; checkpoint I/O and
  // the export sinks get their own bucket below.
  log.update_seconds = update_watch.ElapsedSeconds();
  update_span.End();
  log.seconds = log.select_seconds + log.update_seconds;
  out_.update_seconds += log.update_seconds;
  out_.round_logs.push_back(log);
  BAYESCROWD_RETURN_NOT_OK(RoundExports());

  // A delivered round that applied nothing still counts as barren:
  // with every worker abstaining, more rounds buy no information.
  if (answered == 0) {
    if (++consecutive_barren_ >= retry.max_barren_rounds) {
      out_.degraded = true;
      done_ = true;
    }
  } else {
    consecutive_barren_ = 0;
  }
  return Status::OK();
}

Status QueryRunner::Finish() {
  if (!initialized_) {
    return Status::FailedPrecondition("QueryRunner::Finish before Init");
  }
  if (finished_) {
    return Status::FailedPrecondition("QueryRunner::Finish called twice");
  }
  Stopwatch finish_watch;
  ProbabilityEvaluator& evaluator = *evaluator_;
  done_ = true;

  if (budget_left_ <= 1e-9) {
    obs::RecordFlight(flight_, obs::FlightEventKind::kBudgetExhausted,
                      out_.rounds, -1, out_.simulated_seconds, budget_left_,
                      "crowdsourcing budget fully spent");
  } else if (out_.degraded) {
    obs::RecordFlight(flight_, obs::FlightEventKind::kNote, out_.rounds, -1,
                      out_.simulated_seconds,
                      static_cast<double>(consecutive_barren_),
                      "stopped after consecutive barren rounds; platform "
                      "presumed down");
  }

  // ---------------------------------------------------------------- //
  // Answer inference (Algorithm 1, line 5).
  // ---------------------------------------------------------------- //
  // The final phase always solves fresh (no breaker skip): reported
  // probabilities and their grades reflect the current conditions and
  // distributions, never a stale breaker interval.
  std::vector<std::size_t> all_objects(ctable_.num_objects());
  for (std::size_t i = 0; i < ctable_.num_objects(); ++i) {
    all_objects[i] = i;
  }
  evaluator.SetCostContext(options_.session, "answer");
  Stopwatch answer_watch;
  BAYESCROWD_ASSIGN_OR_RETURN(
      out_.probability_intervals,
      evaluator.EvaluateAllIntervals(ctable_, all_objects));
  out_.answer_seconds = answer_watch.ElapsedSeconds();
  out_.probabilities.resize(ctable_.num_objects());
  for (std::size_t i = 0; i < ctable_.num_objects(); ++i) {
    out_.probabilities[i] = out_.probability_intervals[i].midpoint();
    if (!out_.probability_intervals[i].exact()) {
      out_.degraded_objects.push_back(i);
    }
    if (out_.probabilities[i] > options_.answer_threshold ||
        ctable_.condition(i).IsTrue()) {
      out_.result_objects.push_back(i);
    }
  }
  out_.solver = evaluator.solver_stats();
  out_.compile = evaluator.compile_stats();
  out_.breaker_trips = breaker_trips_counter_->value();
  out_.breaker_skips = breaker_skips_counter_->value();
  const EvaluatorCacheStats cache_stats = evaluator.cache_stats();
  out_.cache_hits = cache_stats.hits;
  out_.cache_misses = cache_stats.misses;
  out_.cache_evictions = cache_stats.evictions;
  out_.adpll = evaluator.adpll_stats();
  out_.final_ctable = std::move(ctable_);

  // Per-lane pool utilization, both on the result and as gauges so the
  // metrics rendering is self-contained. Only for a privately owned
  // pool: a shared serving pool's lane tallies mix every resident
  // session's work, and publishing them would leak scheduling order
  // into an otherwise deterministic per-session result.
  if (owned_pool_ != nullptr) {
    out_.lane_usage = owned_pool_->lane_stats();
    for (std::size_t lane = 0; lane < out_.lane_usage.size(); ++lane) {
      metrics_
          ->GetGauge(StrFormat("pool.lane%zu.busy_seconds", lane))
          ->Set(out_.lane_usage[lane].busy_seconds);
      metrics_->GetGauge(StrFormat("pool.lane%zu.tasks", lane))
          ->Set(static_cast<double>(out_.lane_usage[lane].tasks));
    }
  }
  finished_ = true;
  out_.total_seconds += finish_watch.ElapsedSeconds();
  out_.metrics = metrics_->Snapshot();
  run_span_.reset();
  return Status::OK();
}

}  // namespace bayescrowd
