// QueryRunner: the framework's round loop opened up into a stepping
// API so a resident server can multiplex many live queries.
//
// BayesCrowd::Run() executes the whole pipeline in one call; a serving
// process instead needs to run *one crowd round* of one session, then
// hand the worker threads to another session. QueryRunner is that
// seam: Init() runs validation, the modeling phase and the optional
// checkpoint resume; each Step() executes exactly one crowdsourcing
// round (select → post/retry → fold → re-simplify → export); Finish()
// runs answer inference and seals the result. BayesCrowd::Run() is now
// the trivial driver `Init; while (!Done) Step; Finish`, so the
// one-shot path executes the same statements in the same order it
// always did — the stepping seam changes no observable behavior, and
// the bit-identity contracts of PRs 1–6 (thread count, obs on/off,
// kill/resume, faults) carry over unchanged.
//
// Pool ownership: by default the runner spawns a private ThreadPool
// (exactly what Run() always did). A server hosting many sessions
// passes a shared pool via BayesCrowdOptions::pool instead; the runner
// then skips the per-lane pool gauges and leaves
// BayesCrowdResult::lane_usage empty, because a shared pool's lane
// tallies mix sessions and would leak scheduling order into a
// session's otherwise deterministic result.

#ifndef BAYESCROWD_CORE_RUNNER_H_
#define BAYESCROWD_CORE_RUNNER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/thread_pool.h"
#include "core/framework.h"
#include "ctable/knowledge.h"
#include "obs/trace.h"

namespace bayescrowd {

class QueryRunner {
 public:
  explicit QueryRunner(BayesCrowdOptions options)
      : options_(std::move(options)) {}

  QueryRunner(const QueryRunner&) = delete;
  QueryRunner& operator=(const QueryRunner&) = delete;

  /// Validation + modeling phase + resume. The referenced table,
  /// posterior provider and platform must outlive the runner (the
  /// table only through Init; posteriors/platform through Finish).
  Status Init(const Table& incomplete, PosteriorProvider& posteriors,
              CrowdPlatform& platform);

  /// True once the crowdsourcing phase cannot run another round: the
  /// budget is spent, a stop condition fired, or Finish() ran.
  bool Done() const { return done_ || !(budget_left_ > 1e-9); }

  /// Executes one crowdsourcing round (a no-op when Done()). Abandoned
  /// rounds count as a step. FailedPrecondition before Init / after
  /// Finish.
  Status Step();

  /// Answer inference + final stats. Callable as soon as Init()
  /// succeeded — finishing early (before the budget is spent) is
  /// well-defined and answers from the current probabilistic state.
  Status Finish();

  bool initialized() const { return initialized_; }
  bool finished() const { return finished_; }

  /// Rounds attempted so far (live during stepping).
  std::size_t rounds() const { return out_.rounds; }
  double budget_left() const { return budget_left_; }

  /// The result under construction; fully populated once Finish() ran.
  const BayesCrowdResult& result() const { return out_; }
  BayesCrowdResult TakeResult() { return std::move(out_); }

  const BayesCrowdOptions& options() const { return options_; }

  /// Snapshots the session to the configured checkpoint sink now,
  /// regardless of the checkpoint_every cadence (the serving layer's
  /// explicit `checkpoint` verb). FailedPrecondition without a sink or
  /// before Init.
  Status WriteCheckpointNow();

  /// Replaces the solver governor for all subsequent rounds — the
  /// serving layer's QoS degradation hook. Sound at any round boundary
  /// (memo stamps follow the budget fingerprint); deterministic as long
  /// as the caller tightens at deterministic points. FailedPrecondition
  /// before Init / after Finish.
  Status ApplyGovernor(const GovernorOptions& governor);

  /// Serializes the evaluator's memo state (cache entries, variable
  /// index, compiled circuits) for donation to a cross-session cache.
  /// FailedPrecondition before Init.
  Result<std::string> ExportMemoState() const;

  /// Warm-starts the evaluator from a donated SerializeMemoState blob
  /// (ProbabilityEvaluator::MergeMemoState semantics: local RNG/epochs
  /// and existing entries untouched; mismatched stamps are dead weight,
  /// never wrong answers). Returns entries imported. FailedPrecondition
  /// before Init / after stepping began (a mid-session merge would
  /// change the hit/miss sequence checkpoints promise to replay).
  Result<std::size_t> ImportMemoState(const std::string& blob);

 private:
  Status StepImpl();

  /// Cadence-gated checkpoint, then flight round summary, then the
  /// round sink — the round-tail export bucket, timed as export I/O.
  Status RoundExports();

  Status WriteCheckpoint();
  void FlightRoundSummary();

  BayesCrowdOptions options_;

  bool initialized_ = false;
  bool done_ = false;
  bool finished_ = false;

  BayesCrowdResult out_;
  std::optional<obs::TraceSpan> run_span_;

  // Per-run registry unless the caller injected one (see
  // BayesCrowdOptions::metrics).
  obs::MetricsRegistry local_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;

  CTable ctable_;
  std::optional<ProbabilityEvaluator> evaluator_;
  std::map<CellRef, std::vector<double>> raw_posteriors_;
  std::optional<KnowledgeBase> knowledge_;
  CrowdPlatform* platform_ = nullptr;

  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;

  obs::Counter* rounds_counter_ = nullptr;
  obs::Counter* tasks_counter_ = nullptr;
  obs::Counter* retries_counter_ = nullptr;
  obs::Counter* transient_counter_ = nullptr;
  obs::Counter* abandoned_counter_ = nullptr;
  obs::Counter* unanswered_counter_ = nullptr;
  obs::Counter* conflicts_counter_ = nullptr;
  obs::Counter* breaker_trips_counter_ = nullptr;
  obs::Counter* breaker_skips_counter_ = nullptr;
  obs::Counter* cost_crowd_tasks_ = nullptr;
  obs::Counter* cost_retry_refunds_ = nullptr;
  obs::Counter* cost_extra_votes_ = nullptr;

  obs::FlightRecorder* flight_ = nullptr;
  GovernorTally solver_before_;
  CircuitStats compile_before_;

  UniformCostModel unit_cost_;
  const TaskCostModel* cost_model_ = nullptr;
  std::size_t mu_ = 0;
  double budget_left_ = 0.0;
  std::size_t consecutive_barren_ = 0;

  bool breakers_enabled_ = false;
  // std::map: checkpoint serialization wants ascending object ids.
  std::map<std::size_t, SolverBreakerRecord> breakers_;

  CheckpointSink* checkpoint_sink_ = nullptr;
  std::size_t checkpoint_every_ = 0;
};

}  // namespace bayescrowd

#endif  // BAYESCROWD_CORE_RUNNER_H_
