#include "core/session.h"

#include <utility>

#include "common/string_util.h"

namespace bayescrowd {

std::uint64_t HashBytes(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t hash = seed;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t ConfigFingerprint(const BayesCrowdOptions& options,
                                std::string_view dataset_bytes,
                                std::string_view platform_config) {
  // Canonical text of every option that changes query behavior.
  // `threads` and `metrics` are excluded on purpose; extend the string
  // (never reorder it) when options grow.
  std::string canon = StrFormat(
      "v1|budget=%zu|latency=%zu|threshold=%.17g|confidence=%.17g|"
      "sampling_fallback=%d|strategy=%d|m=%zu|alpha=%.17g|fastdom=%d|"
      "method=%d|memoize=%d|pmfallback=%d|fbsamples=%zu|sseed=%llu|"
      "retry=%zu,%.17g,%.17g,%.17g,%.17g,%zu",
      options.budget, options.latency, options.answer_threshold,
      options.confidence_stop_entropy,
      options.sampling_fallback ? 1 : 0,
      static_cast<int>(options.strategy.kind), options.strategy.m,
      options.ctable.alpha, options.ctable.use_fast_dominators ? 1 : 0,
      static_cast<int>(options.probability.method),
      options.probability.memoize ? 1 : 0,
      options.probability.sampling_fallback ? 1 : 0,
      options.probability.fallback_samples,
      static_cast<unsigned long long>(options.probability.sampling_seed),
      options.retry.max_attempts, options.retry.attempt_seconds,
      options.retry.backoff_initial_seconds,
      options.retry.backoff_multiplier,
      options.retry.round_deadline_seconds,
      options.retry.max_barren_rounds);
  // Governed runs append the budget configuration: a resume under a
  // different budget would replay a different ladder. The wall-clock
  // deadline is excluded by design — it only degrades, never changes
  // values — and inert governors append nothing, so pre-governor
  // checkpoints keep their fingerprints.
  const GovernorOptions& governor = options.probability.governor;
  if (governor.enabled()) {
    canon += StrFormat(
        "|governor=%llu,%llu,%d,%zu,%.17g|breaker=%zu|pessimistic=%d",
        static_cast<unsigned long long>(governor.max_nodes),
        static_cast<unsigned long long>(governor.max_components),
        static_cast<int>(governor.ladder), governor.interval_samples,
        governor.confidence_z, options.breaker_threshold,
        options.strategy.pessimistic ? 1 : 0);
  }
  // Compiling runs append the compile configuration: artifacts ride the
  // checkpoint, so a resume under a different compile budget would
  // inherit circuits the new config could not have built. kOff appends
  // nothing, keeping pre-compile fingerprints.
  const CompileOptions& compile = options.probability.compile;
  if (compile.mode != CompileMode::kOff) {
    canon += StrFormat("|compile=%d,%llu,%u", static_cast<int>(compile.mode),
                       static_cast<unsigned long long>(compile.max_nodes),
                       static_cast<unsigned>(kCircuitFormatVersion));
  }
  std::uint64_t hash = HashBytes(canon);
  hash = HashBytes(dataset_bytes, hash);
  hash = HashBytes(platform_config, hash);
  // 0 means "skip the check" to RecoverSession; never emit it.
  return hash == 0 ? 1 : hash;
}

Status SessionCheckpointSink::Write(const SessionState& state) {
  SessionState stamped = state;
  stamped.answer_log_offset =
      base_log_offset_ +
      (recorder_ != nullptr ? recorder_->log().entries.size() : 0);
  stamped.network_blob = network_blob_;
  stamped.config_fingerprint = config_fingerprint_;
  return store_->Write(stamped);
}

Result<RecoveredSession> RecoverSession(const std::string& checkpoint_dir,
                                        const std::string& answer_log_path,
                                        std::uint64_t expected_fingerprint,
                                        const std::string& session_id) {
  RecoveredSession out;

  // The durable log bounds which snapshots are usable. A missing file
  // reads as an empty log; a torn final line (killed mid-append) is
  // dropped and the file rewritten so later appends start clean.
  AnswerLog log;
  Result<AnswerLog> loaded =
      LoadAnswerLogTolerant(answer_log_path, &out.dropped_torn_tail);
  if (loaded.ok()) {
    log = std::move(loaded).value();
  } else if (!loaded.status().IsIOError()) {
    return loaded.status();  // Malformed beyond the torn tail: corrupt.
  }
  if (out.dropped_torn_tail) {
    BAYESCROWD_RETURN_NOT_OK(SaveAnswerLog(log, answer_log_path));
  }
  out.durable_entries = log.entries.size();

  CheckpointStore store({.dir = checkpoint_dir, .session_id = session_id});
  Result<SessionState> latest =
      store.LoadLatest(out.durable_entries, &out.fallbacks);
  if (!latest.ok()) {
    // No usable snapshot. If answers were bought, the session is still
    // recoverable from scratch: default state + full log replay (the
    // kill-before-first-checkpoint case). With nothing durable at all,
    // there is no session to resume.
    if (!latest.status().IsNotFound() || log.entries.empty()) {
      return latest.status();
    }
    out.from_scratch = true;
    out.state = SessionState();
    out.replay_tail = std::move(log);
    return out;
  }
  out.state = std::move(latest).value();

  if (expected_fingerprint != 0 && out.state.config_fingerprint != 0 &&
      out.state.config_fingerprint != expected_fingerprint) {
    return Status::FailedPrecondition(
        "resume: checkpoint was written under a different configuration "
        "(options, dataset, or platform seeds changed)");
  }

  out.replay_tail.entries.assign(
      log.entries.begin() +
          static_cast<std::ptrdiff_t>(out.state.answer_log_offset),
      log.entries.end());
  return out;
}

}  // namespace bayescrowd
