// Session layer over the checkpoint store: ties checkpoints to the
// durable answer log and to the run configuration, and drives recovery
// after a kill.
//
// The division of labor: core/checkpoint.* knows how to persist and
// reload a SessionState; this layer knows *which* state is safe to
// resume from. A snapshot is only usable when the durable answer log
// still holds every entry the snapshot references — recovery loads the
// log tolerantly (a torn final line is dropped and the log rewritten),
// walks checkpoint generations newest first, and replays the log tail
// past the chosen snapshot to rebuild the rounds that ran after it.

#ifndef BAYESCROWD_CORE_SESSION_H_
#define BAYESCROWD_CORE_SESSION_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "core/checkpoint.h"
#include "crowd/record_replay.h"

namespace bayescrowd {

/// FNV-1a (64-bit) over `bytes`, chainable through `seed`.
std::uint64_t HashBytes(std::string_view bytes,
                        std::uint64_t seed = 14695981039346656037ULL);

/// Fingerprint of everything that must match between the run that
/// wrote a checkpoint and the run resuming it: the behavior-relevant
/// options, the dataset bytes, and a caller-provided platform config
/// string (seeds, fault profile). `threads` is deliberately excluded —
/// results are bit-identical at any thread count, so a resume may
/// change it.
std::uint64_t ConfigFingerprint(const BayesCrowdOptions& options,
                                std::string_view dataset_bytes,
                                std::string_view platform_config);

/// The CheckpointSink Run() writes to: stamps each snapshot with the
/// session-layer fields (answer-log offset, network blob, config
/// fingerprint) before handing it to the store. The recorder is where
/// the durable-entry count comes from: every entry it has recorded this
/// process is durable by the time a round boundary is reached (the file
/// sink flushes per batch), and `base_log_offset` adds the entries a
/// previous process already persisted (0 for a fresh session).
class SessionCheckpointSink : public CheckpointSink {
 public:
  SessionCheckpointSink(CheckpointSink* store,
                        const RecordingPlatform* recorder,
                        std::size_t base_log_offset,
                        std::string network_blob,
                        std::uint64_t config_fingerprint)
      : store_(store),
        recorder_(recorder),
        base_log_offset_(base_log_offset),
        network_blob_(std::move(network_blob)),
        config_fingerprint_(config_fingerprint) {}

  Status Write(const SessionState& state) override;

 private:
  CheckpointSink* store_;               // Non-owning.
  const RecordingPlatform* recorder_;   // Non-owning; may be null.
  std::size_t base_log_offset_;
  std::string network_blob_;
  std::uint64_t config_fingerprint_;
};

/// What RecoverSession hands back: the snapshot to resume from plus the
/// answer-log tail to replay on top of it.
struct RecoveredSession {
  SessionState state;

  /// Entries past state.answer_log_offset, in recorded order. Feed to a
  /// ReplayingPlatform (with SetBaseTotals from the state) to rebuild
  /// the rounds that ran after the snapshot.
  AnswerLog replay_tail;

  /// Valid entries in the durable log after torn-tail handling.
  std::size_t durable_entries = 0;

  /// Checkpoint generations skipped as corrupt/truncated/ahead of the
  /// log before one loaded ("recovery.fallback").
  std::size_t fallbacks = 0;

  /// True when the log ended in a torn line (killed mid-append); the
  /// line was dropped and the log rewritten without it.
  bool dropped_torn_tail = false;

  /// True when no usable snapshot existed but the answer log did (a
  /// kill before the first checkpoint write): `state` is
  /// default-constructed and the whole log is the replay tail. Callers
  /// must NOT pass `state` to BayesCrowdOptions::resume — run fresh and
  /// let the replaying platform rebuild the rounds.
  bool from_scratch = false;
};

/// Recovers the newest usable session from `checkpoint_dir` +
/// `answer_log_path`. A missing answer log reads as empty (only
/// offset-0 snapshots are then usable). When no snapshot is usable but
/// durable answers exist, degrades to a from-scratch recovery (see
/// RecoveredSession::from_scratch). NotFound when nothing durable
/// exists at all; FailedPrecondition when the best snapshot was written
/// under a different configuration than `expected_fingerprint` (pass 0
/// to skip the check). `session_id` selects a namespaced generation
/// set within the directory (see CheckpointStore::Options::session_id);
/// empty reads the legacy single-session layout.
Result<RecoveredSession> RecoverSession(const std::string& checkpoint_dir,
                                        const std::string& answer_log_path,
                                        std::uint64_t expected_fingerprint,
                                        const std::string& session_id = "");

}  // namespace bayescrowd

#endif  // BAYESCROWD_CORE_SESSION_H_
