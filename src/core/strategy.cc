#include "core/strategy.h"

#include <algorithm>
#include <cstddef>
#include <unordered_map>
#include <unordered_set>

#include "core/utility.h"
#include "obs/trace.h"

namespace bayescrowd {
namespace {

using FrequencyMap =
    std::unordered_map<PackedExpr, std::size_t, PackedExprHash>;

// Distinct expressions of a condition, first-appearance order.
std::vector<Expression> DistinctExpressions(const Condition& condition) {
  std::vector<Expression> out;
  std::unordered_set<PackedExpr, PackedExprHash> keys;
  for (const Conjunct& conjunct : condition.conjuncts()) {
    for (const Expression& e : conjunct) {
      if (keys.insert(e.PackedKey()).second) out.push_back(e);
    }
  }
  return out;
}

// Expression frequencies across the chosen top-k objects' conditions
// (Section 6.2, FBS).
FrequencyMap ExpressionFrequencies(const CTable& ctable,
                                   const std::vector<ObjectEntropy>& ranked,
                                   std::size_t k) {
  FrequencyMap freq;
  for (std::size_t r = 0; r < std::min(k, ranked.size()); ++r) {
    const Condition& cond = ctable.condition(ranked[r].object);
    if (cond.IsDecided()) continue;
    for (const Conjunct& conjunct : cond.conjuncts()) {
      for (const Expression& e : conjunct) ++freq[e.PackedKey()];
    }
  }
  return freq;
}

// Candidates that would not share a variable with the batch selected so
// far, in their original (frequency) order.
std::vector<Expression> ConflictFreeCandidates(
    const std::vector<Expression>& candidates,
    const std::vector<Task>& batch) {
  std::vector<Expression> eligible;
  eligible.reserve(candidates.size());
  for (const Expression& e : candidates) {
    Task probe;
    probe.expression = e;
    if (!ConflictsWithBatch(probe, batch)) eligible.push_back(e);
  }
  return eligible;
}

// Sorts expressions by descending frequency (stable on ties).
void SortByFrequency(std::vector<Expression>* expressions,
                     const FrequencyMap& freq) {
  std::vector<std::pair<std::size_t, std::size_t>> keyed(
      expressions->size());
  for (std::size_t i = 0; i < expressions->size(); ++i) {
    const auto it = freq.find((*expressions)[i].PackedKey());
    keyed[i] = {it == freq.end() ? 0 : it->second, i};
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) {
                     return a.first != b.first ? a.first > b.first
                                               : a.second < b.second;
                   });
  std::vector<Expression> sorted;
  sorted.reserve(expressions->size());
  for (const auto& [count, index] : keyed) {
    sorted.push_back((*expressions)[index]);
  }
  *expressions = std::move(sorted);
}

}  // namespace

const char* StrategyKindToString(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kFbs:
      return "FBS";
    case StrategyKind::kUbs:
      return "UBS";
    case StrategyKind::kHhs:
      return "HHS";
  }
  return "?";
}

Result<std::vector<Task>> SelectTasks(const CTable& ctable,
                                      const std::vector<ObjectEntropy>& ranked,
                                      std::size_t k,
                                      ProbabilityEvaluator& evaluator,
                                      const StrategyOptions& options) {
  BAYESCROWD_TRACE_SPAN("strategy.select_tasks");
  std::vector<Task> batch;
  if (k == 0) return batch;
  const auto freq = ExpressionFrequencies(ctable, ranked, k);

  // Walk the entropy ranking; objects beyond the top-k fill in when a
  // higher-ranked object cannot contribute a conflict-free task.
  for (const ObjectEntropy& entry : ranked) {
    if (batch.size() >= k) break;
    const Condition& cond = ctable.condition(entry.object);
    if (cond.IsDecided()) continue;

    std::vector<Expression> candidates = DistinctExpressions(cond);
    SortByFrequency(&candidates, freq);

    bool selected = false;
    Task task;
    task.source_object = entry.object;

    switch (options.kind) {
      case StrategyKind::kFbs: {
        for (const Expression& e : candidates) {
          task.expression = e;
          if (!ConflictsWithBatch(task, batch)) {
            selected = true;
            break;
          }
        }
        break;
      }
      case StrategyKind::kUbs: {
        // Utility scoring is the hot loop: the counterfactual conditions
        // of all conflict-free candidates evaluate as one batch
        // (memoized + parallel), then the original sequential argmax is
        // replayed over the gains — the selected task is identical to
        // the one-call-at-a-time code for any thread count.
        const std::vector<Expression> eligible =
            ConflictFreeCandidates(candidates, batch);
        BAYESCROWD_ASSIGN_OR_RETURN(
            const std::vector<double> gains,
            MarginalUtilities(cond, entry.probability, eligible,
                              evaluator, options.pessimistic));
        double best_gain = -1.0;
        for (std::size_t i = 0; i < eligible.size(); ++i) {
          if (gains[i] > best_gain) {
            best_gain = gains[i];
            task.expression = eligible[i];
            selected = true;
          }
        }
        break;
      }
      case StrategyKind::kHhs: {
        // Algorithm 4, lines 10-22: frequency order, stop after m
        // consecutive expressions without utility improvement. Gains are
        // computed in waves sized to the evaluator's pool; the stopping
        // scan replays in order, so the selection matches the sequential
        // code exactly (a wave may merely score a few candidates past
        // the stop point).
        const std::vector<Expression> eligible =
            ConflictFreeCandidates(candidates, batch);
        ThreadPool* pool = evaluator.thread_pool();
        const std::size_t wave =
            std::max<std::size_t>(pool == nullptr ? 1 : pool->size(), 1);
        double best_gain = -1.0;
        std::size_t since_improvement = 0;
        for (std::size_t start = 0; start < eligible.size();
             start += wave) {
          const std::size_t end =
              std::min(start + wave, eligible.size());
          const std::vector<Expression> chunk(
              eligible.begin() + static_cast<std::ptrdiff_t>(start),
              eligible.begin() + static_cast<std::ptrdiff_t>(end));
          BAYESCROWD_ASSIGN_OR_RETURN(
              const std::vector<double> gains,
              MarginalUtilities(cond, entry.probability, chunk,
                                evaluator, options.pessimistic));
          bool stopped = false;
          for (std::size_t i = 0; i < chunk.size(); ++i) {
            if (gains[i] > best_gain) {
              best_gain = gains[i];
              task.expression = chunk[i];
              selected = true;
              since_improvement = 0;
            } else {
              ++since_improvement;
              if (since_improvement >= options.m) {
                stopped = true;
                break;
              }
            }
          }
          if (stopped) break;
        }
        break;
      }
    }

    if (selected) batch.push_back(task);
  }
  return batch;
}

}  // namespace bayescrowd
