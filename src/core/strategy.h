// Task-selection strategies (Section 6.2).
//
// Each round: (i) rank undecided objects by entropy and keep the top-k;
// (ii) from each chosen object's condition select one expression — by
// frequency (FBS), by marginal utility (UBS), or frequency-ordered
// utility search with an m-step stopping heuristic (HHS). Tasks within
// one round never share a variable (conflict avoidance, Section 6.1).

#ifndef BAYESCROWD_CORE_STRATEGY_H_
#define BAYESCROWD_CORE_STRATEGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "crowd/task.h"
#include "ctable/ctable.h"
#include "probability/evaluator.h"

namespace bayescrowd {

enum class StrategyKind : std::uint8_t { kFbs, kUbs, kHhs };

const char* StrategyKindToString(StrategyKind kind);

/// Entropy ranking entry for one undecided object.
struct ObjectEntropy {
  std::size_t object = 0;
  double probability = 0.0;  // Pr(φ(o))
  double entropy = 0.0;      // H(o)
};

struct StrategyOptions {
  StrategyKind kind = StrategyKind::kHhs;

  /// HHS stopping parameter: stop scanning a condition's expressions
  /// after `m` consecutive candidates without utility improvement.
  std::size_t m = 15;

  /// Interval pessimism (governed runs): rank and score with the
  /// most-uncertain probability consistent with each interval (the
  /// point nearest 1/2) instead of the midpoint. Wide, low-quality
  /// intervals then look maximally uncertain, steering crowd tasks
  /// toward the objects the solver understands least. No effect on
  /// exact results, hence none while the governor is inert.
  bool pessimistic = false;
};

/// Selects up to `k` conflict-free tasks for one round. `ranked` must be
/// sorted by descending entropy; objects that cannot contribute a
/// conflict-free task are skipped (the next-ranked object takes their
/// place).
Result<std::vector<Task>> SelectTasks(const CTable& ctable,
                                      const std::vector<ObjectEntropy>& ranked,
                                      std::size_t k,
                                      ProbabilityEvaluator& evaluator,
                                      const StrategyOptions& options);

}  // namespace bayescrowd

#endif  // BAYESCROWD_CORE_STRATEGY_H_
