#include "core/telemetry.h"

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace bayescrowd {
namespace {

// Deterministic cost-unit attribution: every `cost.*` labeled counter
// in the snapshot, grouped as one row per (session, phase, solver_tier,
// compile_state) label set. Unit counts are thread-count independent
// (charged at sequential fold points), so this section participates in
// the byte-identity contracts like every other normalized count.
obs::JsonValue AttributionJson(const obs::MetricsSnapshot& snapshot,
                               double answer_seconds) {
  obs::JsonValue rows = obs::JsonValue::Array();
  std::uint64_t total_units = 0;
  for (const auto& [series, value] : snapshot.counters) {
    std::string base;
    std::vector<obs::Label> labels;
    obs::ParseSeriesName(series, &base, &labels);
    if (base.rfind("cost.", 0) != 0) continue;
    obs::JsonValue row = obs::JsonValue::Object();
    row["unit"] = base;
    for (const obs::Label& label : labels) row[label.key] = label.value;
    row["units"] = value;
    rows.Append(std::move(row));
    total_units += value;
  }
  obs::JsonValue out = obs::JsonValue::Object();
  out["total_units"] = total_units;
  out["answer_seconds"] = answer_seconds;
  out["rows"] = std::move(rows);
  return out;
}

obs::JsonValue OptionsJson(const BayesCrowdOptions& options) {
  obs::JsonValue out = obs::JsonValue::Object();
  out["budget"] = options.budget;
  out["latency"] = options.latency;
  out["strategy"] = StrategyKindToString(options.strategy.kind);
  out["method"] = ProbabilityMethodToString(options.probability.method);
  out["threads"] = options.threads;
  out["answer_threshold"] = options.answer_threshold;
  out["confidence_stop_entropy"] = options.confidence_stop_entropy;
  obs::JsonValue retry = obs::JsonValue::Object();
  retry["max_attempts"] = options.retry.max_attempts;
  retry["attempt_seconds"] = options.retry.attempt_seconds;
  retry["backoff_initial_seconds"] = options.retry.backoff_initial_seconds;
  retry["backoff_multiplier"] = options.retry.backoff_multiplier;
  retry["round_deadline_seconds"] = options.retry.round_deadline_seconds;
  retry["max_barren_rounds"] = options.retry.max_barren_rounds;
  out["retry"] = std::move(retry);
  const GovernorOptions& g = options.probability.governor;
  obs::JsonValue governor = obs::JsonValue::Object();
  governor["enabled"] = g.enabled();
  governor["node_budget"] = g.max_nodes;
  governor["component_budget"] = g.max_components;
  governor["deadline_ms"] = static_cast<std::size_t>(
      g.deadline_ms < 0 ? 0 : g.deadline_ms);
  governor["ladder"] = LadderModeToString(g.ladder);
  governor["interval_samples"] = g.interval_samples;
  governor["confidence_z"] = g.confidence_z;
  governor["breaker_threshold"] = options.breaker_threshold;
  governor["pessimistic"] = options.strategy.pessimistic;
  out["governor"] = std::move(governor);
  const CompileOptions& c = options.probability.compile;
  obs::JsonValue compile = obs::JsonValue::Object();
  compile["mode"] = CompileModeToString(c.mode);
  compile["node_budget"] = c.max_nodes;
  out["compile"] = std::move(compile);
  return out;
}

obs::JsonValue AdpllJson(const AdpllStats& stats) {
  obs::JsonValue out = obs::JsonValue::Object();
  out["calls"] = stats.calls;
  out["branches"] = stats.branches;
  out["direct_evals"] = stats.direct_evals;
  out["component_splits"] = stats.component_splits;
  out["star_evals"] = stats.star_evals;
  return out;
}

obs::JsonValue RoundJson(const RoundLog& log) {
  obs::JsonValue out = obs::JsonValue::Object();
  out["round"] = log.round;
  out["tasks"] = log.tasks;
  out["seconds"] = log.seconds;
  out["select_seconds"] = log.select_seconds;
  out["update_seconds"] = log.update_seconds;
  out["cache_hits"] = log.cache_hits;
  out["cache_misses"] = log.cache_misses;
  out["cache_hit_rate"] = log.CacheHitRate();
  out["attempts"] = log.attempts;
  out["answered"] = log.answered;
  out["unanswered"] = log.unanswered;
  out["cost_refunded"] = log.cost_refunded;
  out["backoff_sim_seconds"] = log.backoff_seconds;
  out["round_sim_seconds"] = log.simulated_seconds;
  out["abandoned"] = log.abandoned;
  return out;
}

}  // namespace

obs::JsonValue RunTelemetryJson(const std::string& name,
                                const BayesCrowdOptions& options,
                                const BayesCrowdResult& result) {
  obs::JsonValue payload = obs::JsonValue::Object();
  payload["options"] = OptionsJson(options);

  obs::JsonValue res = obs::JsonValue::Object();
  obs::JsonValue objects = obs::JsonValue::Array();
  for (const std::size_t id : result.result_objects) objects.Append(id);
  res["result_objects"] = std::move(objects);
  obs::JsonValue probabilities = obs::JsonValue::Array();
  for (const double p : result.probabilities) probabilities.Append(p);
  res["probabilities"] = std::move(probabilities);
  res["tasks_posted"] = result.tasks_posted;
  res["rounds"] = result.rounds;
  res["cost_spent"] = result.cost_spent;
  res["extra_votes"] = result.extra_votes;
  res["stopped_confident"] = result.stopped_confident;
  res["degraded"] = result.degraded;
  res["resumed"] = result.resumed;
  res["order_conflicts"] = result.order_conflicts;
  res["initial_true"] = result.initial_true;
  res["initial_false"] = result.initial_false;
  res["initial_undecided"] = result.initial_undecided;
  res["modeling_seconds"] = result.modeling_seconds;
  res["crowdsourcing_seconds"] = result.crowdsourcing_seconds;
  res["select_seconds"] = result.select_seconds;
  res["update_seconds"] = result.update_seconds;
  res["platform_wall_seconds"] = result.platform_wall_seconds;
  res["export_seconds"] = result.export_seconds;
  res["answer_seconds"] = result.answer_seconds;
  res["total_seconds"] = result.total_seconds;
  payload["result"] = std::move(res);

  payload["attribution"] =
      AttributionJson(result.metrics, result.answer_seconds);

  obs::JsonValue cache = obs::JsonValue::Object();
  cache["hits"] = result.cache_hits;
  cache["misses"] = result.cache_misses;
  cache["evictions"] = result.cache_evictions;
  payload["cache"] = std::move(cache);

  payload["adpll"] = AdpllJson(result.adpll);

  // Governed-solver outcome. Tier counts and intervals are
  // deterministic under node/component budgets; `deadline_hits` is the
  // one wall-clock-dependent count (always 0 without a deadline) and is
  // normalized away with the other timing fields.
  obs::JsonValue solver = obs::JsonValue::Object();
  solver["budget_exhausted"] = result.solver.budget_exhausted;
  solver["deadline_hits"] = result.solver.deadline_hits;
  solver["tier_exact"] = result.solver.tier_exact;
  solver["tier_partial"] = result.solver.tier_partial;
  solver["tier_sampled"] = result.solver.tier_sampled;
  solver["tier_unknown"] = result.solver.tier_unknown;
  solver["breaker_trips"] = result.breaker_trips;
  solver["breaker_skips"] = result.breaker_skips;
  obs::JsonValue degraded = obs::JsonValue::Array();
  for (const std::size_t id : result.degraded_objects) degraded.Append(id);
  solver["degraded_objects"] = std::move(degraded);
  obs::JsonValue intervals = obs::JsonValue::Array();
  for (const ProbInterval& interval : result.probability_intervals) {
    obs::JsonValue entry = obs::JsonValue::Object();
    entry["lo"] = interval.lo;
    entry["hi"] = interval.hi;
    entry["quality"] = ProbQualityToString(interval.quality);
    intervals.Append(std::move(entry));
  }
  solver["intervals"] = std::move(intervals);
  payload["solver"] = std::move(solver);

  // Knowledge-compilation outcome. Every count is deterministic for a
  // fixed configuration (builds happen on first exact solves, reuses on
  // later memo misses, both independent of thread count).
  obs::JsonValue compile = obs::JsonValue::Object();
  compile["builds"] = result.compile.builds;
  compile["fallbacks"] = result.compile.fallbacks;
  compile["reuses"] = result.compile.reuses;
  compile["nodes"] = result.compile.nodes;
  compile["restored"] = result.compile.restored;
  compile["evictions"] = result.compile.evictions;
  payload["compile"] = std::move(compile);

  // Recovery totals. Simulated clocks (backoff/platform time) are
  // deterministic given the fault seed, unlike the wall-clock fields.
  obs::JsonValue recovery = obs::JsonValue::Object();
  recovery["tasks_unanswered"] = result.tasks_unanswered;
  recovery["retries"] = result.retries;
  recovery["transient_failures"] = result.transient_failures;
  recovery["rounds_abandoned"] = result.rounds_abandoned;
  recovery["cost_refunded"] = result.cost_refunded;
  recovery["backoff_sim_seconds"] = result.backoff_seconds;
  recovery["platform_sim_seconds"] = result.simulated_seconds;
  payload["recovery"] = std::move(recovery);

  obs::JsonValue rounds = obs::JsonValue::Array();
  for (const RoundLog& log : result.round_logs) {
    rounds.Append(RoundJson(log));
  }
  payload["rounds"] = std::move(rounds);

  obs::JsonValue lanes = obs::JsonValue::Array();
  for (std::size_t lane = 0; lane < result.lane_usage.size(); ++lane) {
    obs::JsonValue entry = obs::JsonValue::Object();
    entry["lane"] = lane;
    entry["tasks"] = result.lane_usage[lane].tasks;
    entry["busy_seconds"] = result.lane_usage[lane].busy_seconds;
    lanes.Append(std::move(entry));
  }
  payload["lanes"] = std::move(lanes);

  payload["metrics"] = result.metrics.ToJson();

  return obs::TelemetryEnvelope("run", name, std::move(payload));
}

Status WriteRunTelemetry(const std::string& name,
                         const BayesCrowdOptions& options,
                         const BayesCrowdResult& result,
                         const std::string& path) {
  return obs::WriteJsonFile(RunTelemetryJson(name, options, result),
                            path);
}

}  // namespace bayescrowd
