// Run telemetry: serializes everything a BayesCrowd::Run produced —
// result counts, per-round logs, ADPLL search totals, memo-cache
// traffic, per-lane pool utilization, and the full metrics snapshot —
// into one machine-readable JSON document (obs telemetry envelope,
// kind "run"). EXPERIMENTS.md shows how to mine the output.

#ifndef BAYESCROWD_CORE_TELEMETRY_H_
#define BAYESCROWD_CORE_TELEMETRY_H_

#include <string>

#include "common/result.h"
#include "core/framework.h"
#include "obs/json.h"

namespace bayescrowd {

/// The full telemetry document for one run. `name` labels the run
/// (dataset, experiment id, ...).
obs::JsonValue RunTelemetryJson(const std::string& name,
                                const BayesCrowdOptions& options,
                                const BayesCrowdResult& result);

/// Writes RunTelemetryJson(...) to `path` (pretty-printed).
Status WriteRunTelemetry(const std::string& name,
                         const BayesCrowdOptions& options,
                         const BayesCrowdResult& result,
                         const std::string& path);

}  // namespace bayescrowd

#endif  // BAYESCROWD_CORE_TELEMETRY_H_
