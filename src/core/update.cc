#include "core/update.h"

namespace bayescrowd {

Status ApplyAnswer(const Task& task, const TaskAnswer& answer,
                   KnowledgeBase* knowledge) {
  const Expression& e = task.expression;
  if (e.rhs_is_var) {
    return knowledge->RecordVarOrder(e.lhs, e.rhs_var, answer.relation);
  }
  const Level c = e.rhs_const;
  switch (answer.relation) {
    case Ordering::kLess: {
      const Status st = knowledge->RestrictLess(e.lhs, c);
      // "Var < 0" is impossible; the closest consistent fact is Var = 0.
      if (st.IsInvalidArgument()) return knowledge->RestrictEqual(e.lhs, 0);
      return st;
    }
    case Ordering::kGreater: {
      const Status st = knowledge->RestrictGreater(e.lhs, c);
      // "Var > max" is impossible; degrade to Var = max... except the
      // bound may equal max, in which case pin to the bound.
      if (st.IsInvalidArgument()) return knowledge->RestrictEqual(e.lhs, c);
      return st;
    }
    case Ordering::kEqual:
      return knowledge->RestrictEqual(e.lhs, c);
  }
  return Status::Internal("unknown ordering");
}

}  // namespace bayescrowd
