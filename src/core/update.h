// Applying crowd answers to the knowledge base.

#ifndef BAYESCROWD_CORE_UPDATE_H_
#define BAYESCROWD_CORE_UPDATE_H_

#include "common/status.h"
#include "crowd/task.h"
#include "ctable/knowledge.h"

namespace bayescrowd {

/// Records one aggregated answer. Var-const answers narrow the
/// variable's interval; var-var answers record an order fact. Answers
/// that are impossible within the domain (only producible by erroneous
/// workers, e.g. "greater than the domain maximum") are degraded to the
/// nearest consistent fact (equality with the bound).
Status ApplyAnswer(const Task& task, const TaskAnswer& answer,
                   KnowledgeBase* knowledge);

}  // namespace bayescrowd

#endif  // BAYESCROWD_CORE_UPDATE_H_
