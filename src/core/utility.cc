#include "core/utility.h"

#include "core/entropy.h"

namespace bayescrowd {

Condition FixExpression(const Condition& condition, const Expression& e,
                        bool value) {
  return condition.SimplifyWith([&e, value](const Expression& candidate) {
    if (candidate == e) return TruthOf(value);
    return Truth::kUnknown;
  });
}

namespace {

// The scalar an interval contributes to an entropy term: its midpoint,
// or under pessimism the consistent probability nearest 1/2.
double EntropyPoint(const ProbInterval& interval, bool pessimistic) {
  return pessimistic ? PessimisticPoint(interval) : interval.midpoint();
}

}  // namespace

Result<double> MarginalUtility(const Condition& condition, double p_o,
                               const Expression& e,
                               ProbabilityEvaluator& evaluator,
                               bool pessimistic) {
  BAYESCROWD_ASSIGN_OR_RETURN(const double p_e, evaluator.Probability(e));

  const Condition if_true = FixExpression(condition, e, true);
  const Condition if_false = FixExpression(condition, e, false);
  BAYESCROWD_ASSIGN_OR_RETURN(const ProbInterval p_true,
                              evaluator.ProbabilityInterval(if_true));
  BAYESCROWD_ASSIGN_OR_RETURN(const ProbInterval p_false,
                              evaluator.ProbabilityInterval(if_false));

  const double expected =
      p_e * BinaryEntropy(EntropyPoint(p_true, pessimistic)) +
      (1.0 - p_e) * BinaryEntropy(EntropyPoint(p_false, pessimistic));
  return BinaryEntropy(p_o) - expected;
}

Result<std::vector<double>> MarginalUtilities(
    const Condition& condition, double p_o,
    const std::vector<Expression>& candidates,
    ProbabilityEvaluator& evaluator, bool pessimistic) {
  const std::size_t n = candidates.size();
  std::vector<Condition> counterfactuals;
  counterfactuals.reserve(2 * n);
  for (const Expression& e : candidates) {
    counterfactuals.push_back(FixExpression(condition, e, true));
    counterfactuals.push_back(FixExpression(condition, e, false));
  }
  std::vector<const Condition*> pointers;
  pointers.reserve(counterfactuals.size());
  for (const Condition& c : counterfactuals) pointers.push_back(&c);
  BAYESCROWD_ASSIGN_OR_RETURN(const std::vector<ProbInterval> probabilities,
                              evaluator.EvaluateBatchIntervals(pointers));

  const double h_o = BinaryEntropy(p_o);
  std::vector<double> gains(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    BAYESCROWD_ASSIGN_OR_RETURN(const double p_e,
                                evaluator.Probability(candidates[i]));
    gains[i] =
        h_o -
        (p_e * BinaryEntropy(EntropyPoint(probabilities[2 * i], pessimistic)) +
         (1.0 - p_e) *
             BinaryEntropy(EntropyPoint(probabilities[2 * i + 1],
                                        pessimistic)));
  }
  return gains;
}

}  // namespace bayescrowd
