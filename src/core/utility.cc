#include "core/utility.h"

#include "core/entropy.h"

namespace bayescrowd {

Condition FixExpression(const Condition& condition, const Expression& e,
                        bool value) {
  return condition.SimplifyWith([&e, value](const Expression& candidate) {
    if (candidate == e) return TruthOf(value);
    return Truth::kUnknown;
  });
}

Result<double> MarginalUtility(const Condition& condition, double p_o,
                               const Expression& e,
                               ProbabilityEvaluator& evaluator) {
  BAYESCROWD_ASSIGN_OR_RETURN(const double p_e, evaluator.Probability(e));

  const Condition if_true = FixExpression(condition, e, true);
  const Condition if_false = FixExpression(condition, e, false);
  BAYESCROWD_ASSIGN_OR_RETURN(const double p_true,
                              evaluator.Probability(if_true));
  BAYESCROWD_ASSIGN_OR_RETURN(const double p_false,
                              evaluator.Probability(if_false));

  const double expected = p_e * BinaryEntropy(p_true) +
                          (1.0 - p_e) * BinaryEntropy(p_false);
  return BinaryEntropy(p_o) - expected;
}

}  // namespace bayescrowd
