// Marginal utility of crowdsourcing one expression (Definition 6):
//
//   G(o, e) = H(o) - E[H(o | e)]
//   E[H(o|e)] = Pr(e) H(o | e=true) + (1 - Pr(e)) H(o | e=false)
//
// H(o | e=x) is the entropy of o after every occurrence of e in φ(o) is
// fixed to x and the condition is re-simplified (the paper's reading).

#ifndef BAYESCROWD_CORE_UTILITY_H_
#define BAYESCROWD_CORE_UTILITY_H_

#include <vector>

#include "common/result.h"
#include "ctable/condition.h"
#include "probability/evaluator.h"

namespace bayescrowd {

/// φ(o) with every occurrence of `e` replaced by the truth value
/// `value` (other expressions untouched), re-simplified.
Condition FixExpression(const Condition& condition, const Expression& e,
                        bool value);

/// G(o, e). `p_o` is the current Pr(φ(o)) (avoids recomputation; the
/// caller already needed it for the entropy ranking). With a governed
/// evaluator the counterfactual probabilities may come back as
/// intervals; entropies are taken at the midpoint, or — when
/// `pessimistic` — at the interval's point nearest 1/2 (see
/// PessimisticPoint), making poorly-solved counterfactuals look
/// maximally uncertain.
Result<double> MarginalUtility(const Condition& condition, double p_o,
                               const Expression& e,
                               ProbabilityEvaluator& evaluator,
                               bool pessimistic = false);

/// G(o, e) for every candidate expression at once: the 2·n
/// counterfactual conditions (e fixed true / fixed false) go through the
/// evaluator's batch API, so they are memoized across rounds and fanned
/// over its thread pool. gains[i] aligns with candidates[i]; identical
/// to calling MarginalUtility per candidate, for any thread count.
Result<std::vector<double>> MarginalUtilities(
    const Condition& condition, double p_o,
    const std::vector<Expression>& candidates,
    ProbabilityEvaluator& evaluator, bool pessimistic = false);

}  // namespace bayescrowd

#endif  // BAYESCROWD_CORE_UTILITY_H_
