// Task cost models.
//
// The paper prices every task equally ("for a group of similar tasks,
// crowdsourcing each of those tasks is assumed to spend a fixed amount
// of money") and notes that variable task difficulties can be handled
// by accumulating per-task costs. This module supplies both: the
// framework charges each posted task against the budget through a
// TaskCostModel.

#ifndef BAYESCROWD_CROWD_COST_H_
#define BAYESCROWD_CROWD_COST_H_

#include "crowd/task.h"

namespace bayescrowd {

/// Prices one task in budget units.
class TaskCostModel {
 public:
  virtual ~TaskCostModel() = default;

  /// Must be positive.
  virtual double Cost(const Task& task) const = 0;
};

/// Every task costs the same (the paper's default; budget == #tasks).
class UniformCostModel : public TaskCostModel {
 public:
  explicit UniformCostModel(double cost = 1.0) : cost_(cost) {}
  double Cost(const Task&) const override { return cost_; }

 private:
  double cost_;
};

/// Variable-vs-variable questions are harder for workers than
/// variable-vs-constant ones (two objects to inspect instead of one),
/// so they cost more.
class OperandCountCostModel : public TaskCostModel {
 public:
  OperandCountCostModel(double var_const_cost, double var_var_cost)
      : var_const_cost_(var_const_cost), var_var_cost_(var_var_cost) {}

  double Cost(const Task& task) const override {
    return task.expression.rhs_is_var ? var_var_cost_ : var_const_cost_;
  }

 private:
  double var_const_cost_;
  double var_var_cost_;
};

}  // namespace bayescrowd

#endif  // BAYESCROWD_CROWD_COST_H_
