#include "crowd/fault_injection.h"

#include <utility>

namespace bayescrowd {

FaultOptions FaultOptions::Profile(double rate, std::uint64_t seed) {
  FaultOptions out;
  out.transient_failure_rate = rate;
  out.abstain_rate = rate;
  out.partial_batch_rate = rate / 2.0;
  out.seed = seed;
  return out;
}

FaultInjectingPlatform::FaultInjectingPlatform(CrowdPlatform& inner,
                                               FaultOptions options)
    : inner_(inner), options_(std::move(options)), rng_(options_.seed) {}

void FaultInjectingPlatform::BindMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    ins_ = Instruments{};
    return;
  }
  ins_.transient_failures =
      registry->GetCounter("fault.transient_failures");
  ins_.timeouts = registry->GetCounter("fault.timeouts");
  ins_.abstained_tasks = registry->GetCounter("fault.abstained_tasks");
  ins_.partial_batches = registry->GetCounter("fault.partial_batches");
  ins_.dropped_tail_tasks =
      registry->GetCounter("fault.dropped_tail_tasks");
}

Result<std::vector<TaskAnswer>> FaultInjectingPlatform::PostBatch(
    const std::vector<Task>& tasks) {
  ++stats_.batches_attempted;

  // The draw order is fixed (failure, timeout split, partial, then one
  // abstain draw per task) so the schedule depends only on the seed and
  // the sequence of batch sizes, never on answer content.
  if (rng_.NextBool(options_.transient_failure_rate)) {
    if (rng_.NextBool(options_.timeout_fraction)) {
      ++stats_.timeouts;
      if (ins_.timeouts != nullptr) ins_.timeouts->Increment();
      return Status::Unavailable("injected batch timeout");
    }
    ++stats_.transient_failures;
    if (ins_.transient_failures != nullptr) {
      ins_.transient_failures->Increment();
    }
    return Status::Unavailable("injected transient platform failure");
  }

  BAYESCROWD_ASSIGN_OR_RETURN(std::vector<TaskAnswer> answers,
                              inner_.PostBatch(tasks));
  ++stats_.batches_delivered;

  if (rng_.NextBool(options_.partial_batch_rate) && answers.size() > 1) {
    // Drop a non-empty proper tail: the platform returned the round
    // half-finished.
    const std::size_t tail_start =
        1 + static_cast<std::size_t>(rng_.NextBelow(answers.size() - 1));
    ++stats_.partial_batches;
    if (ins_.partial_batches != nullptr) ins_.partial_batches->Increment();
    for (std::size_t i = tail_start; i < answers.size(); ++i) {
      answers[i].answered = false;
      ++stats_.dropped_tail_tasks;
      if (ins_.dropped_tail_tasks != nullptr) {
        ins_.dropped_tail_tasks->Increment();
      }
    }
  }

  for (TaskAnswer& answer : answers) {
    const bool abstain = rng_.NextBool(options_.abstain_rate);
    if (abstain && answer.answered) {
      answer.answered = false;
      ++stats_.abstained_tasks;
      if (ins_.abstained_tasks != nullptr) {
        ins_.abstained_tasks->Increment();
      }
    }
  }
  return answers;
}

}  // namespace bayescrowd
