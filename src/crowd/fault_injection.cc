#include "crowd/fault_injection.h"

#include <utility>

namespace bayescrowd {

FaultOptions FaultOptions::Profile(double rate, std::uint64_t seed) {
  FaultOptions out;
  out.transient_failure_rate = rate;
  out.abstain_rate = rate;
  out.partial_batch_rate = rate / 2.0;
  out.seed = seed;
  return out;
}

FaultInjectingPlatform::FaultInjectingPlatform(CrowdPlatform& inner,
                                               FaultOptions options)
    : inner_(inner), options_(std::move(options)), rng_(options_.seed) {}

void FaultInjectingPlatform::BindMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    ins_ = Instruments{};
    return;
  }
  ins_.transient_failures =
      registry->GetCounter("fault.transient_failures");
  ins_.timeouts = registry->GetCounter("fault.timeouts");
  ins_.abstained_tasks = registry->GetCounter("fault.abstained_tasks");
  ins_.partial_batches = registry->GetCounter("fault.partial_batches");
  ins_.dropped_tail_tasks =
      registry->GetCounter("fault.dropped_tail_tasks");
  ins_.flipped_votes = registry->GetCounter("fault.flipped_votes");
  ins_.noisy_answers_changed =
      registry->GetCounter("fault.noisy_answers_changed");
}

void FaultInjectingPlatform::ApplyAnswerNoise(
    std::vector<TaskAnswer>* answers) {
  // Each delivered answer is re-voted by three virtual workers, each of
  // whom reports the aggregate relation but flips to a uniform wrong
  // choice with probability answer_noise. Votes re-aggregate through
  // the accuracy-weighted vote (expected per-vote accuracy
  // 1 - answer_noise) and feed the consensus accuracy estimator.
  const std::vector<double> weights(kNoiseWorkers,
                                    1.0 - options_.answer_noise);
  constexpr Ordering kAll[] = {Ordering::kLess, Ordering::kEqual,
                               Ordering::kGreater};
  for (TaskAnswer& answer : *answers) {
    std::vector<Ordering> votes(kNoiseWorkers);
    std::vector<Vote> recorded(kNoiseWorkers);
    for (std::size_t w = 0; w < kNoiseWorkers; ++w) {
      Ordering vote = answer.relation;
      if (rng_.NextBool(options_.answer_noise)) {
        Ordering wrong[2];
        int k = 0;
        for (const Ordering o : kAll) {
          if (o != answer.relation) wrong[k++] = o;
        }
        vote = wrong[rng_.NextBelow(2)];
        ++stats_.flipped_votes;
        if (ins_.flipped_votes != nullptr) ins_.flipped_votes->Increment();
      }
      votes[w] = vote;
      recorded[w] = Vote{w, vote};
    }
    task_votes_.push_back(std::move(recorded));
    const Result<Ordering> aggregated = WeightedVote(votes, weights);
    if (aggregated.ok() && aggregated.value() != answer.relation) {
      answer.relation = aggregated.value();
      ++stats_.noisy_answers_changed;
      if (ins_.noisy_answers_changed != nullptr) {
        ins_.noisy_answers_changed->Increment();
      }
    }
  }
}

Result<std::vector<double>>
FaultInjectingPlatform::EstimateVirtualWorkerAccuracies(
    int iterations) const {
  return EstimateAccuraciesByConsensus(task_votes_, kNoiseWorkers,
                                       iterations);
}

void FaultInjectingPlatform::SaveState(std::string* out) const {
  BinWriter w(out);
  w.WriteU8('F');
  for (const std::uint64_t word : rng_.SaveState()) w.WriteU64(word);
  w.WriteU64(stats_.transient_failures);
  w.WriteU64(stats_.timeouts);
  w.WriteU64(stats_.abstained_tasks);
  w.WriteU64(stats_.partial_batches);
  w.WriteU64(stats_.dropped_tail_tasks);
  w.WriteU64(stats_.batches_attempted);
  w.WriteU64(stats_.batches_delivered);
  w.WriteU64(stats_.flipped_votes);
  w.WriteU64(stats_.noisy_answers_changed);
  w.WriteU64(task_votes_.size());
  for (const std::vector<Vote>& votes : task_votes_) {
    w.WriteU64(votes.size());
    for (const Vote& vote : votes) {
      w.WriteU64(vote.worker);
      w.WriteU8(static_cast<std::uint8_t>(vote.answer));
    }
  }
  inner_.SaveState(out);
}

Status FaultInjectingPlatform::LoadState(BinReader* reader) {
  std::uint8_t tag = 0;
  BAYESCROWD_RETURN_NOT_OK(reader->ReadU8(&tag));
  if (tag != 'F') {
    return Status::InvalidArgument(
        "platform state: expected fault-injector chunk");
  }
  std::array<std::uint64_t, 4> rng_state{};
  for (std::uint64_t& word : rng_state) {
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&word));
  }
  FaultStats stats;
  BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&stats.transient_failures));
  BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&stats.timeouts));
  BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&stats.abstained_tasks));
  BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&stats.partial_batches));
  BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&stats.dropped_tail_tasks));
  BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&stats.batches_attempted));
  BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&stats.batches_delivered));
  BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&stats.flipped_votes));
  BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&stats.noisy_answers_changed));
  std::uint64_t tasks = 0;
  BAYESCROWD_RETURN_NOT_OK(reader->ReadCount(&tasks, 8));
  std::vector<std::vector<Vote>> task_votes;
  task_votes.reserve(tasks);
  for (std::uint64_t t = 0; t < tasks; ++t) {
    std::uint64_t count = 0;
    BAYESCROWD_RETURN_NOT_OK(reader->ReadCount(&count, 9));
    std::vector<Vote> votes(count);
    for (Vote& vote : votes) {
      std::uint64_t worker = 0;
      std::uint8_t answer = 0;
      BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&worker));
      BAYESCROWD_RETURN_NOT_OK(reader->ReadU8(&answer));
      if (answer > static_cast<std::uint8_t>(Ordering::kGreater)) {
        return Status::OutOfRange("platform state: bad vote ordering");
      }
      vote.worker = static_cast<std::size_t>(worker);
      vote.answer = static_cast<Ordering>(answer);
    }
    task_votes.push_back(std::move(votes));
  }
  rng_.LoadState(rng_state);
  stats_ = stats;
  task_votes_ = std::move(task_votes);
  return inner_.LoadState(reader);
}

Result<std::vector<TaskAnswer>> FaultInjectingPlatform::PostBatch(
    const std::vector<Task>& tasks) {
  ++stats_.batches_attempted;

  // The draw order is fixed (failure, timeout split, partial, then one
  // abstain draw per task) so the schedule depends only on the seed and
  // the sequence of batch sizes, never on answer content.
  if (rng_.NextBool(options_.transient_failure_rate)) {
    if (rng_.NextBool(options_.timeout_fraction)) {
      ++stats_.timeouts;
      if (ins_.timeouts != nullptr) ins_.timeouts->Increment();
      return Status::Unavailable("injected batch timeout");
    }
    ++stats_.transient_failures;
    if (ins_.transient_failures != nullptr) {
      ins_.transient_failures->Increment();
    }
    return Status::Unavailable("injected transient platform failure");
  }

  BAYESCROWD_ASSIGN_OR_RETURN(std::vector<TaskAnswer> answers,
                              inner_.PostBatch(tasks));
  ++stats_.batches_delivered;

  if (options_.answer_noise > 0.0) ApplyAnswerNoise(&answers);

  if (rng_.NextBool(options_.partial_batch_rate) && answers.size() > 1) {
    // Drop a non-empty proper tail: the platform returned the round
    // half-finished.
    const std::size_t tail_start =
        1 + static_cast<std::size_t>(rng_.NextBelow(answers.size() - 1));
    ++stats_.partial_batches;
    if (ins_.partial_batches != nullptr) ins_.partial_batches->Increment();
    for (std::size_t i = tail_start; i < answers.size(); ++i) {
      answers[i].answered = false;
      ++stats_.dropped_tail_tasks;
      if (ins_.dropped_tail_tasks != nullptr) {
        ins_.dropped_tail_tasks->Increment();
      }
    }
  }

  for (TaskAnswer& answer : answers) {
    const bool abstain = rng_.NextBool(options_.abstain_rate);
    if (abstain && answer.answered) {
      answer.answered = false;
      ++stats_.abstained_tasks;
      if (ins_.abstained_tasks != nullptr) {
        ins_.abstained_tasks->Increment();
      }
    }
  }
  return answers;
}

}  // namespace bayescrowd
