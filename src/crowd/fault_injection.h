// FaultInjectingPlatform: a deterministic chaos layer for the crowd
// pipeline.
//
// Wraps any CrowdPlatform and, driven by a seeded schedule, injects the
// failure modes a real marketplace exhibits: whole-batch transient
// errors (platform down), batch timeouts, per-task abstentions (a
// worker never answers), and partial batches (a contiguous tail of the
// round is dropped). The schedule depends only on the fault seed and
// the sequence of PostBatch calls — never on wall clock or thread
// count — so a faulted run reproduces bit-identically and the
// framework's retry/degradation path can be pinned by tests.
//
// Failed attempts never reach the inner platform (the batch never made
// it to the marketplace), so the inner platform's own random stream
// stays aligned with the successful attempts. Dropped tasks DO reach
// the inner platform (the work was assigned, the answer was lost) and
// their answers are overwritten with `answered = false`.
//
// With every rate at 0 the decorator is a transparent pass-through:
// answers, inner-platform state, and framework behavior are
// bit-identical to running without it (asserted by fault_test.cc).

#ifndef BAYESCROWD_CROWD_FAULT_INJECTION_H_
#define BAYESCROWD_CROWD_FAULT_INJECTION_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "crowd/platform.h"
#include "crowd/task.h"
#include "obs/metrics.h"

namespace bayescrowd {

struct FaultOptions {
  /// Per-attempt probability that PostBatch fails outright with
  /// Status::Unavailable before reaching the inner platform.
  double transient_failure_rate = 0.0;

  /// Fraction of injected transient failures reported as batch
  /// timeouts (distinct counter, same retry handling downstream).
  double timeout_fraction = 0.25;

  /// Per-task probability that an answer comes back abstained
  /// (`answered = false`).
  double abstain_rate = 0.0;

  /// Per-batch probability that the round comes back partial: a
  /// uniformly-drawn non-empty tail of the batch is dropped.
  double partial_batch_rate = 0.0;

  /// Per-vote probability that a virtual worker reports a wrong
  /// relation (uniform over the two wrong choices). When > 0, every
  /// delivered answer is re-voted by three virtual workers and
  /// re-aggregated through WeightedVote, so the content itself becomes
  /// noisy — not just the delivery.
  double answer_noise = 0.0;

  /// Drives the entire schedule; same seed = same faults.
  std::uint64_t seed = 42;

  /// Convenience: one knob for a mixed-fault profile, as exposed by the
  /// CLI's --fault-rate. Sets transient failures and abstentions to
  /// `rate` and partial batches to `rate / 2`.
  static FaultOptions Profile(double rate, std::uint64_t seed);
};

/// Per-fault-kind injection totals (also exported as "fault.*" counters
/// when a metrics registry is bound).
struct FaultStats {
  std::uint64_t transient_failures = 0;  // Unavailable, platform down.
  std::uint64_t timeouts = 0;            // Unavailable, batch timed out.
  std::uint64_t abstained_tasks = 0;     // Individual unanswered tasks.
  std::uint64_t partial_batches = 0;     // Batches with a dropped tail.
  std::uint64_t dropped_tail_tasks = 0;  // Tasks lost to partial batches.
  std::uint64_t batches_attempted = 0;   // Every PostBatch call seen.
  std::uint64_t batches_delivered = 0;   // Calls that returned answers.
  std::uint64_t flipped_votes = 0;       // Wrong virtual-worker votes.
  std::uint64_t noisy_answers_changed = 0;  // Aggregates that flipped.
};

/// The decorator. Non-owning: `inner` must outlive it.
class FaultInjectingPlatform : public CrowdPlatform {
 public:
  FaultInjectingPlatform(CrowdPlatform& inner, FaultOptions options);

  Result<std::vector<TaskAnswer>> PostBatch(
      const std::vector<Task>& tasks) override;

  /// Inner totals: failed attempts never reached the marketplace, so
  /// they are invisible here (the framework tracks its own retries).
  std::size_t total_tasks() const override { return inner_.total_tasks(); }
  std::size_t total_rounds() const override {
    return inner_.total_rounds();
  }

  const FaultStats& stats() const { return stats_; }

  /// Mirrors the stats into "fault.*" counters of `registry` (nullptr
  /// detaches). Non-owning; must outlive the platform.
  void BindMetrics(obs::MetricsRegistry* registry);

  /// Chunk: own RNG + stats + virtual-worker votes, then the inner
  /// platform's chunk.
  void SaveState(std::string* out) const override;
  Status LoadState(BinReader* reader) override;

  /// Replay sync = post and discard: reproduces this layer's entire
  /// draw schedule (failure/noise/partial/abstain) plus the inner
  /// platform's, keeping both streams aligned with the recorded run.
  void SyncReplayed(const std::vector<Task>& tasks,
                    bool delivered) override {
    (void)delivered;
    if (tasks.empty()) return;
    (void)PostBatch(tasks);
  }

  /// Unsupervised (Dawid-Skene-style) accuracy estimates for the three
  /// virtual noise workers, from the votes accumulated so far. Only
  /// meaningful when answer_noise > 0 and batches were delivered.
  Result<std::vector<double>> EstimateVirtualWorkerAccuracies(
      int iterations = 10) const;

  /// Virtual workers re-voting each answer when answer_noise > 0.
  static constexpr std::size_t kNoiseWorkers = 3;

 private:
  /// Re-votes every answer through the virtual noise workers and
  /// re-aggregates with WeightedVote.
  void ApplyAnswerNoise(std::vector<TaskAnswer>* answers);

  CrowdPlatform& inner_;
  FaultOptions options_;
  Rng rng_;
  FaultStats stats_;
  /// Votes per delivered task (answer_noise > 0 only), consumed by the
  /// consensus accuracy estimator.
  std::vector<std::vector<Vote>> task_votes_;

  struct Instruments {
    obs::Counter* transient_failures = nullptr;
    obs::Counter* timeouts = nullptr;
    obs::Counter* abstained_tasks = nullptr;
    obs::Counter* partial_batches = nullptr;
    obs::Counter* dropped_tail_tasks = nullptr;
    obs::Counter* flipped_votes = nullptr;
    obs::Counter* noisy_answers_changed = nullptr;
  } ins_;
};

}  // namespace bayescrowd

#endif  // BAYESCROWD_CROWD_FAULT_INJECTION_H_
