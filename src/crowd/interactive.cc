#include "crowd/interactive.h"

#include <string>

#include "common/string_util.h"

namespace bayescrowd {
namespace {

bool ParseAnswer(std::string_view text, Ordering* out) {
  const std::string_view t = Trim(text);
  if (t == "l" || t == "larger" || t == ">" || t == "L") {
    *out = Ordering::kGreater;
    return true;
  }
  if (t == "s" || t == "smaller" || t == "<" || t == "S") {
    *out = Ordering::kLess;
    return true;
  }
  if (t == "e" || t == "equal" || t == "=" || t == "E") {
    *out = Ordering::kEqual;
    return true;
  }
  return false;
}

}  // namespace

Result<std::vector<TaskAnswer>> InteractiveCrowdPlatform::PostBatch(
    const std::vector<Task>& tasks) {
  if (tasks.empty()) return Status::InvalidArgument("empty batch");
  out_ << "--- round " << (total_rounds_ + 1) << ": " << tasks.size()
       << " task(s) ---\n";
  std::vector<TaskAnswer> answers;
  answers.reserve(tasks.size());
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const std::string question = tasks[t].QuestionText(table_);
    Ordering relation = Ordering::kEqual;
    bool parsed = false;
    for (int attempt = 0; attempt < 3 && !parsed; ++attempt) {
      out_ << "[" << (t + 1) << "/" << tasks.size() << "] " << question
           << "\n  answer (l)arger / (s)maller / (e)qual: " << std::flush;
      std::string line;
      if (!std::getline(in_, line)) {
        return Status::IOError("input stream closed mid-batch");
      }
      parsed = ParseAnswer(line, &relation);
      if (!parsed) out_ << "  could not parse '" << line << "'\n";
    }
    if (!parsed) {
      return Status::InvalidArgument("three unparseable answers in a row");
    }
    answers.push_back({relation});
  }
  total_tasks_ += tasks.size();
  ++total_rounds_;
  return answers;
}

}  // namespace bayescrowd
