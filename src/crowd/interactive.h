// InteractiveCrowdPlatform: a CrowdPlatform whose "worker" is a human at
// a terminal. Each task is printed as the paper's triple-choice question
// and the answer is read from an input stream. Used by the CLI's
// --interactive mode; also handy in tests with a scripted stream.

#ifndef BAYESCROWD_CROWD_INTERACTIVE_H_
#define BAYESCROWD_CROWD_INTERACTIVE_H_

#include <istream>
#include <ostream>

#include "crowd/platform.h"

namespace bayescrowd {

/// Prompts for each task on `out` and parses answers from `in`.
/// Accepted answers: "l"/"larger"/">", "s"/"smaller"/"<",
/// "e"/"equal"/"=". Unparseable lines are re-asked up to three times,
/// then the batch fails with InvalidArgument; EOF fails with IOError.
class InteractiveCrowdPlatform : public CrowdPlatform {
 public:
  /// `table` provides names for the question text. All references must
  /// outlive the platform.
  InteractiveCrowdPlatform(const Table& table, std::istream& in,
                           std::ostream& out)
      : table_(table), in_(in), out_(out) {}

  Result<std::vector<TaskAnswer>> PostBatch(
      const std::vector<Task>& tasks) override;

  std::size_t total_tasks() const override { return total_tasks_; }
  std::size_t total_rounds() const override { return total_rounds_; }

 private:
  const Table& table_;
  std::istream& in_;
  std::ostream& out_;
  std::size_t total_tasks_ = 0;
  std::size_t total_rounds_ = 0;
};

}  // namespace bayescrowd

#endif  // BAYESCROWD_CROWD_INTERACTIVE_H_
