#include "crowd/marketplace.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <utility>

namespace bayescrowd {
namespace {

constexpr int kNumChoices = 3;

// Same symmetric 3-choice log-odds weight as quality.cc's WeightedVote,
// reproduced here for the confidence softmax (the vote itself goes
// through WeightedVote so the two can never disagree).
double LogOddsWeight(double accuracy) {
  const double p = std::clamp(accuracy, 0.34, 0.999);
  return std::log(p / ((1.0 - p) / 2.0));
}

double QuantizeToMs(double seconds) {
  return static_cast<double>(std::llround(seconds * 1000.0)) / 1000.0;
}

void Bump(obs::Counter* counter, std::uint64_t delta = 1) {
  if (counter != nullptr && delta > 0) counter->Increment(delta);
}

}  // namespace

const char* WorkerProfileToString(WorkerProfile profile) {
  switch (profile) {
    case WorkerProfile::kHonest:
      return "honest";
    case WorkerProfile::kSloppy:
      return "sloppy";
    case WorkerProfile::kSpammer:
      return "spammer";
    case WorkerProfile::kColluder:
      return "colluder";
  }
  return "unknown";
}

MarketplaceCrowdPlatform::MarketplaceCrowdPlatform(
    Table ground_truth, MarketplaceOptions options)
    : ground_truth_(std::move(ground_truth)),
      options_(options),
      rng_(options.seed),
      quality_(options.defense),
      // Paranoid opening: with no votes observed yet the defense has no
      // reputations to lean on, so the first round runs as if agreement
      // had already collapsed — widest fan-out, unconvincing tasks
      // abstain (and refund) instead of folding a poisoned first
      // impression into the query for good. The first healthy kappa
      // resets the ladder.
      low_kappa_streak_(options.defend ? 2 : 0) {
  for (std::size_t i = 0; i < options_.pool_size; ++i) Recruit();
}

Result<Ordering> MarketplaceCrowdPlatform::TrueRelation(
    const Expression& expression) const {
  const Level lhs =
      ground_truth_.At(expression.lhs.object, expression.lhs.attribute);
  if (IsMissingLevel(lhs)) {
    return Status::FailedPrecondition(
        "ground-truth table is missing the asked cell");
  }
  Level rhs = expression.rhs_const;
  if (expression.rhs_is_var) {
    rhs = ground_truth_.At(expression.rhs_var.object,
                           expression.rhs_var.attribute);
    if (IsMissingLevel(rhs)) {
      return Status::FailedPrecondition(
          "ground-truth table is missing the asked cell");
    }
  }
  if (lhs < rhs) return Ordering::kLess;
  if (lhs > rhs) return Ordering::kGreater;
  return Ordering::kEqual;
}

void MarketplaceCrowdPlatform::Recruit() {
  Worker worker;
  worker.id = next_worker_id_++;
  worker.premium = rng_.NextBool(options_.premium_fraction) ? 1 : 0;
  if (rng_.NextBool(options_.spam_rate)) {
    if (rng_.NextBool(options_.collusion_fraction)) {
      worker.profile = WorkerProfile::kColluder;
      // Colluders mimic honest work habits: only the answers betray them.
      worker.skill = 0.0;
      worker.base_work_seconds = 20.0 + 30.0 * rng_.NextDouble();
    } else {
      worker.profile = WorkerProfile::kSpammer;
      worker.skill = 0.0;
      // Click-through fast: well under the min-work-seconds gate.
      worker.base_work_seconds = 0.8 + 2.2 * rng_.NextDouble();
    }
  } else if (rng_.NextBool(options_.sloppy_fraction)) {
    worker.profile = WorkerProfile::kSloppy;
    worker.skill = 0.52 + 0.18 * rng_.NextDouble();
    worker.base_work_seconds = 12.0 + 20.0 * rng_.NextDouble();
  } else {
    worker.profile = WorkerProfile::kHonest;
    worker.skill = 0.82 + 0.15 * rng_.NextDouble();
    if (worker.premium != 0) worker.skill = std::max(worker.skill, 0.9);
    worker.base_work_seconds = 25.0 + 35.0 * rng_.NextDouble();
  }
  quality_.EnsureWorkers(static_cast<std::size_t>(worker.id) + 1);
  workers_.push_back(worker);
  stats_.arrivals += 1;
  Bump(ins_.arrivals);
}

void MarketplaceCrowdPlatform::AdvanceClock() {
  // Poisson arrivals (Knuth): deterministic given the RNG stream.
  const double lambda = options_.arrival_rate;
  if (lambda > 0.0) {
    const double limit = std::exp(-lambda);
    double p = 1.0;
    int k = 0;
    do {
      ++k;
      p *= rng_.NextDouble();
    } while (p > limit);
    for (int i = 0; i < k - 1; ++i) Recruit();
  }
  // Churn: every active worker flips the same seeded coin, in roster
  // order, so the stream is stable under pool growth.
  for (Worker& worker : workers_) {
    if (worker.active == 0) continue;
    if (rng_.NextBool(options_.churn_rate)) {
      worker.active = 0;
      stats_.departures += 1;
      Bump(ins_.departures);
    }
  }
  // The marketplace never goes dark: recruit replacements until a base
  // batch is assignable again (quarantine + churn can drain the pool).
  const auto floor_needed =
      static_cast<std::size_t>(std::max(options_.base_votes, 1));
  while (EligibleWorkers().size() < floor_needed) Recruit();
}

std::vector<std::size_t> MarketplaceCrowdPlatform::EligibleWorkers()
    const {
  std::vector<std::size_t> eligible;
  eligible.reserve(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (workers_[i].active == 0) continue;
    if (options_.defend && quality_.Quarantined(workers_[i].id)) continue;
    eligible.push_back(i);
  }
  return eligible;
}

VoteRecord MarketplaceCrowdPlatform::CastVote(const Worker& worker,
                                              Ordering truth) {
  VoteRecord vote;
  vote.worker = worker.id;
  constexpr Ordering kAll[] = {Ordering::kLess, Ordering::kEqual,
                               Ordering::kGreater};
  switch (worker.profile) {
    case WorkerProfile::kHonest:
    case WorkerProfile::kSloppy: {
      if (rng_.NextBool(worker.skill)) {
        vote.answer = truth;
      } else {
        Ordering wrong[2];
        int w = 0;
        for (Ordering o : kAll) {
          if (o != truth) wrong[w++] = o;
        }
        vote.answer = wrong[rng_.NextBelow(2)];
      }
      break;
    }
    case WorkerProfile::kSpammer:
      vote.answer = static_cast<Ordering>(rng_.NextBelow(3));
      break;
    case WorkerProfile::kColluder: {
      // Every colluder gives the *same* wrong answer (rotating with the
      // round so the signal is not a fixed bias): coordinated attacks
      // are exactly what plain majority cannot survive.
      const int rotate = 1 + static_cast<int>(total_rounds_ % 2);
      vote.answer = static_cast<Ordering>(
          (static_cast<int>(truth) + rotate) % kNumChoices);
      break;
    }
  }
  vote.work_seconds = QuantizeToMs(worker.base_work_seconds *
                                   (0.75 + 0.5 * rng_.NextDouble()));
  return vote;
}

double MarketplaceCrowdPlatform::LeaderConfidence(
    const std::vector<VoteRecord>& votes) const {
  if (votes.empty()) return 0.0;
  double scores[kNumChoices] = {0.0, 0.0, 0.0};
  for (const VoteRecord& vote : votes) {
    const double accuracy =
        options_.defend ? quality_.Accuracy(vote.worker) : 0.7;
    scores[static_cast<int>(vote.answer)] += LogOddsWeight(accuracy);
  }
  const double top = std::max({scores[0], scores[1], scores[2]});
  double denom = 0.0;
  for (double s : scores) denom += std::exp(s - top);
  return 1.0 / denom;  // exp(top - top) / sum.
}

Ordering MarketplaceCrowdPlatform::Aggregate(
    const std::vector<VoteRecord>& votes) const {
  std::vector<Ordering> answers;
  answers.reserve(votes.size());
  for (const VoteRecord& vote : votes) answers.push_back(vote.answer);
  if (options_.defend) {
    std::vector<double> weights;
    weights.reserve(votes.size());
    for (const VoteRecord& vote : votes) {
      weights.push_back(quality_.Accuracy(vote.worker));
    }
    const auto weighted = WeightedVote(answers, weights);
    if (weighted.ok()) return weighted.value();
  }
  return MajorityVote(answers);
}

Result<std::vector<TaskAnswer>> MarketplaceCrowdPlatform::PostBatch(
    const std::vector<Task>& tasks) {
  if (tasks.empty()) return Status::InvalidArgument("empty batch");

  AdvanceClock();

  // Degradation ladder, driven by the *previous* rounds' agreement:
  // one collapsed round widens every task to the max fan-out; two in a
  // row additionally let still-unconfident tasks abstain.
  const bool wide = low_kappa_streak_ >= 1;
  const bool may_abstain = low_kappa_streak_ >= 2;
  if (wide) stats_.wide_rounds += 1;

  const auto base_votes =
      static_cast<std::size_t>(std::max(options_.base_votes, 1));
  const auto max_votes = static_cast<std::size_t>(
      std::max(options_.max_votes, options_.base_votes));
  const std::size_t opening = wide ? max_votes : base_votes;
  const bool adaptive = max_votes > base_votes;

  std::vector<TaskAnswer> answers;
  answers.reserve(tasks.size());
  std::vector<std::vector<Ordering>> round_votes;
  round_votes.reserve(tasks.size());
  double round_work_seconds = 0.0;

  for (const Task& task : tasks) {
    BAYESCROWD_ASSIGN_OR_RETURN(const Ordering truth,
                                TrueRelation(task.expression));
    const std::vector<std::size_t> eligible = EligibleWorkers();

    // Opening fan-out: distinct workers, uniformly drawn.
    std::vector<std::size_t> chosen;
    const std::size_t open_k = std::min(opening, eligible.size());
    chosen.reserve(open_k);
    while (chosen.size() < open_k) {
      const std::size_t idx = eligible[rng_.NextBelow(eligible.size())];
      bool duplicate = false;
      for (std::size_t c : chosen) duplicate |= (c == idx);
      if (!duplicate) chosen.push_back(idx);
    }
    std::vector<VoteRecord> votes;
    votes.reserve(max_votes);
    for (std::size_t idx : chosen) {
      votes.push_back(CastVote(workers_[idx], truth));
    }

    // Adaptive top-up: buy votes one at a time while the posterior
    // leader is unconvincing. With the defense on, the extra money goes
    // to the most reputable unused workers (learned accuracy, premium
    // tier as the tie-break) — spending more on a random draw from a
    // poisoned pool would just buy more poison. Baseline mode keeps the
    // naive premium-first random draw.
    if (adaptive) {
      while (votes.size() < max_votes &&
             LeaderConfidence(votes) < options_.confidence_threshold) {
        std::vector<std::size_t> pool;
        for (std::size_t idx : eligible) {
          bool used = false;
          for (std::size_t c : chosen) used |= (c == idx);
          if (!used) pool.push_back(idx);
        }
        if (pool.empty()) break;  // Marketplace exhausted.
        if (options_.defend) {
          double best = -1.0;
          for (std::size_t idx : pool) {
            best = std::max(best, quality_.Accuracy(workers_[idx].id));
          }
          std::vector<std::size_t> top;
          for (std::size_t idx : pool) {
            if (quality_.Accuracy(workers_[idx].id) >= best - 1e-9) {
              top.push_back(idx);
            }
          }
          std::vector<std::size_t> premium;
          for (std::size_t idx : top) {
            if (workers_[idx].premium != 0) premium.push_back(idx);
          }
          pool = premium.empty() ? std::move(top) : std::move(premium);
        } else {
          std::vector<std::size_t> premium;
          for (std::size_t idx : pool) {
            if (workers_[idx].premium != 0) premium.push_back(idx);
          }
          if (!premium.empty()) pool = std::move(premium);
        }
        const std::size_t idx = pool[rng_.NextBelow(pool.size())];
        chosen.push_back(idx);
        votes.push_back(CastVote(workers_[idx], truth));
      }
    }

    // Bookkeeping: every vote was bought, whatever happens next.
    stats_.votes_cast += votes.size();
    Bump(ins_.votes_cast, votes.size());
    if (votes.size() > base_votes) {
      const std::uint64_t extra = votes.size() - base_votes;
      stats_.extra_votes += extra;
      Bump(ins_.extra_votes, extra);
    }
    double task_work = 0.0;
    for (std::size_t i = 0; i < votes.size(); ++i) {
      if (workers_[chosen[i]].premium != 0) {
        stats_.premium_votes += 1;
        Bump(ins_.premium_votes);
      }
      task_work = std::max(task_work, votes[i].work_seconds);
    }
    round_work_seconds = std::max(round_work_seconds, task_work);

    // Operator audit: the coin is drawn in both modes so the defended
    // and baseline arms see identical RNG streams; only the defense
    // learns the label.
    const bool audited = rng_.NextBool(options_.gold_fraction);
    if (audited && options_.defend) {
      quality_.AddGoldTask(votes, truth);
      stats_.gold_tasks += 1;
    } else {
      quality_.AddTask(votes);
    }
    std::vector<Ordering> orderings;
    orderings.reserve(votes.size());
    for (const VoteRecord& vote : votes) orderings.push_back(vote.answer);
    round_votes.push_back(std::move(orderings));

    TaskAnswer answer;
    answer.votes = votes;
    if (options_.defend && may_abstain &&
        LeaderConfidence(votes) < options_.confidence_threshold) {
      // Two collapsed rounds and still no convincing leader even at the
      // widest fan-out: refuse to ingest a poisoned answer.
      answer.answered = false;
      stats_.abstained_tasks += 1;
      Bump(ins_.abstained_tasks);
    } else {
      answer.relation = Aggregate(votes);
    }
    answers.push_back(std::move(answer));
  }

  total_tasks_ += tasks.size();
  total_rounds_ += 1;
  sim_seconds_ += round_work_seconds;  // Workers vote in parallel.

  // Joint inference + gates, fed by everything up to and including this
  // round. Learned reputations steer the *next* round's assignment.
  if (options_.defend) {
    const std::size_t newly = quality_.Refresh();
    if (newly > 0) {
      Bump(ins_.quarantined, newly);
      obs::RecordFlight(flight_, obs::FlightEventKind::kWorkerQuarantine,
                        total_rounds_, -1, sim_seconds_,
                        static_cast<double>(newly),
                        "marketplace quarantined workers");
    }
  }

  // Collapse detector: per-round Fleiss kappa over the raw vote sets.
  const double kappa = FleissKappa(round_votes);
  stats_.last_kappa = kappa;
  if (kappa < options_.kappa_collapse_threshold) {
    stats_.low_kappa_rounds += 1;
    low_kappa_streak_ += 1;
    Bump(ins_.kappa_collapses);
    obs::RecordFlight(flight_, obs::FlightEventKind::kKappaCollapse,
                      total_rounds_, -1, sim_seconds_, kappa,
                      "crowd agreement collapsed");
  } else {
    low_kappa_streak_ = 0;
  }

  return answers;
}

void MarketplaceCrowdPlatform::BindMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    ins_ = Instruments{};
    return;
  }
  ins_.arrivals = registry->GetCounter("crowd.market.arrivals");
  ins_.departures = registry->GetCounter("crowd.market.departures");
  ins_.votes_cast = registry->GetCounter("crowd.market.votes");
  ins_.extra_votes = registry->GetCounter("crowd.market.extra_votes");
  ins_.premium_votes = registry->GetCounter("crowd.market.premium_votes");
  ins_.abstained_tasks =
      registry->GetCounter("crowd.market.abstained_tasks");
  ins_.quarantined = registry->GetCounter("crowd.market.quarantined");
  ins_.kappa_collapses =
      registry->GetCounter("crowd.market.kappa_collapses");
}

WorkerProfile MarketplaceCrowdPlatform::worker_profile(
    std::uint32_t id) const {
  for (const Worker& worker : workers_) {
    if (worker.id == id) return worker.profile;
  }
  return WorkerProfile::kHonest;
}

std::size_t MarketplaceCrowdPlatform::active_workers() const {
  std::size_t n = 0;
  for (const Worker& worker : workers_) n += worker.active != 0 ? 1 : 0;
  return n;
}

void MarketplaceCrowdPlatform::SaveState(std::string* out) const {
  BinWriter w(out);
  w.WriteU8('M');
  for (const std::uint64_t word : rng_.SaveState()) w.WriteU64(word);
  w.WriteU64(total_tasks_);
  w.WriteU64(total_rounds_);
  w.WriteDouble(sim_seconds_);
  w.WriteU32(next_worker_id_);
  w.WriteI32(low_kappa_streak_);
  w.WriteU64(stats_.arrivals);
  w.WriteU64(stats_.departures);
  w.WriteU64(stats_.votes_cast);
  w.WriteU64(stats_.extra_votes);
  w.WriteU64(stats_.premium_votes);
  w.WriteU64(stats_.abstained_tasks);
  w.WriteU64(stats_.gold_tasks);
  w.WriteU64(stats_.wide_rounds);
  w.WriteU64(stats_.low_kappa_rounds);
  w.WriteDouble(stats_.last_kappa);
  w.WriteU64(workers_.size());
  for (const Worker& worker : workers_) {
    w.WriteU32(worker.id);
    w.WriteU8(static_cast<std::uint8_t>(worker.profile));
    w.WriteDouble(worker.skill);
    w.WriteDouble(worker.base_work_seconds);
    w.WriteU8(worker.premium);
    w.WriteU8(worker.active);
  }
  quality_.Save(&w);
}

Status MarketplaceCrowdPlatform::LoadState(BinReader* reader) {
  std::uint8_t tag = 0;
  BAYESCROWD_RETURN_NOT_OK(reader->ReadU8(&tag));
  if (tag != 'M') {
    return Status::InvalidArgument(
        "platform state: expected marketplace chunk");
  }
  std::array<std::uint64_t, 4> rng_state{};
  for (std::uint64_t& word : rng_state) {
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&word));
  }
  std::uint64_t tasks = 0;
  std::uint64_t rounds = 0;
  BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&tasks));
  BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&rounds));
  BAYESCROWD_RETURN_NOT_OK(reader->ReadDouble(&sim_seconds_));
  BAYESCROWD_RETURN_NOT_OK(reader->ReadU32(&next_worker_id_));
  BAYESCROWD_RETURN_NOT_OK(reader->ReadI32(&low_kappa_streak_));
  BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&stats_.arrivals));
  BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&stats_.departures));
  BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&stats_.votes_cast));
  BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&stats_.extra_votes));
  BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&stats_.premium_votes));
  BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&stats_.abstained_tasks));
  BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&stats_.gold_tasks));
  BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&stats_.wide_rounds));
  BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&stats_.low_kappa_rounds));
  BAYESCROWD_RETURN_NOT_OK(reader->ReadDouble(&stats_.last_kappa));
  std::uint64_t roster = 0;
  BAYESCROWD_RETURN_NOT_OK(reader->ReadCount(&roster, 23));
  std::vector<Worker> workers(static_cast<std::size_t>(roster));
  for (Worker& worker : workers) {
    std::uint8_t profile = 0;
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU32(&worker.id));
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU8(&profile));
    BAYESCROWD_RETURN_NOT_OK(reader->ReadDouble(&worker.skill));
    BAYESCROWD_RETURN_NOT_OK(reader->ReadDouble(&worker.base_work_seconds));
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU8(&worker.premium));
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU8(&worker.active));
    if (profile > 3 || worker.id >= next_worker_id_) {
      return Status::InvalidArgument(
          "platform state: corrupt marketplace roster");
    }
    worker.profile = static_cast<WorkerProfile>(profile);
  }
  JointQualityModel quality(options_.defense);
  BAYESCROWD_RETURN_NOT_OK(quality.Load(reader));
  rng_.LoadState(rng_state);
  total_tasks_ = static_cast<std::size_t>(tasks);
  total_rounds_ = static_cast<std::size_t>(rounds);
  workers_ = std::move(workers);
  quality_ = std::move(quality);
  return Status::OK();
}

}  // namespace bayescrowd
