// A seeded, deterministic crowd marketplace: the adversarial upgrade of
// SimulatedCrowdPlatform's flat accuracy mixture.
//
// Workers are individuals, not an anonymous accuracy pool: each carries
// a hidden skill, a work-time profile, a pricing tier, and a behavior
// profile — honest, sloppy, uniform-spammer, or colluding-adversary
// (colluders coordinate on the same wrong answer, so plain majority
// voting is maximally vulnerable to them). The pool evolves on the
// simulated clock with Poisson-style arrivals and per-worker churn, all
// driven by the one seeded Rng, so a run is bit-identical for a given
// seed at any thread count.
//
// Defense (on by default) closes the loop with crowd/quality.h:
//  - every vote feeds the JointQualityModel, which re-runs Dawid-Skene
//    joint inference each round and latches quarantine for workers
//    failing the approval-rate / work-time / accuracy gates (quarantined
//    workers are never assigned again — mirroring the serve layer's
//    poison-session registry);
//  - aggregation is accuracy-weighted by the learned estimates instead
//    of plain majority;
//  - per-round Fleiss-kappa agreement acts as a collapse detector: a
//    low-kappa round widens the vote fan-out to max_votes for every
//    task, and two consecutive low-kappa rounds let still-unconfident
//    tasks abstain (the framework refunds them) rather than ingest a
//    poisoned answer.
//
// Adaptive vote allocation: each task starts with base_votes and buys
// additional votes (premium-tier workers first) only while the
// posterior confidence of the leading answer is below the threshold,
// up to max_votes. The per-vote provenance (worker id, raw answer,
// work time) is emitted on every TaskAnswer, flows into answer-log v3,
// and is restored on replay, so the framework's extra-vote budget
// charging reproduces exactly.
//
// With defend=false and max_votes == base_votes the marketplace is the
// flat 3-vote majority baseline over the *same* adversarial worker
// stream — the bench's control arm.

#ifndef BAYESCROWD_CROWD_MARKETPLACE_H_
#define BAYESCROWD_CROWD_MARKETPLACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/binio.h"
#include "common/random.h"
#include "common/result.h"
#include "crowd/platform.h"
#include "crowd/quality.h"
#include "crowd/task.h"
#include "data/table.h"
#include "obs/flight.h"
#include "obs/metrics.h"

namespace bayescrowd {

/// Hidden behavior class of one marketplace worker.
enum class WorkerProfile : std::uint8_t {
  kHonest = 0,    // High skill, plausible work times.
  kSloppy = 1,    // Mediocre skill, hasty but not malicious.
  kSpammer = 2,   // Uniform random answers, implausibly fast.
  kColluder = 3,  // Coordinated wrong answers, plausible work times.
};

const char* WorkerProfileToString(WorkerProfile profile);

struct MarketplaceOptions {
  /// Workers recruited before the first round.
  std::size_t pool_size = 12;

  /// Probability that an arriving worker is adversarial (spammer or
  /// colluder) rather than honest/sloppy.
  double spam_rate = 0.0;

  /// Of adversarial arrivals: probability of colluding (vs uniform
  /// spamming).
  double collusion_fraction = 0.4;

  /// Of non-adversarial arrivals: probability of being sloppy.
  double sloppy_fraction = 0.25;

  /// Poisson mean of new arrivals per round.
  double arrival_rate = 0.5;

  /// Per-worker, per-round departure probability.
  double churn_rate = 0.02;

  /// Probability that an arrival joins the premium pricing tier
  /// (higher skill floor; preferred when widening the vote fan-out).
  double premium_fraction = 0.25;

  /// Votes bought per task before the confidence check.
  int base_votes = 3;

  /// Ceiling for adaptive allocation. Equal to base_votes = fixed
  /// fan-out (no adaptive spending).
  int max_votes = 3;

  /// Stop buying extra votes once the leading answer's posterior
  /// reaches this confidence.
  double confidence_threshold = 0.85;

  /// A round whose Fleiss kappa drops below this counts as an
  /// agreement collapse (wide fan-out next round; two in a row enable
  /// abstention).
  double kappa_collapse_threshold = 0.30;

  /// Fraction of completed tasks the operator audits (learning their
  /// true answer after the fact). Audited tasks anchor the joint
  /// inference as gold: without an anchor, a coordinated colluder bloc
  /// can capture the Dawid-Skene consensus and invert every accuracy
  /// estimate. The coin is drawn in both modes (stream stability);
  /// only the defense consumes the label.
  double gold_fraction = 0.12;

  /// Joint inference + gating + quarantine + weighted aggregation.
  /// Off = plain majority over the same worker stream (baseline).
  bool defend = true;

  /// Gates for the defense (ignored when defend is false).
  WorkerDefenseOptions defense;

  std::uint64_t seed = 99;
};

/// Deterministic per-run totals (also exported as "crowd.market.*"
/// counters when a metrics registry is bound).
struct MarketplaceStats {
  std::uint64_t arrivals = 0;          // Workers recruited (incl. initial).
  std::uint64_t departures = 0;        // Churned out of the pool.
  std::uint64_t votes_cast = 0;        // Every individual vote bought.
  std::uint64_t extra_votes = 0;       // Votes beyond base_votes.
  std::uint64_t premium_votes = 0;     // Votes from premium-tier workers.
  std::uint64_t abstained_tasks = 0;   // Degraded to unanswered.
  std::uint64_t gold_tasks = 0;        // Operator-audited (anchor) tasks.
  std::uint64_t wide_rounds = 0;       // Rounds forced to max fan-out.
  std::uint64_t low_kappa_rounds = 0;  // Rounds below the threshold.
  double last_kappa = 1.0;             // Most recent round's agreement.
};

/// The marketplace platform. Answers from a hidden complete
/// ground-truth table like SimulatedCrowdPlatform, but through the
/// evolving worker pool above.
class MarketplaceCrowdPlatform : public CrowdPlatform {
 public:
  /// `ground_truth` must be complete (held by value, like the simulated
  /// platform).
  MarketplaceCrowdPlatform(Table ground_truth, MarketplaceOptions options);

  Result<std::vector<TaskAnswer>> PostBatch(
      const std::vector<Task>& tasks) override;

  std::size_t total_tasks() const override { return total_tasks_; }
  std::size_t total_rounds() const override { return total_rounds_; }

  /// Chunk tag 'M': RNG, totals, the worker roster, the quality model,
  /// and the collapse-detector state — learned reputations survive
  /// --resume and serve-layer recovery.
  void SaveState(std::string* out) const override;
  Status LoadState(BinReader* reader) override;

  /// Replay sync = post and discard, like the simulated platform: the
  /// marketplace re-makes every draw (arrivals, churn, assignment,
  /// votes) so its streams stay aligned with the recorded session.
  void SyncReplayed(const std::vector<Task>& tasks,
                    bool delivered) override {
    if (!delivered || tasks.empty()) return;
    (void)PostBatch(tasks);
  }

  /// Mirrors stats into "crowd.market.*" counters (nullptr detaches).
  void BindMetrics(obs::MetricsRegistry* registry);

  /// Receives kappa-collapse and worker-quarantine events (nullptr
  /// detaches). Non-owning.
  void SetFlightRecorder(obs::FlightRecorder* recorder) {
    flight_ = recorder;
  }

  const MarketplaceStats& stats() const { return stats_; }
  const JointQualityModel& quality() const { return quality_; }

  /// Hidden behavior profile of worker `id` — the simulation's ground
  /// truth, for tests and the bench (kHonest for unknown ids).
  WorkerProfile worker_profile(std::uint32_t id) const;

  /// Live roster inspection (tests).
  std::size_t active_workers() const;
  std::size_t quarantined_workers() const {
    return quality_.quarantined_count();
  }

 private:
  struct Worker {
    std::uint32_t id = 0;
    WorkerProfile profile = WorkerProfile::kHonest;
    double skill = 0.9;              // P(correct) for honest/sloppy.
    double base_work_seconds = 30.0; // Mean per-task work time.
    std::uint8_t premium = 0;        // Pricing tier.
    std::uint8_t active = 1;         // Still in the pool.
  };

  Result<Ordering> TrueRelation(const Expression& expression) const;

  /// Recruits one worker from the seeded arrival distribution.
  void Recruit();

  /// One round of Poisson arrivals + per-worker churn, keeping at least
  /// base_votes assignable workers.
  void AdvanceClock();

  /// Indices (into workers_) eligible for assignment.
  std::vector<std::size_t> EligibleWorkers() const;

  /// One vote from `worker` on a task whose true relation is `truth`.
  VoteRecord CastVote(const Worker& worker, Ordering truth);

  /// Posterior confidence of the weighted leader of `votes`.
  double LeaderConfidence(const std::vector<VoteRecord>& votes) const;

  /// Weighted (defend) or majority (baseline) aggregate of `votes`.
  Ordering Aggregate(const std::vector<VoteRecord>& votes) const;

  const Table ground_truth_;
  MarketplaceOptions options_;
  Rng rng_;
  std::vector<Worker> workers_;
  JointQualityModel quality_;
  std::uint32_t next_worker_id_ = 0;
  std::size_t total_tasks_ = 0;
  std::size_t total_rounds_ = 0;
  double sim_seconds_ = 0.0;
  int low_kappa_streak_ = 0;
  MarketplaceStats stats_;

  obs::FlightRecorder* flight_ = nullptr;
  struct Instruments {
    obs::Counter* arrivals = nullptr;
    obs::Counter* departures = nullptr;
    obs::Counter* votes_cast = nullptr;
    obs::Counter* extra_votes = nullptr;
    obs::Counter* premium_votes = nullptr;
    obs::Counter* abstained_tasks = nullptr;
    obs::Counter* quarantined = nullptr;
    obs::Counter* kappa_collapses = nullptr;
  } ins_;
};

}  // namespace bayescrowd

#endif  // BAYESCROWD_CROWD_MARKETPLACE_H_
