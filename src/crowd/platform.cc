#include "crowd/platform.h"

#include <utility>

#include "common/string_util.h"

namespace bayescrowd {

SimulatedCrowdPlatform::SimulatedCrowdPlatform(
    Table ground_truth, SimulatedPlatformOptions options)
    : ground_truth_(std::move(ground_truth)),
      options_(options),
      rng_(options.seed) {
  if (options_.worker_pool_size > 0) {
    pool_accuracies_.resize(options_.worker_pool_size);
    for (std::size_t w = 0; w < options_.worker_pool_size; ++w) {
      pool_accuracies_[w] =
          options_.accuracy_pool.empty()
              ? options_.worker_accuracy
              : options_.accuracy_pool[w % options_.accuracy_pool.size()];
    }
    tracker_.emplace(options_.worker_pool_size);
  }
}

void SimulatedCrowdPlatform::SaveState(std::string* out) const {
  BinWriter w(out);
  w.WriteU8('S');
  for (const std::uint64_t word : rng_.SaveState()) w.WriteU64(word);
  w.WriteU64(total_tasks_);
  w.WriteU64(total_rounds_);
  w.WriteBool(tracker_.has_value());
  if (tracker_.has_value()) {
    w.WriteU64(tracker_->num_workers());
    for (const double h : tracker_->hits()) w.WriteDouble(h);
    for (const double t : tracker_->totals()) w.WriteDouble(t);
  }
}

Status SimulatedCrowdPlatform::LoadState(BinReader* reader) {
  std::uint8_t tag = 0;
  BAYESCROWD_RETURN_NOT_OK(reader->ReadU8(&tag));
  if (tag != 'S') {
    return Status::InvalidArgument(
        "platform state: expected simulated-platform chunk");
  }
  std::array<std::uint64_t, 4> rng_state{};
  for (std::uint64_t& word : rng_state) {
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&word));
  }
  std::uint64_t tasks = 0;
  std::uint64_t rounds = 0;
  bool has_tracker = false;
  BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&tasks));
  BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&rounds));
  BAYESCROWD_RETURN_NOT_OK(reader->ReadBool(&has_tracker));
  if (has_tracker != tracker_.has_value()) {
    return Status::InvalidArgument(
        "platform state: worker-pool configuration changed since the "
        "checkpoint was written");
  }
  if (has_tracker) {
    std::uint64_t workers = 0;
    BAYESCROWD_RETURN_NOT_OK(reader->ReadCount(&workers, 16));
    if (workers != tracker_->num_workers()) {
      return Status::InvalidArgument(
          "platform state: worker pool size changed since the checkpoint "
          "was written");
    }
    std::vector<double> hits(workers);
    std::vector<double> totals(workers);
    for (double& h : hits) BAYESCROWD_RETURN_NOT_OK(reader->ReadDouble(&h));
    for (double& t : totals) {
      BAYESCROWD_RETURN_NOT_OK(reader->ReadDouble(&t));
    }
    BAYESCROWD_RETURN_NOT_OK(
        tracker_->RestoreCounts(std::move(hits), std::move(totals)));
  }
  rng_.LoadState(rng_state);
  total_tasks_ = static_cast<std::size_t>(tasks);
  total_rounds_ = static_cast<std::size_t>(rounds);
  return Status::OK();
}

Result<Ordering> SimulatedCrowdPlatform::TrueRelation(
    const Expression& expression) const {
  const Level lhs =
      ground_truth_.At(expression.lhs.object, expression.lhs.attribute);
  if (IsMissingLevel(lhs)) {
    return Status::FailedPrecondition(
        "ground-truth table is missing the asked cell");
  }
  Level rhs = expression.rhs_const;
  if (expression.rhs_is_var) {
    rhs = ground_truth_.At(expression.rhs_var.object,
                           expression.rhs_var.attribute);
    if (IsMissingLevel(rhs)) {
      return Status::FailedPrecondition(
          "ground-truth table is missing the asked cell");
    }
  }
  if (lhs < rhs) return Ordering::kLess;
  if (lhs > rhs) return Ordering::kGreater;
  return Ordering::kEqual;
}

Ordering SimulatedCrowdPlatform::VoteWithAccuracy(Ordering truth,
                                                  double accuracy) {
  if (rng_.NextBool(accuracy)) return truth;
  // Uniform over the two wrong choices.
  constexpr Ordering kAll[] = {Ordering::kLess, Ordering::kEqual,
                               Ordering::kGreater};
  Ordering wrong[2];
  int w = 0;
  for (Ordering o : kAll) {
    if (o != truth) wrong[w++] = o;
  }
  return wrong[rng_.NextBelow(2)];
}

Ordering SimulatedCrowdPlatform::WorkerVote(Ordering truth) {
  double accuracy = options_.worker_accuracy;
  if (!options_.accuracy_pool.empty()) {
    accuracy = options_.accuracy_pool[rng_.NextBelow(
        options_.accuracy_pool.size())];
  }
  return VoteWithAccuracy(truth, accuracy);
}

Result<Ordering> SimulatedCrowdPlatform::PoolAnswer(Ordering truth) {
  // Draw distinct workers for this task.
  const std::size_t pool = pool_accuracies_.size();
  const auto k = std::min<std::size_t>(
      static_cast<std::size_t>(options_.workers_per_task), pool);
  std::vector<std::size_t> chosen;
  chosen.reserve(k);
  while (chosen.size() < k) {
    const std::size_t w = rng_.NextBelow(pool);
    bool duplicate = false;
    for (std::size_t c : chosen) duplicate |= (c == w);
    if (!duplicate) chosen.push_back(w);
  }

  std::vector<Ordering> votes(k);
  for (std::size_t i = 0; i < k; ++i) {
    votes[i] = VoteWithAccuracy(truth, pool_accuracies_[chosen[i]]);
  }

  // Gold bookkeeping for the estimated-weight mode.
  if (options_.aggregation == AggregationMethod::kWeightedEstimated &&
      rng_.NextBool(options_.gold_fraction)) {
    for (std::size_t i = 0; i < k; ++i) {
      tracker_->Record(chosen[i], votes[i] == truth);
    }
  }

  switch (options_.aggregation) {
    case AggregationMethod::kMajority:
      return MajorityVote(votes);
    case AggregationMethod::kWeightedTrue: {
      std::vector<double> weights(k);
      for (std::size_t i = 0; i < k; ++i) {
        weights[i] = pool_accuracies_[chosen[i]];
      }
      return WeightedVote(votes, weights);
    }
    case AggregationMethod::kWeightedEstimated: {
      std::vector<double> weights(k);
      for (std::size_t i = 0; i < k; ++i) {
        weights[i] = tracker_->Accuracy(chosen[i]);
      }
      return WeightedVote(votes, weights);
    }
  }
  return Status::Internal("unknown aggregation method");
}

Result<std::vector<TaskAnswer>> SimulatedCrowdPlatform::PostBatch(
    const std::vector<Task>& tasks) {
  if (tasks.empty()) {
    return Status::InvalidArgument("empty batch");
  }
  if (options_.worker_pool_size == 0 &&
      options_.aggregation != AggregationMethod::kMajority) {
    return Status::FailedPrecondition(
        "weighted aggregation needs a persistent worker pool");
  }
  std::vector<TaskAnswer> answers;
  answers.reserve(tasks.size());
  for (const Task& task : tasks) {
    BAYESCROWD_ASSIGN_OR_RETURN(const Ordering truth,
                                TrueRelation(task.expression));
    if (options_.worker_pool_size > 0) {
      BAYESCROWD_ASSIGN_OR_RETURN(const Ordering answer, PoolAnswer(truth));
      answers.push_back({answer});
      continue;
    }
    // Anonymous mode: majority vote, ties broken toward the
    // first-listed tied option — the same deterministic rule as
    // quality.h's MajorityVote, so the two aggregation paths can never
    // disagree on identical votes.
    int votes[3] = {0, 0, 0};
    for (int w = 0; w < options_.workers_per_task; ++w) {
      votes[static_cast<int>(WorkerVote(truth))] += 1;
    }
    int best = 0;
    for (int o = 1; o < 3; ++o) {
      if (votes[o] > votes[best]) best = o;
    }
    answers.push_back({static_cast<Ordering>(best)});
  }
  total_tasks_ += tasks.size();
  ++total_rounds_;
  return answers;
}

}  // namespace bayescrowd
