// Crowdsourcing platform abstraction and the simulated implementation
// used in the offline experiments (Section 7: per-task majority voting
// over three workers with configurable accuracy; worker accuracy 1.0 by
// default).

#ifndef BAYESCROWD_CROWD_PLATFORM_H_
#define BAYESCROWD_CROWD_PLATFORM_H_

#include <cstdint>
#include <vector>

#include <optional>

#include "common/binio.h"
#include "common/random.h"
#include "common/result.h"
#include "crowd/quality.h"
#include "crowd/task.h"
#include "ctable/knowledge.h"
#include "data/table.h"

namespace bayescrowd {

/// Where tasks get answered. One PostBatch call is one latency round.
class CrowdPlatform {
 public:
  virtual ~CrowdPlatform() = default;

  /// Posts one round of tasks; returns one aggregated answer per task
  /// (aligned by index).
  virtual Result<std::vector<TaskAnswer>> PostBatch(
      const std::vector<Task>& tasks) = 0;

  /// Total individual tasks posted so far (monetary cost proxy).
  virtual std::size_t total_tasks() const = 0;

  /// Total rounds so far (latency proxy).
  virtual std::size_t total_rounds() const = 0;

  /// Appends the platform's internal state (RNG position, totals,
  /// quality trackers) to `out` for checkpointing. Decorators append
  /// their own chunk and forward. Default: stateless, writes nothing.
  virtual void SaveState(std::string* out) const { (void)out; }

  /// Restores state written by SaveState (same platform stack shape).
  virtual Status LoadState(BinReader* reader) {
    (void)reader;
    return Status::OK();
  }

  /// Notifies the platform that a batch was served from a recorded
  /// answer log instead of being posted live (`delivered` false = a
  /// replayed transient failure). Stateful simulators mirror the draws
  /// a live call would have made, so their RNG streams stay aligned
  /// with the recorded session once the replay catches up. Default:
  /// ignore (an interactive platform must never re-prompt).
  virtual void SyncReplayed(const std::vector<Task>& tasks,
                            bool delivered) {
    (void)tasks;
    (void)delivered;
  }
};

/// How the per-task votes are combined into one answer.
enum class AggregationMethod : std::uint8_t {
  kMajority,           // Plain majority; ties break deterministically
                       // toward the first-listed tied option (matching
                       // quality.h's MajorityVote).
  kWeightedTrue,       // Accuracy-weighted vote with true accuracies.
  kWeightedEstimated,  // Weighted with gold-task accuracy estimates.
};

struct SimulatedPlatformOptions {
  /// Probability that an individual worker returns the true relation;
  /// wrong answers are uniform over the other two choices.
  double worker_accuracy = 1.0;

  /// Majority voting pool per task (the paper assigns each task to
  /// three workers).
  int workers_per_task = 3;

  /// When non-empty, worker accuracies are drawn from this pool
  /// (uniformly per vote in anonymous mode, round-robin per worker in
  /// pool mode), overriding `worker_accuracy`. Models a heterogeneous
  /// marketplace (the Table 6 "live AMT" simulation).
  std::vector<double> accuracy_pool;

  /// 0 = anonymous mode: every vote comes from a fresh worker. >0 = a
  /// persistent pool of this many workers with fixed (hidden)
  /// accuracies, enabling the weighted aggregation methods.
  std::size_t worker_pool_size = 0;

  /// Vote aggregation. The weighted methods require a worker pool.
  AggregationMethod aggregation = AggregationMethod::kMajority;

  /// kWeightedEstimated: fraction of tasks doubling as gold checks that
  /// update the per-worker accuracy tracker.
  double gold_fraction = 0.15;

  std::uint64_t seed = 99;
};

/// Simulated workers answering from a hidden complete ground-truth
/// table.
class SimulatedCrowdPlatform : public CrowdPlatform {
 public:
  /// `ground_truth` must be complete. Held by value: binding a
  /// temporary is safe (tests routinely pass a freshly built table).
  SimulatedCrowdPlatform(Table ground_truth,
                         SimulatedPlatformOptions options);

  Result<std::vector<TaskAnswer>> PostBatch(
      const std::vector<Task>& tasks) override;

  std::size_t total_tasks() const override { return total_tasks_; }
  std::size_t total_rounds() const override { return total_rounds_; }

  void SaveState(std::string* out) const override;
  Status LoadState(BinReader* reader) override;

  /// Replay sync = post and discard: the simulated workers make the
  /// exact draws of the recorded session and the totals advance.
  void SyncReplayed(const std::vector<Task>& tasks,
                    bool delivered) override {
    if (!delivered || tasks.empty()) return;
    (void)PostBatch(tasks);
  }

  /// The true relation of a task's operands (exposed for tests).
  Result<Ordering> TrueRelation(const Expression& expression) const;

  /// True accuracy of a pooled worker (pool mode only; for tests).
  double pool_accuracy(std::size_t worker) const {
    return pool_accuracies_[worker];
  }

 private:
  // One vote with the given accuracy.
  Ordering VoteWithAccuracy(Ordering truth, double accuracy);
  // Anonymous-mode vote (fresh worker, accuracy per options).
  Ordering WorkerVote(Ordering truth);
  // Aggregates one task in pool mode.
  Result<Ordering> PoolAnswer(Ordering truth);

  const Table ground_truth_;
  SimulatedPlatformOptions options_;
  Rng rng_;
  std::size_t total_tasks_ = 0;
  std::size_t total_rounds_ = 0;

  // Pool mode state.
  std::vector<double> pool_accuracies_;
  std::optional<WorkerQualityTracker> tracker_;
};

}  // namespace bayescrowd

#endif  // BAYESCROWD_CROWD_PLATFORM_H_
