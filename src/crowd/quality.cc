#include "crowd/quality.h"

#include <algorithm>
#include <cmath>

namespace bayescrowd {
namespace {

constexpr int kNumChoices = 3;

double ClampAccuracy(double accuracy) {
  return std::clamp(accuracy, 0.34, 0.999);
}

// Log-odds weight of one worker under the symmetric 3-choice error
// model: correct with probability p, each wrong option with (1-p)/2.
double LogOddsWeight(double accuracy) {
  const double p = ClampAccuracy(accuracy);
  return std::log(p / ((1.0 - p) / 2.0));
}

}  // namespace

Ordering MajorityVote(const std::vector<Ordering>& votes) {
  int counts[kNumChoices] = {0, 0, 0};
  for (Ordering v : votes) counts[static_cast<int>(v)] += 1;
  int best = 0;
  for (int o = 1; o < kNumChoices; ++o) {
    if (counts[o] > counts[best]) best = o;
  }
  return static_cast<Ordering>(best);
}

Result<Ordering> WeightedVote(const std::vector<Ordering>& votes,
                              const std::vector<double>& accuracies) {
  if (votes.empty()) return Status::InvalidArgument("no votes");
  if (votes.size() != accuracies.size()) {
    return Status::InvalidArgument("votes/accuracies size mismatch");
  }
  double scores[kNumChoices] = {0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < votes.size(); ++i) {
    scores[static_cast<int>(votes[i])] += LogOddsWeight(accuracies[i]);
  }
  int best = 0;
  for (int o = 1; o < kNumChoices; ++o) {
    if (scores[o] > scores[best]) best = o;
  }
  return static_cast<Ordering>(best);
}

void WorkerQualityTracker::Record(std::size_t worker, bool correct) {
  hits_[worker] += correct ? 1.0 : 0.0;
  totals_[worker] += 1.0;
}

double WorkerQualityTracker::Accuracy(std::size_t worker) const {
  // Beta(2, 1) prior: mean (hits + 2) / (total + 3).
  return (hits_[worker] + 2.0) / (totals_[worker] + 3.0);
}

std::vector<double> WorkerQualityTracker::Accuracies() const {
  std::vector<double> out(hits_.size());
  for (std::size_t w = 0; w < hits_.size(); ++w) out[w] = Accuracy(w);
  return out;
}

Result<std::vector<double>> EstimateAccuraciesByConsensus(
    const std::vector<std::vector<Vote>>& task_votes,
    std::size_t num_workers, int iterations) {
  if (num_workers == 0) return Status::InvalidArgument("no workers");
  if (iterations < 1) return Status::InvalidArgument("iterations < 1");
  for (const auto& votes : task_votes) {
    for (const Vote& vote : votes) {
      if (vote.worker >= num_workers) {
        return Status::OutOfRange("vote from unknown worker");
      }
    }
  }

  std::vector<double> accuracies(num_workers, 0.7);  // Neutral start.
  std::vector<Ordering> consensus(task_votes.size(), Ordering::kEqual);
  for (int iter = 0; iter < iterations; ++iter) {
    // E-step: consensus via weighted voting.
    for (std::size_t t = 0; t < task_votes.size(); ++t) {
      if (task_votes[t].empty()) continue;
      std::vector<Ordering> votes;
      std::vector<double> weights;
      votes.reserve(task_votes[t].size());
      weights.reserve(task_votes[t].size());
      for (const Vote& vote : task_votes[t]) {
        votes.push_back(vote.answer);
        weights.push_back(accuracies[vote.worker]);
      }
      BAYESCROWD_ASSIGN_OR_RETURN(consensus[t],
                                  WeightedVote(votes, weights));
    }
    // M-step: accuracy = smoothed agreement with the consensus.
    std::vector<double> agree(num_workers, 0.0);
    std::vector<double> total(num_workers, 0.0);
    for (std::size_t t = 0; t < task_votes.size(); ++t) {
      for (const Vote& vote : task_votes[t]) {
        agree[vote.worker] += vote.answer == consensus[t] ? 1.0 : 0.0;
        total[vote.worker] += 1.0;
      }
    }
    for (std::size_t w = 0; w < num_workers; ++w) {
      accuracies[w] = (agree[w] + 1.0) / (total[w] + 2.0);
    }
  }
  return accuracies;
}

}  // namespace bayescrowd
