#include "crowd/quality.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/metrics.h"

namespace bayescrowd {
namespace {

constexpr int kNumChoices = 3;

double ClampAccuracy(double accuracy) {
  return std::clamp(accuracy, 0.34, 0.999);
}

// Log-odds weight of one worker under the symmetric 3-choice error
// model: correct with probability p, each wrong option with (1-p)/2.
double LogOddsWeight(double accuracy) {
  const double p = ClampAccuracy(accuracy);
  return std::log(p / ((1.0 - p) / 2.0));
}

}  // namespace

Ordering MajorityVote(const std::vector<Ordering>& votes) {
  int counts[kNumChoices] = {0, 0, 0};
  for (Ordering v : votes) counts[static_cast<int>(v)] += 1;
  int best = 0;
  for (int o = 1; o < kNumChoices; ++o) {
    if (counts[o] > counts[best]) best = o;
  }
  return static_cast<Ordering>(best);
}

Result<Ordering> WeightedVote(const std::vector<Ordering>& votes,
                              const std::vector<double>& accuracies) {
  if (votes.empty()) return Status::InvalidArgument("no votes");
  if (votes.size() != accuracies.size()) {
    return Status::InvalidArgument("votes/accuracies size mismatch");
  }
  double scores[kNumChoices] = {0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < votes.size(); ++i) {
    scores[static_cast<int>(votes[i])] += LogOddsWeight(accuracies[i]);
  }
  int best = 0;
  for (int o = 1; o < kNumChoices; ++o) {
    if (scores[o] > scores[best]) best = o;
  }
  return static_cast<Ordering>(best);
}

void WorkerQualityTracker::Record(std::size_t worker, bool correct) {
  if (worker >= hits_.size()) {
    bad_worker_events_ += 1;
    if (bad_worker_counter_ != nullptr) bad_worker_counter_->Increment();
    return;
  }
  hits_[worker] += correct ? 1.0 : 0.0;
  totals_[worker] += 1.0;
}

double WorkerQualityTracker::Accuracy(std::size_t worker) const {
  if (worker >= hits_.size()) {
    bad_worker_events_ += 1;
    if (bad_worker_counter_ != nullptr) bad_worker_counter_->Increment();
    return 2.0 / 3.0;  // The prior mean: no evidence either way.
  }
  // Beta(2, 1) prior: mean (hits + 2) / (total + 3).
  return (hits_[worker] + 2.0) / (totals_[worker] + 3.0);
}

void WorkerQualityTracker::BindMetrics(obs::MetricsRegistry* registry) {
  bad_worker_counter_ =
      registry == nullptr
          ? nullptr
          : registry->GetCounter("crowd.quality.bad_worker_id");
}

std::vector<double> WorkerQualityTracker::Accuracies() const {
  std::vector<double> out(hits_.size());
  for (std::size_t w = 0; w < hits_.size(); ++w) out[w] = Accuracy(w);
  return out;
}

Result<std::vector<double>> EstimateAccuraciesByConsensus(
    const std::vector<std::vector<Vote>>& task_votes,
    std::size_t num_workers, int iterations) {
  if (num_workers == 0) return Status::InvalidArgument("no workers");
  if (iterations < 1) return Status::InvalidArgument("iterations < 1");
  for (const auto& votes : task_votes) {
    for (const Vote& vote : votes) {
      if (vote.worker >= num_workers) {
        return Status::OutOfRange("vote from unknown worker");
      }
    }
  }

  std::vector<double> accuracies(num_workers, 0.7);  // Neutral start.
  std::vector<Ordering> consensus(task_votes.size(), Ordering::kEqual);
  for (int iter = 0; iter < iterations; ++iter) {
    // E-step: consensus via weighted voting.
    for (std::size_t t = 0; t < task_votes.size(); ++t) {
      if (task_votes[t].empty()) continue;
      std::vector<Ordering> votes;
      std::vector<double> weights;
      votes.reserve(task_votes[t].size());
      weights.reserve(task_votes[t].size());
      for (const Vote& vote : task_votes[t]) {
        votes.push_back(vote.answer);
        weights.push_back(accuracies[vote.worker]);
      }
      BAYESCROWD_ASSIGN_OR_RETURN(consensus[t],
                                  WeightedVote(votes, weights));
    }
    // M-step: accuracy = smoothed agreement with the consensus.
    std::vector<double> agree(num_workers, 0.0);
    std::vector<double> total(num_workers, 0.0);
    for (std::size_t t = 0; t < task_votes.size(); ++t) {
      for (const Vote& vote : task_votes[t]) {
        agree[vote.worker] += vote.answer == consensus[t] ? 1.0 : 0.0;
        total[vote.worker] += 1.0;
      }
    }
    for (std::size_t w = 0; w < num_workers; ++w) {
      accuracies[w] = (agree[w] + 1.0) / (total[w] + 2.0);
    }
  }
  return accuracies;
}

double FleissKappa(const std::vector<std::vector<Ordering>>& task_votes) {
  double sum_pi = 0.0;
  double eligible = 0.0;
  double category[kNumChoices] = {0.0, 0.0, 0.0};
  double total_votes = 0.0;
  for (const auto& votes : task_votes) {
    if (votes.size() < 2) continue;
    double counts[kNumChoices] = {0.0, 0.0, 0.0};
    for (Ordering v : votes) counts[static_cast<int>(v)] += 1.0;
    const double n = static_cast<double>(votes.size());
    double agree_pairs = 0.0;
    for (int c = 0; c < kNumChoices; ++c) {
      agree_pairs += counts[c] * (counts[c] - 1.0);
      category[c] += counts[c];
    }
    sum_pi += agree_pairs / (n * (n - 1.0));
    total_votes += n;
    eligible += 1.0;
  }
  if (eligible == 0.0) return 1.0;  // Nothing to disagree about.
  const double p_bar = sum_pi / eligible;
  double p_e = 0.0;
  for (int c = 0; c < kNumChoices; ++c) {
    const double p = category[c] / total_votes;
    p_e += p * p;
  }
  // Unanimous single-category rounds make chance agreement total; call
  // that perfect agreement rather than dividing by zero.
  if (1.0 - p_e < 1e-12) return 1.0;
  return std::clamp((p_bar - p_e) / (1.0 - p_e), -1.0, 1.0);
}

// ------------------------------------------------------------------ //
// JointQualityModel
// ------------------------------------------------------------------ //

void JointQualityModel::EnsureWorkers(std::size_t n) {
  if (n <= accuracies_.size()) return;
  work_sum_.resize(n, 0.0);
  vote_counts_.resize(n, 0.0);
  approval_.resize(n, 0.5);
  accuracies_.resize(n, 0.7);
  quarantined_.resize(n, 0);
}

void JointQualityModel::AddTask(const std::vector<VoteRecord>& votes) {
  if (votes.empty()) return;
  std::vector<Vote> stored;
  stored.reserve(votes.size());
  for (const VoteRecord& v : votes) {
    EnsureWorkers(static_cast<std::size_t>(v.worker) + 1);
    stored.push_back({v.worker, v.answer});
    work_sum_[v.worker] += v.work_seconds;
    vote_counts_[v.worker] += 1.0;
  }
  task_votes_.push_back(std::move(stored));
  gold_.push_back(-1);
}

void JointQualityModel::AddGoldTask(const std::vector<VoteRecord>& votes,
                                    Ordering truth) {
  if (votes.empty()) return;
  AddTask(votes);
  gold_.back() = static_cast<std::int8_t>(truth);
}

std::size_t JointQualityModel::gold_tasks() const {
  std::size_t n = 0;
  for (const std::int8_t g : gold_) n += g >= 0 ? 1 : 0;
  return n;
}

std::size_t JointQualityModel::Refresh() {
  if (accuracies_.empty() || task_votes_.empty()) return 0;

  // Dawid-Skene EM, with gold tasks pinned at their known truth. The
  // pins are what keeps a coordinated colluder bloc (perfect mutual
  // agreement) from capturing the consensus: on gold tasks the bloc
  // *must* score as wrong, which drags its weights down everywhere.
  std::vector<double> accuracies(accuracies_.size(), 0.7);

  // Seed the starting weights from gold agreement alone. Pinning the
  // gold tasks is not enough by itself: with flat initial weights a
  // large-enough bloc wins every *unlabeled* task's first E-step, and
  // 52 captured tasks outvote 8 pinned ones in the M-step. Scoring the
  // audits first means the bloc enters the first E-step already
  // discounted.
  {
    std::vector<double> agree(accuracies.size(), 0.0);
    std::vector<double> total(accuracies.size(), 0.0);
    for (std::size_t t = 0; t < task_votes_.size(); ++t) {
      if (gold_[t] < 0) continue;
      const auto truth = static_cast<Ordering>(gold_[t]);
      for (const Vote& v : task_votes_[t]) {
        agree[v.worker] += v.answer == truth ? 1.0 : 0.0;
        total[v.worker] += 1.0;
      }
    }
    for (std::size_t w = 0; w < accuracies.size(); ++w) {
      if (total[w] > 0.0) {
        accuracies[w] = (agree[w] + 1.0) / (total[w] + 2.0);
      }
    }
  }

  std::vector<Ordering> consensus(task_votes_.size(), Ordering::kEqual);
  for (int iter = 0; iter < options_.inference_iterations; ++iter) {
    for (std::size_t t = 0; t < task_votes_.size(); ++t) {
      if (task_votes_[t].empty()) continue;
      if (gold_[t] >= 0) {
        consensus[t] = static_cast<Ordering>(gold_[t]);
        continue;
      }
      std::vector<Ordering> answers;
      std::vector<double> weights;
      answers.reserve(task_votes_[t].size());
      weights.reserve(task_votes_[t].size());
      for (const Vote& v : task_votes_[t]) {
        answers.push_back(v.answer);
        weights.push_back(accuracies[v.worker]);
      }
      const auto voted = WeightedVote(answers, weights);
      if (voted.ok()) consensus[t] = voted.value();
    }
    std::vector<double> agree(accuracies.size(), 0.0);
    std::vector<double> total(accuracies.size(), 0.0);
    for (std::size_t t = 0; t < task_votes_.size(); ++t) {
      for (const Vote& v : task_votes_[t]) {
        agree[v.worker] += v.answer == consensus[t] ? 1.0 : 0.0;
        total[v.worker] += 1.0;
      }
    }
    for (std::size_t w = 0; w < accuracies.size(); ++w) {
      accuracies[w] = (agree[w] + 1.0) / (total[w] + 2.0);
    }
  }
  accuracies_ = std::move(accuracies);

  // Approval rate: smoothed agreement with the final consensus — a
  // worker voting against every settled answer drifts toward zero even
  // if the EM accuracy stays noncommittal.
  std::vector<double> agree(accuracies_.size(), 0.0);
  std::vector<double> total(accuracies_.size(), 0.0);
  for (std::size_t t = 0; t < task_votes_.size(); ++t) {
    for (const Vote& v : task_votes_[t]) {
      agree[v.worker] += v.answer == consensus[t] ? 1.0 : 0.0;
      total[v.worker] += 1.0;
    }
  }
  for (std::size_t w = 0; w < accuracies_.size(); ++w) {
    approval_[w] = (agree[w] + 1.0) / (total[w] + 2.0);
  }

  // Defense gates, latched: once quarantined, always quarantined.
  std::size_t newly_flagged = 0;
  for (std::size_t w = 0; w < accuracies_.size(); ++w) {
    if (quarantined_[w] != 0) continue;
    if (vote_counts_[w] <
        static_cast<double>(options_.min_observations)) {
      continue;
    }
    const double mean_work = work_sum_[w] / vote_counts_[w];
    const bool flag = approval_[w] < options_.min_approval_rate ||
                      mean_work < options_.min_work_seconds ||
                      mean_work > options_.max_work_seconds ||
                      accuracies_[w] < options_.min_accuracy;
    if (flag) {
      quarantined_[w] = 1;
      newly_flagged += 1;
    }
  }
  return newly_flagged;
}

double JointQualityModel::Accuracy(std::size_t worker) const {
  return worker < accuracies_.size() ? accuracies_[worker] : 0.7;
}

double JointQualityModel::ApprovalRate(std::size_t worker) const {
  return worker < approval_.size() ? approval_[worker] : 0.5;
}

double JointQualityModel::MeanWorkSeconds(std::size_t worker) const {
  if (worker >= work_sum_.size() || vote_counts_[worker] <= 0.0) {
    return 0.0;
  }
  return work_sum_[worker] / vote_counts_[worker];
}

std::size_t JointQualityModel::Observations(std::size_t worker) const {
  return worker < vote_counts_.size()
             ? static_cast<std::size_t>(vote_counts_[worker])
             : 0;
}

bool JointQualityModel::Quarantined(std::size_t worker) const {
  return worker < quarantined_.size() && quarantined_[worker] != 0;
}

std::size_t JointQualityModel::quarantined_count() const {
  std::size_t n = 0;
  for (std::uint8_t q : quarantined_) n += q != 0 ? 1 : 0;
  return n;
}

void JointQualityModel::Save(BinWriter* writer) const {
  writer->WriteU64(accuracies_.size());
  for (std::size_t w = 0; w < accuracies_.size(); ++w) {
    writer->WriteDouble(work_sum_[w]);
    writer->WriteDouble(vote_counts_[w]);
    writer->WriteDouble(approval_[w]);
    writer->WriteDouble(accuracies_[w]);
    writer->WriteU8(quarantined_[w]);
  }
  writer->WriteU64(task_votes_.size());
  for (std::size_t t = 0; t < task_votes_.size(); ++t) {
    writer->WriteU32(static_cast<std::uint32_t>(task_votes_[t].size()));
    writer->WriteU8(gold_[t] < 0 ? 0xFF
                                 : static_cast<std::uint8_t>(gold_[t]));
    for (const Vote& v : task_votes_[t]) {
      writer->WriteU32(static_cast<std::uint32_t>(v.worker));
      writer->WriteU8(static_cast<std::uint8_t>(v.answer));
    }
  }
}

Status JointQualityModel::Load(BinReader* reader) {
  std::uint64_t workers = 0;
  BAYESCROWD_RETURN_NOT_OK(
      reader->ReadCount(&workers, /*min_elem_size=*/33));
  const auto n = static_cast<std::size_t>(workers);
  work_sum_.assign(n, 0.0);
  vote_counts_.assign(n, 0.0);
  approval_.assign(n, 0.5);
  accuracies_.assign(n, 0.7);
  quarantined_.assign(n, 0);
  for (std::size_t w = 0; w < n; ++w) {
    BAYESCROWD_RETURN_NOT_OK(reader->ReadDouble(&work_sum_[w]));
    BAYESCROWD_RETURN_NOT_OK(reader->ReadDouble(&vote_counts_[w]));
    BAYESCROWD_RETURN_NOT_OK(reader->ReadDouble(&approval_[w]));
    BAYESCROWD_RETURN_NOT_OK(reader->ReadDouble(&accuracies_[w]));
    std::uint8_t q = 0;
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU8(&q));
    quarantined_[w] = q;
  }
  std::uint64_t tasks = 0;
  BAYESCROWD_RETURN_NOT_OK(reader->ReadCount(&tasks, /*min_elem_size=*/5));
  task_votes_.assign(static_cast<std::size_t>(tasks), {});
  gold_.assign(static_cast<std::size_t>(tasks), -1);
  for (std::size_t t = 0; t < task_votes_.size(); ++t) {
    auto& task = task_votes_[t];
    std::uint32_t count = 0;
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU32(&count));
    std::uint8_t gold = 0xFF;
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU8(&gold));
    if (gold != 0xFF && gold > 2) {
      return Status::InvalidArgument(
          "joint quality model: corrupt gold marker");
    }
    gold_[t] = gold == 0xFF ? -1 : static_cast<std::int8_t>(gold);
    if (count > reader->remaining() / 5) {
      return Status::OutOfRange(
          "joint quality model: vote count exceeds payload");
    }
    task.resize(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      std::uint32_t worker = 0;
      std::uint8_t answer = 0;
      BAYESCROWD_RETURN_NOT_OK(reader->ReadU32(&worker));
      BAYESCROWD_RETURN_NOT_OK(reader->ReadU8(&answer));
      if (worker >= n || answer > 2) {
        return Status::InvalidArgument(
            "joint quality model: corrupt vote record");
      }
      task[i] = {worker, static_cast<Ordering>(answer)};
    }
  }
  return Status::OK();
}

}  // namespace bayescrowd
