// Worker-quality modeling and answer aggregation.
//
// The paper aggregates with plain 3-worker majority voting and notes
// that real marketplaces support recruiting workers above an accuracy
// bar. This module provides the quality toolkit such a deployment
// needs: accuracy-weighted voting, gold-task accuracy tracking, and an
// unsupervised consensus (Dawid-Skene-style EM) estimator.

#ifndef BAYESCROWD_CROWD_QUALITY_H_
#define BAYESCROWD_CROWD_QUALITY_H_

#include <cstdint>
#include <vector>

#include "common/binio.h"
#include "common/result.h"
#include "crowd/task.h"
#include "ctable/knowledge.h"

namespace bayescrowd {

namespace obs {
class Counter;
class MetricsRegistry;
}  // namespace obs

/// Plain majority over triple-choice votes; ties broken toward the
/// first-listed tied option (deterministic).
Ordering MajorityVote(const std::vector<Ordering>& votes);

/// Accuracy-weighted vote: each worker contributes the log-odds of their
/// accuracy under the symmetric 3-choice error model (wrong answers
/// uniform over the other two options). Accuracies are clamped to
/// [0.34, 0.999]; weights and votes must align.
Result<Ordering> WeightedVote(const std::vector<Ordering>& votes,
                              const std::vector<double>& accuracies);

/// Tracks per-worker accuracy from gold tasks (tasks with known
/// answers), with a Beta(2, 1) prior so new workers start optimistic but
/// uncertain.
class WorkerQualityTracker {
 public:
  explicit WorkerQualityTracker(std::size_t num_workers)
      : hits_(num_workers, 0.0), totals_(num_workers, 0.0) {}

  std::size_t num_workers() const { return hits_.size(); }

  /// Records one gold observation for `worker`. An out-of-range worker
  /// index is ignored (counted, never UB).
  void Record(std::size_t worker, bool correct);

  /// Posterior-mean accuracy estimate of `worker`. An out-of-range
  /// worker index returns the prior mean (counted, never UB).
  double Accuracy(std::size_t worker) const;

  /// Out-of-range worker indices seen by Record/Accuracy. Mirrored into
  /// the `crowd.quality.bad_worker_id` counter when bound.
  std::uint64_t bad_worker_events() const { return bad_worker_events_; }

  /// Mirrors bad-worker-id events into `crowd.quality.bad_worker_id` in
  /// `registry` (pass nullptr to unbind).
  void BindMetrics(obs::MetricsRegistry* registry);

  /// Estimates for all workers.
  std::vector<double> Accuracies() const;

  /// Raw gold counters, for checkpointing.
  const std::vector<double>& hits() const { return hits_; }
  const std::vector<double>& totals() const { return totals_; }

  /// Overwrites the counters with checkpointed values.
  Status RestoreCounts(std::vector<double> hits,
                       std::vector<double> totals) {
    if (hits.size() != hits_.size() || totals.size() != totals_.size()) {
      return Status::InvalidArgument(
          "quality tracker: checkpointed worker count mismatch");
    }
    hits_ = std::move(hits);
    totals_ = std::move(totals);
    return Status::OK();
  }

 private:
  std::vector<double> hits_;
  std::vector<double> totals_;
  mutable std::uint64_t bad_worker_events_ = 0;
  obs::Counter* bad_worker_counter_ = nullptr;
};

/// One worker's vote on one task.
struct Vote {
  std::size_t worker = 0;
  Ordering answer = Ordering::kEqual;
};

/// Unsupervised accuracy estimation from redundant votes (simplified
/// Dawid-Skene): iterate between (i) consensus answers via
/// accuracy-weighted voting and (ii) per-worker accuracy as smoothed
/// agreement with the consensus. `task_votes[t]` holds the votes on task
/// t. Returns per-worker accuracies (workers indexed 0..num_workers-1).
Result<std::vector<double>> EstimateAccuraciesByConsensus(
    const std::vector<std::vector<Vote>>& task_votes,
    std::size_t num_workers, int iterations = 10);

/// Fleiss' kappa over one round's vote sets (generalized to unequal
/// vote counts per task; tasks with fewer than two votes are skipped).
/// 1.0 = perfect agreement, 0 = chance-level, negative = systematic
/// disagreement. Degenerate inputs (no multi-vote task, or all votes in
/// one category so chance agreement is total) return 1.0. The round loop
/// uses a per-round drop as a crowd-collapse detector: a spam storm
/// drags agreement toward chance even when each task still "resolves".
double FleissKappa(const std::vector<std::vector<Ordering>>& task_votes);

/// Gates and thresholds for the marketplace spam defense. The
/// approval-rate and work-time filters mirror the qualification
/// predicates real marketplaces attach to HITs (lifetime approval rate,
/// implausibly fast submit times); the accuracy floor comes from the
/// joint Dawid-Skene estimate.
struct WorkerDefenseOptions {
  /// Minimum smoothed agreement-with-consensus before a worker with
  /// enough observations is flagged.
  double min_approval_rate = 0.5;

  /// Mean per-task work time outside [min, max] seconds flags the
  /// worker (too fast = click-through spam, too slow = abandoned HITs).
  double min_work_seconds = 5.0;
  double max_work_seconds = 3600.0;

  /// Estimated accuracy below this flags the worker.
  double min_accuracy = 0.45;

  /// Votes a worker must have contributed before any gate may flag
  /// them — new arrivals are never quarantined on a first impression.
  std::size_t min_observations = 8;

  /// EM iterations per Refresh().
  int inference_iterations = 10;
};

/// Joint worker-quality inference over *all* accumulated votes (not
/// just gold tasks): each Refresh() re-runs the Dawid-Skene consensus
/// estimator, recomputes per-worker approval rates and mean work times,
/// and latches quarantine flags for workers failing the defense gates.
/// Quarantine is sticky — once flagged, a worker stays flagged for the
/// session (mirroring the serve layer's poison-session registry) — and
/// the whole model rides the platform checkpoint chunk so resumed runs
/// keep their learned reputations.
class JointQualityModel {
 public:
  explicit JointQualityModel(WorkerDefenseOptions options = {})
      : options_(options) {}

  const WorkerDefenseOptions& options() const { return options_; }

  /// Grows the worker table to cover ids [0, n). Shrinking is a no-op.
  void EnsureWorkers(std::size_t n);
  std::size_t num_workers() const { return accuracies_.size(); }

  /// Accumulates one task's votes. Votes from ids beyond the current
  /// worker table grow it implicitly.
  void AddTask(const std::vector<VoteRecord>& votes);

  /// Like AddTask, but the task's true answer is known (an operator
  /// audit / pre-labeled gold comparison). Gold tasks pin the EM
  /// consensus at the truth, anchoring the joint inference: without
  /// them a perfectly coordinated colluder bloc (100% mutual
  /// agreement) can capture the consensus and invert every accuracy
  /// estimate, quarantining the honest majority instead.
  void AddGoldTask(const std::vector<VoteRecord>& votes, Ordering truth);

  /// Tasks added via AddGoldTask.
  std::size_t gold_tasks() const;

  /// Re-runs joint inference and the defense gates over everything
  /// accumulated so far. Returns the number of *newly* quarantined
  /// workers this call.
  std::size_t Refresh();

  /// Latest estimated accuracy (prior 0.7 before any Refresh sees the
  /// worker). Out-of-range ids return the prior.
  double Accuracy(std::size_t worker) const;

  /// Latest smoothed agreement-with-consensus (prior 0.5 when unseen).
  double ApprovalRate(std::size_t worker) const;

  /// Mean work time in seconds (0 when unseen).
  double MeanWorkSeconds(std::size_t worker) const;

  /// Total votes contributed by `worker`.
  std::size_t Observations(std::size_t worker) const;

  bool Quarantined(std::size_t worker) const;
  std::size_t quarantined_count() const;
  std::size_t tasks_accumulated() const { return task_votes_.size(); }

  /// Checkpoint serialization (embedded in the owning platform's state
  /// chunk; no tag of its own).
  void Save(BinWriter* writer) const;
  Status Load(BinReader* reader);

 private:
  WorkerDefenseOptions options_;
  std::vector<std::vector<Vote>> task_votes_;
  // Parallel to task_votes_: -1 = unlabeled, else the known true
  // Ordering that pins the task's consensus during EM.
  std::vector<std::int8_t> gold_;
  std::vector<double> work_sum_;
  std::vector<double> vote_counts_;
  std::vector<double> approval_;
  std::vector<double> accuracies_;
  std::vector<std::uint8_t> quarantined_;
};

}  // namespace bayescrowd

#endif  // BAYESCROWD_CROWD_QUALITY_H_
