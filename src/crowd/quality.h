// Worker-quality modeling and answer aggregation.
//
// The paper aggregates with plain 3-worker majority voting and notes
// that real marketplaces support recruiting workers above an accuracy
// bar. This module provides the quality toolkit such a deployment
// needs: accuracy-weighted voting, gold-task accuracy tracking, and an
// unsupervised consensus (Dawid-Skene-style EM) estimator.

#ifndef BAYESCROWD_CROWD_QUALITY_H_
#define BAYESCROWD_CROWD_QUALITY_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "ctable/knowledge.h"

namespace bayescrowd {

/// Plain majority over triple-choice votes; ties broken toward the
/// first-listed tied option (deterministic).
Ordering MajorityVote(const std::vector<Ordering>& votes);

/// Accuracy-weighted vote: each worker contributes the log-odds of their
/// accuracy under the symmetric 3-choice error model (wrong answers
/// uniform over the other two options). Accuracies are clamped to
/// [0.34, 0.999]; weights and votes must align.
Result<Ordering> WeightedVote(const std::vector<Ordering>& votes,
                              const std::vector<double>& accuracies);

/// Tracks per-worker accuracy from gold tasks (tasks with known
/// answers), with a Beta(2, 1) prior so new workers start optimistic but
/// uncertain.
class WorkerQualityTracker {
 public:
  explicit WorkerQualityTracker(std::size_t num_workers)
      : hits_(num_workers, 0.0), totals_(num_workers, 0.0) {}

  std::size_t num_workers() const { return hits_.size(); }

  /// Records one gold observation for `worker`.
  void Record(std::size_t worker, bool correct);

  /// Posterior-mean accuracy estimate of `worker`.
  double Accuracy(std::size_t worker) const;

  /// Estimates for all workers.
  std::vector<double> Accuracies() const;

  /// Raw gold counters, for checkpointing.
  const std::vector<double>& hits() const { return hits_; }
  const std::vector<double>& totals() const { return totals_; }

  /// Overwrites the counters with checkpointed values.
  Status RestoreCounts(std::vector<double> hits,
                       std::vector<double> totals) {
    if (hits.size() != hits_.size() || totals.size() != totals_.size()) {
      return Status::InvalidArgument(
          "quality tracker: checkpointed worker count mismatch");
    }
    hits_ = std::move(hits);
    totals_ = std::move(totals);
    return Status::OK();
  }

 private:
  std::vector<double> hits_;
  std::vector<double> totals_;
};

/// One worker's vote on one task.
struct Vote {
  std::size_t worker = 0;
  Ordering answer = Ordering::kEqual;
};

/// Unsupervised accuracy estimation from redundant votes (simplified
/// Dawid-Skene): iterate between (i) consensus answers via
/// accuracy-weighted voting and (ii) per-worker accuracy as smoothed
/// agreement with the consensus. `task_votes[t]` holds the votes on task
/// t. Returns per-worker accuracies (workers indexed 0..num_workers-1).
Result<std::vector<double>> EstimateAccuraciesByConsensus(
    const std::vector<std::vector<Vote>>& task_votes,
    std::size_t num_workers, int iterations = 10);

}  // namespace bayescrowd

#endif  // BAYESCROWD_CROWD_QUALITY_H_
