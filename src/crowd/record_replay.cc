#include "crowd/record_replay.h"

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string_view>

#include "common/string_util.h"

namespace bayescrowd {
namespace {

char RelationChar(Ordering o) {
  switch (o) {
    case Ordering::kLess:
      return 'l';
    case Ordering::kEqual:
      return 'e';
    case Ordering::kGreater:
      return 'g';
  }
  return '?';
}

bool ParseRelation(const std::string& text, Ordering* out) {
  if (text == "l") {
    *out = Ordering::kLess;
  } else if (text == "e") {
    *out = Ordering::kEqual;
  } else if (text == "g") {
    *out = Ordering::kGreater;
  } else {
    return false;
  }
  return true;
}

// One v3 vote token: `<worker>:<relation char>:<work_ms>`. Work times
// are written as integer milliseconds so a parse → serialize round trip
// is byte-identical (the marketplace quantizes to 1ms).
bool ParseVoteToken(const std::string& token, VoteRecord* out) {
  const std::size_t c1 = token.find(':');
  if (c1 == std::string::npos) return false;
  const std::size_t c2 = token.find(':', c1 + 1);
  if (c2 == std::string::npos || c2 == token.size() - 1) return false;
  Ordering relation = Ordering::kEqual;
  if (!ParseRelation(token.substr(c1 + 1, c2 - c1 - 1), &relation)) {
    return false;
  }
  const auto parse_digits = [](std::string_view text,
                               std::uint64_t* value) {
    if (text.empty() || text.size() > 18) return false;
    *value = 0;
    for (char c : text) {
      if (c < '0' || c > '9') return false;
      *value = *value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return true;
  };
  std::uint64_t worker = 0;
  std::uint64_t ms = 0;
  const std::string_view view(token);
  if (!parse_digits(view.substr(0, c1), &worker) ||
      worker > 0xFFFFFFFFull ||
      !parse_digits(view.substr(c2 + 1), &ms)) {
    return false;
  }
  out->worker = static_cast<std::uint32_t>(worker);
  out->answer = relation;
  out->work_seconds = static_cast<double>(ms) / 1000.0;
  return true;
}

}  // namespace

std::string SerializeAnswerLogEntry(const AnswerLogEntry& entry) {
  std::ostringstream out;
  if (entry.kind == AnswerLogEntry::Kind::kFailure) {
    out << "fail " << entry.round << "\n";
    return out.str();
  }
  const Expression& e = entry.expression;
  const char op = e.op == CmpOp::kGreater ? '>' : '<';
  if (e.rhs_is_var) {
    out << "vv " << e.lhs.object << " " << e.lhs.attribute << " " << op
        << " " << e.rhs_var.object << " " << e.rhs_var.attribute;
  } else {
    out << "vc " << e.lhs.object << " " << e.lhs.attribute << " " << op
        << " " << e.rhs_const;
  }
  const char relation = entry.kind == AnswerLogEntry::Kind::kAbstain
                            ? 'a'
                            : RelationChar(entry.relation);
  out << " " << relation << " " << entry.round;
  for (const VoteRecord& vote : entry.votes) {
    out << " " << vote.worker << ":" << RelationChar(vote.answer) << ":"
        << static_cast<std::uint64_t>(
               std::llround(vote.work_seconds * 1000.0));
  }
  out << "\n";
  return out.str();
}

std::string SerializeAnswerLog(const AnswerLog& log) {
  std::string out = "# bayescrowd answer log v3\n";
  for (const AnswerLogEntry& entry : log.entries) {
    out += SerializeAnswerLogEntry(entry);
  }
  return out;
}

Result<AnswerLog> ParseAnswerLog(const std::string& text) {
  AnswerLog log;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const auto trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::istringstream fields{std::string(trimmed)};
    std::string kind;
    fields >> kind;
    AnswerLogEntry entry;
    std::string op;
    std::string relation;
    bool parsed = false;
    if (kind == "fail") {
      if (!(fields >> entry.round)) {
        return Status::InvalidArgument("answer log: malformed line '" +
                                       std::string(trimmed) + "'");
      }
      entry.kind = AnswerLogEntry::Kind::kFailure;
      log.entries.push_back(entry);
      continue;
    }
    if (kind == "vc") {
      Level constant = 0;
      parsed = static_cast<bool>(
          fields >> entry.expression.lhs.object >>
          entry.expression.lhs.attribute >> op >> constant >> relation >>
          entry.round);
      entry.expression.rhs_is_var = false;
      entry.expression.rhs_const = constant;
    } else if (kind == "vv") {
      parsed = static_cast<bool>(
          fields >> entry.expression.lhs.object >>
          entry.expression.lhs.attribute >> op >>
          entry.expression.rhs_var.object >>
          entry.expression.rhs_var.attribute >> relation >> entry.round);
      entry.expression.rhs_is_var = true;
    } else {
      return Status::InvalidArgument("answer log: unknown entry '" +
                                     std::string(trimmed) + "'");
    }
    if (!parsed || (op != "<" && op != ">")) {
      return Status::InvalidArgument("answer log: malformed line '" +
                                     std::string(trimmed) + "'");
    }
    if (relation == "a") {
      entry.kind = AnswerLogEntry::Kind::kAbstain;
    } else if (!ParseRelation(relation, &entry.relation)) {
      return Status::InvalidArgument("answer log: malformed line '" +
                                     std::string(trimmed) + "'");
    }
    entry.expression.op = op == ">" ? CmpOp::kGreater : CmpOp::kLess;
    // v3 vote tokens, if any, trail the round.
    std::string token;
    while (fields >> token) {
      VoteRecord vote;
      if (!ParseVoteToken(token, &vote)) {
        return Status::InvalidArgument("answer log: malformed vote '" +
                                       token + "' in line '" +
                                       std::string(trimmed) + "'");
      }
      entry.votes.push_back(vote);
    }
    log.entries.push_back(entry);
  }
  return log;
}

Status SaveAnswerLog(const AnswerLog& log, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << SerializeAnswerLog(log);
  if (!out) return Status::IOError("write to " + path + " failed");
  return Status::OK();
}

Result<AnswerLog> LoadAnswerLog(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseAnswerLog(buffer.str());
}

Result<AnswerLog> LoadAnswerLogTolerant(const std::string& path,
                                        bool* dropped_torn_tail) {
  *dropped_torn_tail = false;
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();

  // A crash mid-append leaves a final line without its newline (or with
  // garbage after the last complete line). Everything up to the last
  // newline was durably flushed in whole-batch units.
  if (!text.empty() && text.back() != '\n') {
    const std::size_t last_newline = text.rfind('\n');
    text.resize(last_newline == std::string::npos ? 0 : last_newline + 1);
    *dropped_torn_tail = true;
  }
  Result<AnswerLog> parsed = ParseAnswerLog(text);
  if (parsed.ok()) return parsed;

  // A torn write can also leave a complete-looking but truncated final
  // line. Retry once without it; corruption anywhere else stays fatal.
  const std::size_t cut = text.find_last_of('\n', text.size() - 2);
  std::string trimmed =
      text.substr(0, cut == std::string::npos ? 0 : cut + 1);
  Result<AnswerLog> retried = ParseAnswerLog(trimmed);
  if (!retried.ok()) return parsed.status();
  *dropped_torn_tail = true;
  return retried;
}

Result<std::unique_ptr<FileAnswerLogSink>> FileAnswerLogSink::Open(
    const std::string& path, std::size_t already_durable, bool truncate,
    FileIo* io) {
  if (io == nullptr) io = RealFileIo();
  BAYESCROWD_ASSIGN_OR_RETURN(std::unique_ptr<AppendFile> file,
                              io->OpenAppend(path, truncate));
  BAYESCROWD_ASSIGN_OR_RETURN(const std::uint64_t size, file->Size());
  if (size == 0) {
    BAYESCROWD_RETURN_NOT_OK(file->Append("# bayescrowd answer log v3\n"));
    BAYESCROWD_RETURN_NOT_OK(file->Sync());
  }
  return std::unique_ptr<FileAnswerLogSink>(
      new FileAnswerLogSink(std::move(file), already_durable));
}

Status FileAnswerLogSink::Append(
    const std::vector<AnswerLogEntry>& entries) {
  std::string block;
  for (const AnswerLogEntry& entry : entries) {
    if (skip_remaining_ > 0) {
      --skip_remaining_;
      continue;
    }
    block += SerializeAnswerLogEntry(entry);
  }
  if (block.empty()) return Status::OK();
  BAYESCROWD_RETURN_NOT_OK(file_->Append(block));
  return file_->Sync();
}

Result<std::vector<TaskAnswer>> RecordingPlatform::PostBatch(
    const std::vector<Task>& tasks) {
  auto posted = inner_.PostBatch(tasks);
  if (!posted.ok()) {
    // Transient failures are part of the transcript: replaying them
    // drives the framework through the identical retry/backoff path.
    // Fatal errors are not recorded — a resumed query re-hits them.
    if (posted.status().IsUnavailable()) {
      AnswerLogEntry entry;
      entry.kind = AnswerLogEntry::Kind::kFailure;
      entry.round = inner_.total_rounds() + 1;  // The round being retried.
      log_.entries.push_back(entry);
      if (sink_ != nullptr) {
        BAYESCROWD_RETURN_NOT_OK(sink_->Append({entry}));
      }
    }
    return posted.status();
  }
  const std::vector<TaskAnswer>& answers = posted.value();
  std::vector<AnswerLogEntry> batch;
  batch.reserve(tasks.size());
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    AnswerLogEntry entry;
    entry.kind = answers[t].answered ? AnswerLogEntry::Kind::kAnswer
                                     : AnswerLogEntry::Kind::kAbstain;
    entry.expression = tasks[t].expression;
    entry.relation = answers[t].relation;
    entry.round = inner_.total_rounds();
    entry.votes = answers[t].votes;
    log_.entries.push_back(entry);
    batch.push_back(entry);
  }
  if (sink_ != nullptr) {
    BAYESCROWD_RETURN_NOT_OK(sink_->Append(batch));
  }
  return posted;
}

Result<std::vector<TaskAnswer>> ReplayingPlatform::PostBatch(
    const std::vector<Task>& tasks) {
  if (tasks.empty()) return Status::InvalidArgument("empty batch");

  // A failure marker at the batch boundary replays a whole-batch
  // transient error: the framework retried this batch in the recorded
  // session and will retry it again now.
  if (cursor_ < log_.entries.size() &&
      log_.entries[cursor_].kind == AnswerLogEntry::Kind::kFailure) {
    ++cursor_;
    // Keep the live platform's schedule aligned: the recorded session
    // drew this failure from its fault stream.
    if (fallback_ != nullptr) fallback_->SyncReplayed(tasks, false);
    return Status::Unavailable("replayed transient platform failure");
  }

  // Replay prefix: serve from the transcript while it matches. A batch
  // may straddle the log boundary (the recorded session's final round
  // was trimmed by its smaller budget), in which case the matching
  // prefix comes from the log and the rest goes live.
  std::vector<TaskAnswer> answers;
  answers.reserve(tasks.size());
  std::size_t served = 0;
  while (served < tasks.size() && cursor_ < log_.entries.size()) {
    const AnswerLogEntry& entry = log_.entries[cursor_];
    if (entry.kind == AnswerLogEntry::Kind::kFailure) {
      // Attempts are whole batches, so a marker can only sit between
      // them; hitting one mid-batch means the resumed query's batching
      // diverged from the recorded session.
      return Status::FailedPrecondition(StrFormat(
          "resumed query hit a mid-batch failure marker at entry %zu",
          cursor_));
    }
    if (!(entry.expression == tasks[served].expression)) {
      return Status::FailedPrecondition(StrFormat(
          "resumed query diverged from the recorded transcript at "
          "entry %zu",
          cursor_));
    }
    TaskAnswer answer;
    answer.relation = entry.relation;
    answer.answered = entry.kind == AnswerLogEntry::Kind::kAnswer;
    answer.votes = entry.votes;
    answers.push_back(answer);
    ++cursor_;
    ++served;
  }

  // Mirror the replayed prefix's draws on the live platform so its RNG
  // streams reach the recorded session's position by the time the log
  // is exhausted. (If a torn log splits a batch, the prefix sync plus
  // the live tail below draw two batch-level schedules where the
  // recorded run drew one — accepted: the resumed session is
  // self-consistent from here on, just not bit-identical to the
  // uninterrupted one. Whole-batch appends make this unreachable
  // outside deliberate mid-batch log corruption.)
  if (served > 0 && fallback_ != nullptr) {
    const std::vector<Task> prefix(
        tasks.begin(),
        tasks.begin() + static_cast<std::ptrdiff_t>(served));
    fallback_->SyncReplayed(prefix, true);
  }

  if (served < tasks.size()) {
    // Live tail.
    if (fallback_ == nullptr) {
      return Status::FailedPrecondition(
          "answer log exhausted and no live platform attached");
    }
    const std::vector<Task> tail(tasks.begin() +
                                     static_cast<std::ptrdiff_t>(served),
                                 tasks.end());
    BAYESCROWD_ASSIGN_OR_RETURN(const std::vector<TaskAnswer> live,
                                fallback_->PostBatch(tail));
    answers.insert(answers.end(), live.begin(), live.end());
  }
  total_tasks_ += tasks.size();
  ++total_rounds_;
  return answers;
}

}  // namespace bayescrowd
