// Recording and replaying crowd answers: pause/resume for crowd
// queries.
//
// BayesCrowd is deterministic given its options, so re-running a query
// over a replay of the already-bought answers reconstructs the session
// state exactly, after which a live platform takes over. This gives
// resumable (even across-process) crowdsourcing without any framework
// state serialization — particularly useful with the interactive
// platform, where a human may walk away mid-query.
//
//   RecordingPlatform rec(live);            // First session.
//   framework.Run(data, posteriors, rec);
//   SaveAnswerLog(rec.log(), "answers.log");
//
//   auto log = LoadAnswerLog("answers.log");  // Later session.
//   ReplayingPlatform replay(log.value(), &live);
//   framework.Run(data, posteriors, replay);  // Replays, then continues.

#ifndef BAYESCROWD_CROWD_RECORD_REPLAY_H_
#define BAYESCROWD_CROWD_RECORD_REPLAY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "crowd/platform.h"

namespace bayescrowd {

/// One crowd event: a bought answer, an abstained (unanswered) task, or
/// a whole-batch transient failure. Abstains and failures are recorded
/// so a replayed faulted run walks the exact recovery path of the
/// original — retries, refunds, degradation and all.
struct AnswerLogEntry {
  enum class Kind : std::uint8_t {
    kAnswer,   // expression + relation are meaningful.
    kAbstain,  // expression is meaningful; the task came back unanswered.
    kFailure,  // whole-batch transient failure; only `round` is set.
  };

  Kind kind = Kind::kAnswer;
  Expression expression;
  Ordering relation = Ordering::kEqual;
  std::size_t round = 0;  // 1-based round the event arrived in.
};

/// The transcript of a crowdsourcing phase.
struct AnswerLog {
  std::vector<AnswerLogEntry> entries;
};

/// Text (de)serialization. Format, one entry per line:
///   vc <obj> <attr> <op: < or >> <const> <relation: l|e|g|a> <round>
///   vv <obj> <attr> <op> <obj2> <attr2> <relation> <round>
///   fail <round>
/// Relation `a` marks an abstained (unanswered) task; a `fail` line
/// marks a transient whole-batch failure. v1 logs (answers only) parse
/// unchanged.
std::string SerializeAnswerLog(const AnswerLog& log);
Result<AnswerLog> ParseAnswerLog(const std::string& text);
Status SaveAnswerLog(const AnswerLog& log, const std::string& path);
Result<AnswerLog> LoadAnswerLog(const std::string& path);

/// Wraps a live platform and transcribes everything it answers.
class RecordingPlatform : public CrowdPlatform {
 public:
  explicit RecordingPlatform(CrowdPlatform& inner) : inner_(inner) {}

  Result<std::vector<TaskAnswer>> PostBatch(
      const std::vector<Task>& tasks) override;

  std::size_t total_tasks() const override { return inner_.total_tasks(); }
  std::size_t total_rounds() const override {
    return inner_.total_rounds();
  }

  const AnswerLog& log() const { return log_; }

 private:
  CrowdPlatform& inner_;
  AnswerLog log_;
};

/// Serves answers from a log as long as the asked tasks match the
/// transcript in order; once the log is exhausted, delegates to
/// `fallback` (if null, live tasks fail with FailedPrecondition). A
/// batch may straddle the boundary — matching prefix from the log, the
/// rest live. A task that diverges from the transcript mid-log is an
/// error: the query being resumed differs from the recorded one.
class ReplayingPlatform : public CrowdPlatform {
 public:
  ReplayingPlatform(AnswerLog log, CrowdPlatform* fallback)
      : log_(std::move(log)), fallback_(fallback) {}

  Result<std::vector<TaskAnswer>> PostBatch(
      const std::vector<Task>& tasks) override;

  std::size_t total_tasks() const override { return total_tasks_; }
  std::size_t total_rounds() const override { return total_rounds_; }

  /// Entries served from the log so far.
  std::size_t replayed() const { return cursor_; }

 private:
  AnswerLog log_;
  CrowdPlatform* fallback_;
  std::size_t cursor_ = 0;
  std::size_t total_tasks_ = 0;
  std::size_t total_rounds_ = 0;
};

}  // namespace bayescrowd

#endif  // BAYESCROWD_CROWD_RECORD_REPLAY_H_
