// Recording and replaying crowd answers: pause/resume for crowd
// queries.
//
// BayesCrowd is deterministic given its options, so re-running a query
// over a replay of the already-bought answers reconstructs the session
// state exactly, after which a live platform takes over. This gives
// resumable (even across-process) crowdsourcing without any framework
// state serialization — particularly useful with the interactive
// platform, where a human may walk away mid-query.
//
//   RecordingPlatform rec(live);            // First session.
//   framework.Run(data, posteriors, rec);
//   SaveAnswerLog(rec.log(), "answers.log");
//
//   auto log = LoadAnswerLog("answers.log");  // Later session.
//   ReplayingPlatform replay(log.value(), &live);
//   framework.Run(data, posteriors, replay);  // Replays, then continues.

#ifndef BAYESCROWD_CROWD_RECORD_REPLAY_H_
#define BAYESCROWD_CROWD_RECORD_REPLAY_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/fileio.h"
#include "common/result.h"
#include "crowd/platform.h"

namespace bayescrowd {

/// One crowd event: a bought answer, an abstained (unanswered) task, or
/// a whole-batch transient failure. Abstains and failures are recorded
/// so a replayed faulted run walks the exact recovery path of the
/// original — retries, refunds, degradation and all.
struct AnswerLogEntry {
  enum class Kind : std::uint8_t {
    kAnswer,   // expression + relation are meaningful.
    kAbstain,  // expression is meaningful; the task came back unanswered.
    kFailure,  // whole-batch transient failure; only `round` is set.
  };

  Kind kind = Kind::kAnswer;
  Expression expression;
  Ordering relation = Ordering::kEqual;
  std::size_t round = 0;  // 1-based round the event arrived in.

  /// Per-vote provenance (log format v3): worker id, raw answer, and
  /// work time for every vote bought on the task. Empty for platforms
  /// that only report aggregates and for v1/v2 logs.
  std::vector<VoteRecord> votes;
};

/// The transcript of a crowdsourcing phase.
struct AnswerLog {
  std::vector<AnswerLogEntry> entries;
};

/// Text (de)serialization. Format, one entry per line:
///   vc <obj> <attr> <op: < or >> <const> <relation: l|e|g|a> <round> [vote...]
///   vv <obj> <attr> <op> <obj2> <attr2> <relation> <round> [vote...]
///   fail <round>
/// Relation `a` marks an abstained (unanswered) task; a `fail` line
/// marks a transient whole-batch failure. Each optional vote token (log
/// format v3) is `<worker>:<relation: l|e|g>:<work_ms>` — the raw
/// per-worker vote and its integer-millisecond work time, in the order
/// the votes were bought. v1 logs (answers only) and v2 logs (no vote
/// tokens) parse unchanged.
std::string SerializeAnswerLogEntry(const AnswerLogEntry& entry);
std::string SerializeAnswerLog(const AnswerLog& log);
Result<AnswerLog> ParseAnswerLog(const std::string& text);
Status SaveAnswerLog(const AnswerLog& log, const std::string& path);
Result<AnswerLog> LoadAnswerLog(const std::string& path);

/// Like LoadAnswerLog, but tolerates the one corruption an interrupted
/// append can produce: a torn final line. The torn line is dropped and
/// reported through `dropped_torn_tail` (never null); malformed lines
/// anywhere else remain hard errors.
Result<AnswerLog> LoadAnswerLogTolerant(const std::string& path,
                                        bool* dropped_torn_tail);

/// Receives every recorded entry for durable storage as it is bought,
/// so the answer log on disk is always current up to the last delivered
/// batch — the checkpoint subsystem's replay source.
class AnswerLogSink {
 public:
  virtual ~AnswerLogSink() = default;

  /// Appends one batch's entries durably (flushed before returning).
  virtual Status Append(const std::vector<AnswerLogEntry>& entries) = 0;
};

/// Appends entries to a v3 answer-log file, fflush+fsync per batch. The
/// first `already_durable` entries offered are skipped — on resume the
/// recorder re-records the replayed transcript, which is already in the
/// file.
class FileAnswerLogSink : public AnswerLogSink {
 public:
  /// Opens `path` for appending (`truncate` starts a fresh log). The
  /// header line is written if the file is new or truncated. All writes
  /// flow through `io` (null = the real filesystem), so an injected
  /// ENOSPC/fsync failure surfaces as an IOError carrying the log path
  /// instead of a silent truncation.
  static Result<std::unique_ptr<FileAnswerLogSink>> Open(
      const std::string& path, std::size_t already_durable, bool truncate,
      FileIo* io = nullptr);

  ~FileAnswerLogSink() override = default;
  FileAnswerLogSink(const FileAnswerLogSink&) = delete;
  FileAnswerLogSink& operator=(const FileAnswerLogSink&) = delete;

  Status Append(const std::vector<AnswerLogEntry>& entries) override;

 private:
  FileAnswerLogSink(std::unique_ptr<AppendFile> file,
                    std::size_t skip_remaining)
      : file_(std::move(file)), skip_remaining_(skip_remaining) {}

  std::unique_ptr<AppendFile> file_;
  std::size_t skip_remaining_;
};

/// Wraps a live platform and transcribes everything it answers.
class RecordingPlatform : public CrowdPlatform {
 public:
  /// `sink` (optional, non-owning) durably persists every entry as it
  /// is recorded; a sink failure fails the PostBatch.
  explicit RecordingPlatform(CrowdPlatform& inner,
                             AnswerLogSink* sink = nullptr)
      : inner_(inner), sink_(sink) {}

  Result<std::vector<TaskAnswer>> PostBatch(
      const std::vector<Task>& tasks) override;

  std::size_t total_tasks() const override { return inner_.total_tasks(); }
  std::size_t total_rounds() const override {
    return inner_.total_rounds();
  }

  void SaveState(std::string* out) const override {
    inner_.SaveState(out);
  }
  Status LoadState(BinReader* reader) override {
    return inner_.LoadState(reader);
  }
  void SyncReplayed(const std::vector<Task>& tasks,
                    bool delivered) override {
    inner_.SyncReplayed(tasks, delivered);
  }

  const AnswerLog& log() const { return log_; }

 private:
  CrowdPlatform& inner_;
  AnswerLogSink* sink_;
  AnswerLog log_;
};

/// Serves answers from a log as long as the asked tasks match the
/// transcript in order; once the log is exhausted, delegates to
/// `fallback` (if null, live tasks fail with FailedPrecondition). A
/// batch may straddle the boundary — matching prefix from the log, the
/// rest live. A task that diverges from the transcript mid-log is an
/// error: the query being resumed differs from the recorded one.
class ReplayingPlatform : public CrowdPlatform {
 public:
  ReplayingPlatform(AnswerLog log, CrowdPlatform* fallback)
      : log_(std::move(log)), fallback_(fallback) {}

  Result<std::vector<TaskAnswer>> PostBatch(
      const std::vector<Task>& tasks) override;

  std::size_t total_tasks() const override { return total_tasks_; }
  std::size_t total_rounds() const override { return total_rounds_; }

  void SaveState(std::string* out) const override {
    if (fallback_ != nullptr) fallback_->SaveState(out);
  }
  Status LoadState(BinReader* reader) override {
    return fallback_ != nullptr ? fallback_->LoadState(reader)
                                : Status::OK();
  }

  /// Seeds the totals with the checkpointed session's counts, so
  /// replayed and live rounds continue the recorded numbering (the
  /// recorder stamps entries with these rounds).
  void SetBaseTotals(std::size_t tasks, std::size_t rounds) {
    total_tasks_ = tasks;
    total_rounds_ = rounds;
  }

  /// Entries served from the log so far.
  std::size_t replayed() const { return cursor_; }

 private:
  AnswerLog log_;
  CrowdPlatform* fallback_;
  std::size_t cursor_ = 0;
  std::size_t total_tasks_ = 0;
  std::size_t total_rounds_ = 0;
};

}  // namespace bayescrowd

#endif  // BAYESCROWD_CROWD_RECORD_REPLAY_H_
