#include "crowd/task.h"

#include "common/string_util.h"

namespace bayescrowd {

std::string Task::QuestionText(const Table& table) const {
  const auto var_text = [&table](const CellRef& v) {
    return StrFormat("the %s of %s",
                     table.schema().attribute(v.attribute).name.c_str(),
                     table.object_name(v.object).c_str());
  };
  const std::string lhs = var_text(expression.lhs);
  const std::string rhs =
      expression.rhs_is_var
          ? var_text(expression.rhs_var)
          : StrFormat("%d", expression.rhs_const);
  return StrFormat("Is %s larger than, smaller than, or equal to %s?",
                   lhs.c_str(), rhs.c_str());
}

bool TasksConflict(const Task& a, const Task& b) {
  for (const CellRef& va : a.expression.Variables()) {
    for (const CellRef& vb : b.expression.Variables()) {
      if (va == vb) return true;
    }
  }
  return false;
}

bool ConflictsWithBatch(const Task& task, const std::vector<Task>& batch) {
  for (const Task& other : batch) {
    if (TasksConflict(task, other)) return true;
  }
  return false;
}

}  // namespace bayescrowd
