// Crowd tasks: triple-choice questions about one expression.
//
// "For an expression Var(o5,a2) < 2, the corresponding task is to ask:
// is the variable Var(o5,a2) larger than, or smaller than, or equal
// to 2?" The answer is therefore an Ordering of the expression's left
// operand relative to its right operand — strictly more informative
// than a boolean for the expression itself.

#ifndef BAYESCROWD_CROWD_TASK_H_
#define BAYESCROWD_CROWD_TASK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ctable/expression.h"
#include "ctable/knowledge.h"
#include "data/table.h"

namespace bayescrowd {

/// One unit of crowd work.
struct Task {
  Expression expression;

  /// The object whose condition this task was selected from (for
  /// bookkeeping/diagnostics; not used by the platform).
  std::size_t source_object = 0;

  /// Human-readable question text.
  std::string QuestionText(const Table& table) const;
};

/// One worker's contribution to a task: who answered, what they said,
/// and how long they worked (simulated seconds, quantized to whole
/// milliseconds so answer logs round-trip byte-identically).
struct VoteRecord {
  std::uint32_t worker = 0;
  Ordering answer = Ordering::kEqual;
  double work_seconds = 0.0;
};

/// The aggregated (majority-vote) answer to one task.
struct TaskAnswer {
  /// Relation of the expression's left operand to its right operand.
  Ordering relation = Ordering::kEqual;

  /// False when the task came back unanswered (worker timeout, abstain,
  /// dropped from a partial batch). `relation` is then meaningless; the
  /// framework refunds the task's cost and returns it to the candidate
  /// pool.
  bool answered = true;

  /// Per-vote provenance (worker id, raw answer, work time). Empty for
  /// platforms that only report the aggregate — the marketplace fills
  /// it, the recorder persists it (answer-log v3), and the replayer
  /// restores it so adaptive-vote budget charging replays identically.
  std::vector<VoteRecord> votes;
};

/// True when two tasks share a variable — such tasks may conflict and
/// must not be posted in the same round (Section 6.1).
bool TasksConflict(const Task& a, const Task& b);

/// True when `task` shares a variable with any task in `batch`.
bool ConflictsWithBatch(const Task& task, const std::vector<Task>& batch);

}  // namespace bayescrowd

#endif  // BAYESCROWD_CROWD_TASK_H_
