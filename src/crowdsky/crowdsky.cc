#include "crowdsky/crowdsky.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "ctable/expression.h"
#include "ctable/knowledge.h"

namespace bayescrowd {
namespace {

// Cache of answered pairwise comparisons: (attribute, i, j) with i < j
// maps to the relation of i's value to j's value.
class RelationCache {
 public:
  bool Lookup(std::size_t attr, std::size_t i, std::size_t j,
              Ordering* out) const {
    const bool flip = j < i;
    const auto it = map_.find(KeyOf(attr, i, j));
    if (it == map_.end()) return false;
    *out = flip ? Flip(it->second) : it->second;
    return true;
  }

  void Store(std::size_t attr, std::size_t i, std::size_t j, Ordering rel) {
    map_[KeyOf(attr, i, j)] = (j < i) ? Flip(rel) : rel;
  }

 private:
  static Ordering Flip(Ordering o) {
    if (o == Ordering::kLess) return Ordering::kGreater;
    if (o == Ordering::kGreater) return Ordering::kLess;
    return o;
  }
  static std::tuple<std::size_t, std::size_t, std::size_t> KeyOf(
      std::size_t attr, std::size_t i, std::size_t j) {
    return {attr, std::min(i, j), std::max(i, j)};
  }

  std::map<std::tuple<std::size_t, std::size_t, std::size_t>, Ordering>
      map_;
};

Status Validate(const Table& table,
                const std::vector<std::size_t>& observed,
                const std::vector<std::size_t>& crowd) {
  std::vector<bool> seen(table.num_attributes(), false);
  for (std::size_t j : observed) {
    if (j >= table.num_attributes() || seen[j]) {
      return Status::InvalidArgument("bad observed attribute list");
    }
    seen[j] = true;
    for (std::size_t i = 0; i < table.num_objects(); ++i) {
      if (table.IsMissing(i, j)) {
        return Status::FailedPrecondition(StrFormat(
            "observed attribute %zu has a missing value (row %zu)", j, i));
      }
    }
  }
  for (std::size_t j : crowd) {
    if (j >= table.num_attributes() || seen[j]) {
      return Status::InvalidArgument("bad crowd attribute list");
    }
    seen[j] = true;
    for (std::size_t i = 0; i < table.num_objects(); ++i) {
      if (!table.IsMissing(i, j)) {
        return Status::FailedPrecondition(StrFormat(
            "crowd attribute %zu has an observed value (row %zu)", j, i));
      }
    }
  }
  for (bool s : seen) {
    if (!s) {
      return Status::InvalidArgument(
          "observed+crowd attributes must cover the schema");
    }
  }
  return Status::OK();
}

// True when p >= o on every observed attribute (p may dominate o).
bool CandidateOnObserved(const Table& t, std::size_t p, std::size_t o,
                         const std::vector<std::size_t>& observed) {
  for (std::size_t j : observed) {
    if (t.At(p, j) < t.At(o, j)) return false;
  }
  return true;
}

// True when p > o strictly somewhere on the observed attributes.
bool StrictOnObserved(const Table& t, std::size_t p, std::size_t o,
                      const std::vector<std::size_t>& observed) {
  for (std::size_t j : observed) {
    if (t.At(p, j) > t.At(o, j)) return true;
  }
  return false;
}

}  // namespace

Result<CrowdSkyResult> RunCrowdSky(
    const Table& incomplete, const std::vector<std::size_t>& observed_attrs,
    const std::vector<std::size_t>& crowd_attrs, CrowdPlatform& platform,
    const CrowdSkyOptions& options) {
  BAYESCROWD_RETURN_NOT_OK(
      Validate(incomplete, observed_attrs, crowd_attrs));
  if (options.tasks_per_round == 0) {
    return Status::InvalidArgument("tasks_per_round must be >= 1");
  }

  Stopwatch watch;
  const std::size_t n = incomplete.num_objects();
  const std::size_t tasks_before = platform.total_tasks();
  const std::size_t rounds_before = platform.total_rounds();

  // Global candidate probing order: descending observed-attribute sum
  // (the most dominant objects first — the layer idea of CrowdSky).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<long long> sums(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j : observed_attrs) sums[i] += incomplete.At(i, j);
  }
  std::sort(order.begin(), order.end(),
            [&sums](std::size_t a, std::size_t b) {
              return sums[a] != sums[b] ? sums[a] > sums[b] : a < b;
            });

  std::vector<bool> dominated(n, false);
  // cursor[o]: index into `order` of the next candidate to probe.
  std::vector<std::size_t> cursor(n, 0);
  RelationCache cache;

  // Decides whether candidate p dominates o given fully-cached crowd
  // relations. Returns kUnknown truth via `decided=false` if a relation
  // is missing (the caller then buys the tasks).
  const auto try_decide = [&](std::size_t p, std::size_t o, bool* decided,
                              std::vector<Expression>* needed) -> bool {
    bool all_ge = true;
    bool strict = StrictOnObserved(incomplete, p, o, observed_attrs);
    needed->clear();
    for (std::size_t a : crowd_attrs) {
      Ordering rel;
      if (!cache.Lookup(a, p, o, &rel)) {
        needed->push_back(Expression::VarVar({p, a}, CmpOp::kGreater,
                                             {o, a}));
        continue;
      }
      if (rel == Ordering::kLess) {
        all_ge = false;
        break;
      }
      if (rel == Ordering::kGreater) strict = true;
    }
    if (!all_ge) {
      *decided = true;
      return false;  // p does not dominate o.
    }
    if (!needed->empty()) {
      *decided = false;
      return false;
    }
    *decided = true;
    return strict;  // Dominates iff strictly better somewhere.
  };

  while (true) {
    std::vector<Task> batch;
    std::set<std::string> batch_keys;
    // Pairs whose verdict is waiting on this round's answers.
    std::vector<std::pair<std::size_t, std::size_t>> pending;  // (p, o)
    bool everything_settled = true;

    for (std::size_t o = 0; o < n; ++o) {
      if (dominated[o]) continue;
      // Advance through candidates decidable from cache; stop at the
      // first one needing crowd work (or the end).
      bool waiting = false;
      while (cursor[o] < n) {
        const std::size_t p = order[cursor[o]];
        if (p == o ||
            !CandidateOnObserved(incomplete, p, o, observed_attrs)) {
          ++cursor[o];
          continue;
        }
        bool decided = false;
        std::vector<Expression> needed;
        const bool dom = try_decide(p, o, &decided, &needed);
        if (decided) {
          if (dom) {
            dominated[o] = true;
            break;
          }
          ++cursor[o];
          continue;
        }
        // Need crowd answers for this pair.
        if (batch.size() + needed.size() > options.tasks_per_round &&
            !batch.empty()) {
          waiting = true;  // Defer to a later round.
          break;
        }
        for (const Expression& e : needed) {
          const std::string key = e.Key();
          if (batch_keys.insert(key).second) {
            Task task;
            task.expression = e;
            task.source_object = o;
            batch.push_back(task);
          }
        }
        pending.emplace_back(p, o);
        waiting = true;
        break;
      }
      if (!dominated[o] && (waiting || cursor[o] < n)) {
        everything_settled = false;
      }
      if (batch.size() >= options.tasks_per_round) break;
    }

    if (batch.empty()) {
      if (everything_settled || pending.empty()) break;
      continue;  // Pure cache progress; loop again.
    }

    BAYESCROWD_ASSIGN_OR_RETURN(const std::vector<TaskAnswer> answers,
                                platform.PostBatch(batch));
    for (std::size_t t = 0; t < batch.size(); ++t) {
      const Expression& e = batch[t].expression;
      cache.Store(e.lhs.attribute, e.lhs.object, e.rhs_var.object,
                  answers[t].relation);
    }
    for (const auto& [p, o] : pending) {
      if (dominated[o]) continue;
      bool decided = false;
      std::vector<Expression> needed;
      const bool dom = try_decide(p, o, &decided, &needed);
      if (!decided) continue;  // Tasks were deferred; retried next pass.
      if (dom) {
        dominated[o] = true;
      } else {
        ++cursor[o];
      }
    }
  }

  CrowdSkyResult result;
  for (std::size_t o = 0; o < n; ++o) {
    if (!dominated[o]) result.skyline.push_back(o);
  }
  result.tasks_posted = platform.total_tasks() - tasks_before;
  result.rounds = platform.total_rounds() - rounds_before;
  result.seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace bayescrowd
