// CrowdSky (Lee, Lee & Kim, EDBT 2016) — the state-of-the-art crowd
// skyline baseline the paper compares against (Figure 4).
//
// Setting: attributes are partitioned into *observed* attributes
// (complete) and *crowd* attributes (all values missing). CrowdSky
// resolves dominance by crowdsourcing pairwise preference comparisons on
// the crowd attributes:
//
//  * objects are organized into skyline layers on the observed
//    attributes; an object can only be dominated by a candidate that is
//    >= it on every observed attribute (dominating-set pruning);
//  * per object, candidates are probed best-first; once one dominator is
//    confirmed the object is settled (early termination);
//  * comparisons are posted in parallel batches of `tasks_per_round`
//    (the partitioning/parallelization of the original paper), and
//    answered pairs are cached so no comparison is ever bought twice;
//  * answers are collected *without any probabilistic inference* — the
//    key difference from BayesCrowd that the evaluation quantifies.

#ifndef BAYESCROWD_CROWDSKY_CROWDSKY_H_
#define BAYESCROWD_CROWDSKY_CROWDSKY_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "crowd/platform.h"
#include "data/table.h"

namespace bayescrowd {

struct CrowdSkyOptions {
  /// Comparisons posted per round (the paper's comparison fixes 20 for
  /// both systems).
  std::size_t tasks_per_round = 20;
};

struct CrowdSkyResult {
  std::vector<std::size_t> skyline;
  std::size_t tasks_posted = 0;
  std::size_t rounds = 0;
  double seconds = 0.0;  // Machine-side execution time.
};

/// Runs CrowdSky over `incomplete`, whose attributes must be complete on
/// `observed_attrs` and entirely missing on `crowd_attrs` (together
/// covering the schema).
Result<CrowdSkyResult> RunCrowdSky(const Table& incomplete,
                                   const std::vector<std::size_t>& observed_attrs,
                                   const std::vector<std::size_t>& crowd_attrs,
                                   CrowdPlatform& platform,
                                   const CrowdSkyOptions& options = {});

}  // namespace bayescrowd

#endif  // BAYESCROWD_CROWDSKY_CROWDSKY_H_
