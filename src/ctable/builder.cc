#include "ctable/builder.h"

namespace bayescrowd {

Condition BuildCondition(const Table& table, std::size_t object,
                         const std::vector<std::uint32_t>& dominators) {
  if (dominators.empty()) return Condition::True();
  const std::size_t d = table.num_attributes();
  std::vector<Conjunct> conjuncts;
  conjuncts.reserve(dominators.size());
  for (std::uint32_t dominator : dominators) {
    // Conjunct "dominator ⊀ object": disjunction of "object beats
    // dominator in attribute j" over all j (Section 4.1).
    Conjunct conjunct;
    for (std::size_t j = 0; j < d; ++j) {
      const Level ov = table.At(object, j);
      const Level pv = table.At(dominator, j);
      const bool o_missing = IsMissingLevel(ov);
      const bool p_missing = IsMissingLevel(pv);
      if (!o_missing && !p_missing) {
        // Constant comparison. Membership in D(o) implies pv >= ov, so
        // "ov > pv" is false and the disjunct is dropped. (Kept general
        // for direct calls with arbitrary dominator lists.)
        if (ov > pv) {
          conjunct.clear();  // Tautology: conjunct certainly true.
          break;
        }
        continue;
      }
      if (!o_missing) {
        // ov > Var(dominator, j)  <=>  Var(dominator, j) < ov.
        if (ov == 0) continue;  // Var < 0 impossible in [0, L).
        conjunct.push_back(Expression::VarConst(
            {dominator, j}, CmpOp::kLess, ov));
        continue;
      }
      if (!p_missing) {
        // Var(object, j) > pv; impossible when pv is the domain maximum.
        if (pv >= table.schema().domain_size(j) - 1) continue;
        conjunct.push_back(Expression::VarConst(
            {object, j}, CmpOp::kGreater, pv));
        continue;
      }
      // Var(object, j) > Var(dominator, j).
      conjunct.push_back(Expression::VarVar({object, j}, CmpOp::kGreater,
                                            {dominator, j}));
    }
    if (conjunct.empty()) {
      // Either a tautology break (skip the conjunct) or no disjunct
      // survived (the dominator certainly dominates: condition false).
      // Distinguish via re-check: a tautology happens only when object
      // strictly beats the dominator on some fully-observed attribute.
      bool tautology = false;
      bool all_equal_observed = true;
      for (std::size_t j = 0; j < d; ++j) {
        const Level ov = table.At(object, j);
        const Level pv = table.At(dominator, j);
        if (IsMissingLevel(ov) || IsMissingLevel(pv)) {
          all_equal_observed = false;
          continue;
        }
        if (ov > pv) {
          tautology = true;
          break;
        }
        if (ov != pv) all_equal_observed = false;
      }
      if (tautology) continue;
      // A fully-observed exact duplicate can never *strictly* dominate
      // (Definition 1 requires a strictly better attribute), so it
      // cannot falsify the condition either. The paper's CNF sketch
      // elides this corner case; real data has ties.
      if (all_equal_observed) continue;
      return Condition::False();
    }
    conjuncts.push_back(std::move(conjunct));
  }
  return Condition::Cnf(std::move(conjuncts));
}

Result<CTable> BuildCTable(const Table& table, const CTableOptions& options) {
  BAYESCROWD_ASSIGN_OR_RETURN(
      DominatorSets sets,
      options.use_fast_dominators
          ? ComputeDominatorSets(table, options.alpha)
          : ComputeDominatorSetsBaseline(table, options.alpha));

  const std::size_t n = table.num_objects();
  CTable ctable(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (sets.pruned[i]) {
      ctable.SetCondition(i, Condition::False());  // Algorithm 2, line 7.
      continue;
    }
    ctable.SetCondition(i, BuildCondition(table, i, sets.dominators[i]));
  }
  return ctable;
}

}  // namespace bayescrowd
