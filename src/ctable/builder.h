// Get-CTable (Algorithm 2): builds the c-table of a skyline query over
// an incomplete table.
//
// For every object o:
//   |D(o)| == 0            -> φ(o) = true   (certain skyline object)
//   |D(o)| > α|O|          -> φ(o) = false  (pruned: too likely dominated)
//   ∃ complete o' ≺ o      -> φ(o) = false
//   otherwise              -> φ(o) = CNF over D(o) (Section 4.1)

#ifndef BAYESCROWD_CTABLE_BUILDER_H_
#define BAYESCROWD_CTABLE_BUILDER_H_

#include "common/result.h"
#include "ctable/ctable.h"
#include "ctable/dominator.h"
#include "data/table.h"

namespace bayescrowd {

struct CTableOptions {
  /// Pruning threshold α of Algorithm 2. Negative disables pruning.
  double alpha = 0.01;

  /// Use the bitset-based dominator derivation (true) or the pairwise
  /// Baseline (false). Output is identical; speed is not (Figure 2).
  bool use_fast_dominators = true;
};

/// Builds the condition of one object given its dominator set (exposed
/// for tests; BuildCTable drives it for all objects).
Condition BuildCondition(const Table& table, std::size_t object,
                         const std::vector<std::uint32_t>& dominators);

/// Algorithm 2 over the whole table.
Result<CTable> BuildCTable(const Table& table,
                           const CTableOptions& options = {});

}  // namespace bayescrowd

#endif  // BAYESCROWD_CTABLE_BUILDER_H_
