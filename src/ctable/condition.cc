#include "ctable/condition.h"

#include <algorithm>
#include <unordered_map>

namespace bayescrowd {

Condition Condition::Cnf(std::vector<Conjunct> conjuncts) {
  Condition c;
  for (auto& conj : conjuncts) {
    if (conj.empty()) return Condition::False();
    c.conjuncts_.push_back(std::move(conj));
  }
  c.state_ = c.conjuncts_.empty() ? Truth::kTrue : Truth::kUnknown;
  return c;
}

std::size_t Condition::NumExpressions() const {
  std::size_t total = 0;
  for (const auto& conj : conjuncts_) total += conj.size();
  return total;
}

std::vector<CellRef> Condition::Variables() const {
  std::vector<CellRef> out;
  std::unordered_map<PackedVar, bool> seen;
  seen.reserve(conjuncts_.size() * 2);
  auto add = [&out, &seen](const CellRef& var) {
    if (seen.emplace(PackVar(var), true).second) out.push_back(var);
  };
  for (const auto& conj : conjuncts_) {
    for (const auto& expr : conj) {
      add(expr.lhs);
      if (expr.rhs_is_var) add(expr.rhs_var);
    }
  }
  return out;
}

ConditionFingerprint Condition::Fingerprint() const {
  // Ordered two-lane mixing over (state, conjunct boundaries, canonical
  // expression keys); the order sensitivity matches operator==, which
  // compares conjunct vectors positionally.
  std::uint64_t lo = 0x9E3779B97F4A7C15ULL ^
                     static_cast<std::uint64_t>(state_);
  std::uint64_t hi = 0xC2B2AE3D27D4EB4FULL +
                     static_cast<std::uint64_t>(conjuncts_.size());
  const auto mix = [&lo, &hi](std::uint64_t word) {
    lo = (lo ^ word) * 0x100000001B3ULL;
    hi = (hi + word) * 0x9E3779B97F4A7C15ULL;
    hi ^= hi >> 29;
  };
  for (const auto& conj : conjuncts_) {
    mix(0xD6E8FEB86659FD93ULL ^ conj.size());  // Conjunct boundary.
    for (const auto& expr : conj) {
      const PackedExpr key = expr.PackedKey();
      mix(key.first);
      mix(key.second);
    }
  }
  return {lo, hi};
}

std::size_t Condition::VariableFrequency(const CellRef& var) const {
  std::size_t count = 0;
  for (const auto& conj : conjuncts_) {
    for (const auto& expr : conj) {
      if (expr.lhs == var) ++count;
      if (expr.rhs_is_var && expr.rhs_var == var) ++count;
    }
  }
  return count;
}

CellRef Condition::MostFrequentVariable() const {
  std::unordered_map<PackedVar, std::size_t> freq;
  freq.reserve(conjuncts_.size() * 2);
  CellRef best{};
  std::size_t best_count = 0;
  const auto bump = [&](const CellRef& var) {
    const std::size_t count = ++freq[PackVar(var)];
    if (count > best_count) {
      best_count = count;
      best = var;
    }
  };
  for (const auto& conj : conjuncts_) {
    for (const auto& expr : conj) {
      bump(expr.lhs);
      if (expr.rhs_is_var) bump(expr.rhs_var);
    }
  }
  return best;
}

bool Condition::ConjunctsAreIndependent() const {
  std::unordered_map<PackedVar, std::size_t> owner;
  owner.reserve(conjuncts_.size() * 2);
  for (std::size_t c = 0; c < conjuncts_.size(); ++c) {
    for (const auto& expr : conjuncts_[c]) {
      const auto check = [&owner, c](const CellRef& var) {
        const auto [it, inserted] = owner.emplace(PackVar(var), c);
        return inserted || it->second == c;
      };
      if (!check(expr.lhs)) return false;
      if (expr.rhs_is_var && !check(expr.rhs_var)) return false;
    }
  }
  return true;
}

std::vector<std::vector<std::size_t>> Condition::ConjunctComponents() const {
  const std::size_t m = conjuncts_.size();
  // Union-find over conjuncts, merged through shared variables.
  std::vector<std::size_t> parent(m);
  for (std::size_t i = 0; i < m; ++i) parent[i] = i;
  const auto find = [&parent](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  std::unordered_map<PackedVar, std::size_t> first_seen;
  first_seen.reserve(m * 2);
  for (std::size_t c = 0; c < m; ++c) {
    for (const auto& expr : conjuncts_[c]) {
      const auto link = [&](const CellRef& var) {
        const auto [it, inserted] = first_seen.emplace(PackVar(var), c);
        if (!inserted) parent[find(c)] = find(it->second);
      };
      link(expr.lhs);
      if (expr.rhs_is_var) link(expr.rhs_var);
    }
  }
  // Group conjuncts by root, preserving first-appearance order of roots.
  std::unordered_map<std::size_t, std::size_t> group_index;
  group_index.reserve(m);
  std::vector<std::vector<std::size_t>> out;
  for (std::size_t c = 0; c < m; ++c) {
    const std::size_t root = find(c);
    const auto [it, inserted] = group_index.emplace(root, out.size());
    if (inserted) out.emplace_back();
    out[it->second].push_back(c);
  }
  return out;
}

Condition Condition::SubstituteVariable(const CellRef& var,
                                        Level value) const {
  if (IsDecided()) return *this;
  std::vector<Conjunct> next;
  next.reserve(conjuncts_.size());
  for (const auto& conj : conjuncts_) {
    Conjunct reduced;
    bool satisfied = false;
    for (const auto& expr : conj) {
      const auto [truth, replacement] = expr.Substitute(var, value);
      if (truth == Truth::kTrue) {
        satisfied = true;
        break;
      }
      if (truth == Truth::kFalse) continue;  // Drop falsified disjunct.
      reduced.push_back(*replacement);
    }
    if (satisfied) continue;               // Conjunct holds; drop it.
    if (reduced.empty()) return Condition::False();
    next.push_back(std::move(reduced));
  }
  return Condition::Cnf(std::move(next));
}

Condition Condition::SimplifyWith(
    const std::function<Truth(const Expression&)>& evaluate) const {
  if (IsDecided()) return *this;
  std::vector<Conjunct> next;
  next.reserve(conjuncts_.size());
  for (const auto& conj : conjuncts_) {
    Conjunct reduced;
    bool satisfied = false;
    for (const auto& expr : conj) {
      switch (evaluate(expr)) {
        case Truth::kTrue:
          satisfied = true;
          break;
        case Truth::kFalse:
          break;  // Drop.
        case Truth::kUnknown:
          reduced.push_back(expr);
          break;
      }
      if (satisfied) break;
    }
    if (satisfied) continue;
    if (reduced.empty()) return Condition::False();
    next.push_back(std::move(reduced));
  }
  return Condition::Cnf(std::move(next));
}

std::string Condition::ToString(const Table& table) const {
  if (IsTrue()) return "true";
  if (IsFalse()) return "false";
  std::string out;
  for (std::size_t c = 0; c < conjuncts_.size(); ++c) {
    if (c > 0) out += " & ";
    out += "(";
    for (std::size_t e = 0; e < conjuncts_[c].size(); ++e) {
      if (e > 0) out += " | ";
      out += conjuncts_[c][e].ToString(table);
    }
    out += ")";
  }
  return out;
}

bool operator==(const Condition& a, const Condition& b) {
  if (a.state_ != b.state_) return false;
  if (a.state_ != Truth::kUnknown) return true;
  if (a.conjuncts_.size() != b.conjuncts_.size()) return false;
  for (std::size_t c = 0; c < a.conjuncts_.size(); ++c) {
    if (a.conjuncts_[c].size() != b.conjuncts_[c].size()) return false;
    for (std::size_t e = 0; e < a.conjuncts_[c].size(); ++e) {
      if (!(a.conjuncts_[c][e] == b.conjuncts_[c][e])) return false;
    }
  }
  return true;
}

}  // namespace bayescrowd
