// Condition: the CNF formula attached to each object in a c-table.
//
// φ(o) = [o1 ⊀ o] ∧ [o2 ⊀ o] ∧ ...  where each conjunct is a disjunction
// of at most d expressions (Section 4.1). A condition can also be the
// constants true / false (object certainly in / certainly out).

#ifndef BAYESCROWD_CTABLE_CONDITION_H_
#define BAYESCROWD_CTABLE_CONDITION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "ctable/expression.h"
#include "data/table.h"

namespace bayescrowd {

/// One disjunction of expressions.
using Conjunct = std::vector<Expression>;

/// 128-bit structural fingerprint of a condition. Conditions that
/// compare equal share a fingerprint; the probability evaluator uses it
/// as its memo-cache key (two words keep accidental collisions
/// negligible at cache scale).
using ConditionFingerprint = std::pair<std::uint64_t, std::uint64_t>;

using ConditionFingerprintHash = PackedExprHash;

/// CNF condition with three-valued overall state.
class Condition {
 public:
  /// Constructs the constant `true` condition.
  Condition() : state_(Truth::kTrue) {}

  static Condition True() { return Condition(); }
  static Condition False() {
    Condition c;
    c.state_ = Truth::kFalse;
    return c;
  }

  /// Builds a CNF condition. Empty conjunct lists collapse to `true`;
  /// an empty conjunct (disjunction of nothing) collapses the whole
  /// condition to `false`.
  static Condition Cnf(std::vector<Conjunct> conjuncts);

  bool IsTrue() const { return state_ == Truth::kTrue; }
  bool IsFalse() const { return state_ == Truth::kFalse; }
  bool IsDecided() const { return state_ != Truth::kUnknown; }

  const std::vector<Conjunct>& conjuncts() const { return conjuncts_; }

  /// Total number of expressions across conjuncts.
  std::size_t NumExpressions() const;

  /// Distinct variables, in first-appearance order.
  std::vector<CellRef> Variables() const;

  /// Structural fingerprint consistent with operator== (equal
  /// conditions share it). O(total expressions).
  ConditionFingerprint Fingerprint() const;

  /// Occurrence count of `var` across all expressions.
  std::size_t VariableFrequency(const CellRef& var) const;

  /// The variable appearing the most times (ties broken by first
  /// appearance). Requires an undecided condition.
  CellRef MostFrequentVariable() const;

  /// True when no two conjuncts share a variable — the precondition for
  /// ADPLL's direct product rule (Algorithm 3, line 2).
  bool ConjunctsAreIndependent() const;

  /// Groups conjunct indices into connected components of the
  /// variable-sharing graph. Components can be integrated independently.
  std::vector<std::vector<std::size_t>> ConjunctComponents() const;

  /// Returns the condition obtained by fixing `var := value`:
  /// expressions over `var` are decided (or degraded to var-const form)
  /// and the CNF is re-simplified. This is ADPLL's branching step.
  Condition SubstituteVariable(const CellRef& var, Level value) const;

  /// Re-simplifies using a three-valued oracle for individual
  /// expressions (e.g. KnowledgeBase::Evaluate after crowd answers).
  /// Expressions evaluating kTrue satisfy their conjunct; kFalse ones are
  /// removed; kUnknown ones stay.
  Condition SimplifyWith(
      const std::function<Truth(const Expression&)>& evaluate) const;

  /// "true", "false", or "(e11 | e12) & (e21)" with expression text from
  /// `table`.
  std::string ToString(const Table& table) const;

  friend bool operator==(const Condition& a, const Condition& b);

 private:
  Truth state_ = Truth::kTrue;
  std::vector<Conjunct> conjuncts_;  // Non-empty iff state_ == kUnknown.
};

}  // namespace bayescrowd

#endif  // BAYESCROWD_CTABLE_CONDITION_H_
