#include "ctable/ctable.h"

#include <algorithm>

namespace bayescrowd {

std::size_t CTable::NumTrue() const {
  std::size_t count = 0;
  for (const auto& c : conditions_) count += c.IsTrue() ? 1 : 0;
  return count;
}

std::size_t CTable::NumFalse() const {
  std::size_t count = 0;
  for (const auto& c : conditions_) count += c.IsFalse() ? 1 : 0;
  return count;
}

std::size_t CTable::NumUndecided() const {
  return conditions_.size() - NumTrue() - NumFalse();
}

std::vector<CellRef> CTable::AllVariables() const {
  std::vector<CellRef> out;
  for (const auto& c : conditions_) {
    if (c.IsDecided()) continue;
    for (const CellRef& var : c.Variables()) {
      if (std::find(out.begin(), out.end(), var) == out.end()) {
        out.push_back(var);
      }
    }
  }
  return out;
}

std::size_t CTable::TotalExpressions() const {
  std::size_t total = 0;
  for (const auto& c : conditions_) {
    if (!c.IsDecided()) total += c.NumExpressions();
  }
  return total;
}

std::vector<std::size_t> CTable::UndecidedObjects() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < conditions_.size(); ++i) {
    if (!conditions_[i].IsDecided()) out.push_back(i);
  }
  return out;
}

}  // namespace bayescrowd
