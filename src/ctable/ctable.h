// CTable: the conditional table C — one condition φ(o) per object
// (Definition 3).

#ifndef BAYESCROWD_CTABLE_CTABLE_H_
#define BAYESCROWD_CTABLE_CTABLE_H_

#include <vector>

#include "ctable/condition.h"
#include "data/table.h"

namespace bayescrowd {

/// Conditions aligned with the object indices of the source table.
class CTable {
 public:
  CTable() = default;
  explicit CTable(std::size_t num_objects) : conditions_(num_objects) {}

  std::size_t num_objects() const { return conditions_.size(); }

  const Condition& condition(std::size_t object) const {
    return conditions_[object];
  }
  Condition& condition(std::size_t object) { return conditions_[object]; }

  void SetCondition(std::size_t object, Condition condition) {
    conditions_[object] = std::move(condition);
  }

  std::size_t NumTrue() const;
  std::size_t NumFalse() const;
  std::size_t NumUndecided() const;

  /// Distinct variables across all undecided conditions, in
  /// first-appearance order.
  std::vector<CellRef> AllVariables() const;

  /// Total number of expressions across undecided conditions.
  std::size_t TotalExpressions() const;

  /// Object ids whose conditions are still undecided.
  std::vector<std::size_t> UndecidedObjects() const;

 private:
  std::vector<Condition> conditions_;
};

}  // namespace bayescrowd

#endif  // BAYESCROWD_CTABLE_CTABLE_H_
