#include "ctable/dominator.h"

#include <cmath>

#include "common/bitset.h"

namespace bayescrowd {
namespace {

std::size_t PruneThreshold(std::size_t n, double alpha) {
  if (alpha < 0.0) return n;  // Never prune: |D(o)| <= n-1 always.
  return static_cast<std::size_t>(alpha * static_cast<double>(n));
}

}  // namespace

Result<DominatorSets> ComputeDominatorSets(const Table& table,
                                           double alpha) {
  const std::size_t n = table.num_objects();
  const std::size_t d = table.num_attributes();
  if (n == 0) return Status::InvalidArgument("empty table");
  const std::size_t threshold = PruneThreshold(n, alpha);

  // ge[j][v]: bitset of objects whose j-th value is missing or >= v.
  // Built per dimension by scanning levels from the top down.
  std::vector<std::vector<DynamicBitset>> ge(d);
  for (std::size_t j = 0; j < d; ++j) {
    const auto levels =
        static_cast<std::size_t>(table.schema().domain_size(j));
    ge[j].assign(levels, DynamicBitset(n));
    // Bucket objects by level; missing objects belong to every bitset.
    std::vector<std::vector<std::uint32_t>> by_level(levels);
    DynamicBitset missing(n);
    for (std::size_t i = 0; i < n; ++i) {
      const Level v = table.At(i, j);
      if (IsMissingLevel(v)) {
        missing.Set(i);
      } else {
        by_level[static_cast<std::size_t>(v)].push_back(
            static_cast<std::uint32_t>(i));
      }
    }
    // Suffix accumulation: ge[j][v] = ge[j][v+1] ∪ {objects at level v}.
    DynamicBitset acc = missing;
    for (std::size_t v = levels; v-- > 0;) {
      for (std::uint32_t obj : by_level[v]) acc.Set(obj);
      ge[j][v] = acc;
    }
  }

  DominatorSets out;
  out.dominators.assign(n, {});
  out.pruned.assign(n, false);
  DynamicBitset candidates(n);
  for (std::size_t i = 0; i < n; ++i) {
    candidates.Fill(true);
    for (std::size_t j = 0; j < d; ++j) {
      const Level v = table.At(i, j);
      if (IsMissingLevel(v)) continue;  // D_j(o) is everything.
      candidates &= ge[j][static_cast<std::size_t>(v)];
    }
    candidates.Reset(i);  // o never dominates itself.
    const std::size_t count = candidates.Count();
    if (count > threshold) {
      out.pruned[i] = true;
      continue;
    }
    auto& dom = out.dominators[i];
    dom.reserve(count);
    candidates.ForEachSetBit([&dom](std::size_t p) {
      dom.push_back(static_cast<std::uint32_t>(p));
    });
  }
  return out;
}

Result<DominatorSets> ComputeDominatorSetsBaseline(const Table& table,
                                                   double alpha) {
  const std::size_t n = table.num_objects();
  const std::size_t d = table.num_attributes();
  if (n == 0) return Status::InvalidArgument("empty table");
  const std::size_t threshold = PruneThreshold(n, alpha);

  DominatorSets out;
  out.dominators.assign(n, {});
  out.pruned.assign(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    // Faithful to Algorithm 2's structure: derive the complete D(o) by
    // pairwise comparison (Eq. 1), then apply the α threshold. (The
    // bitset variant counts before materializing, which is part of why
    // it wins in Figure 2.)
    auto& dom = out.dominators[i];
    for (std::size_t p = 0; p < n; ++p) {
      if (p == i) continue;
      bool possible = true;
      for (std::size_t j = 0; j < d; ++j) {
        const Level ov = table.At(i, j);
        if (IsMissingLevel(ov)) continue;
        const Level pv = table.At(p, j);
        if (IsMissingLevel(pv)) continue;
        if (pv < ov) {
          possible = false;
          break;
        }
      }
      if (possible) dom.push_back(static_cast<std::uint32_t>(p));
    }
    if (dom.size() > threshold) {
      out.pruned[i] = true;
      dom.clear();
    }
  }
  return out;
}

}  // namespace bayescrowd
