// Dominator-set derivation (Definition 5).
//
// D(o) = ∩_i D_i(o), where D_i(o) is all objects whose i-th value is
// missing or >= o.[i] (when o.[i] is observed), or every other object
// (when o.[i] is missing). Two implementations are provided, matching
// the paper's Figure 2 comparison:
//
//  * ComputeDominatorSets      — "Get-CTable style": per-dimension
//    precomputed >=-level bitsets intersected with word-wide ANDs.
//  * ComputeDominatorSetsBaseline — simple pairwise comparisons.

#ifndef BAYESCROWD_CTABLE_DOMINATOR_H_
#define BAYESCROWD_CTABLE_DOMINATOR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/table.h"

namespace bayescrowd {

/// Result of dominator-set derivation over all objects.
struct DominatorSets {
  /// dominators[i]: object ids that possibly dominate object i. Left
  /// empty when pruned[i] is true.
  std::vector<std::vector<std::uint32_t>> dominators;

  /// pruned[i]: |D(o_i)| exceeded alpha * |O| and the set was not
  /// materialized (the object will be deemed a non-answer, Algorithm 2
  /// line 7).
  std::vector<bool> pruned;
};

/// Fast derivation via per-dimension level bitsets. `alpha` < 0 disables
/// pruning; otherwise objects with more than alpha*n candidate
/// dominators are flagged pruned.
Result<DominatorSets> ComputeDominatorSets(const Table& table, double alpha);

/// Reference pairwise derivation (the Baseline of Figure 2). Produces
/// identical output.
Result<DominatorSets> ComputeDominatorSetsBaseline(const Table& table,
                                                   double alpha);

}  // namespace bayescrowd

#endif  // BAYESCROWD_CTABLE_DOMINATOR_H_
