#include "ctable/expression.h"

#include "common/string_util.h"

namespace bayescrowd {

std::vector<CellRef> Expression::Variables() const {
  std::vector<CellRef> out = {lhs};
  if (rhs_is_var) out.push_back(rhs_var);
  return out;
}

bool Expression::InvolvesVariable(const CellRef& var) const {
  return lhs == var || (rhs_is_var && rhs_var == var);
}

std::pair<Truth, std::optional<Expression>> Expression::Substitute(
    const CellRef& var, Level value) const {
  const bool hits_lhs = (lhs == var);
  const bool hits_rhs = rhs_is_var && (rhs_var == var);
  if (!hits_lhs && !hits_rhs) return {Truth::kUnknown, *this};

  if (!rhs_is_var) {
    // Var op const with Var assigned.
    const bool truth = (op == CmpOp::kGreater) ? (value > rhs_const)
                                               : (value < rhs_const);
    return {TruthOf(truth), std::nullopt};
  }

  if (hits_lhs && hits_rhs) {
    // Same variable on both sides: strictly false (v > v is false).
    return {Truth::kFalse, std::nullopt};
  }
  if (hits_lhs) {
    // value op rhs_var  ->  rhs_var mirror(op) value.
    return {Truth::kUnknown,
            Expression::VarConst(rhs_var, Mirror(op), value)};
  }
  // lhs op value.
  return {Truth::kUnknown, Expression::VarConst(lhs, op, value)};
}

Truth Expression::EvaluateComplete(Level lhs_value, Level rhs_value) const {
  const bool truth = (op == CmpOp::kGreater) ? (lhs_value > rhs_value)
                                             : (lhs_value < rhs_value);
  return TruthOf(truth);
}

std::string Expression::ToString(const Table& table) const {
  const char* op_text = (op == CmpOp::kGreater) ? ">" : "<";
  const auto var_text = [&table](const CellRef& v) {
    return StrFormat("Var(%s,%s)", table.object_name(v.object).c_str(),
                     table.schema().attribute(v.attribute).name.c_str());
  };
  if (rhs_is_var) {
    return StrFormat("%s %s %s", var_text(lhs).c_str(), op_text,
                     var_text(rhs_var).c_str());
  }
  return StrFormat("%s %s %d", var_text(lhs).c_str(), op_text, rhs_const);
}

std::string Expression::Key() const {
  const Expression c = Canonicalize(*this);
  const char op_char = (c.op == CmpOp::kGreater) ? '>' : '<';
  if (c.rhs_is_var) {
    return StrFormat("v%zu.%zu%cv%zu.%zu", c.lhs.object, c.lhs.attribute,
                     op_char, c.rhs_var.object, c.rhs_var.attribute);
  }
  return StrFormat("v%zu.%zu%c%d", c.lhs.object, c.lhs.attribute, op_char,
                   c.rhs_const);
}

PackedExpr Expression::PackedKey() const {
  const Expression c = Canonicalize(*this);
  // Word 1: lhs | op | rhs-kind. Word 2: rhs payload.
  const std::uint64_t word1 =
      (PackVar(c.lhs) << 2) |
      (static_cast<std::uint64_t>(c.op) << 1) |
      (c.rhs_is_var ? 1u : 0u);
  const std::uint64_t word2 =
      c.rhs_is_var ? PackVar(c.rhs_var)
                   : static_cast<std::uint64_t>(
                         static_cast<std::uint32_t>(c.rhs_const));
  return {word1, word2};
}

bool operator==(const Expression& a, const Expression& b) {
  const Expression ca = Canonicalize(a);
  const Expression cb = Canonicalize(b);
  if (ca.lhs != cb.lhs || ca.op != cb.op || ca.rhs_is_var != cb.rhs_is_var) {
    return false;
  }
  return ca.rhs_is_var ? ca.rhs_var == cb.rhs_var
                       : ca.rhs_const == cb.rhs_const;
}

Expression Canonicalize(const Expression& e) {
  if (!e.rhs_is_var || e.lhs <= e.rhs_var) return e;
  return Expression::VarVar(e.rhs_var, Mirror(e.op), e.lhs);
}

}  // namespace bayescrowd
