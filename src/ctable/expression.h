// Expressions: the atomic inequalities of c-table conditions.
//
// An expression (the paper also calls it a "task") is a strict
// inequality between a variable Var(o, a) and either a constant or
// another variable:
//
//   Var(o5, a2) < 2          (variable vs constant)
//   Var(o5, a2) > Var(o2,a2) (variable vs variable)
//
// Crowdsourcing an expression asks the triple-choice question "is the
// left operand larger than / smaller than / equal to the right operand?"

#ifndef BAYESCROWD_CTABLE_EXPRESSION_H_
#define BAYESCROWD_CTABLE_EXPRESSION_H_

#include <optional>
#include <string>
#include <vector>

#include "data/schema.h"
#include "data/table.h"
#include "data/value.h"

namespace bayescrowd {

/// Three-valued logic for partially-known conditions.
enum class Truth : std::uint8_t { kFalse = 0, kTrue = 1, kUnknown = 2 };

inline Truth TruthOf(bool b) { return b ? Truth::kTrue : Truth::kFalse; }

/// Strict comparison operators used in conditions (Definition 1 only ever
/// needs "strictly better", i.e. > and its mirror <).
enum class CmpOp : std::uint8_t { kGreater, kLess };

/// Dense integer encoding of a variable for hash-map keys on hot paths.
/// Supports up to 2^44 objects and 2^20 attributes.
using PackedVar = std::uint64_t;

inline PackedVar PackVar(const CellRef& var) {
  return (static_cast<std::uint64_t>(var.object) << 20) |
         static_cast<std::uint64_t>(var.attribute);
}

/// Dense integer encoding of a canonicalized expression (two 64-bit
/// words). Equal expressions (including mirrored var-var forms) share a
/// key.
using PackedExpr = std::pair<std::uint64_t, std::uint64_t>;

struct PackedExprHash {
  std::size_t operator()(const PackedExpr& key) const {
    std::uint64_t h = key.first * 0x9E3779B97F4A7C15ULL;
    h ^= key.second + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

inline CmpOp Mirror(CmpOp op) {
  return op == CmpOp::kGreater ? CmpOp::kLess : CmpOp::kGreater;
}

/// One inequality. `lhs` is always a variable (a missing cell).
struct Expression {
  CellRef lhs;
  CmpOp op = CmpOp::kGreater;
  bool rhs_is_var = false;
  CellRef rhs_var;          // Valid when rhs_is_var.
  Level rhs_const = 0;      // Valid when !rhs_is_var.

  static Expression VarConst(CellRef var, CmpOp op, Level constant) {
    Expression e;
    e.lhs = var;
    e.op = op;
    e.rhs_is_var = false;
    e.rhs_const = constant;
    return e;
  }

  static Expression VarVar(CellRef lhs, CmpOp op, CellRef rhs) {
    Expression e;
    e.lhs = lhs;
    e.op = op;
    e.rhs_is_var = true;
    e.rhs_var = rhs;
    return e;
  }

  /// The variables this expression mentions (1 or 2).
  std::vector<CellRef> Variables() const;

  bool InvolvesVariable(const CellRef& var) const;

  /// Truth value under a concrete value for `var`; expressions not
  /// mentioning `var` stay themselves. A var-var expression with one side
  /// assigned degrades to a var-const expression (the mechanism ADPLL
  /// uses when branching).
  /// Returned pair: (decided truth or kUnknown, replacement expression if
  /// still undecided).
  std::pair<Truth, std::optional<Expression>> Substitute(
      const CellRef& var, Level value) const;

  /// Truth under a *complete* assignment of both operands.
  Truth EvaluateComplete(Level lhs_value, Level rhs_value) const;

  /// Canonical text: "Var(o5,a2) < 2" with names taken from `table`.
  std::string ToString(const Table& table) const;

  /// Canonical key for frequency counting / deduplication. Two
  /// expressions that are logically identical (including the mirrored
  /// var-var form) share a key.
  std::string Key() const;

  /// Allocation-free canonical key (same equivalence as Key()).
  PackedExpr PackedKey() const;

  friend bool operator==(const Expression& a, const Expression& b);
};

/// Puts a var-var expression into canonical orientation (smaller CellRef
/// on the left), mirroring the operator if needed. Var-const expressions
/// are returned unchanged.
Expression Canonicalize(const Expression& e);

}  // namespace bayescrowd

#endif  // BAYESCROWD_CTABLE_EXPRESSION_H_
