#include "ctable/knowledge.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace bayescrowd {

const char* OrderingToString(Ordering ordering) {
  switch (ordering) {
    case Ordering::kLess:
      return "<";
    case Ordering::kEqual:
      return "=";
    case Ordering::kGreater:
      return ">";
  }
  return "?";
}

std::pair<Level, Level> KnowledgeBase::Bounds(const CellRef& var) const {
  const auto it = intervals_.find(var);
  if (it != intervals_.end()) return it->second;
  return {0, schema_.domain_size(var.attribute) - 1};
}

bool KnowledgeBase::IsPinned(const CellRef& var, Level* value) const {
  const auto [lo, hi] = Bounds(var);
  if (lo != hi) return false;
  if (value != nullptr) *value = lo;
  return true;
}

void KnowledgeBase::Narrow(const CellRef& var, Level lo, Level hi) {
  const auto [cur_lo, cur_hi] = Bounds(var);
  Level new_lo = std::max(cur_lo, lo);
  Level new_hi = std::min(cur_hi, hi);
  if (new_lo > new_hi) {
    // Contradiction with earlier knowledge (imperfect workers):
    // newest-wins — keep the new fact, clamped to the domain.
    BAYESCROWD_LOG(Info) << "conflicting crowd facts for Var("
                         << var.object << "," << var.attribute
                         << "); keeping newest";
    new_lo = std::max<Level>(lo, 0);
    new_hi = std::min<Level>(hi, schema_.domain_size(var.attribute) - 1);
  }
  intervals_[var] = {new_lo, new_hi};
}

Status KnowledgeBase::RestrictLess(const CellRef& var, Level bound) {
  if (bound <= 0) {
    return Status::InvalidArgument(
        StrFormat("Var < %d impossible in domain [0, %d)", bound,
                  schema_.domain_size(var.attribute)));
  }
  Narrow(var, 0, bound - 1);
  return Status::OK();
}

Status KnowledgeBase::RestrictGreater(const CellRef& var, Level bound) {
  const Level max = schema_.domain_size(var.attribute) - 1;
  if (bound >= max) {
    return Status::InvalidArgument(
        StrFormat("Var > %d impossible in domain [0, %d]", bound, max));
  }
  Narrow(var, bound + 1, max);
  return Status::OK();
}

Status KnowledgeBase::RestrictEqual(const CellRef& var, Level value) {
  const Level max = schema_.domain_size(var.attribute) - 1;
  if (value < 0 || value > max) {
    return Status::OutOfRange(
        StrFormat("Var = %d outside domain [0, %d]", value, max));
  }
  Narrow(var, value, value);
  return Status::OK();
}

Status KnowledgeBase::RecordVarOrder(const CellRef& a, const CellRef& b,
                                     Ordering ordering) {
  if (a == b) return Status::InvalidArgument("var-var fact on one variable");
  std::pair<CellRef, CellRef> key(a, b);
  Ordering stored = ordering;
  if (b < a) {
    key = {b, a};
    if (ordering == Ordering::kLess) stored = Ordering::kGreater;
    if (ordering == Ordering::kGreater) stored = Ordering::kLess;
  }
  const auto it = orders_.find(key);
  if (it != orders_.end() && it->second != stored) {
    return Status::InvalidArgument(StrFormat(
        "contradictory var-var fact: Var(%zu,%zu) %s Var(%zu,%zu) "
        "conflicts with recorded %s",
        a.object, a.attribute, OrderingToString(ordering), b.object,
        b.attribute, OrderingToString(it->second)));
  }
  orders_[key] = stored;
  return Status::OK();
}

void KnowledgeBase::SerializeFacts(std::string* out) const {
  BinWriter w(out);
  w.WriteU64(intervals_.size());
  for (const auto& [var, bounds] : intervals_) {
    w.WriteU64(var.object);
    w.WriteU64(var.attribute);
    w.WriteI32(bounds.first);
    w.WriteI32(bounds.second);
  }
  w.WriteU64(orders_.size());
  for (const auto& [key, ordering] : orders_) {
    w.WriteU64(key.first.object);
    w.WriteU64(key.first.attribute);
    w.WriteU64(key.second.object);
    w.WriteU64(key.second.attribute);
    w.WriteU8(static_cast<std::uint8_t>(ordering));
  }
}

Status KnowledgeBase::RestoreFacts(BinReader* reader) {
  intervals_.clear();
  orders_.clear();
  std::uint64_t n = 0;
  BAYESCROWD_RETURN_NOT_OK(reader->ReadCount(&n, 24));
  for (std::uint64_t i = 0; i < n; ++i) {
    CellRef var;
    std::uint64_t object = 0;
    std::uint64_t attribute = 0;
    std::pair<Level, Level> bounds;
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&object));
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&attribute));
    BAYESCROWD_RETURN_NOT_OK(reader->ReadI32(&bounds.first));
    BAYESCROWD_RETURN_NOT_OK(reader->ReadI32(&bounds.second));
    var.object = static_cast<std::size_t>(object);
    var.attribute = static_cast<std::size_t>(attribute);
    intervals_[var] = bounds;
  }
  BAYESCROWD_RETURN_NOT_OK(reader->ReadCount(&n, 33));
  for (std::uint64_t i = 0; i < n; ++i) {
    CellRef a;
    CellRef b;
    std::uint64_t word = 0;
    std::uint8_t ordering = 0;
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&word));
    a.object = static_cast<std::size_t>(word);
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&word));
    a.attribute = static_cast<std::size_t>(word);
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&word));
    b.object = static_cast<std::size_t>(word);
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&word));
    b.attribute = static_cast<std::size_t>(word);
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU8(&ordering));
    if (ordering > static_cast<std::uint8_t>(Ordering::kGreater)) {
      return Status::OutOfRange("knowledge: bad ordering byte");
    }
    orders_[{a, b}] = static_cast<Ordering>(ordering);
  }
  return Status::OK();
}

Truth KnowledgeBase::Evaluate(const Expression& expression) const {
  const auto [lhs_lo, lhs_hi] = Bounds(expression.lhs);

  if (!expression.rhs_is_var) {
    const Level c = expression.rhs_const;
    if (expression.op == CmpOp::kGreater) {
      if (lhs_lo > c) return Truth::kTrue;
      if (lhs_hi <= c) return Truth::kFalse;
    } else {
      if (lhs_hi < c) return Truth::kTrue;
      if (lhs_lo >= c) return Truth::kFalse;
    }
    return Truth::kUnknown;
  }

  // Var-var: check recorded order facts first.
  std::pair<CellRef, CellRef> key(expression.lhs, expression.rhs_var);
  bool flipped = false;
  if (key.second < key.first) {
    std::swap(key.first, key.second);
    flipped = true;
  }
  const auto it = orders_.find(key);
  if (it != orders_.end()) {
    Ordering ord = it->second;  // key.first relative to key.second.
    if (flipped) {
      if (ord == Ordering::kLess) ord = Ordering::kGreater;
      else if (ord == Ordering::kGreater) ord = Ordering::kLess;
    }
    // `ord` is now lhs relative to rhs.
    if (expression.op == CmpOp::kGreater) {
      return TruthOf(ord == Ordering::kGreater);
    }
    return TruthOf(ord == Ordering::kLess);
  }

  // Fall back to interval separation.
  const auto [rhs_lo, rhs_hi] = Bounds(expression.rhs_var);
  if (expression.op == CmpOp::kGreater) {
    if (lhs_lo > rhs_hi) return Truth::kTrue;
    if (lhs_hi <= rhs_lo) return Truth::kFalse;
  } else {
    if (lhs_hi < rhs_lo) return Truth::kTrue;
    if (lhs_lo >= rhs_hi) return Truth::kFalse;
  }
  return Truth::kUnknown;
}

std::vector<double> KnowledgeBase::ConditionDistribution(
    const CellRef& var, const std::vector<double>& raw) const {
  const auto [lo, hi] = Bounds(var);
  std::vector<double> out(raw.size(), 0.0);
  double total = 0.0;
  for (std::size_t v = 0; v < raw.size(); ++v) {
    const auto level = static_cast<Level>(v);
    if (level < lo || level > hi) continue;
    out[v] = raw[v];
    total += raw[v];
  }
  if (total <= 0.0) {
    const double uniform =
        1.0 / static_cast<double>(hi - lo + 1);
    for (Level v = lo; v <= hi; ++v) {
      out[static_cast<std::size_t>(v)] = uniform;
    }
    return out;
  }
  for (double& p : out) p /= total;
  return out;
}

}  // namespace bayescrowd
