// KnowledgeBase: everything learned from crowd answers so far.
//
// A crowd answer is a triple-choice relation (larger / smaller / equal)
// between a variable and a constant or another variable. Answers are not
// stored as per-expression booleans: they narrow the variable's possible
// value interval (Var < 4 removes levels >= 4) or record a var-var order
// fact. All conditions are then re-simplified against the knowledge
// base, which reproduces the paper's inference behaviour (Example 4:
// learning Var(o5,a3)=3 simultaneously decides ...<1, ...>2 and ...>3).

#ifndef BAYESCROWD_CTABLE_KNOWLEDGE_H_
#define BAYESCROWD_CTABLE_KNOWLEDGE_H_

#include <map>
#include <utility>
#include <vector>

#include "common/binio.h"
#include "common/status.h"
#include "ctable/expression.h"
#include "data/schema.h"
#include "data/table.h"

namespace bayescrowd {

/// Relation of a left operand to a right operand.
enum class Ordering : std::uint8_t { kLess, kEqual, kGreater };

const char* OrderingToString(Ordering ordering);

/// Accumulated crowd knowledge: per-variable value intervals plus
/// var-var order facts.
class KnowledgeBase {
 public:
  explicit KnowledgeBase(const Schema& schema) : schema_(schema) {}

  /// Records "var < bound" / "var > bound" / "var == value". Facts that
  /// contradict earlier knowledge (possible with imperfect workers) are
  /// resolved newest-wins: the interval is reset to the newest fact
  /// intersected with the domain. Facts impossible within the domain are
  /// rejected with InvalidArgument.
  Status RestrictLess(const CellRef& var, Level bound);
  Status RestrictGreater(const CellRef& var, Level bound);
  Status RestrictEqual(const CellRef& var, Level value);

  /// Records the relation between two variables ("a `ordering` b").
  /// Re-recording the same ordering is idempotent; a fact that
  /// contradicts the stored one (a>b after b>a) is rejected with
  /// InvalidArgument — the stored fact is kept and the caller decides
  /// how to arbitrate (the framework counts and skips the answer).
  Status RecordVarOrder(const CellRef& a, const CellRef& b,
                        Ordering ordering);

  /// Inclusive interval [lo, hi] of still-possible values.
  std::pair<Level, Level> Bounds(const CellRef& var) const;

  /// True when the interval has collapsed to a single value (returned
  /// through `value` if non-null).
  bool IsPinned(const CellRef& var, Level* value = nullptr) const;

  /// Three-valued truth of `expression` under current knowledge.
  Truth Evaluate(const Expression& expression) const;

  /// Conditions a raw value distribution on the allowed interval and
  /// renormalizes. Zero-mass results degrade to uniform-over-interval.
  std::vector<double> ConditionDistribution(
      const CellRef& var, const std::vector<double>& raw) const;

  std::size_t num_interval_facts() const { return intervals_.size(); }
  std::size_t num_order_facts() const { return orders_.size(); }

  /// Appends every interval and order fact to `out` in canonical
  /// (std::map) order, for checkpointing.
  void SerializeFacts(std::string* out) const;

  /// Replaces all facts with the ones written by SerializeFacts. The
  /// schema is not serialized; the caller must construct the knowledge
  /// base against the same schema.
  Status RestoreFacts(BinReader* reader);

 private:
  // Applies [lo, hi] as a new constraint with newest-wins conflict
  // resolution.
  void Narrow(const CellRef& var, Level lo, Level hi);

  Schema schema_;
  std::map<CellRef, std::pair<Level, Level>> intervals_;
  // Key is the canonical (smaller CellRef first) pair; value is the
  // ordering of key.first relative to key.second.
  std::map<std::pair<CellRef, CellRef>, Ordering> orders_;
};

}  // namespace bayescrowd

#endif  // BAYESCROWD_CTABLE_KNOWLEDGE_H_
