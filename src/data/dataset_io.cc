#include "data/dataset_io.h"

#include <cmath>

#include "common/csv.h"
#include "common/string_util.h"

namespace bayescrowd {

Status SaveTableCsv(const Table& table, const std::string& path) {
  CsvDocument doc;
  doc.header.push_back("name");
  const Schema& schema = table.schema();
  for (std::size_t j = 0; j < schema.num_attributes(); ++j) {
    doc.header.push_back(StrFormat("%s:%d",
                                   schema.attribute(j).name.c_str(),
                                   schema.domain_size(j)));
  }
  doc.rows.reserve(table.num_objects());
  for (std::size_t i = 0; i < table.num_objects(); ++i) {
    std::vector<std::string> row;
    row.reserve(schema.num_attributes() + 1);
    row.push_back(table.object_name(i));
    for (std::size_t j = 0; j < schema.num_attributes(); ++j) {
      const Level v = table.At(i, j);
      row.push_back(IsMissingLevel(v) ? "?" : StrFormat("%d", v));
    }
    doc.rows.push_back(std::move(row));
  }
  return WriteCsvFile(path, doc);
}

Result<Table> LoadTableCsv(const std::string& path) {
  BAYESCROWD_ASSIGN_OR_RETURN(CsvDocument doc,
                              ReadCsvFile(path, /*has_header=*/true));
  if (doc.header.empty() || doc.header[0] != "name") {
    return Status::InvalidArgument(
        path + ": expected header starting with 'name'");
  }
  Schema schema;
  for (std::size_t j = 1; j < doc.header.size(); ++j) {
    const auto parts = Split(doc.header[j], ':');
    int domain = 0;
    if (parts.size() != 2 || !ParseInt(parts[1], &domain) || domain <= 0) {
      return Status::InvalidArgument(
          path + ": malformed header field '" + doc.header[j] +
          "', expected <attr>:<domain>");
    }
    schema.AddAttribute(parts[0], static_cast<Level>(domain));
  }
  Table table(schema);
  table.Reserve(doc.rows.size());
  std::vector<Level> values(schema.num_attributes());
  for (std::size_t r = 0; r < doc.rows.size(); ++r) {
    const auto& row = doc.rows[r];
    for (std::size_t j = 0; j < schema.num_attributes(); ++j) {
      const std::string& field = row[j + 1];
      if (field == "?") {
        values[j] = kMissingLevel;
        continue;
      }
      int v = 0;
      if (!ParseInt(field, &v)) {
        // Distinguish the float-ish failure modes: a NaN/Inf or
        // fractional cell is a corrupted export, not a typo.
        double d = 0.0;
        const char* reason = "not an integer level";
        if (ParseDouble(field, &d)) {
          reason = std::isnan(d)   ? "NaN is not a level"
                   : std::isinf(d) ? "Inf is not a level"
                                   : "fractional levels are not allowed";
        }
        return Status::InvalidArgument(StrFormat(
            "%s: row %zu ('%s'), attribute '%s': bad cell '%s' (%s)",
            path.c_str(), r + 1, row[0].c_str(),
            schema.attribute(j).name.c_str(), field.c_str(), reason));
      }
      if (v < 0 || v >= static_cast<int>(schema.domain_size(j))) {
        return Status::InvalidArgument(StrFormat(
            "%s: row %zu ('%s'), attribute '%s': level %d outside "
            "domain [0, %d)",
            path.c_str(), r + 1, row[0].c_str(),
            schema.attribute(j).name.c_str(), v,
            static_cast<int>(schema.domain_size(j))));
      }
      values[j] = static_cast<Level>(v);
    }
    BAYESCROWD_RETURN_NOT_OK(table.AppendRow(row[0], values));
  }
  return table;
}

}  // namespace bayescrowd
