// Table <-> CSV persistence.
//
// File layout: header "name,<attr>:<domain>,...", one row per object,
// '?' marks a missing cell.

#ifndef BAYESCROWD_DATA_DATASET_IO_H_
#define BAYESCROWD_DATA_DATASET_IO_H_

#include <string>

#include "common/result.h"
#include "data/table.h"

namespace bayescrowd {

/// Writes `table` to `path` in the format described above.
Status SaveTableCsv(const Table& table, const std::string& path);

/// Reads a table previously written by SaveTableCsv.
Result<Table> LoadTableCsv(const std::string& path);

}  // namespace bayescrowd

#endif  // BAYESCROWD_DATA_DATASET_IO_H_
