#include "data/discretizer.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace bayescrowd {

Result<Discretizer> Discretizer::Fit(
    const std::vector<std::vector<double>>& columns, Level num_levels,
    BinningMethod method) {
  if (num_levels < 2) {
    return Status::InvalidArgument("num_levels must be >= 2");
  }
  Discretizer disc;
  disc.num_levels_ = num_levels;
  disc.edges_.reserve(columns.size());
  for (std::size_t c = 0; c < columns.size(); ++c) {
    const auto& col = columns[c];
    if (col.empty()) {
      return Status::InvalidArgument(
          StrFormat("column %zu is empty", c));
    }
    for (double v : col) {
      if (std::isnan(v)) {
        return Status::InvalidArgument(
            StrFormat("column %zu contains NaN", c));
      }
    }
    std::vector<double> edges;
    edges.reserve(static_cast<std::size_t>(num_levels) - 1);
    if (method == BinningMethod::kEqualWidth) {
      const auto [min_it, max_it] = std::minmax_element(col.begin(),
                                                        col.end());
      const double lo = *min_it;
      const double hi = *max_it;
      const double width = (hi - lo) / static_cast<double>(num_levels);
      for (Level k = 1; k < num_levels; ++k) {
        edges.push_back(lo + width * static_cast<double>(k));
      }
    } else {
      std::vector<double> sorted = col;
      std::sort(sorted.begin(), sorted.end());
      for (Level k = 1; k < num_levels; ++k) {
        const double q = static_cast<double>(k) /
                         static_cast<double>(num_levels);
        const auto idx = static_cast<std::size_t>(
            q * static_cast<double>(sorted.size() - 1));
        edges.push_back(sorted[idx]);
      }
    }
    disc.edges_.push_back(std::move(edges));
  }
  return disc;
}

Level Discretizer::Map(std::size_t attribute, double value) const {
  const auto& edges = edges_[attribute];
  // First edge strictly greater than value -> bin index.
  const auto it = std::upper_bound(edges.begin(), edges.end(), value);
  return static_cast<Level>(it - edges.begin());
}

Result<Table> Discretizer::DiscretizeTable(
    const std::vector<std::string>& attribute_names,
    const std::vector<std::vector<double>>& columns, Level num_levels,
    BinningMethod method, const std::vector<std::string>& object_names) {
  if (attribute_names.size() != columns.size()) {
    return Status::InvalidArgument(
        "attribute_names and columns sizes differ");
  }
  if (columns.empty()) return Status::InvalidArgument("no columns");
  const std::size_t n = columns[0].size();
  for (const auto& col : columns) {
    if (col.size() != n) {
      return Status::InvalidArgument("columns have differing lengths");
    }
  }
  if (!object_names.empty() && object_names.size() != n) {
    return Status::InvalidArgument(
        "object_names length does not match rows");
  }
  BAYESCROWD_ASSIGN_OR_RETURN(Discretizer disc,
                              Fit(columns, num_levels, method));
  Schema schema;
  for (const auto& name : attribute_names) {
    schema.AddAttribute(name, num_levels);
  }
  Table table(schema);
  table.Reserve(n);
  std::vector<Level> row(columns.size());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < columns.size(); ++j) {
      row[j] = disc.Map(j, columns[j][i]);
    }
    std::string name = object_names.empty() ? StrFormat("o%zu", i + 1)
                                            : object_names[i];
    BAYESCROWD_RETURN_NOT_OK(table.AppendRow(std::move(name), row));
  }
  return table;
}

}  // namespace bayescrowd
