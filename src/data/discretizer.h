// Discretization of continuous attributes (paper Section 3: "For
// continuous values, we partition the whole domain into a series of
// value ranges ... and treat each range as a discrete value").
//
// A fitted Discretizer stores per-attribute bin edges so that new raw
// values can be mapped to levels consistently.

#ifndef BAYESCROWD_DATA_DISCRETIZER_H_
#define BAYESCROWD_DATA_DISCRETIZER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "data/table.h"

namespace bayescrowd {

enum class BinningMethod {
  kEqualWidth,      // Bins of equal numeric width over [min, max].
  kEqualFrequency,  // Bins holding (approximately) equal record counts.
};

/// Maps raw continuous columns to discrete levels.
class Discretizer {
 public:
  /// Fits one binning per column. Each column must be non-empty; NaNs are
  /// rejected. `num_levels` >= 2.
  static Result<Discretizer> Fit(
      const std::vector<std::vector<double>>& columns, Level num_levels,
      BinningMethod method);

  /// Level of `value` for attribute `attribute` — the index of the first
  /// internal edge greater than `value` (clamped to the last bin).
  Level Map(std::size_t attribute, double value) const;

  std::size_t num_attributes() const { return edges_.size(); }
  Level num_levels() const { return num_levels_; }

  /// Ascending internal edges of `attribute` (num_levels-1 of them;
  /// duplicates possible for equal-frequency bins of skewed data).
  const std::vector<double>& edges(std::size_t attribute) const {
    return edges_[attribute];
  }

  /// Convenience: fits on `columns` and materializes the discretized
  /// table with the given attribute names (and optional object names;
  /// default "o<i>").
  static Result<Table> DiscretizeTable(
      const std::vector<std::string>& attribute_names,
      const std::vector<std::vector<double>>& columns, Level num_levels,
      BinningMethod method,
      const std::vector<std::string>& object_names = {});

 private:
  std::vector<std::vector<double>> edges_;
  Level num_levels_ = 0;
};

}  // namespace bayescrowd

#endif  // BAYESCROWD_DATA_DISCRETIZER_H_
