#include "data/generators.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "common/string_util.h"
#include "data/discretizer.h"

namespace bayescrowd {
namespace {

constexpr Level kM = kMissingLevel;

// Draws a level in [0, levels) from a discretized Gaussian centred at
// `mean` with standard deviation `sigma` (both in level units). This is
// the building block for the hand-built conditional distributions below:
// shifting `mean` with a parent level yields a smooth, learnable CPD.
Level GaussianLevel(Rng& rng, Level levels, double mean, double sigma) {
  std::vector<double> weights(static_cast<std::size_t>(levels));
  for (Level k = 0; k < levels; ++k) {
    const double dk = (static_cast<double>(k) - mean) / sigma;
    weights[static_cast<std::size_t>(k)] = std::exp(-0.5 * dk * dk);
  }
  return static_cast<Level>(rng.NextDiscrete(weights));
}

}  // namespace

Table MakeSampleMovieDataset() {
  Schema schema;
  schema.AddAttribute("a1", 10);
  schema.AddAttribute("a2", 10);
  schema.AddAttribute("a3", 8);
  schema.AddAttribute("a4", 6);
  schema.AddAttribute("a5", 10);
  Table table(schema);
  BAYESCROWD_CHECK_OK(table.AppendRow("Schindler's List", {5, 2, 3, 4, 1}));
  BAYESCROWD_CHECK_OK(table.AppendRow("Se7en", {6, kM, 2, 2, 2}));
  BAYESCROWD_CHECK_OK(table.AppendRow("The Godfather", {1, 1, kM, 5, 3}));
  BAYESCROWD_CHECK_OK(table.AppendRow("The Lion King", {4, 3, 1, 2, 1}));
  BAYESCROWD_CHECK_OK(table.AppendRow("Star Wars", {5, kM, kM, kM, 1}));
  return table;
}

Table MakeSampleMovieGroundTruth() {
  Table table = MakeSampleMovieDataset();
  table.SetCell(1, 1, 4);  // Var(o2, a2) = 4  (> 3, Example 4)
  table.SetCell(2, 2, 4);  // Var(o3, a3): unconstrained by Example 4.
  table.SetCell(4, 1, 3);  // Var(o5, a2) = 3  (> 2)
  table.SetCell(4, 2, 3);  // Var(o5, a3) = 3  (= 3)
  table.SetCell(4, 3, 3);  // Var(o5, a4) = 3  (< 4)
  return table;
}

std::vector<std::vector<double>> SampleMovieDistributions() {
  std::vector<std::vector<double>> dists(5);
  dists[0].assign(10, 0.1);
  dists[1].assign(10, 0.1);
  dists[2].assign(8, 0.125);
  dists[3] = {0.1, 0.1, 0.2, 0.2, 0.3, 0.1};
  dists[4].assign(10, 0.1);
  return dists;
}

Table MakeNbaLike(std::size_t n, std::uint64_t seed, Level levels) {
  Rng rng(seed);
  const std::vector<std::string> names = {
      "games",  "minutes",  "points", "rebounds", "assists", "steals",
      "blocks", "three_pm", "ftm",    "oreb",     "dreb"};
  std::vector<std::vector<double>> cols(names.size(),
                                        std::vector<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    // Latent player quality and position (big man vs guard). Stats hang
    // tightly off playing time, as in real box scores — that coupling is
    // what makes missing values inferable for the Bayesian network.
    const double skill = rng.NextGaussian();
    const double big = rng.NextGaussian();  // Position: center vs guard.
    const double minutes = 0.75 * skill + 0.5 * rng.NextGaussian();
    const double points =
        0.45 * minutes + 0.3 * skill + 0.55 * rng.NextGaussian();
    cols[0][i] = 0.6 * skill + 0.7 * rng.NextGaussian();       // games
    cols[1][i] = minutes;                                      // minutes
    cols[2][i] = points;                                       // points
    cols[3][i] = 0.45 * minutes + 0.7 * big + 0.55 * rng.NextGaussian();
    cols[4][i] = 0.45 * minutes - 0.7 * big + 0.55 * rng.NextGaussian();
    cols[5][i] = 0.45 * minutes - 0.28 * big + 0.66 * rng.NextGaussian();
    cols[6][i] = 0.36 * minutes + 0.84 * big + 0.55 * rng.NextGaussian();
    cols[7][i] = 0.45 * minutes - 0.7 * big + 0.6 * rng.NextGaussian();
    cols[8][i] = 0.7 * points + 0.44 * rng.NextGaussian();     // ftm
    cols[9][i] = 0.36 * minutes + 0.77 * big + 0.55 * rng.NextGaussian();
    cols[10][i] = 0.45 * minutes + 0.63 * big + 0.55 * rng.NextGaussian();
  }
  std::vector<std::string> object_names(n);
  for (std::size_t i = 0; i < n; ++i) {
    object_names[i] = StrFormat("player%zu", i + 1);
  }
  auto result = Discretizer::DiscretizeTable(
      names, cols, levels, BinningMethod::kEqualFrequency, object_names);
  BAYESCROWD_CHECK_OK(result.status());
  return std::move(result).value();
}

Table MakeAdultLike(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Schema schema;
  schema.AddAttribute("age", 8);
  schema.AddAttribute("education", 6);
  schema.AddAttribute("occupation", 8);
  schema.AddAttribute("hours", 6);
  schema.AddAttribute("income", 10);
  schema.AddAttribute("capital", 8);
  schema.AddAttribute("relationship", 5);
  schema.AddAttribute("workclass", 5);
  schema.AddAttribute("country", 4);
  Table table(schema);
  table.Reserve(n);
  std::vector<Level> row(9);
  for (std::size_t i = 0; i < n; ++i) {
    // A hand-built Bayesian network mirroring UCI Adult's dependency
    // structure; each CPD is a Gaussian-shaped discrete kernel whose
    // mean shifts with the parent levels.
    const Level age = GaussianLevel(rng, 8, 3.0, 2.2);
    const Level education =
        GaussianLevel(rng, 6, 1.2 + 0.35 * age, 1.2);
    const Level occupation =
        GaussianLevel(rng, 8, 0.8 + 1.0 * education, 1.5);
    const Level hours = GaussianLevel(rng, 6, 1.5 + 0.35 * occupation, 1.2);
    const Level income = GaussianLevel(
        rng, 10, 0.6 + 0.8 * education + 0.5 * hours, 1.6);
    const Level capital = GaussianLevel(rng, 8, 0.4 + 0.6 * income, 1.4);
    const Level relationship = GaussianLevel(rng, 5, 0.5 + 0.4 * age, 1.0);
    const Level workclass =
        GaussianLevel(rng, 5, 0.5 + 0.4 * occupation, 1.1);
    const Level country = GaussianLevel(rng, 4, 1.5, 1.4);
    row = {age,     education,    occupation, hours,   income,
           capital, relationship, workclass,  country};
    BAYESCROWD_CHECK_OK(
        table.AppendRow(StrFormat("r%zu", i + 1), row));
  }
  return table;
}

Table MakeIndependent(std::size_t n, std::size_t d, Level levels,
                      std::uint64_t seed) {
  Rng rng(seed);
  Schema schema;
  for (std::size_t j = 0; j < d; ++j) {
    schema.AddAttribute(StrFormat("a%zu", j + 1), levels);
  }
  Table table(schema);
  table.Reserve(n);
  std::vector<Level> row(d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      row[j] = static_cast<Level>(
          rng.NextBelow(static_cast<std::uint64_t>(levels)));
    }
    BAYESCROWD_CHECK_OK(table.AppendRow(StrFormat("o%zu", i + 1), row));
  }
  return table;
}

Table MakeCorrelated(std::size_t n, std::size_t d, Level levels,
                     std::uint64_t seed, double noise_scale) {
  Rng rng(seed);
  std::vector<std::string> names(d);
  std::vector<std::vector<double>> cols(d, std::vector<double>(n));
  for (std::size_t j = 0; j < d; ++j) names[j] = StrFormat("a%zu", j + 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double base = rng.NextGaussian();
    for (std::size_t j = 0; j < d; ++j) {
      cols[j][i] = base + noise_scale * rng.NextGaussian();
    }
  }
  // Rank-based discretization keeps marginals balanced and avoids
  // probability atoms at the domain extremes (which would create masses
  // of exactly-equal top rows).
  auto result = Discretizer::DiscretizeTable(
      names, cols, levels, BinningMethod::kEqualFrequency);
  BAYESCROWD_CHECK_OK(result.status());
  return std::move(result).value();
}

Table MakeAnticorrelated(std::size_t n, std::size_t d, Level levels,
                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> names(d);
  std::vector<std::vector<double>> cols(d, std::vector<double>(n));
  for (std::size_t j = 0; j < d; ++j) names[j] = StrFormat("a%zu", j + 1);
  std::vector<double> raw(d);
  for (std::size_t i = 0; i < n; ++i) {
    // Values on (a jittered) constant-sum hyperplane: an object that is
    // good in one attribute tends to be bad in the others.
    double total = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      raw[j] = -std::log(1.0 - rng.NextDouble() + 1e-12);  // Exp(1)
      total += raw[j];
    }
    for (std::size_t j = 0; j < d; ++j) {
      cols[j][i] = raw[j] / total + 0.05 * rng.NextGaussian();
    }
  }
  auto result = Discretizer::DiscretizeTable(
      names, cols, levels, BinningMethod::kEqualFrequency);
  BAYESCROWD_CHECK_OK(result.status());
  return std::move(result).value();
}

}  // namespace bayescrowd
