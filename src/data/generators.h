// Dataset generators used by the examples, tests and benchmark harness.
//
// The paper evaluates on (i) a real NBA dataset (10,000 player-season
// records, 11 attributes) and (ii) a 100,000-record, 9-attribute
// synthetic dataset sampled from the Bayesian network of the UCI Adult
// dataset. Neither raw source is redistributable here, so MakeNbaLike()
// and MakeAdultLike() sample structurally equivalent data from hand-built
// generative models with the same cardinality, dimensionality and
// correlation style (see DESIGN.md, "Substitutions"). The classic
// independent / correlated / anti-correlated skyline workloads
// (Borzsonyi et al.) are provided as well.

#ifndef BAYESCROWD_DATA_GENERATORS_H_
#define BAYESCROWD_DATA_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "data/table.h"

namespace bayescrowd {

/// The paper's running example (Table 1): five movies, five audience
/// rating attributes, four missing cells. Returned exactly as printed —
/// already incomplete.
Table MakeSampleMovieDataset();

/// The complete version of the sample dataset consistent with the
/// crowdsourced answers of Example 4: Var(o2,a2)=4 (>3), Var(o5,a2)=3
/// (>2), Var(o5,a3)=3, Var(o5,a4)=3 (<4). Used as crowd ground truth in
/// tests and the quickstart example.
Table MakeSampleMovieGroundTruth();

/// Per-attribute marginal value distributions assumed in the paper's
/// Example 3 (a2 uniform over 0..9, a3 uniform over 0..7, a4 skewed over
/// 0..5, others uniform). Index = attribute, inner index = level.
std::vector<std::vector<double>> SampleMovieDistributions();

/// NBA-like complete table: `n` player-season records, 11 correlated
/// stat attributes (games, minutes, points, rebounds, assists, steals,
/// blocks, three_pm, ftm, low_turnovers, low_fouls), each discretized to
/// `levels` values (default 10). Larger is better on every attribute.
Table MakeNbaLike(std::size_t n, std::uint64_t seed, Level levels = 10);

/// Adult-like complete table: `n` records, 9 attributes whose dependency
/// structure mirrors UCI Adult (age -> education -> occupation ->
/// hours -> income, plus capital/relationship/sex-like attributes).
Table MakeAdultLike(std::size_t n, std::uint64_t seed);

/// Independent uniform levels.
Table MakeIndependent(std::size_t n, std::size_t d, Level levels,
                      std::uint64_t seed);

/// Correlated workload: attribute levels cluster around a per-object
/// quality score (few skyline points). `noise_scale` controls how much
/// attributes deviate from the shared score: pairwise correlation is
/// 1 / (1 + noise_scale^2), so 1.0 gives ~0.5 and larger values weaken
/// the correlation (richer skylines).
Table MakeCorrelated(std::size_t n, std::size_t d, Level levels,
                     std::uint64_t seed, double noise_scale = 1.0);

/// Anti-correlated workload: good in one attribute implies bad in others
/// (many skyline points).
Table MakeAnticorrelated(std::size_t n, std::size_t d, Level levels,
                         std::uint64_t seed);

}  // namespace bayescrowd

#endif  // BAYESCROWD_DATA_GENERATORS_H_
