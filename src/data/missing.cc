#include "data/missing.h"

#include <algorithm>
#include <cmath>
#include <functional>

namespace bayescrowd {

Table InjectMissingUniform(const Table& complete, double rate, Rng& rng) {
  Table out = complete;
  const std::size_t n = out.num_objects();
  const std::size_t d = out.num_attributes();
  const std::size_t total = n * d;
  auto target = static_cast<std::size_t>(
      std::llround(rate * static_cast<double>(total)));
  if (target > total) target = total;
  if (target == 0) return out;

  // Partial Fisher-Yates over cell indices: pick `target` distinct cells.
  std::vector<std::size_t> cells(total);
  for (std::size_t i = 0; i < total; ++i) cells[i] = i;
  for (std::size_t k = 0; k < target; ++k) {
    const std::size_t j =
        k + static_cast<std::size_t>(rng.NextBelow(total - k));
    std::swap(cells[k], cells[j]);
    out.SetCell(cells[k] / d, cells[k] % d, kMissingLevel);
  }
  return out;
}

namespace {

// Bernoulli-per-cell injection with per-cell weights scaled so that the
// expected number of missing cells is rate * (number of eligible cells).
Table InjectWeighted(const Table& complete, double rate,
                     const std::function<double(std::size_t, std::size_t)>&
                         weight_of,
                     Rng& rng) {
  Table out = complete;
  const std::size_t n = out.num_objects();
  const std::size_t d = out.num_attributes();
  double total_weight = 0.0;
  std::size_t eligible = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      const double w = weight_of(i, j);
      if (w > 0.0) {
        total_weight += w;
        ++eligible;
      }
    }
  }
  if (total_weight <= 0.0 || rate <= 0.0) return out;
  const double scale =
      rate * static_cast<double>(eligible) / total_weight;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      const double p = std::min(1.0, weight_of(i, j) * scale);
      if (p > 0.0 && rng.NextBool(p)) {
        out.SetCell(i, j, kMissingLevel);
      }
    }
  }
  return out;
}

}  // namespace

Table InjectMissingMar(const Table& complete, double rate,
                       std::size_t driver_attribute, Rng& rng) {
  const double driver_max = static_cast<double>(
      complete.schema().domain_size(driver_attribute) - 1);
  return InjectWeighted(
      complete, rate,
      [&complete, driver_attribute, driver_max](std::size_t i,
                                                std::size_t j) {
        if (j == driver_attribute) return 0.0;  // Driver stays observed.
        const double driver =
            static_cast<double>(complete.At(i, driver_attribute));
        return 0.25 + (driver_max > 0.0 ? driver / driver_max : 0.0);
      },
      rng);
}

Table InjectMissingMnar(const Table& complete, double rate, Rng& rng) {
  return InjectWeighted(
      complete, rate,
      [&complete](std::size_t i, std::size_t j) {
        const double max = static_cast<double>(
            complete.schema().domain_size(j) - 1);
        const double value = static_cast<double>(complete.At(i, j));
        return 0.25 + (max > 0.0 ? value / max : 0.0);
      },
      rng);
}

Table InjectMissingAttributes(const Table& complete,
                              const std::vector<std::size_t>& attributes) {
  Table out = complete;
  for (std::size_t attr : attributes) {
    for (std::size_t i = 0; i < out.num_objects(); ++i) {
      out.SetCell(i, attr, kMissingLevel);
    }
  }
  return out;
}

}  // namespace bayescrowd
