// Missing-value injection, following the evaluation protocol of the
// paper (Section 7): "we delete attribute values randomly to simulate
// incomplete datasets". The CrowdSky comparison instead misses *all*
// values of designated attributes.

#ifndef BAYESCROWD_DATA_MISSING_H_
#define BAYESCROWD_DATA_MISSING_H_

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "data/table.h"

namespace bayescrowd {

/// Returns a copy of `complete` with round(rate * n * d) uniformly chosen
/// distinct cells replaced by kMissingLevel. `rate` in [0, 1].
Table InjectMissingUniform(const Table& complete, double rate, Rng& rng);

/// Returns a copy of `complete` where every value of each attribute in
/// `attributes` is missing (the CrowdSky setting: attributes are split
/// into observed and crowd attributes).
Table InjectMissingAttributes(const Table& complete,
                              const std::vector<std::size_t>& attributes);

/// Missing-at-random (MAR) injection: a cell's missingness probability
/// scales with the row's *observed* value on `driver_attribute` (which
/// itself never goes missing) — e.g. heavily-used sensors drop more
/// readings. The expected overall missing rate is `rate`.
Table InjectMissingMar(const Table& complete, double rate,
                       std::size_t driver_attribute, Rng& rng);

/// Missing-not-at-random (MNAR) injection: a cell's missingness
/// probability scales with its *own* value — e.g. high values are
/// withheld. Expected overall missing rate `rate`. This violates the
/// assumptions of available-case Bayesian-network training, which is
/// exactly what the robustness ablation measures.
Table InjectMissingMnar(const Table& complete, double rate, Rng& rng);

}  // namespace bayescrowd

#endif  // BAYESCROWD_DATA_MISSING_H_
