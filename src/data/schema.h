// Schema: the ordered attribute list of a dataset, with per-attribute
// discrete domain sizes.

#ifndef BAYESCROWD_DATA_SCHEMA_H_
#define BAYESCROWD_DATA_SCHEMA_H_

#include <string>
#include <string_view>
#include <vector>

#include "data/value.h"

namespace bayescrowd {

/// One attribute: its name and the size of its discrete domain
/// {0, 1, ..., domain_size-1}.
struct AttributeInfo {
  std::string name;
  Level domain_size = 0;
};

/// Ordered attribute list shared by all rows of a table.
class Schema {
 public:
  Schema() = default;

  /// Convenience constructor from (name, domain) pairs.
  explicit Schema(std::vector<AttributeInfo> attributes)
      : attributes_(std::move(attributes)) {}

  void AddAttribute(std::string name, Level domain_size) {
    attributes_.push_back({std::move(name), domain_size});
  }

  std::size_t num_attributes() const { return attributes_.size(); }

  const AttributeInfo& attribute(std::size_t index) const {
    return attributes_[index];
  }

  Level domain_size(std::size_t index) const {
    return attributes_[index].domain_size;
  }

  /// Index of the attribute called `name`, or -1 if absent.
  int AttributeIndex(std::string_view name) const {
    for (std::size_t i = 0; i < attributes_.size(); ++i) {
      if (attributes_[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }

  friend bool operator==(const Schema& a, const Schema& b) {
    if (a.attributes_.size() != b.attributes_.size()) return false;
    for (std::size_t i = 0; i < a.attributes_.size(); ++i) {
      if (a.attributes_[i].name != b.attributes_[i].name ||
          a.attributes_[i].domain_size != b.attributes_[i].domain_size) {
        return false;
      }
    }
    return true;
  }

 private:
  std::vector<AttributeInfo> attributes_;
};

}  // namespace bayescrowd

#endif  // BAYESCROWD_DATA_SCHEMA_H_
