#include "data/table.h"

#include "common/string_util.h"

namespace bayescrowd {

Status Table::AppendRow(std::string name, const std::vector<Level>& values) {
  if (values.size() != schema_.num_attributes()) {
    return Status::InvalidArgument(StrFormat(
        "row '%s' has %zu values, schema has %zu attributes", name.c_str(),
        values.size(), schema_.num_attributes()));
  }
  for (std::size_t j = 0; j < values.size(); ++j) {
    const Level v = values[j];
    if (v != kMissingLevel && (v < 0 || v >= schema_.domain_size(j))) {
      return Status::OutOfRange(StrFormat(
          "row '%s' attribute '%s': value %d outside domain [0, %d)",
          name.c_str(), schema_.attribute(j).name.c_str(), v,
          schema_.domain_size(j)));
    }
  }
  names_.push_back(std::move(name));
  cells_.insert(cells_.end(), values.begin(), values.end());
  ++num_rows_;
  return Status::OK();
}

void Table::AppendEmptyRow(std::string name) {
  names_.push_back(std::move(name));
  cells_.insert(cells_.end(), schema_.num_attributes(), kMissingLevel);
  ++num_rows_;
}

bool Table::IsRowComplete(std::size_t object) const {
  for (std::size_t j = 0; j < schema_.num_attributes(); ++j) {
    if (IsMissing(object, j)) return false;
  }
  return true;
}

bool Table::IsComplete() const {
  for (Level v : cells_) {
    if (IsMissingLevel(v)) return false;
  }
  return true;
}

double Table::MissingRate() const {
  if (cells_.empty()) return 0.0;
  std::size_t missing = 0;
  for (Level v : cells_) {
    if (IsMissingLevel(v)) ++missing;
  }
  return static_cast<double>(missing) / static_cast<double>(cells_.size());
}

std::vector<CellRef> Table::MissingCells() const {
  std::vector<CellRef> out;
  const std::size_t d = schema_.num_attributes();
  for (std::size_t i = 0; i < num_rows_; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      if (IsMissing(i, j)) out.push_back({i, j});
    }
  }
  return out;
}

Table Table::Prefix(std::size_t count) const {
  Table out(schema_);
  if (count > num_rows_) count = num_rows_;
  out.names_.assign(names_.begin(), names_.begin() + count);
  out.cells_.assign(cells_.begin(),
                    cells_.begin() + count * schema_.num_attributes());
  out.num_rows_ = count;
  return out;
}

}  // namespace bayescrowd
