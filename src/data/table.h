// Table: a (possibly incomplete) discrete dataset O.
//
// Rows are objects o_i, columns are attributes a_j. Cells hold discrete
// levels; kMissingLevel marks an unknown value Var(o_i, a_j). The same
// type represents both complete (ground-truth) tables and the incomplete
// tables queries run over.

#ifndef BAYESCROWD_DATA_TABLE_H_
#define BAYESCROWD_DATA_TABLE_H_

#include <cassert>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "data/schema.h"
#include "data/value.h"

namespace bayescrowd {

/// Identifies one missing cell Var(object, attribute).
struct CellRef {
  std::size_t object = 0;
  std::size_t attribute = 0;

  friend bool operator==(const CellRef& a, const CellRef& b) {
    return a.object == b.object && a.attribute == b.attribute;
  }
  friend auto operator<=>(const CellRef& a, const CellRef& b) = default;
};

/// Row-major discrete data table. Cheap to copy-construct row views are
/// not provided; use indices.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  std::size_t num_objects() const { return num_rows_; }
  std::size_t num_attributes() const { return schema_.num_attributes(); }

  /// Appends a row. The value count must match the schema and every
  /// non-missing value must lie inside its attribute domain.
  Status AppendRow(std::string name, const std::vector<Level>& values);

  /// Appends an all-missing row of the correct width (for incremental
  /// construction).
  void AppendEmptyRow(std::string name);

  Level At(std::size_t object, std::size_t attribute) const {
    assert(object < num_rows_ && attribute < schema_.num_attributes());
    return cells_[object * schema_.num_attributes() + attribute];
  }

  void SetCell(std::size_t object, std::size_t attribute, Level value) {
    assert(object < num_rows_ && attribute < schema_.num_attributes());
    cells_[object * schema_.num_attributes() + attribute] = value;
  }

  bool IsMissing(std::size_t object, std::size_t attribute) const {
    return IsMissingLevel(At(object, attribute));
  }

  bool IsRowComplete(std::size_t object) const;

  /// True when no cell is missing.
  bool IsComplete() const;

  /// Fraction of missing cells over all n*d cells.
  double MissingRate() const;

  /// All missing cells, row-major order.
  std::vector<CellRef> MissingCells() const;

  const std::string& object_name(std::size_t object) const {
    return names_[object];
  }

  /// Copies rows [0, count) into a new table (for cardinality sweeps).
  Table Prefix(std::size_t count) const;

  void Reserve(std::size_t rows) {
    names_.reserve(rows);
    cells_.reserve(rows * schema_.num_attributes());
  }

 private:
  Schema schema_;
  std::vector<std::string> names_;
  std::vector<Level> cells_;  // row-major, num_rows_ x num_attributes
  std::size_t num_rows_ = 0;
};

}  // namespace bayescrowd

#endif  // BAYESCROWD_DATA_TABLE_H_
