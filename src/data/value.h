// Discrete attribute values.
//
// BayesCrowd operates on discretized data (paper Section 3: continuous
// domains are partitioned into ranges and each range is treated as a
// discrete value). An attribute value is therefore a small non-negative
// integer "level" in [0, domain_size), with larger levels preferred
// (Definition 1). A missing cell is kMissingLevel.

#ifndef BAYESCROWD_DATA_VALUE_H_
#define BAYESCROWD_DATA_VALUE_H_

#include <cstdint>

namespace bayescrowd {

/// A discretized attribute value ("level"). Larger is better.
using Level = std::int32_t;

/// Sentinel marking a missing cell in an incomplete table.
inline constexpr Level kMissingLevel = -1;

inline bool IsMissingLevel(Level v) { return v == kMissingLevel; }

}  // namespace bayescrowd

#endif  // BAYESCROWD_DATA_VALUE_H_
