#include "obs/export.h"

#include <cctype>
#include <cerrno>
#include <cstring>
#include <map>
#include <set>
#include <utility>

#include "common/string_util.h"
#include "obs/json.h"

namespace bayescrowd::obs {

std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool legal = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                       c == '_' || c == ':';
    out += legal ? c : '_';
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

namespace {

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

std::string RenderLabels(const std::vector<Label>& labels,
                         const std::string& extra_key = "",
                         const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const Label& label : labels) {
    if (!first) out += ',';
    first = false;
    out += PrometheusName(label.key);
    out += "=\"";
    out += EscapeLabelValue(label.value);
    out += '"';
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += extra_value;
    out += '"';
  }
  out += '}';
  return out;
}

// Groups a family of series by sanitized base name so the `# TYPE`
// header is emitted once per family, as the exposition format requires.
template <typename Value, typename Emit>
void RenderFamilies(const std::map<std::string, Value>& series,
                    const char* type, std::string* out, Emit&& emit) {
  std::set<std::string> typed;
  for (const auto& [key, value] : series) {
    std::string base;
    std::vector<Label> labels;
    ParseSeriesName(key, &base, &labels);
    const std::string name = PrometheusName(base);
    if (typed.insert(name).second) {
      *out += StrFormat("# TYPE %s %s\n", name.c_str(), type);
    }
    emit(name, labels, value, out);
  }
}

}  // namespace

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  RenderFamilies(snapshot.counters, "counter", &out,
                 [](const std::string& name, const std::vector<Label>& labels,
                    std::uint64_t value, std::string* text) {
                   *text += StrFormat(
                       "%s%s %llu\n", name.c_str(),
                       RenderLabels(labels).c_str(),
                       static_cast<unsigned long long>(value));
                 });
  RenderFamilies(snapshot.gauges, "gauge", &out,
                 [](const std::string& name, const std::vector<Label>& labels,
                    double value, std::string* text) {
                   *text += StrFormat("%s%s %.17g\n", name.c_str(),
                                      RenderLabels(labels).c_str(), value);
                 });
  RenderFamilies(
      snapshot.histograms, "histogram", &out,
      [](const std::string& name, const std::vector<Label>& labels,
         const HistogramSnapshot& hist, std::string* text) {
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < hist.bucket_counts.size(); ++i) {
          cumulative += hist.bucket_counts[i];
          const std::string le =
              i < hist.bounds.size() ? StrFormat("%.17g", hist.bounds[i])
                                     : std::string("+Inf");
          *text += StrFormat(
              "%s_bucket%s %llu\n", name.c_str(),
              RenderLabels(labels, "le", le).c_str(),
              static_cast<unsigned long long>(cumulative));
        }
        *text += StrFormat("%s_sum%s %.17g\n", name.c_str(),
                           RenderLabels(labels).c_str(), hist.sum);
        *text += StrFormat("%s_count%s %llu\n", name.c_str(),
                           RenderLabels(labels).c_str(),
                           static_cast<unsigned long long>(hist.count));
      });
  return out;
}

Result<std::unique_ptr<PrometheusFileExporter>> PrometheusFileExporter::Open(
    const std::string& path) {
  std::FILE* probe = std::fopen(path.c_str(), "w");
  if (probe == nullptr) {
    return Status::IOError(StrFormat("cannot write metrics file %s: %s",
                                     path.c_str(), std::strerror(errno)));
  }
  std::fclose(probe);
  return std::unique_ptr<PrometheusFileExporter>(
      new PrometheusFileExporter(path));
}

Status PrometheusFileExporter::OnRound(std::uint64_t /*round*/,
                                       const MetricsSnapshot& snapshot) {
  std::FILE* file = std::fopen(path_.c_str(), "w");
  if (file == nullptr) {
    return Status::IOError(StrFormat("cannot rewrite metrics file %s: %s",
                                     path_.c_str(), std::strerror(errno)));
  }
  const std::string text = ToPrometheusText(snapshot);
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), file) == text.size();
  if (std::fclose(file) != 0 || !ok) {
    return Status::IOError(
        StrFormat("short write to metrics file %s", path_.c_str()));
  }
  return Status::OK();
}

Result<std::unique_ptr<JsonlStreamExporter>> JsonlStreamExporter::Open(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "a");
  if (file == nullptr) {
    return Status::IOError(StrFormat("cannot open metrics stream %s: %s",
                                     path.c_str(), std::strerror(errno)));
  }
  return std::unique_ptr<JsonlStreamExporter>(new JsonlStreamExporter(file));
}

JsonlStreamExporter::~JsonlStreamExporter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status JsonlStreamExporter::OnRound(std::uint64_t round,
                                    const MetricsSnapshot& snapshot) {
  JsonValue line = JsonValue::Object();
  line["schema_version"] = 1;
  line["kind"] = "round_snapshot";
  line["round"] = round;
  line["metrics"] = snapshot.ToJson();
  const std::string text = line.Dump() + "\n";
  if (std::fwrite(text.data(), 1, text.size(), file_) != text.size() ||
      std::fflush(file_) != 0) {
    return Status::IOError("short write to metrics stream");
  }
  return Status::OK();
}

Status SnapshotFanout::OnRound(std::uint64_t round,
                               const MetricsSnapshot& snapshot) {
  for (RoundSnapshotSink* sink : sinks_) {
    BAYESCROWD_RETURN_NOT_OK(sink->OnRound(round, snapshot));
  }
  return Status::OK();
}

}  // namespace bayescrowd::obs
