// Live metric export: Prometheus text exposition of a MetricsSnapshot,
// and per-round snapshot sinks the framework drives at each round
// boundary (`--metrics-prom` rewrites a scrape file, `--metrics-stream`
// appends one JSONL envelope per round). These are the seams ROADMAP
// item 1 turns into the resident server's live endpoints.
//
// Export is observation-only: sinks consume snapshots, nothing in the
// query pipeline reads them back, so the obs-on/off and thread-count
// bit-identity contracts are untouched.

#ifndef BAYESCROWD_OBS_EXPORT_H_
#define BAYESCROWD_OBS_EXPORT_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace bayescrowd::obs {

/// Renders a snapshot in Prometheus text exposition format. Metric
/// names are sanitized to [a-zA-Z_:][a-zA-Z0-9_:]* (dots become
/// underscores); labeled series keys are parsed back into label pairs;
/// histograms emit cumulative `_bucket{le=...}` plus `_sum`/`_count`.
std::string ToPrometheusText(const MetricsSnapshot& snapshot);

/// Prometheus-legal metric name derived from an internal dotted name.
std::string PrometheusName(const std::string& name);

/// Receives the full metrics snapshot at each round boundary. Called
/// from the single-threaded round loop only.
class RoundSnapshotSink {
 public:
  virtual ~RoundSnapshotSink() = default;
  virtual Status OnRound(std::uint64_t round,
                         const MetricsSnapshot& snapshot) = 0;
};

/// Rewrites `path` with the Prometheus exposition of each snapshot —
/// a file scrape target that always shows the latest round.
class PrometheusFileExporter : public RoundSnapshotSink {
 public:
  /// Verifies the path is writable up front (the CLI wants a one-line
  /// diagnostic at flag time, not a crash mid-run).
  static Result<std::unique_ptr<PrometheusFileExporter>> Open(
      const std::string& path);

  Status OnRound(std::uint64_t round, const MetricsSnapshot& snapshot) override;

 private:
  explicit PrometheusFileExporter(std::string path)
      : path_(std::move(path)) {}
  const std::string path_;
};

/// Appends one compact JSON line per round:
/// {"schema_version":1,"kind":"round_snapshot","round":N,"metrics":{...}}.
class JsonlStreamExporter : public RoundSnapshotSink {
 public:
  static Result<std::unique_ptr<JsonlStreamExporter>> Open(
      const std::string& path);
  ~JsonlStreamExporter() override;

  Status OnRound(std::uint64_t round, const MetricsSnapshot& snapshot) override;

 private:
  explicit JsonlStreamExporter(std::FILE* file) : file_(file) {}
  std::FILE* file_;
};

/// Fans one snapshot out to several sinks (prom file + jsonl stream).
class SnapshotFanout : public RoundSnapshotSink {
 public:
  void Add(RoundSnapshotSink* sink) { sinks_.push_back(sink); }
  bool empty() const { return sinks_.empty(); }

  Status OnRound(std::uint64_t round, const MetricsSnapshot& snapshot) override;

 private:
  std::vector<RoundSnapshotSink*> sinks_;
};

}  // namespace bayescrowd::obs

#endif  // BAYESCROWD_OBS_EXPORT_H_
