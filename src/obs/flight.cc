#include "obs/flight.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/string_util.h"
#include "obs/json.h"

namespace bayescrowd::obs {

const char* FlightEventKindToString(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kDegradation: return "degradation";
    case FlightEventKind::kBreakerTrip: return "breaker_trip";
    case FlightEventKind::kCompileRefusal: return "compile_refusal";
    case FlightEventKind::kRetry: return "retry";
    case FlightEventKind::kRoundAbandoned: return "round_abandoned";
    case FlightEventKind::kCheckpointWrite: return "checkpoint_write";
    case FlightEventKind::kBudgetExhausted: return "budget_exhausted";
    case FlightEventKind::kResume: return "resume";
    case FlightEventKind::kNote: return "note";
    case FlightEventKind::kAdmission: return "admission";
    case FlightEventKind::kEviction: return "eviction";
    case FlightEventKind::kQosDegrade: return "qos_degrade";
    case FlightEventKind::kQuarantine: return "quarantine";
    case FlightEventKind::kOverload: return "overload";
    case FlightEventKind::kRecovery: return "recovery";
    case FlightEventKind::kKappaCollapse: return "kappa_collapse";
    case FlightEventKind::kWorkerQuarantine: return "worker_quarantine";
  }
  return "unknown";
}

bool ParseFlightEventKind(const std::string& name, FlightEventKind* out) {
  for (int i = 0;
       i <= static_cast<int>(FlightEventKind::kWorkerQuarantine); ++i) {
    const auto kind = static_cast<FlightEventKind>(i);
    if (name == FlightEventKindToString(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void FlightRecorder::Record(FlightEventKind kind, std::uint64_t round,
                            std::int64_t object, double sim_seconds,
                            double value, std::string detail) {
  std::lock_guard<std::mutex> lock(mu_);
  FlightEvent event;
  event.seq = total_++;
  event.kind = kind;
  event.round = round;
  event.object = object;
  event.sim_seconds = sim_seconds;
  event.value = value;
  event.detail = std::move(detail);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[event.seq % capacity_] = std::move(event);
  }
}

std::vector<FlightEvent> FlightRecorder::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FlightEvent> out;
  out.reserve(ring_.size());
  if (total_ <= capacity_) {
    out = ring_;
  } else {
    // The ring wrapped: oldest retained event is at total_ % capacity_.
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(total_ + i) % capacity_]);
    }
  }
  return out;
}

std::uint64_t FlightRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::uint64_t FlightRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ > capacity_ ? total_ - capacity_ : 0;
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  total_ = 0;
}

namespace {

JsonValue EventToJson(const FlightEvent& event) {
  JsonValue line = JsonValue::Object();
  line["seq"] = event.seq;
  line["kind"] = FlightEventKindToString(event.kind);
  line["round"] = event.round;
  line["object"] = event.object;
  line["sim_seconds"] = event.sim_seconds;
  line["value"] = event.value;
  line["detail"] = event.detail;
  return line;
}

}  // namespace

Status FlightRecorder::WriteJsonl(const std::string& path) const {
  const std::vector<FlightEvent> events = Events();
  std::uint64_t total;
  {
    std::lock_guard<std::mutex> lock(mu_);
    total = total_;
  }
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IOError(StrFormat("cannot write flight log %s: %s",
                                     path.c_str(), std::strerror(errno)));
  }
  JsonValue header = JsonValue::Object();
  header["kind"] = "flight_header";
  header["schema_version"] = 1;
  header["total_recorded"] = total;
  header["retained"] = events.size();
  std::string text = header.Dump() + "\n";
  for (const FlightEvent& event : events) {
    text += EventToJson(event).Dump();
    text += '\n';
  }
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), file) == text.size();
  if (std::fclose(file) != 0 || !ok) {
    return Status::IOError(
        StrFormat("short write to flight log %s", path.c_str()));
  }
  return Status::OK();
}

Result<FlightLoad> LoadFlightJsonl(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError(
        StrFormat("cannot read flight log %s", path.c_str()));
  }
  FlightLoad load;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Result<JsonValue> parsed = JsonValue::Parse(line);
    if (!parsed.ok()) {
      ++load.corrupt_lines;  // Torn tail or stray garbage: skip.
      continue;
    }
    const JsonValue& doc = parsed.value();
    const JsonValue* kind = doc.Find("kind");
    if (kind == nullptr) {
      ++load.corrupt_lines;
      continue;
    }
    if (kind->AsString() == "flight_header") {
      const JsonValue* total = doc.Find("total_recorded");
      if (total != nullptr) {
        load.total_recorded = static_cast<std::uint64_t>(total->AsInt());
      }
      continue;
    }
    FlightEvent event;
    if (!ParseFlightEventKind(kind->AsString(), &event.kind)) {
      ++load.corrupt_lines;
      continue;
    }
    if (const JsonValue* v = doc.Find("seq")) {
      event.seq = static_cast<std::uint64_t>(v->AsInt());
    }
    if (const JsonValue* v = doc.Find("round")) {
      event.round = static_cast<std::uint64_t>(v->AsInt());
    }
    if (const JsonValue* v = doc.Find("object")) event.object = v->AsInt();
    if (const JsonValue* v = doc.Find("sim_seconds")) {
      event.sim_seconds = v->AsDouble();
    }
    if (const JsonValue* v = doc.Find("value")) event.value = v->AsDouble();
    if (const JsonValue* v = doc.Find("detail")) event.detail = v->AsString();
    load.events.push_back(std::move(event));
  }
  return load;
}

}  // namespace bayescrowd::obs
