// FlightRecorder: a fixed-capacity ring buffer of structured runtime
// events (degradations, breaker trips, compile refusals, retries,
// checkpoint writes, budget exhaustion) that survives to a JSONL
// artifact when a run ends — cleanly, by budget exhaustion, or by
// crash. Unlike metrics (aggregates) and traces (timing), the flight
// recorder answers "what happened, in order, just before the end".
//
// Recording takes a mutex; every producer site is on the framework's
// single-threaded round loop and fires at most a handful of times per
// round, so the lock is uncontended. The ring keeps the newest
// `capacity` events plus a total count so readers can tell how many
// were dropped.

#ifndef BAYESCROWD_OBS_FLIGHT_H_
#define BAYESCROWD_OBS_FLIGHT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace bayescrowd::obs {

enum class FlightEventKind : std::uint8_t {
  kDegradation = 0,     // Solver budget exhausted below exact tier.
  kBreakerTrip = 1,     // Per-object circuit breaker opened.
  kCompileRefusal = 2,  // Knowledge compilation refused (budget).
  kRetry = 3,           // Crowd batch retried after a transient failure.
  kRoundAbandoned = 4,  // Retries exhausted; round degraded.
  kCheckpointWrite = 5, // Session snapshot persisted.
  kBudgetExhausted = 6, // Crowd budget fully spent; loop ends.
  kResume = 7,          // Session restored from a checkpoint.
  kNote = 8,            // Free-form marker (tests, tooling).
  // Serving-layer events (src/serve/): per-tenant lifecycle + QoS.
  kAdmission = 9,       // Session admitted to (or rejected by) the server.
  kEviction = 10,       // Resident session evicted (explicit or LRU).
  kQosDegrade = 11,     // Tenant over its QoS allowance; governor tightened.
  // Crash-only serving events: fault containment + mass recovery.
  kQuarantine = 12,     // Poison session isolated after repeated failures.
  kOverload = 13,       // Request shed at the bounded admission queue.
  kRecovery = 14,       // Session mass-resumed from the serve manifest.
  // Crowd-marketplace defense events (src/crowd/marketplace.h).
  kKappaCollapse = 15,    // Round agreement fell below the kappa floor.
  kWorkerQuarantine = 16, // Worker(s) quarantined by joint inference.
};

const char* FlightEventKindToString(FlightEventKind kind);
bool ParseFlightEventKind(const std::string& name, FlightEventKind* out);

struct FlightEvent {
  std::uint64_t seq = 0;  // Monotone per-recorder sequence number.
  FlightEventKind kind = FlightEventKind::kNote;
  std::uint64_t round = 0;
  std::int64_t object = -1;     // Object id, or -1 when not applicable.
  double sim_seconds = 0.0;     // Simulated clock (deterministic).
  double value = 0.0;           // Kind-specific magnitude (count, delta).
  std::string detail;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  void Record(FlightEventKind kind, std::uint64_t round, std::int64_t object,
              double sim_seconds, double value, std::string detail);

  /// Oldest-first copy of the retained window.
  std::vector<FlightEvent> Events() const;
  std::uint64_t total_recorded() const;
  /// Events that fell off the ring (total_recorded - retained).
  std::uint64_t dropped() const;
  std::size_t capacity() const { return capacity_; }
  void Clear();

  /// One compact JSON object per line, oldest first, preceded by a
  /// header line carrying totals.
  Status WriteJsonl(const std::string& path) const;

  static constexpr std::size_t kDefaultCapacity = 256;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<FlightEvent> ring_;  // Wraps at capacity_.
  std::uint64_t total_ = 0;
};

struct FlightLoad {
  std::vector<FlightEvent> events;
  std::uint64_t total_recorded = 0;  // From the header, if present.
  std::size_t corrupt_lines = 0;     // Unparseable lines skipped.
};

/// Tolerant JSONL load: unparseable lines (a torn tail after a crash,
/// stray garbage) are counted and skipped, never fatal. Only a missing
/// file is an error.
Result<FlightLoad> LoadFlightJsonl(const std::string& path);

// Free-function mutators so call sites can hold a nullable recorder.
inline void RecordFlight(FlightRecorder* recorder, FlightEventKind kind,
                         std::uint64_t round, std::int64_t object,
                         double sim_seconds, double value,
                         std::string detail) {
  if (recorder != nullptr) {
    recorder->Record(kind, round, object, sim_seconds, value,
                     std::move(detail));
  }
}

}  // namespace bayescrowd::obs

#endif  // BAYESCROWD_OBS_FLIGHT_H_
