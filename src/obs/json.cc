#include "obs/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/string_util.h"

namespace bayescrowd::obs {
namespace {

void AppendEscaped(std::string_view text, std::string* out) {
  out->push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(double value, std::string* out) {
  if (!std::isfinite(value)) {
    *out += "null";  // JSON has no NaN/Inf; null keeps the document valid.
    return;
  }
  std::string repr = StrFormat("%.17g", value);
  // Guarantee the value re-parses as a double, not an integer.
  if (repr.find_first_of(".eE") == std::string::npos) repr += ".0";
  *out += repr;
}

void Indent(std::string* out, int indent, int depth) {
  out->push_back('\n');
  out->append(static_cast<std::size_t>(indent * depth), ' ');
}

// ---------------------------------------------------------------- //
// Recursive-descent parser.
// ---------------------------------------------------------------- //

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Run() {
    BAYESCROWD_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 128;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("JSON parse error at offset %zu: %s", pos_, what.c_str()));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogates pass through as
          // replacement; trace/metrics content is ASCII in practice).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape character");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    const std::size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string repr(text_.substr(start, pos_ - start));
    if (repr.empty() || repr == "-") return Error("malformed number");
    if (repr.find_first_of(".eE") == std::string::npos) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(repr.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        return JsonValue(static_cast<std::int64_t>(v));
      }
      // Out-of-range integer: fall through to double.
    }
    char* end = nullptr;
    const double v = std::strtod(repr.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("malformed number");
    return JsonValue(v);
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      JsonValue obj = JsonValue::Object();
      SkipSpace();
      if (Consume('}')) return obj;
      while (true) {
        SkipSpace();
        BAYESCROWD_ASSIGN_OR_RETURN(std::string key, ParseString());
        SkipSpace();
        if (!Consume(':')) return Error("expected ':'");
        BAYESCROWD_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
        obj[key] = std::move(value);
        SkipSpace();
        if (Consume(',')) continue;
        if (Consume('}')) return obj;
        return Error("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos_;
      JsonValue arr = JsonValue::Array();
      SkipSpace();
      if (Consume(']')) return arr;
      while (true) {
        BAYESCROWD_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
        arr.Append(std::move(value));
        SkipSpace();
        if (Consume(',')) continue;
        if (Consume(']')) return arr;
        return Error("expected ',' or ']'");
      }
    }
    if (c == '"') {
      BAYESCROWD_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue(std::move(s));
    }
    if (ConsumeWord("true")) return JsonValue(true);
    if (ConsumeWord("false")) return JsonValue(false);
    if (ConsumeWord("null")) return JsonValue();
    return ParseNumber();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

void JsonValue::Append(JsonValue value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  items_.push_back(std::move(value));
}

std::size_t JsonValue::size() const {
  return kind_ == Kind::kObject ? members_.size() : items_.size();
}

JsonValue& JsonValue::operator[](const std::string& key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  for (auto& [name, value] : members_) {
    if (name == key) return value;
  }
  members_.emplace_back(key, JsonValue());
  return members_.back().second;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Kind::kInt:
      *out += StrFormat("%lld", static_cast<long long>(int_));
      return;
    case Kind::kDouble:
      AppendNumber(double_, out);
      return;
    case Kind::kString:
      AppendEscaped(string_, out);
      return;
    case Kind::kArray: {
      if (items_.empty()) {
        *out += "[]";
        return;
      }
      out->push_back('[');
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out->push_back(',');
        if (indent > 0) Indent(out, indent, depth + 1);
        items_[i].DumpTo(out, indent, depth + 1);
      }
      if (indent > 0) Indent(out, indent, depth);
      out->push_back(']');
      return;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        *out += "{}";
        return;
      }
      out->push_back('{');
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        if (indent > 0) Indent(out, indent, depth + 1);
        AppendEscaped(members_[i].first, out);
        out->push_back(':');
        if (indent > 0) out->push_back(' ');
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (indent > 0) Indent(out, indent, depth);
      out->push_back('}');
      return;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).Run();
}

Status WriteJsonFile(const JsonValue& value, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError(
        StrFormat("cannot open '%s' for writing", path.c_str()));
  }
  const std::string text = value.Dump(/*indent=*/2) + "\n";
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const int closed = std::fclose(f);
  if (written != text.size() || closed != 0) {
    return Status::IOError(StrFormat("short write to '%s'", path.c_str()));
  }
  return Status::OK();
}

Result<JsonValue> ReadJsonFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError(StrFormat("cannot open '%s'", path.c_str()));
  }
  std::string text;
  char buffer[1 << 14];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof buffer, f)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(f);
  return JsonValue::Parse(text);
}

}  // namespace bayescrowd::obs
