// Minimal JSON document model shared by the observability layer: the
// metrics snapshot renderer, the Chrome-trace writer, the run-telemetry
// emitter, and the CLI's `jsoncheck` validator all speak this type.
//
// Deliberately small: ordered objects (stable, diffable output), int64 /
// double split preserved on parse, no external dependencies.

#ifndef BAYESCROWD_OBS_JSON_H_
#define BAYESCROWD_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/result.h"

namespace bayescrowd::obs {

class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kInt,
    kDouble,
    kString,
    kArray,
    kObject,
  };

  JsonValue() = default;  // null
  JsonValue(bool value) : kind_(Kind::kBool), bool_(value) {}
  template <typename T,
            typename = std::enable_if_t<std::is_integral_v<T> &&
                                        !std::is_same_v<T, bool>>>
  JsonValue(T value)
      : kind_(Kind::kInt), int_(static_cast<std::int64_t>(value)) {}
  JsonValue(double value) : kind_(Kind::kDouble), double_(value) {}
  JsonValue(std::string value)
      : kind_(Kind::kString), string_(std::move(value)) {}
  JsonValue(const char* value) : kind_(Kind::kString), string_(value) {}

  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }

  bool AsBool() const { return bool_; }
  std::int64_t AsInt() const {
    return kind_ == Kind::kDouble ? static_cast<std::int64_t>(double_)
                                  : int_;
  }
  double AsDouble() const {
    return kind_ == Kind::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& AsString() const { return string_; }

  /// Array access. Append converts a null value into an array.
  void Append(JsonValue value);
  std::size_t size() const;
  const JsonValue& at(std::size_t i) const { return items_[i]; }

  /// Object access. operator[] inserts a null member on first use (and
  /// converts a null value into an object); insertion order is kept.
  JsonValue& operator[](const std::string& key);
  const JsonValue* Find(std::string_view key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Serializes; indent 0 is compact, > 0 pretty-prints.
  std::string Dump(int indent = 0) const;

  /// Strict parse of one JSON document (trailing garbage is an error).
  static Result<JsonValue> Parse(std::string_view text);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;                             // kArray
  std::vector<std::pair<std::string, JsonValue>> members_;   // kObject
};

/// Writes `value` (compact) to `path`, replacing any existing file.
Status WriteJsonFile(const JsonValue& value, const std::string& path);

/// Reads and parses `path`.
Result<JsonValue> ReadJsonFile(const std::string& path);

}  // namespace bayescrowd::obs

#endif  // BAYESCROWD_OBS_JSON_H_
