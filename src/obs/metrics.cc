#include "obs/metrics.h"

#include <algorithm>
#include <cstring>

#include "common/string_util.h"

namespace bayescrowd::obs {

std::uint64_t Gauge::Pack(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

double Gauge::Unpack(std::uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_([&bounds] {
        std::sort(bounds.begin(), bounds.end());
        return std::move(bounds);
      }()),
      buckets_(bounds_.size() + 1) {}

void Histogram::Observe(double value) {
  std::size_t bucket = bounds_.size();  // Overflow by default.
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t observed = sum_bits_.load(std::memory_order_relaxed);
  while (true) {
    const std::uint64_t updated = Gauge::Pack(Gauge::Unpack(observed) + value);
    if (sum_bits_.compare_exchange_weak(observed, updated,
                                        std::memory_order_relaxed)) {
      break;
    }
  }
}

double Histogram::sum() const {
  return Gauge::Unpack(sum_bits_.load(std::memory_order_relaxed));
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

void Histogram::Restore(const HistogramSnapshot& snapshot) {
  Reset();
  const std::size_t n =
      std::min(buckets_.size(), snapshot.bucket_counts.size());
  for (std::size_t i = 0; i < n; ++i) {
    buckets_[i].store(snapshot.bucket_counts[i], std::memory_order_relaxed);
  }
  count_.store(snapshot.count, std::memory_order_relaxed);
  sum_bits_.store(Gauge::Pack(snapshot.sum), std::memory_order_relaxed);
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    out += StrFormat("%s %llu\n", name.c_str(),
                     static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : gauges) {
    out += StrFormat("%s %g\n", name.c_str(), value);
  }
  for (const auto& [name, hist] : histograms) {
    out += StrFormat("%s count=%llu sum=%g buckets=[", name.c_str(),
                     static_cast<unsigned long long>(hist.count), hist.sum);
    for (std::size_t i = 0; i < hist.bucket_counts.size(); ++i) {
      if (i > 0) out += ", ";
      if (i < hist.bounds.size()) {
        out += StrFormat("<=%g: %llu", hist.bounds[i],
                         static_cast<unsigned long long>(
                             hist.bucket_counts[i]));
      } else {
        out += StrFormat(">%g: %llu",
                         hist.bounds.empty() ? 0.0 : hist.bounds.back(),
                         static_cast<unsigned long long>(
                             hist.bucket_counts[i]));
      }
    }
    out += "]\n";
  }
  return out;
}

JsonValue MetricsSnapshot::ToJson() const {
  JsonValue out = JsonValue::Object();
  JsonValue& counter_obj = out["counters"];
  counter_obj = JsonValue::Object();
  for (const auto& [name, value] : counters) counter_obj[name] = value;
  JsonValue& gauge_obj = out["gauges"];
  gauge_obj = JsonValue::Object();
  for (const auto& [name, value] : gauges) gauge_obj[name] = value;
  JsonValue& hist_obj = out["histograms"];
  hist_obj = JsonValue::Object();
  for (const auto& [name, hist] : histograms) {
    JsonValue entry = JsonValue::Object();
    JsonValue bounds = JsonValue::Array();
    for (const double b : hist.bounds) bounds.Append(b);
    JsonValue buckets = JsonValue::Array();
    for (const std::uint64_t c : hist.bucket_counts) buckets.Append(c);
    entry["bounds"] = std::move(bounds);
    entry["bucket_counts"] = std::move(buckets);
    entry["count"] = hist.count;
    entry["sum"] = hist.sum;
    hist_obj[name] = std::move(entry);
  }
  return out;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->value();
  }
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot h;
    h.bounds = hist->bounds();
    h.bucket_counts.resize(h.bounds.size() + 1);
    for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
      h.bucket_counts[i] = hist->bucket_count(i);
    }
    h.count = hist->count();
    h.sum = hist->sum();
    snapshot.histograms[name] = std::move(h);
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

void MetricsRegistry::Restore(const MetricsSnapshot& snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, value] : snapshot.counters) {
    auto& slot = counters_[name];
    if (slot == nullptr) slot = std::make_unique<Counter>();
    slot->Set(value);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    auto& slot = gauges_[name];
    if (slot == nullptr) slot = std::make_unique<Gauge>();
    slot->Set(value);
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    auto& slot = histograms_[name];
    if (slot == nullptr) slot = std::make_unique<Histogram>(hist.bounds);
    slot->Restore(hist);
  }
}

MetricsRegistry& MetricsRegistry::Default() {
  static auto* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace bayescrowd::obs
