#include "obs/metrics.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "common/string_util.h"

namespace bayescrowd::obs {

std::string LabeledSeriesName(const std::string& name,
                              std::vector<Label> labels) {
  if (labels.empty()) return name;
  std::sort(labels.begin(), labels.end(),
            [](const Label& a, const Label& b) { return a.key < b.key; });
  std::string out = name;
  out += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].key;
    out += "=\"";
    out += labels[i].value;
    out += '"';
  }
  out += '}';
  return out;
}

void ParseSeriesName(const std::string& series, std::string* base,
                     std::vector<Label>* labels) {
  labels->clear();
  const std::size_t brace = series.find('{');
  if (brace == std::string::npos || series.back() != '}') {
    *base = series;
    return;
  }
  *base = series.substr(0, brace);
  // Label values come from the interner (identifier-ish vocabulary, no
  // embedded quotes), so a flat scan over `k="v",...` suffices.
  std::size_t pos = brace + 1;
  const std::size_t end = series.size() - 1;
  while (pos < end) {
    const std::size_t eq = series.find('=', pos);
    if (eq == std::string::npos || eq >= end) break;
    Label label;
    label.key = series.substr(pos, eq - pos);
    std::size_t vstart = eq + 1;
    if (vstart < end && series[vstart] == '"') ++vstart;
    std::size_t vend = series.find('"', vstart);
    if (vend == std::string::npos || vend > end) vend = end;
    label.value = series.substr(vstart, vend - vstart);
    labels->push_back(std::move(label));
    pos = vend + 1;
    if (pos < end && series[pos] == ',') ++pos;
  }
}

std::uint64_t Gauge::Pack(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

double Gauge::Unpack(std::uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_([&bounds] {
        std::sort(bounds.begin(), bounds.end());
        return std::move(bounds);
      }()),
      buckets_(bounds_.size() + 1) {}

void Histogram::Observe(double value) {
  std::size_t bucket = bounds_.size();  // Overflow by default.
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t observed = sum_bits_.load(std::memory_order_relaxed);
  while (true) {
    const std::uint64_t updated = Gauge::Pack(Gauge::Unpack(observed) + value);
    if (sum_bits_.compare_exchange_weak(observed, updated,
                                        std::memory_order_relaxed)) {
      break;
    }
  }
}

double Histogram::sum() const {
  return Gauge::Unpack(sum_bits_.load(std::memory_order_relaxed));
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

void Histogram::Restore(const HistogramSnapshot& snapshot) {
  Reset();
  const std::size_t n =
      std::min(buckets_.size(), snapshot.bucket_counts.size());
  for (std::size_t i = 0; i < n; ++i) {
    buckets_[i].store(snapshot.bucket_counts[i], std::memory_order_relaxed);
  }
  count_.store(snapshot.count, std::memory_order_relaxed);
  sum_bits_.store(Gauge::Pack(snapshot.sum), std::memory_order_relaxed);
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    out += StrFormat("%s %llu\n", name.c_str(),
                     static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : gauges) {
    out += StrFormat("%s %g\n", name.c_str(), value);
  }
  for (const auto& [name, hist] : histograms) {
    out += StrFormat("%s count=%llu sum=%g buckets=[", name.c_str(),
                     static_cast<unsigned long long>(hist.count), hist.sum);
    for (std::size_t i = 0; i < hist.bucket_counts.size(); ++i) {
      if (i > 0) out += ", ";
      if (i < hist.bounds.size()) {
        out += StrFormat("<=%g: %llu", hist.bounds[i],
                         static_cast<unsigned long long>(
                             hist.bucket_counts[i]));
      } else {
        out += StrFormat(">%g: %llu",
                         hist.bounds.empty() ? 0.0 : hist.bounds.back(),
                         static_cast<unsigned long long>(
                             hist.bucket_counts[i]));
      }
    }
    out += "]\n";
  }
  return out;
}

JsonValue MetricsSnapshot::ToJson() const {
  JsonValue out = JsonValue::Object();
  JsonValue& counter_obj = out["counters"];
  counter_obj = JsonValue::Object();
  for (const auto& [name, value] : counters) counter_obj[name] = value;
  JsonValue& gauge_obj = out["gauges"];
  gauge_obj = JsonValue::Object();
  for (const auto& [name, value] : gauges) gauge_obj[name] = value;
  JsonValue& hist_obj = out["histograms"];
  hist_obj = JsonValue::Object();
  for (const auto& [name, hist] : histograms) {
    JsonValue entry = JsonValue::Object();
    JsonValue bounds = JsonValue::Array();
    for (const double b : hist.bounds) bounds.Append(b);
    JsonValue buckets = JsonValue::Array();
    for (const std::uint64_t c : hist.bucket_counts) buckets.Append(c);
    entry["bounds"] = std::move(bounds);
    entry["bucket_counts"] = std::move(buckets);
    entry["count"] = hist.count;
    entry["sum"] = hist.sum;
    hist_obj[name] = std::move(entry);
  }
  return out;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return slot.get();
}

std::uint32_t MetricsRegistry::InternLocked(const std::string& key,
                                            const std::string& value) {
  LabelSpace& space = label_spaces_[key];
  const auto it = space.ids.find(value);
  if (it != space.ids.end()) return it->second;
  if (space.ids.size() >= kMaxLabelValuesPerKey) {
    if (!space.overflowed) {
      space.overflowed = true;
      ++label_overflow_keys_;
      BAYESCROWD_LOG(Warning)
          << "metrics label key '" << key << "' exceeded "
          << kMaxLabelValuesPerKey
          << " distinct values; further values collapse into \""
          << kLabelOverflowValue << "\"";
    }
    const auto overflow = space.ids.find(kLabelOverflowValue);
    if (overflow != space.ids.end()) return overflow->second;
    // The cap reserves no slot for "_other"; it becomes the next id.
    const auto id = static_cast<std::uint32_t>(space.ids.size());
    space.ids.emplace(kLabelOverflowValue, id);
    return id;
  }
  const auto id = static_cast<std::uint32_t>(space.ids.size());
  space.ids.emplace(value, id);
  return id;
}

std::uint32_t MetricsRegistry::InternLabelValue(const std::string& key,
                                                const std::string& value) {
  std::lock_guard<std::mutex> lock(mu_);
  return InternLocked(key, value);
}

std::string MetricsRegistry::InternedLabelValue(const std::string& key,
                                                const std::string& value) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint32_t id = InternLocked(key, value);
  const LabelSpace& space = label_spaces_[key];
  for (const auto& [interned, interned_id] : space.ids) {
    if (interned_id == id) return interned;
  }
  return value;  // Unreachable: the id was just interned.
}

std::uint64_t MetricsRegistry::label_overflow_keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  return label_overflow_keys_;
}

std::string MetricsRegistry::CanonicalSeries(const std::string& name,
                                             std::vector<Label> labels) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Label& label : labels) {
      const std::uint32_t id = InternLocked(label.key, label.value);
      const LabelSpace& space = label_spaces_[label.key];
      if (space.overflowed) {
        // The value may have been collapsed; resolve the id back.
        for (const auto& [interned, interned_id] : space.ids) {
          if (interned_id == id) {
            label.value = interned;
            break;
          }
        }
      }
    }
    if (label_overflow_keys_ > 0) {
      auto& slot = counters_["obs.label_overflow"];
      if (slot == nullptr) slot = std::make_unique<Counter>();
      slot->Set(label_overflow_keys_);
    }
  }
  return LabeledSeriesName(name, std::move(labels));
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     std::vector<Label> labels) {
  return GetCounter(CanonicalSeries(name, std::move(labels)));
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 std::vector<Label> labels) {
  return GetGauge(CanonicalSeries(name, std::move(labels)));
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<Label> labels,
                                         std::vector<double> bounds) {
  return GetHistogram(CanonicalSeries(name, std::move(labels)),
                      std::move(bounds));
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->value();
  }
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot h;
    h.bounds = hist->bounds();
    h.bucket_counts.resize(h.bounds.size() + 1);
    for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
      h.bucket_counts[i] = hist->bucket_count(i);
    }
    h.count = hist->count();
    h.sum = hist->sum();
    snapshot.histograms[name] = std::move(h);
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

void MetricsRegistry::Restore(const MetricsSnapshot& snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, value] : snapshot.counters) {
    auto& slot = counters_[name];
    if (slot == nullptr) slot = std::make_unique<Counter>();
    slot->Set(value);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    auto& slot = gauges_[name];
    if (slot == nullptr) slot = std::make_unique<Gauge>();
    slot->Set(value);
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    auto& slot = histograms_[name];
    if (slot == nullptr) slot = std::make_unique<Histogram>(hist.bounds);
    slot->Restore(hist);
  }
}

MetricsRegistry& MetricsRegistry::Default() {
  static auto* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace bayescrowd::obs
