// MetricsRegistry: named counters, gauges, and fixed-bucket histograms
// shared by every subsystem (evaluator cache, ADPLL, thread pool,
// Bayes-net inference, the framework round loop).
//
// Hot-path contract: instrument handles are resolved once (registry
// lookup takes a mutex) and then incremented lock-free with relaxed
// atomics — safe from any pool lane. Snapshot() and Reset() may run
// concurrently with increments; a snapshot is a point-in-time read, not
// a consistent cut across instruments.
//
// Determinism: instruments only record; nothing in the query pipeline
// reads them back, so results are bit-identical with metrics on or off
// (asserted by obs_test).

#ifndef BAYESCROWD_OBS_METRICS_H_
#define BAYESCROWD_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.h"

namespace bayescrowd::obs {

/// Monotone event count. Increment is one relaxed atomic add.
class Counter {
 public:
  void Increment(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  /// Overwrites the count; used when restoring a checkpointed snapshot.
  void Set(std::uint64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins scalar (e.g. per-lane busy seconds, pool size).
class Gauge {
 public:
  void Set(double value) {
    bits_.store(Pack(value), std::memory_order_relaxed);
  }
  double value() const {
    return Unpack(bits_.load(std::memory_order_relaxed));
  }
  void Reset() { Set(0.0); }

  /// Bit-cast helpers, shared with Histogram's CAS-accumulated sum.
  static std::uint64_t Pack(double v);
  static double Unpack(std::uint64_t bits);

 private:
  std::atomic<std::uint64_t> bits_{0};
};

struct HistogramSnapshot;

/// Fixed-boundary histogram: bucket i counts observations <= bounds[i];
/// one overflow bucket catches the rest. Observe is a bucket scan plus
/// one relaxed atomic add (bucket lists are short, single digits).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const;
  void Reset();
  /// Overwrites bucket counts / count / sum from a snapshot whose bounds
  /// match this histogram's (extra or missing snapshot buckets are
  /// ignored / left at zero).
  void Restore(const HistogramSnapshot& snapshot);

 private:
  const std::vector<double> bounds_;  // Ascending upper bounds.
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds + overflow.
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  // double, CAS-accumulated.
};

struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> bucket_counts;  // bounds.size() + 1 entries.
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// One dimension of a labeled series. Keys come from a small fixed
/// vocabulary (session / phase / solver_tier / compile_state); values
/// must be low-cardinality — the registry caps distinct values per key
/// and collapses the overflow into "_other" (see kMaxLabelValuesPerKey).
struct Label {
  std::string key;
  std::string value;
};

/// Canonical storage key for a labeled series: `name{k1="v1",k2="v2"}`
/// with labels sorted by key. Series with no labels keep their bare
/// name, so every existing snapshot/normalize/checkpoint path handles
/// labeled and unlabeled instruments uniformly.
std::string LabeledSeriesName(const std::string& name,
                              std::vector<Label> labels);

/// Splits a canonical series key back into its base name and labels.
/// Unlabeled keys return the key itself with no labels.
void ParseSeriesName(const std::string& series, std::string* base,
                     std::vector<Label>* labels);

/// Point-in-time copy of every instrument, sorted by name (stable,
/// diffable rendering).
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// "name value" lines, histograms as count/sum/buckets.
  std::string ToText() const;
  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  JsonValue ToJson() const;
};

/// Thread-safe instrument registry. Instruments are created on first
/// lookup and live as long as the registry; returned pointers are
/// stable. Registries are cheap — the framework creates one per run
/// unless the caller injects a longer-lived one.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` must be ascending; it is fixed on first creation (later
  /// lookups of the same name ignore the argument).
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds);

  /// Labeled lookups. Each label value is interned first (enforcing the
  /// per-key cardinality cap), then the canonical `name{k="v",...}` key
  /// indexes the same instrument maps as the unlabeled overloads — so
  /// Snapshot/Reset/Restore and every downstream consumer see labeled
  /// series as ordinary instruments. Resolution takes the registry
  /// mutex exactly like the unlabeled path; increments through the
  /// returned handle stay lock-free.
  Counter* GetCounter(const std::string& name, std::vector<Label> labels);
  Gauge* GetGauge(const std::string& name, std::vector<Label> labels);
  Histogram* GetHistogram(const std::string& name, std::vector<Label> labels,
                          std::vector<double> bounds);

  /// Interns `value` into `key`'s dense id space and returns the id.
  /// Ids are assigned first-come (deterministic given call order). Once
  /// a key holds kMaxLabelValuesPerKey distinct values, every further
  /// new value maps to the shared overflow value "_other" (id 0 of the
  /// overflow), and one warning line is logged for the key — unbounded
  /// label values are a config bug, not something to crash over.
  std::uint32_t InternLabelValue(const std::string& key,
                                 const std::string& value);

  /// The value string a prospective label would intern as (identity
  /// below the cap, "_other" once the key is saturated).
  std::string InternedLabelValue(const std::string& key,
                                 const std::string& value);

  /// Number of keys whose value space overflowed the cardinality cap.
  /// Exposed as the self-metric "obs.label_overflow" too.
  std::uint64_t label_overflow_keys() const;

  static constexpr std::size_t kMaxLabelValuesPerKey = 24;
  static constexpr const char* kLabelOverflowValue = "_other";

  MetricsSnapshot Snapshot() const;

  /// Zeroes every instrument, keeping registrations (and pointers) alive.
  void Reset();

  /// Restores every instrument in `snapshot`, creating missing ones, so
  /// a resumed session continues its counters where the checkpointed
  /// process left off. Instruments absent from the snapshot are left
  /// untouched.
  void Restore(const MetricsSnapshot& snapshot);

  /// Process-wide registry for instruments below the framework layer
  /// (Bayes-net inference, structure learning). Counts accumulate for
  /// the process lifetime; use Snapshot() deltas for per-phase rates.
  static MetricsRegistry& Default();

 private:
  struct LabelSpace {
    std::map<std::string, std::uint32_t> ids;  // value -> dense id.
    bool overflowed = false;
  };

  // Callee of the labeled Get* overloads: rewrites each label value to
  // its interned form and returns the canonical series key. Requires
  // mu_ NOT held (takes it for the interning).
  std::string CanonicalSeries(const std::string& name,
                              std::vector<Label> labels);
  std::uint32_t InternLocked(const std::string& key,
                             const std::string& value);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, LabelSpace> label_spaces_;
  std::uint64_t label_overflow_keys_ = 0;
};

}  // namespace bayescrowd::obs

#endif  // BAYESCROWD_OBS_METRICS_H_
