#include "obs/normalize.h"

#include <string>
#include <utility>

namespace bayescrowd::obs {
namespace {

bool IsWallClockKey(const std::string& key) {
  // Deadline-hit counts are wall-clock noise too: whether the solver's
  // optional deadline fired depends on machine speed, never on the
  // query (the node-budget counters stay untouched).
  if (key == "deadline_hits" || key == "solver.deadline_hits") return true;
  const std::string suffix = "seconds";
  return key.size() >= suffix.size() &&
         key.compare(key.size() - suffix.size(), suffix.size(), suffix) ==
             0 &&
         key.find("sim") == std::string::npos;
}

bool StartsWith(const std::string& key, const char* prefix) {
  return key.rfind(prefix, 0) == 0;
}

JsonValue Normalize(const JsonValue& v, const std::string& key,
                    const NormalizeOptions& options) {
  switch (v.kind()) {
    case JsonValue::Kind::kObject: {
      JsonValue out = JsonValue::Object();
      for (const auto& [k, member] : v.members()) {
        if (options.strip_lane_usage &&
            (k == "lanes" || k == "threads" ||
             StartsWith(k, "pool.lane"))) {
          continue;
        }
        // "recovery." only matches dotted metric names; the payload's
        // "recovery" object (deterministic totals) is kept.
        if (options.strip_resume_markers && StartsWith(k, "recovery.")) {
          continue;
        }
        if (options.strip_resume_markers && k == "resumed") {
          out[k] = JsonValue(false);
          continue;
        }
        out[k] = Normalize(member, k, options);
      }
      return out;
    }
    case JsonValue::Kind::kArray: {
      JsonValue out = JsonValue::Array();
      for (std::size_t i = 0; i < v.size(); ++i) {
        out.Append(Normalize(v.at(i), key, options));
      }
      return out;
    }
    default:
      if (options.zero_wall_clock && v.is_number() && IsWallClockKey(key)) {
        return JsonValue(0.0);
      }
      return v;
  }
}

}  // namespace

JsonValue NormalizeTelemetry(const JsonValue& v,
                             const NormalizeOptions& options) {
  return Normalize(v, "", options);
}

}  // namespace bayescrowd::obs
