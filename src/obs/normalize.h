// Telemetry normalization for differential tests: strips the fields
// that legitimately differ between two runs of the same query so
// everything else can be compared byte-for-byte.
//
// Three classes of noise, each behind its own switch:
//   - wall-clock durations (machine-dependent),
//   - thread-pool lane usage (scheduling-dependent, and a resumed
//     process only worked the post-resume rounds),
//   - resume markers (a recovered run says so; the reference doesn't).
// Simulated clocks ("*_sim_seconds") are deterministic and always
// survive untouched.

#ifndef BAYESCROWD_OBS_NORMALIZE_H_
#define BAYESCROWD_OBS_NORMALIZE_H_

#include "obs/json.h"

namespace bayescrowd::obs {

struct NormalizeOptions {
  /// Zero numeric members whose key ends in "seconds" and does not
  /// mention "sim" (modeling_seconds, busy_seconds, ...), plus the
  /// solver's "deadline_hits" counters (whether the optional wall-clock
  /// cap fired is machine-dependent; what it degraded *to* is not).
  bool zero_wall_clock = true;

  /// Drop the "lanes" array, "pool.lane*" metric keys, and the
  /// "threads" option: per-lane task counts depend on scheduling and on
  /// where a resumed process picked up, not on the query, and stripping
  /// the pool size too lets a 1-thread run diff byte-for-byte against
  /// an 8-thread run of the same query.
  bool strip_lane_usage = false;

  /// Zero the "resumed" flag and drop "recovery."-prefixed metric keys
  /// (recovery.fallback, recovery.resumed, ...), so a recovered run
  /// diffs clean against its uninterrupted reference.
  bool strip_resume_markers = false;
};

/// Recursively copies `v` with the configured noise removed.
JsonValue NormalizeTelemetry(const JsonValue& v,
                             const NormalizeOptions& options = {});

}  // namespace bayescrowd::obs

#endif  // BAYESCROWD_OBS_NORMALIZE_H_
