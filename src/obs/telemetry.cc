#include "obs/telemetry.h"

#include <utility>

namespace bayescrowd::obs {

JsonValue TelemetryEnvelope(const std::string& kind,
                            const std::string& name, JsonValue payload) {
  JsonValue doc = JsonValue::Object();
  doc["schema_version"] = kTelemetrySchemaVersion;
  doc["kind"] = kind;
  doc["name"] = name;
  doc["payload"] = std::move(payload);
  return doc;
}

Status WriteBenchArtifact(const std::string& name, JsonValue payload,
                          const std::string& dir) {
  const std::string path = dir + "/BENCH_" + name + ".json";
  return WriteJsonFile(TelemetryEnvelope("bench", name, std::move(payload)),
                       path);
}

}  // namespace bayescrowd::obs
