// Structured telemetry file conventions shared by the CLI and the
// benchmark harness: one machine-readable JSON document per run (or per
// benchmark), wrapped in a versioned envelope so downstream tooling can
// evolve without guessing.

#ifndef BAYESCROWD_OBS_TELEMETRY_H_
#define BAYESCROWD_OBS_TELEMETRY_H_

#include <string>

#include "common/result.h"
#include "obs/json.h"

namespace bayescrowd::obs {

/// Telemetry envelope format version; bump on breaking layout changes.
inline constexpr int kTelemetrySchemaVersion = 1;

/// Wraps `payload` in {"schema_version", "kind", "name", "payload"}.
JsonValue TelemetryEnvelope(const std::string& kind,
                            const std::string& name, JsonValue payload);

/// Writes `BENCH_<name>.json` into `dir` (default: the working
/// directory), seeding the repo's benchmark-artifact trajectory. The
/// payload is whatever measurement rows the benchmark collected.
Status WriteBenchArtifact(const std::string& name, JsonValue payload,
                          const std::string& dir = ".");

}  // namespace bayescrowd::obs

#endif  // BAYESCROWD_OBS_TELEMETRY_H_
