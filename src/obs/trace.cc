#include "obs/trace.h"

#include <algorithm>
#include <chrono>

namespace bayescrowd::obs {

namespace {

std::uint64_t SteadyNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

// Per-thread event buffer. Appends are lock-free (the buffer is only
// touched by its own thread); the destructor hands the events to the
// tracer under its mutex, so worker threads that exit before the trace
// is written lose nothing.
struct Tracer::ThreadBuffer {
  explicit ThreadBuffer(Tracer* tracer)
      : owner(tracer),
        tid(tracer->next_tid_.fetch_add(1, std::memory_order_relaxed)) {}

  ~ThreadBuffer() {
    std::lock_guard<std::mutex> lock(owner->mu_);
    owner->FlushLocked(*this);
  }

  Tracer* owner;
  std::uint32_t tid;
  std::vector<TraceEvent> events;
};

Tracer& Tracer::Global() {
  static auto* tracer = new Tracer();  // Leaked: outlives every thread.
  return *tracer;
}

Tracer::ThreadBuffer& Tracer::LocalBuffer() {
  thread_local ThreadBuffer buffer(this);
  return buffer;
}

void Tracer::FlushLocked(ThreadBuffer& buffer) {
  flushed_.insert(flushed_.end(), buffer.events.begin(),
                  buffer.events.end());
  buffer.events.clear();
}

std::uint64_t Tracer::NowNs() const {
  return SteadyNowNs() - epoch_ns_.load(std::memory_order_relaxed);
}

void Tracer::Enable() {
  epoch_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::Clear() {
  ThreadBuffer& local = LocalBuffer();
  std::lock_guard<std::mutex> lock(mu_);
  local.events.clear();
  flushed_.clear();
}

JsonValue Tracer::ChromeTraceJson() {
  ThreadBuffer& local = LocalBuffer();
  std::lock_guard<std::mutex> lock(mu_);
  FlushLocked(local);
  // Deterministic rendering regardless of which thread flushed first.
  std::stable_sort(flushed_.begin(), flushed_.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.start_ns != b.start_ns) {
                       return a.start_ns < b.start_ns;
                     }
                     return a.tid < b.tid;
                   });

  JsonValue events = JsonValue::Array();
  for (const TraceEvent& event : flushed_) {
    JsonValue entry = JsonValue::Object();
    entry["name"] = event.name;
    entry["cat"] = "bayescrowd";
    entry["ph"] = "X";
    entry["ts"] = static_cast<double>(event.start_ns) / 1e3;  // µs.
    entry["dur"] = static_cast<double>(event.dur_ns) / 1e3;
    entry["pid"] = 1;
    entry["tid"] = static_cast<std::uint64_t>(event.tid);
    events.Append(std::move(entry));
  }
  JsonValue doc = JsonValue::Object();
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = "ms";
  return doc;
}

Status Tracer::WriteChromeTrace(const std::string& path) {
  return WriteJsonFile(ChromeTraceJson(), path);
}

std::size_t Tracer::EventCountForTesting() {
  ThreadBuffer& local = LocalBuffer();
  std::lock_guard<std::mutex> lock(mu_);
  FlushLocked(local);
  return flushed_.size();
}

TraceSpan::TraceSpan(const char* name) : name_(nullptr) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return;
  name_ = name;
  start_ns_ = tracer.NowNs();
  tracer.open_spans_.fetch_add(1, std::memory_order_relaxed);
}

void TraceSpan::End() {
  if (name_ == nullptr) return;
  Tracer& tracer = Tracer::Global();
  TraceEvent event;
  event.name = name_;
  event.start_ns = start_ns_;
  // Enable() mid-span resets the epoch, which can make "now" precede
  // the recorded start; clamp instead of wrapping to a ~585-year span.
  const std::uint64_t now_ns = tracer.NowNs();
  event.dur_ns = now_ns >= start_ns_ ? now_ns - start_ns_ : 0;
  Tracer::ThreadBuffer& buffer = tracer.LocalBuffer();
  event.tid = buffer.tid;
  buffer.events.push_back(event);
  tracer.open_spans_.fetch_sub(1, std::memory_order_relaxed);
  name_ = nullptr;
}

}  // namespace bayescrowd::obs
