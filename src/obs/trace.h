// Scoped-span tracing with Chrome trace-event export.
//
//   BAYESCROWD_TRACE_SPAN("adpll.solve");
//
// records one complete ("ph":"X") event into a per-thread buffer when
// tracing is enabled; the buffers flush into the global tracer on
// thread exit (pool workers join before the trace is written) and the
// writer drains the calling thread explicitly. The resulting JSON loads
// in chrome://tracing and https://ui.perfetto.dev.
//
// Cost model:
//  * disabled (default): one relaxed atomic load per span — the
//    constructor bails before reading the clock;
//  * compiled out entirely with -DBAYESCROWD_DISABLE_TRACING;
//  * enabled: two steady_clock reads plus a push_back into a
//    thread-local vector (no locks on the hot path).
//
// Span names must be string literals (or otherwise outlive the tracer):
// only the pointer is stored.

#ifndef BAYESCROWD_OBS_TRACE_H_
#define BAYESCROWD_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/json.h"

namespace bayescrowd::obs {

struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;  // Relative to the tracer epoch.
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;  // Small sequential id per OS thread.
};

class Tracer {
 public:
  static Tracer& Global();

  /// Spans constructed while enabled record; Enable() also resets the
  /// epoch so timestamps start near zero.
  void Enable();
  void Disable();
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Drops every flushed event and the calling thread's buffer. Buffers
  /// of other live threads drain on their exit (or next flush) and are
  /// discarded then if they predate this call... in practice: disable,
  /// join workers, then clear.
  void Clear();

  /// Chrome trace-event document ({"traceEvents": [...]}) from all
  /// flushed buffers plus the calling thread's buffer.
  JsonValue ChromeTraceJson();

  /// Writes ChromeTraceJson() to `path`.
  Status WriteChromeTrace(const std::string& path);

  /// Number of events currently visible to the writer (flushed plus the
  /// calling thread's buffer) — test/diagnostic hook.
  std::size_t EventCountForTesting();

  /// Spans constructed but not yet ended, across all threads. Complete
  /// ("X") events are only recorded at End(), so a span still open when
  /// the trace is written would silently vanish from the export; this
  /// counter lets tests assert that every early-return / exception path
  /// (breaker trips, deadline aborts, retry-exhausted rounds) closed
  /// its spans before the writer ran.
  std::uint64_t OpenSpanCount() const {
    return open_spans_.load(std::memory_order_relaxed);
  }

 private:
  friend class TraceSpan;
  struct ThreadBuffer;

  Tracer() = default;
  ThreadBuffer& LocalBuffer();
  void FlushLocked(ThreadBuffer& buffer);
  std::uint64_t NowNs() const;

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> epoch_ns_{0};  // steady_clock origin.
  std::atomic<std::uint32_t> next_tid_{0};
  std::atomic<std::uint64_t> open_spans_{0};

  std::mutex mu_;
  std::vector<TraceEvent> flushed_;
};

/// RAII span. Use via BAYESCROWD_TRACE_SPAN for block scope, or
/// construct directly and call End() for regions that cross scopes
/// (e.g. the framework's modeling phase).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan() { End(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Records the event now; later End()/destruction is a no-op.
  void End();

 private:
  const char* name_;      // nullptr once ended or when tracing is off.
  std::uint64_t start_ns_ = 0;
};

}  // namespace bayescrowd::obs

#if defined(BAYESCROWD_DISABLE_TRACING)
#define BAYESCROWD_TRACE_SPAN(name) \
  do {                              \
  } while (false)
#else
#define BAYESCROWD_TRACE_SPAN_CONCAT_(a, b) a##b
#define BAYESCROWD_TRACE_SPAN_NAME_(line) \
  BAYESCROWD_TRACE_SPAN_CONCAT_(bc_trace_span_, line)
#define BAYESCROWD_TRACE_SPAN(name)                      \
  ::bayescrowd::obs::TraceSpan BAYESCROWD_TRACE_SPAN_NAME_(__LINE__) { \
    name                                                 \
  }
#endif

#endif  // BAYESCROWD_OBS_TRACE_H_
