#include "probability/adpll.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/string_util.h"
#include "probability/naive.h"

namespace bayescrowd {
namespace {

class AdpllSearch {
 public:
  AdpllSearch(const DistributionMap& dists, const AdpllOptions& options,
              AdpllStats* stats, AdpllScratch* scratch)
      : dists_(dists), options_(options), stats_(stats),
        rng_(options.seed),
        scratch_(scratch != nullptr ? scratch : &owned_scratch_) {}

  Result<double> Run(const Condition& condition) {
    return Recurse(condition);
  }

  Result<ProbInterval> RunPartial(const Condition& condition,
                                  std::uint64_t* truncations) {
    truncations_ = truncations;
    return RecurseInterval(condition);
  }

 private:
  // Exact probability of one disjunction. When its expressions touch
  // distinct variables (the structural common case: one expression per
  // attribute), the general disjunctive rule applies:
  //   Pr(e1 ∨ ... ∨ ek) = 1 - Π (1 - Pr(ei)).
  // Otherwise falls back to exact enumeration over the conjunct's own
  // (few) variables.
  Result<double> ConjunctProbability(const Conjunct& conjunct) {
    // Conjuncts are small (at most one expression per attribute), so a
    // linear scan beats any map.
    bool distinct = true;
    std::vector<CellRef>& seen_vars_ = scratch_->seen_vars;
    seen_vars_.clear();
    const auto note = [&seen_vars_](const CellRef& var) {
      for (const CellRef& v : seen_vars_) {
        if (v == var) return false;
      }
      seen_vars_.push_back(var);
      return true;
    };
    for (const Expression& e : conjunct) {
      if (!note(e.lhs) || (e.rhs_is_var && !note(e.rhs_var))) {
        distinct = false;
        break;
      }
    }
    if (distinct) {
      double miss_all = 1.0;
      for (const Expression& e : conjunct) {
        BAYESCROWD_ASSIGN_OR_RETURN(const double pe,
                                    ExpressionProbability(e, dists_));
        miss_all *= 1.0 - pe;
      }
      return 1.0 - miss_all;
    }
    return NaiveProbability(Condition::Cnf({conjunct}), dists_,
                            InnerNaiveOptions());
  }

  // Budgets for the exact enumeration a correlated conjunct falls back
  // to: a wide equality chain puts its whole variable set into one
  // conjunct, so the inner space must be capped by the same governor
  // that caps the recursion.
  NaiveOptions InnerNaiveOptions() const {
    NaiveOptions inner;
    if (options_.max_conjunct_assignments > 0) {
      inner.max_assignments = options_.max_conjunct_assignments;
    }
    inner.control = options_.control;
    return inner;
  }

  // Interval-mode conjunct integration: identical to ConjunctProbability
  // when the disjunctive rule applies; a correlated conjunct degrades to
  // the bounded Naive scan's sound interval instead of erroring.
  Result<ProbInterval> ConjunctInterval(const Conjunct& conjunct) {
    bool distinct = true;
    std::vector<CellRef>& seen_vars_ = scratch_->seen_vars;
    seen_vars_.clear();
    const auto note = [&seen_vars_](const CellRef& var) {
      for (const CellRef& v : seen_vars_) {
        if (v == var) return false;
      }
      seen_vars_.push_back(var);
      return true;
    };
    for (const Expression& e : conjunct) {
      if (!note(e.lhs) || (e.rhs_is_var && !note(e.rhs_var))) {
        distinct = false;
        break;
      }
    }
    if (distinct) {
      double miss_all = 1.0;
      for (const Expression& e : conjunct) {
        BAYESCROWD_ASSIGN_OR_RETURN(const double pe,
                                    ExpressionProbability(e, dists_));
        miss_all *= 1.0 - pe;
      }
      return ProbInterval::Exact(1.0 - miss_all);
    }
    BAYESCROWD_ASSIGN_OR_RETURN(
        const ProbInterval interval,
        NaiveBoundedProbability(Condition::Cnf({conjunct}), dists_,
                                InnerNaiveOptions()));
    if (!interval.exact() && truncations_ != nullptr) ++*truncations_;
    return interval;
  }

  Result<double> IndependentProduct(const Condition& condition) {
    if (stats_ != nullptr) ++stats_->direct_evals;
    double product = 1.0;
    for (const Conjunct& conjunct : condition.conjuncts()) {
      BAYESCROWD_ASSIGN_OR_RETURN(const double pc,
                                  ConjunctProbability(conjunct));
      product *= pc;
      if (product == 0.0) break;
    }
    return product;
  }

  Result<ProbInterval> IndependentProductInterval(
      const Condition& condition) {
    if (stats_ != nullptr) ++stats_->direct_evals;
    double lo = 1.0;
    double hi = 1.0;
    bool all_exact = true;
    for (const Conjunct& conjunct : condition.conjuncts()) {
      BAYESCROWD_ASSIGN_OR_RETURN(const ProbInterval pc,
                                  ConjunctInterval(conjunct));
      lo *= pc.lo;
      hi *= pc.hi;
      all_exact = all_exact && pc.exact();
      if (hi == 0.0) break;
    }
    return ProbInterval{lo, hi,
                        all_exact ? ProbQuality::kExact
                                  : ProbQuality::kPartialBound};
  }

  // Star fast path: let H be the variables occurring more than once in
  // the condition (every other variable appears in exactly one
  // expression). Then
  //   Pr(φ) = Σ_h p(h) Π_conjuncts Pr(conjunct | H = h),
  // and given h every conjunct's surviving expressions touch distinct
  // single-occurrence variables, so the disjunctive rule applies with
  // probabilities that are either constants or lookups in per-expression
  // tables indexed by one hub value. Exact, allocation-light, and it
  // covers the dominant c-table shape (all conjuncts of φ(o) share o's
  // own missing attributes). Returns false when H's joint domain is too
  // large; the caller then branches normally (which shrinks H by one).
  bool TryStarProbability(const Condition& condition, Result<double>* out) {
    Status status = Status::OK();
    if (!BuildStarPlan(condition, dists_, options_.max_hub_space,
                       &scratch_->star_plan, &scratch_->star, &status)) {
      return false;
    }
    if (!status.ok()) {
      *out = status;
      return true;  // Applicable, but errored.
    }
    *out = EvalStarPlan(scratch_->star_plan, dists_, &scratch_->star);
    if (out->ok() && stats_ != nullptr) {
      ++stats_->direct_evals;
      ++stats_->star_evals;
    }
    return true;
  }

  CellRef PickVariable(const Condition& condition) {
    switch (options_.heuristic) {
      case BranchHeuristic::kMostFrequent:
        return condition.MostFrequentVariable();
      case BranchHeuristic::kFirst:
        return condition.Variables().front();
      case BranchHeuristic::kRandom: {
        const auto vars = condition.Variables();
        return vars[rng_.NextBelow(vars.size())];
      }
    }
    return condition.MostFrequentVariable();
  }

  Result<double> Recurse(const Condition& condition) {
    if (stats_ != nullptr) ++stats_->calls;
    if (++calls_ > options_.max_calls) {
      return Status::ResourceExhausted(StrFormat(
          "ADPLL exceeded %llu recursive calls",
          static_cast<unsigned long long>(options_.max_calls)));
    }
    if (options_.control != nullptr && options_.control->ShouldStop()) {
      return Status::ResourceExhausted("ADPLL cancelled");
    }
    if (condition.IsTrue()) return 1.0;
    if (condition.IsFalse()) return 0.0;

    // Special conjunctive rule: variable-disjoint conjuncts multiply.
    if (condition.ConjunctsAreIndependent()) {
      return IndependentProduct(condition);
    }

    // Star fast path (see TryStarProbability).
    if (options_.star_fast_path) {
      Result<double> star = 0.0;
      if (TryStarProbability(condition, &star)) return star;
    }

    // Refinement: split variable-disjoint *groups* of conjuncts.
    if (options_.component_decomposition) {
      const auto components = condition.ConjunctComponents();
      if (components.size() > 1) {
        if (options_.max_component_splits > 0 &&
            ++component_splits_ > options_.max_component_splits) {
          return Status::ResourceExhausted(StrFormat(
              "ADPLL exceeded %llu component splits",
              static_cast<unsigned long long>(
                  options_.max_component_splits)));
        }
        if (stats_ != nullptr) ++stats_->component_splits;
        double product = 1.0;
        for (const auto& indices : components) {
          std::vector<Conjunct> sub;
          sub.reserve(indices.size());
          for (std::size_t c : indices) {
            sub.push_back(condition.conjuncts()[c]);
          }
          BAYESCROWD_ASSIGN_OR_RETURN(
              const double pc, Recurse(Condition::Cnf(std::move(sub))));
          product *= pc;
          if (product == 0.0) return 0.0;
        }
        return product;
      }
    }

    // Branch on a variable; correlation weakens with every substitution.
    const CellRef var = PickVariable(condition);
    const std::vector<double>* dist = dists_.Find(var);
    if (dist == nullptr) {
      return Status::NotFound(StrFormat("no distribution for Var(%zu,%zu)",
                                        var.object, var.attribute));
    }
    double total = 0.0;
    for (std::size_t value = 0; value < dist->size(); ++value) {
      const double p = (*dist)[value];
      if (p <= 0.0) continue;
      if (stats_ != nullptr) ++stats_->branches;
      BAYESCROWD_ASSIGN_OR_RETURN(
          const double sub,
          Recurse(condition.SubstituteVariable(
              var, static_cast<Level>(value))));
      total += p * sub;
    }
    return total;
  }

  // Interval-mode twin of Recurse for the anytime ladder tier: the same
  // search order, but running out of budget *closes* the current
  // subtree into [0, 1] instead of aborting. The combination rules
  // preserve soundness — a branch is Σ p_v · [lo_v, hi_v], independent
  // components multiply endpoint-wise (all factors lie in [0, 1]) — so
  // the final interval always contains the exact probability.
  Result<ProbInterval> RecurseInterval(const Condition& condition) {
    if (stats_ != nullptr) ++stats_->calls;
    const bool out_of_budget =
        ++calls_ > options_.max_calls ||
        (options_.control != nullptr && options_.control->ShouldStop());
    if (out_of_budget) {
      if (truncations_ != nullptr) ++*truncations_;
      return ProbInterval::Unknown();
    }
    if (condition.IsTrue()) return ProbInterval::Exact(1.0);
    if (condition.IsFalse()) return ProbInterval::Exact(0.0);

    if (condition.ConjunctsAreIndependent()) {
      return IndependentProductInterval(condition);
    }

    if (options_.star_fast_path) {
      Result<double> star = 0.0;
      if (TryStarProbability(condition, &star)) {
        BAYESCROWD_ASSIGN_OR_RETURN(const double p, std::move(star));
        return ProbInterval::Exact(p);
      }
    }

    if (options_.component_decomposition &&
        (options_.max_component_splits == 0 ||
         component_splits_ < options_.max_component_splits)) {
      const auto components = condition.ConjunctComponents();
      if (components.size() > 1) {
        ++component_splits_;
        if (stats_ != nullptr) ++stats_->component_splits;
        double lo = 1.0;
        double hi = 1.0;
        bool all_exact = true;
        for (const auto& indices : components) {
          std::vector<Conjunct> sub;
          sub.reserve(indices.size());
          for (std::size_t c : indices) {
            sub.push_back(condition.conjuncts()[c]);
          }
          BAYESCROWD_ASSIGN_OR_RETURN(
              const ProbInterval pc,
              RecurseInterval(Condition::Cnf(std::move(sub))));
          lo *= pc.lo;
          hi *= pc.hi;
          all_exact = all_exact && pc.exact();
          if (hi == 0.0) return ProbInterval::Exact(0.0);
        }
        return ProbInterval{lo, hi,
                            all_exact ? ProbQuality::kExact
                                      : ProbQuality::kPartialBound};
      }
    }

    const CellRef var = PickVariable(condition);
    const std::vector<double>* dist = dists_.Find(var);
    if (dist == nullptr) {
      return Status::NotFound(StrFormat("no distribution for Var(%zu,%zu)",
                                        var.object, var.attribute));
    }
    double lo = 0.0;
    double hi = 0.0;
    bool all_exact = true;
    for (std::size_t value = 0; value < dist->size(); ++value) {
      const double p = (*dist)[value];
      if (p <= 0.0) continue;
      if (stats_ != nullptr) ++stats_->branches;
      BAYESCROWD_ASSIGN_OR_RETURN(
          const ProbInterval sub,
          RecurseInterval(condition.SubstituteVariable(
              var, static_cast<Level>(value))));
      lo += p * sub.lo;
      hi += p * sub.hi;
      all_exact = all_exact && sub.exact();
    }
    lo = std::min(1.0, std::max(0.0, lo));
    hi = std::min(1.0, std::max(lo, hi));
    return ProbInterval{lo, hi,
                        all_exact ? ProbQuality::kExact
                                  : ProbQuality::kPartialBound};
  }

  const DistributionMap& dists_;
  const AdpllOptions& options_;
  AdpllStats* stats_;
  Rng rng_;
  std::uint64_t calls_ = 0;
  std::uint64_t component_splits_ = 0;
  std::uint64_t* truncations_ = nullptr;  // Closed-subtree tally.
  AdpllScratch* scratch_;           // Never null; owned_scratch_ fallback.
  AdpllScratch owned_scratch_;      // Per-call buffers when none passed.
};

}  // namespace

Result<double> AdpllProbability(const Condition& condition,
                                const DistributionMap& dists,
                                const AdpllOptions& options,
                                AdpllStats* stats, AdpllScratch* scratch) {
  AdpllSearch search(dists, options, stats, scratch);
  return search.Run(condition);
}

Result<ProbInterval> AdpllPartialProbability(const Condition& condition,
                                             const DistributionMap& dists,
                                             const AdpllOptions& options,
                                             AdpllStats* stats,
                                             std::uint64_t* truncations,
                                             AdpllScratch* scratch) {
  AdpllSearch search(dists, options, stats, scratch);
  std::uint64_t local = 0;
  Result<ProbInterval> out = search.RunPartial(
      condition, truncations != nullptr ? truncations : &local);
  return out;
}

}  // namespace bayescrowd
