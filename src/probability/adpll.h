// ADPLL (adaptive DPLL, Algorithm 3): exact Pr(φ) computation.
//
// The computation is at least as hard as weighted model counting (#SAT),
// since variables take multiple discrete values under learned
// distributions. ADPLL recursively branches on the most frequent
// variable to break conjunct correlation; once the remaining conjuncts
// are variable-disjoint their probabilities multiply directly (special
// conjunctive rule) and each conjunct is integrated with the general
// disjunctive rule Pr(p ∨ q) = 1 - Pr(¬p ∧ ¬q).
//
// Two refinements beyond the paper's pseudo-code are exposed as options
// (and benchmarked as ablations):
//  * component decomposition: independent *groups* of conjuncts multiply
//    even when conjuncts inside a group are correlated;
//  * alternative branching-variable heuristics.

#ifndef BAYESCROWD_PROBABILITY_ADPLL_H_
#define BAYESCROWD_PROBABILITY_ADPLL_H_

#include <cstdint>

#include "common/random.h"
#include "common/result.h"
#include "ctable/condition.h"
#include "probability/distributions.h"
#include "probability/interval.h"
#include "probability/star.h"

namespace bayescrowd {

enum class BranchHeuristic : std::uint8_t {
  kMostFrequent,  // Paper's choice: the variable occurring most often.
  kFirst,         // First variable in appearance order (ablation).
  kRandom,        // Uniform random variable (ablation).
};

struct AdpllOptions {
  /// Multiply probabilities of variable-disjoint conjunct components
  /// instead of requiring *all* conjuncts to be pairwise independent.
  bool component_decomposition = true;

  /// Star fast path: when the variables occurring more than once (the
  /// "hub") span a small joint domain, enumerate the hub assignment
  /// directly with precomputed per-expression probability tables instead
  /// of materializing substituted conditions. Exact; typically an order
  /// of magnitude faster on c-table conditions, whose conjuncts all
  /// share the object's own variables.
  bool star_fast_path = true;

  /// Joint-domain cap for the star fast path.
  std::size_t max_hub_space = 4096;

  BranchHeuristic heuristic = BranchHeuristic::kMostFrequent;

  /// Seed for kRandom tie-breaking / selection.
  std::uint64_t seed = 7;

  /// Recursion budget: computation aborts with ResourceExhausted after
  /// this many recursive calls (worst case degrades to Naive).
  std::uint64_t max_calls = 50'000'000;

  /// Budget for the *inner* Naive enumerations a correlated conjunct
  /// falls back to (wide equality chains put many variables into one
  /// conjunct, so the per-conjunct space can dwarf the recursion
  /// budget). 0 keeps the NaiveOptions default.
  std::uint64_t max_conjunct_assignments = 0;

  /// Budget on component-decomposition splits (the memoized-component
  /// count of the governor). 0 means unlimited.
  std::uint64_t max_component_splits = 0;

  /// Cooperative cancellation (deadline / external cancel), polled at
  /// every recursive call and inside inner enumerations. Non-owning;
  /// may be null. Cancellation aborts with ResourceExhausted — it never
  /// changes the value of a solve that runs to completion.
  SolverControl* control = nullptr;
};

struct AdpllStats {
  std::uint64_t calls = 0;        // Recursive invocations.
  std::uint64_t branches = 0;     // Value branches taken.
  std::uint64_t direct_evals = 0; // Conditions resolved by independence.
  std::uint64_t component_splits = 0;  // Variable-disjoint group splits.
  std::uint64_t star_evals = 0;        // Star fast-path enumerations.

  AdpllStats& operator+=(const AdpllStats& other) {
    calls += other.calls;
    branches += other.branches;
    direct_evals += other.direct_evals;
    component_splits += other.component_splits;
    star_evals += other.star_evals;
    return *this;
  }
};

/// Reusable per-caller scratch for the ADPLL hot path. Without one the
/// solver allocates the star-path hub maps, expression tables and
/// odometer — plus the conjunct distinctness buffer — on every solve;
/// threading a scratch through repeated solves (one per evaluator lane)
/// reuses those buffers instead. Not thread-safe: one scratch per
/// concurrent caller. Passing nullptr falls back to per-call buffers
/// with identical results.
struct AdpllScratch {
  StarPlan star_plan;
  StarScratch star;
  std::vector<CellRef> seen_vars;  // Conjunct distinctness scan.
};

/// Exact Pr(φ) via adaptive DPLL search. `stats`, if non-null, is
/// accumulated into (not reset).
Result<double> AdpllProbability(const Condition& condition,
                                const DistributionMap& dists,
                                const AdpllOptions& options = {},
                                AdpllStats* stats = nullptr,
                                AdpllScratch* scratch = nullptr);

/// Anytime variant: the same search, but budget exhaustion *closes* a
/// subtree into the sound bound [0, 1] instead of aborting the solve.
/// Value branches combine as Σ p_v · [lo_v, hi_v] and independent
/// components multiply, so the returned interval always contains the
/// exact probability. Runs within the same budgets as AdpllProbability
/// (max_calls, max_conjunct_assignments, max_component_splits,
/// control); with no budget pressure the result is exact (lo == hi ==
/// AdpllProbability, quality kExact). `truncations`, if non-null, is
/// incremented once per closed subtree.
Result<ProbInterval> AdpllPartialProbability(
    const Condition& condition, const DistributionMap& dists,
    const AdpllOptions& options = {}, AdpllStats* stats = nullptr,
    std::uint64_t* truncations = nullptr, AdpllScratch* scratch = nullptr);

}  // namespace bayescrowd

#endif  // BAYESCROWD_PROBABILITY_ADPLL_H_
