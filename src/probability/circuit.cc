#include "probability/circuit.h"

#include <algorithm>

#include "common/string_util.h"
#include "probability/naive.h"

namespace bayescrowd {
namespace {

void WriteCellRef(BinWriter* w, const CellRef& var) {
  w->WriteU64(var.object);
  w->WriteU64(var.attribute);
}

Status ReadCellRef(BinReader* r, CellRef* var) {
  std::uint64_t object = 0;
  std::uint64_t attribute = 0;
  BAYESCROWD_RETURN_NOT_OK(r->ReadU64(&object));
  BAYESCROWD_RETURN_NOT_OK(r->ReadU64(&attribute));
  var->object = static_cast<std::size_t>(object);
  var->attribute = static_cast<std::size_t>(attribute);
  return Status::OK();
}

void WriteExpression(BinWriter* w, const Expression& e) {
  WriteCellRef(w, e.lhs);
  w->WriteU8(static_cast<std::uint8_t>(e.op));
  w->WriteBool(e.rhs_is_var);
  WriteCellRef(w, e.rhs_var);
  w->WriteI32(e.rhs_const);
}

Status ReadExpression(BinReader* r, Expression* e) {
  BAYESCROWD_RETURN_NOT_OK(ReadCellRef(r, &e->lhs));
  std::uint8_t op = 0;
  BAYESCROWD_RETURN_NOT_OK(r->ReadU8(&op));
  if (op > static_cast<std::uint8_t>(CmpOp::kLess)) {
    return Status::InvalidArgument("circuit blob: bad comparison op");
  }
  e->op = static_cast<CmpOp>(op);
  BAYESCROWD_RETURN_NOT_OK(r->ReadBool(&e->rhs_is_var));
  BAYESCROWD_RETURN_NOT_OK(ReadCellRef(r, &e->rhs_var));
  BAYESCROWD_RETURN_NOT_OK(r->ReadI32(&e->rhs_const));
  return Status::OK();
}

void WriteStarPlan(BinWriter* w, const StarPlan& plan) {
  w->WriteU64(plan.hub.size());
  for (std::size_t i = 0; i < plan.hub.size(); ++i) {
    WriteCellRef(w, plan.hub[i]);
    w->WriteU32(plan.hub_sizes[i]);
  }
  w->WriteU64(plan.exprs.size());
  for (const StarExpr& ce : plan.exprs) {
    w->WriteU8(static_cast<std::uint8_t>(ce.kind));
    w->WriteI32(ce.lhs_slot);
    w->WriteI32(ce.rhs_slot);
    w->WriteU8(static_cast<std::uint8_t>(ce.op));
    w->WriteI32(ce.rhs_const);
    w->WriteBool(ce.rhs_is_var);
    WriteExpression(w, ce.expr);
    w->WriteBool(ce.hub_is_lhs);
    w->WriteU32(ce.table_offset);
    w->WriteU32(ce.table_size);
  }
  w->WriteU64(plan.conjunct_offsets.size());
  for (const std::uint32_t off : plan.conjunct_offsets) w->WriteU32(off);
  w->WriteU64(plan.space);
  w->WriteU64(plan.table_slots);
}

Status ReadStarPlan(BinReader* r, StarPlan* plan) {
  std::uint64_t n = 0;
  BAYESCROWD_RETURN_NOT_OK(r->ReadCount(&n, 20));
  plan->hub.resize(static_cast<std::size_t>(n));
  plan->hub_sizes.resize(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < plan->hub.size(); ++i) {
    BAYESCROWD_RETURN_NOT_OK(ReadCellRef(r, &plan->hub[i]));
    BAYESCROWD_RETURN_NOT_OK(r->ReadU32(&plan->hub_sizes[i]));
  }
  BAYESCROWD_RETURN_NOT_OK(r->ReadCount(&n, 32));
  plan->exprs.resize(static_cast<std::size_t>(n));
  for (StarExpr& ce : plan->exprs) {
    std::uint8_t kind = 0;
    BAYESCROWD_RETURN_NOT_OK(r->ReadU8(&kind));
    if (kind > static_cast<std::uint8_t>(StarExpr::Kind::kTablePrime)) {
      return Status::InvalidArgument("circuit blob: bad star-expr kind");
    }
    ce.kind = static_cast<StarExpr::Kind>(kind);
    BAYESCROWD_RETURN_NOT_OK(r->ReadI32(&ce.lhs_slot));
    BAYESCROWD_RETURN_NOT_OK(r->ReadI32(&ce.rhs_slot));
    std::uint8_t op = 0;
    BAYESCROWD_RETURN_NOT_OK(r->ReadU8(&op));
    if (op > static_cast<std::uint8_t>(CmpOp::kLess)) {
      return Status::InvalidArgument("circuit blob: bad comparison op");
    }
    ce.op = static_cast<CmpOp>(op);
    BAYESCROWD_RETURN_NOT_OK(r->ReadI32(&ce.rhs_const));
    BAYESCROWD_RETURN_NOT_OK(r->ReadBool(&ce.rhs_is_var));
    BAYESCROWD_RETURN_NOT_OK(ReadExpression(r, &ce.expr));
    BAYESCROWD_RETURN_NOT_OK(r->ReadBool(&ce.hub_is_lhs));
    BAYESCROWD_RETURN_NOT_OK(r->ReadU32(&ce.table_offset));
    BAYESCROWD_RETURN_NOT_OK(r->ReadU32(&ce.table_size));
  }
  BAYESCROWD_RETURN_NOT_OK(r->ReadCount(&n, 4));
  plan->conjunct_offsets.resize(static_cast<std::size_t>(n));
  for (std::uint32_t& off : plan->conjunct_offsets) {
    BAYESCROWD_RETURN_NOT_OK(r->ReadU32(&off));
  }
  std::uint64_t space = 0;
  std::uint64_t table_slots = 0;
  BAYESCROWD_RETURN_NOT_OK(r->ReadU64(&space));
  BAYESCROWD_RETURN_NOT_OK(r->ReadU64(&table_slots));
  plan->space = static_cast<std::size_t>(space);
  plan->table_slots = static_cast<std::size_t>(table_slots);

  // Internal consistency: slot/offset references must stay in range.
  const std::size_t hub_count = plan->hub.size();
  for (const StarExpr& ce : plan->exprs) {
    const bool needs_slot = ce.kind != StarExpr::Kind::kConstant;
    if (needs_slot &&
        (ce.lhs_slot < 0 ||
         static_cast<std::size_t>(ce.lhs_slot) >= hub_count)) {
      return Status::InvalidArgument("circuit blob: star slot out of range");
    }
    if (ce.rhs_slot >= 0 &&
        static_cast<std::size_t>(ce.rhs_slot) >= hub_count) {
      return Status::InvalidArgument("circuit blob: star slot out of range");
    }
    if (ce.kind == StarExpr::Kind::kTablePrime &&
        (static_cast<std::uint64_t>(ce.table_offset) + ce.table_size >
         plan->table_slots)) {
      return Status::InvalidArgument("circuit blob: star table out of range");
    }
  }
  if (plan->conjunct_offsets.empty()) {
    return Status::InvalidArgument("circuit blob: empty star offsets");
  }
  for (std::size_t c = 0; c + 1 < plan->conjunct_offsets.size(); ++c) {
    if (plan->conjunct_offsets[c] > plan->conjunct_offsets[c + 1]) {
      return Status::InvalidArgument("circuit blob: unsorted star offsets");
    }
  }
  if (plan->conjunct_offsets.back() != plan->exprs.size()) {
    return Status::InvalidArgument("circuit blob: bad star offsets");
  }
  return Status::OK();
}

}  // namespace

double CompiledCircuit::LeafProbability(std::uint32_t e,
                                        const CircuitScratch& scratch) const {
  const Expression& ex = exprs[e];
  const std::size_t ls = static_cast<std::size_t>(expr_lhs_slot[e]);
  const double* lhs = scratch.soa.data() + var_offsets[ls];
  const std::size_t lhs_size = var_sizes[ls];
  if (!ex.rhs_is_var) {
    return ex.op == CmpOp::kGreater
               ? TailMassGreater(lhs, lhs_size, ex.rhs_const)
               : HeadMassLess(lhs, lhs_size, ex.rhs_const);
  }
  const std::size_t rs = static_cast<std::size_t>(expr_rhs_slot[e]);
  return CrossMass(lhs, lhs_size, scratch.soa.data() + var_offsets[rs],
                   var_sizes[rs], ex.op);
}

Result<double> CompiledCircuit::EvalNode(std::uint32_t id,
                                         const DistributionMap& dists,
                                         CircuitScratch* scratch) const {
  const CircuitNode& n = nodes[id];
  switch (n.kind) {
    case CircuitNodeKind::kConst:
      return n.constant;
    case CircuitNodeKind::kConjunct: {
      // ADPLL's distinct-variable disjunctive rule, leaf by leaf.
      double miss_all = 1.0;
      for (std::uint32_t e = n.first; e < n.first + n.count; ++e) {
        const double pe = LeafProbability(e, *scratch);
        miss_all *= 1.0 - pe;
      }
      return 1.0 - miss_all;
    }
    case CircuitNodeKind::kNaive: {
      // Correlated conjunct: the same inner enumeration ADPLL runs.
      Conjunct conjunct(exprs.begin() + n.first,
                        exprs.begin() + n.first + n.count);
      NaiveOptions inner;
      if (max_conjunct_assignments > 0) {
        inner.max_assignments = max_conjunct_assignments;
      }
      return NaiveProbability(Condition::Cnf({std::move(conjunct)}), dists,
                              inner);
    }
    case CircuitNodeKind::kStar:
      return EvalStarPlan(stars[static_cast<std::size_t>(n.var_slot)], dists,
                          &scratch->star);
    case CircuitNodeKind::kProduct: {
      double product = 1.0;
      for (std::uint32_t c = n.first; c < n.first + n.count; ++c) {
        BAYESCROWD_ASSIGN_OR_RETURN(const double pc,
                                    EvalNode(children[c], dists, scratch));
        product *= pc;
        if (product == 0.0) break;
      }
      return product;
    }
    case CircuitNodeKind::kDecision: {
      const std::size_t slot = static_cast<std::size_t>(n.var_slot);
      const double* dist = scratch->soa.data() + var_offsets[slot];
      const std::size_t size = var_sizes[slot];
      double total = 0.0;
      for (std::size_t value = 0; value < size; ++value) {
        const double p = dist[value];
        if (p <= 0.0) continue;
        BAYESCROWD_ASSIGN_OR_RETURN(
            const double sub,
            EvalNode(children[n.first + value], dists, scratch));
        total += p * sub;
      }
      return total;
    }
  }
  return Status::Internal("unknown circuit node kind");
}

Result<double> CompiledCircuit::Evaluate(const DistributionMap& dists,
                                         CircuitScratch* scratch) const {
  // Gather every referenced distribution into one contiguous SoA copy;
  // leaves and decisions then read by (offset, size) spans.
  scratch->soa.resize(static_cast<std::size_t>(soa_slots));
  for (std::size_t i = 0; i < vars.size(); ++i) {
    const std::vector<double>* dist = dists.Find(vars[i]);
    if (dist == nullptr) {
      return Status::NotFound(StrFormat("no distribution for Var(%zu,%zu)",
                                        vars[i].object, vars[i].attribute));
    }
    if (dist->size() != var_sizes[i]) {
      return Status::FailedPrecondition(
          "distribution arity changed since compilation");
    }
    std::copy(dist->begin(), dist->end(),
              scratch->soa.begin() + var_offsets[i]);
  }
  return EvalNode(root, dists, scratch);
}

void CompiledCircuit::Serialize(BinWriter* w) const {
  w->WriteU32(root);
  w->WriteU64(cost);
  w->WriteU64(max_conjunct_assignments);
  w->WriteU64(soa_slots);

  w->WriteU64(nodes.size());
  for (const CircuitNode& n : nodes) {
    w->WriteU8(static_cast<std::uint8_t>(n.kind));
    w->WriteDouble(n.constant);
    w->WriteU32(n.first);
    w->WriteU32(n.count);
    w->WriteI32(n.var_slot);
  }

  w->WriteU64(children.size());
  for (const std::uint32_t c : children) w->WriteU32(c);

  w->WriteU64(exprs.size());
  for (std::size_t i = 0; i < exprs.size(); ++i) {
    WriteExpression(w, exprs[i]);
    w->WriteI32(expr_lhs_slot[i]);
    w->WriteI32(expr_rhs_slot[i]);
  }

  w->WriteU64(vars.size());
  for (std::size_t i = 0; i < vars.size(); ++i) {
    WriteCellRef(w, vars[i]);
    w->WriteU32(var_sizes[i]);
    w->WriteU32(var_offsets[i]);
  }

  w->WriteU64(stars.size());
  for (const StarPlan& plan : stars) WriteStarPlan(w, plan);
}

Status CompiledCircuit::Deserialize(BinReader* r, CompiledCircuit* out) {
  *out = CompiledCircuit();
  BAYESCROWD_RETURN_NOT_OK(r->ReadU32(&out->root));
  BAYESCROWD_RETURN_NOT_OK(r->ReadU64(&out->cost));
  BAYESCROWD_RETURN_NOT_OK(r->ReadU64(&out->max_conjunct_assignments));
  BAYESCROWD_RETURN_NOT_OK(r->ReadU64(&out->soa_slots));

  std::uint64_t n = 0;
  BAYESCROWD_RETURN_NOT_OK(r->ReadCount(&n, 21));
  out->nodes.resize(static_cast<std::size_t>(n));
  for (CircuitNode& node : out->nodes) {
    std::uint8_t kind = 0;
    BAYESCROWD_RETURN_NOT_OK(r->ReadU8(&kind));
    if (kind > static_cast<std::uint8_t>(CircuitNodeKind::kDecision)) {
      return Status::InvalidArgument("circuit blob: bad node kind");
    }
    node.kind = static_cast<CircuitNodeKind>(kind);
    BAYESCROWD_RETURN_NOT_OK(r->ReadDouble(&node.constant));
    BAYESCROWD_RETURN_NOT_OK(r->ReadU32(&node.first));
    BAYESCROWD_RETURN_NOT_OK(r->ReadU32(&node.count));
    BAYESCROWD_RETURN_NOT_OK(r->ReadI32(&node.var_slot));
  }

  BAYESCROWD_RETURN_NOT_OK(r->ReadCount(&n, 4));
  out->children.resize(static_cast<std::size_t>(n));
  for (std::uint32_t& c : out->children) {
    BAYESCROWD_RETURN_NOT_OK(r->ReadU32(&c));
  }

  BAYESCROWD_RETURN_NOT_OK(r->ReadCount(&n, 37));
  out->exprs.resize(static_cast<std::size_t>(n));
  out->expr_lhs_slot.resize(static_cast<std::size_t>(n));
  out->expr_rhs_slot.resize(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < out->exprs.size(); ++i) {
    BAYESCROWD_RETURN_NOT_OK(ReadExpression(r, &out->exprs[i]));
    BAYESCROWD_RETURN_NOT_OK(r->ReadI32(&out->expr_lhs_slot[i]));
    BAYESCROWD_RETURN_NOT_OK(r->ReadI32(&out->expr_rhs_slot[i]));
  }

  BAYESCROWD_RETURN_NOT_OK(r->ReadCount(&n, 24));
  out->vars.resize(static_cast<std::size_t>(n));
  out->var_sizes.resize(static_cast<std::size_t>(n));
  out->var_offsets.resize(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < out->vars.size(); ++i) {
    BAYESCROWD_RETURN_NOT_OK(ReadCellRef(r, &out->vars[i]));
    BAYESCROWD_RETURN_NOT_OK(r->ReadU32(&out->var_sizes[i]));
    BAYESCROWD_RETURN_NOT_OK(r->ReadU32(&out->var_offsets[i]));
  }

  BAYESCROWD_RETURN_NOT_OK(r->ReadCount(&n, 48));
  out->stars.resize(static_cast<std::size_t>(n));
  for (StarPlan& plan : out->stars) {
    BAYESCROWD_RETURN_NOT_OK(ReadStarPlan(r, &plan));
  }

  // Cross-reference validation: every index a walk can touch must be in
  // range, so a corrupt blob errors here instead of faulting later.
  const std::size_t node_count = out->nodes.size();
  const std::size_t expr_count = out->exprs.size();
  const std::size_t child_count = out->children.size();
  const std::size_t var_count = out->vars.size();
  if (node_count == 0 || out->root >= node_count) {
    return Status::InvalidArgument("circuit blob: bad root");
  }
  for (std::size_t id = 0; id < node_count; ++id) {
    const CircuitNode& node = out->nodes[id];
    const std::uint64_t end =
        static_cast<std::uint64_t>(node.first) + node.count;
    switch (node.kind) {
      case CircuitNodeKind::kConst:
        break;
      case CircuitNodeKind::kConjunct:
      case CircuitNodeKind::kNaive:
        if (end > expr_count) {
          return Status::InvalidArgument("circuit blob: expr range");
        }
        break;
      case CircuitNodeKind::kStar:
        if (node.var_slot < 0 ||
            static_cast<std::size_t>(node.var_slot) >= out->stars.size()) {
          return Status::InvalidArgument("circuit blob: star index");
        }
        break;
      case CircuitNodeKind::kProduct:
      case CircuitNodeKind::kDecision:
        if (end > child_count) {
          return Status::InvalidArgument("circuit blob: child range");
        }
        // The compiler emits children before parents; requiring that of
        // blobs makes the arena a DAG, so EvalNode cannot loop.
        for (std::uint64_t c = node.first; c < end; ++c) {
          if (out->children[static_cast<std::size_t>(c)] >= id) {
            return Status::InvalidArgument("circuit blob: child index");
          }
        }
        if (node.kind == CircuitNodeKind::kDecision &&
            (node.var_slot < 0 ||
             static_cast<std::size_t>(node.var_slot) >= var_count ||
             out->var_sizes[static_cast<std::size_t>(node.var_slot)] !=
                 node.count)) {
          return Status::InvalidArgument("circuit blob: decision slot");
        }
        break;
    }
  }
  for (std::size_t i = 0; i < expr_count; ++i) {
    if (out->expr_lhs_slot[i] < 0 ||
        static_cast<std::size_t>(out->expr_lhs_slot[i]) >= var_count ||
        (out->expr_rhs_slot[i] >= 0 &&
         static_cast<std::size_t>(out->expr_rhs_slot[i]) >= var_count)) {
      return Status::InvalidArgument("circuit blob: expr slot");
    }
  }
  std::uint64_t offset = 0;
  for (std::size_t i = 0; i < var_count; ++i) {
    if (out->var_offsets[i] != offset || out->var_sizes[i] == 0) {
      return Status::InvalidArgument("circuit blob: var layout");
    }
    offset += out->var_sizes[i];
  }
  if (offset != out->soa_slots) {
    return Status::InvalidArgument("circuit blob: soa size");
  }
  return Status::OK();
}

}  // namespace bayescrowd
