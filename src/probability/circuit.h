// CompiledCircuit: a smooth arithmetic-circuit artifact recording the
// shape of one ADPLL solve, re-evaluable under new posteriors.
//
// The round loop's workload is "same formula, shifted posteriors":
// folding crowd answers re-conditions distributions, but per object the
// condition structure is fixed between simplifications. ADPLL's control
// flow on such a condition is value-independent — IsTrue/IsFalse,
// conjunct independence, component grouping, the branch variable and
// the star hub all derive from the formula and the (fixed) variable
// arities. Only the *numbers* at the leaves change. The compiler
// (compiler.h) walks ADPLL's exact recursion once and records it as a
// d-DNNF-style node arena; Evaluate() then replays the arithmetic in
// one pass per round instead of re-running the search.
//
// ADPLL's value-dependent shortcuts (skip a zero-probability branch,
// stop a product at zero) are multiplication-by-zero-equivalent, so the
// circuit reproduces ADPLL's floating-point results bit for bit:
// probabilities are non-negative, `x + 0.0 == x` and `0.0 * p == 0.0`
// exactly, and every leaf runs the same shared arithmetic
// (distributions.h span helpers, star.h EvalStarPlan, naive.h).
//
// Data layout: one contiguous node arena with a shared child-index
// array (no per-node allocations), and evaluation gathers every
// referenced distribution into one contiguous SoA scratch buffer that
// the leaf passes read by (offset, size) spans.

#ifndef BAYESCROWD_PROBABILITY_CIRCUIT_H_
#define BAYESCROWD_PROBABILITY_CIRCUIT_H_

#include <cstdint>
#include <vector>

#include "common/binio.h"
#include "common/result.h"
#include "ctable/condition.h"
#include "probability/distributions.h"
#include "probability/star.h"

namespace bayescrowd {

/// On-disk format of serialized circuits. Folded into the evaluator's
/// compile-artifact cache tag, so bumping it orphans (never mis-serves)
/// artifacts produced by older builds.
inline constexpr std::uint32_t kCircuitFormatVersion = 1;

/// Compile-layer counters, surfaced as "compile.*" metrics.
struct CircuitStats {
  std::uint64_t builds = 0;     // Conditions compiled successfully.
  std::uint64_t fallbacks = 0;  // Compilations refused (budget/structure).
  std::uint64_t reuses = 0;     // Evaluations served by a circuit.
  std::uint64_t nodes = 0;      // Arena nodes across all builds.
  std::uint64_t restored = 0;   // Artifacts restored from a checkpoint.
  std::uint64_t evictions = 0;  // Artifacts dropped by the cache cap.

  CircuitStats& operator+=(const CircuitStats& other) {
    builds += other.builds;
    fallbacks += other.fallbacks;
    reuses += other.reuses;
    nodes += other.nodes;
    restored += other.restored;
    evictions += other.evictions;
    return *this;
  }
};

enum class CircuitNodeKind : std::uint8_t {
  kConst = 0,     // Decided subformula: fixed 0/1.
  kConjunct = 1,  // Distinct-variable disjunction: 1 - Π (1 - Pr(e)).
  kNaive = 2,     // Correlated conjunct: exact enumeration at eval.
  kStar = 3,      // Star plan: hub enumeration with refilled tables.
  kProduct = 4,   // Independent factors, in recorded order.
  kDecision = 5,  // Σ_v p(v) · child_v over one variable's domain.
};

struct CircuitNode {
  CircuitNodeKind kind = CircuitNodeKind::kConst;
  double constant = 0.0;     // kConst.
  std::uint32_t first = 0;   // Children (kProduct/kDecision) or
  std::uint32_t count = 0;   // expressions (kConjunct/kNaive) range.
  std::int32_t var_slot = -1;  // kDecision: variable; kStar: plan index.
};

/// Per-lane evaluation buffers (the SoA distribution copy and the star
/// scratch). One per concurrent caller; reused across evaluations.
struct CircuitScratch {
  std::vector<double> soa;
  StarScratch star;
};

/// The immutable artifact. Shared across lanes during batch evaluation;
/// all mutation happens through the compiler or Deserialize.
struct CompiledCircuit {
  std::vector<CircuitNode> nodes;
  std::vector<std::uint32_t> children;

  // Leaf expressions with operand slots resolved into `vars`.
  std::vector<Expression> exprs;
  std::vector<std::int32_t> expr_lhs_slot;
  std::vector<std::int32_t> expr_rhs_slot;  // -1: rhs is a constant.

  // Distribution slots: first-reference order, with the arities pinned
  // at compile time and prefix offsets into the SoA scratch copy.
  std::vector<CellRef> vars;
  std::vector<std::uint32_t> var_sizes;
  std::vector<std::uint32_t> var_offsets;
  std::uint64_t soa_slots = 0;

  std::vector<StarPlan> stars;

  std::uint32_t root = 0;
  std::uint64_t cost = 0;  // Compile-budget units charged.
  // Inner Naive budget for kNaive leaves (the compiling AdpllOptions'
  // max_conjunct_assignments; 0 keeps the NaiveOptions default).
  std::uint64_t max_conjunct_assignments = 0;

  /// Re-evaluates the recorded solve under the current distributions.
  /// NotFound if a referenced distribution disappeared;
  /// FailedPrecondition if an arity changed since compilation (the
  /// caller falls back to ADPLL either way).
  Result<double> Evaluate(const DistributionMap& dists,
                          CircuitScratch* scratch) const;

  /// Canonical binary form (deterministic given a deterministic
  /// compile), appended via `w`.
  void Serialize(BinWriter* w) const;

  /// Restores a Serialize() blob; validates every index so a corrupt
  /// payload errors instead of reading out of bounds.
  static Status Deserialize(BinReader* r, CompiledCircuit* out);

 private:
  Result<double> EvalNode(std::uint32_t id, const DistributionMap& dists,
                          CircuitScratch* scratch) const;
  double LeafProbability(std::uint32_t e, const CircuitScratch& scratch) const;
};

}  // namespace bayescrowd

#endif  // BAYESCROWD_PROBABILITY_CIRCUIT_H_
