#include "probability/compiler.h"

#include <unordered_map>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "probability/naive.h"

namespace bayescrowd {
namespace {

class CircuitCompiler {
 public:
  CircuitCompiler(const DistributionMap& dists, const AdpllOptions& adpll,
                  std::uint64_t max_nodes)
      : dists_(dists), adpll_(adpll), max_nodes_(max_nodes) {}

  Result<CompiledCircuit> Compile(const Condition& condition) {
    if (adpll_.heuristic == BranchHeuristic::kRandom) {
      return Status::InvalidArgument(
          "cannot compile under the random branch heuristic");
    }
    circuit_.max_conjunct_assignments = adpll_.max_conjunct_assignments;
    BAYESCROWD_ASSIGN_OR_RETURN(circuit_.root, CompileNode(condition));
    circuit_.cost = cost_;
    return std::move(circuit_);
  }

 private:
  Status Charge(std::uint64_t units) {
    cost_ += units;
    if (cost_ > max_nodes_) {
      return Status::ResourceExhausted(StrFormat(
          "circuit compilation exceeded %llu nodes",
          static_cast<unsigned long long>(max_nodes_)));
    }
    return Status::OK();
  }

  /// Interns one distribution slot (first-reference order) and extends
  /// the SoA layout with its arity.
  Result<std::int32_t> VarSlot(const CellRef& var) {
    const PackedVar packed = PackVar(var);
    const auto it = var_slot_.find(packed);
    if (it != var_slot_.end()) return it->second;
    const std::vector<double>* dist = dists_.Find(var);
    if (dist == nullptr) {
      return Status::NotFound(StrFormat("no distribution for Var(%zu,%zu)",
                                        var.object, var.attribute));
    }
    const std::int32_t slot = static_cast<std::int32_t>(circuit_.vars.size());
    circuit_.vars.push_back(var);
    circuit_.var_sizes.push_back(static_cast<std::uint32_t>(dist->size()));
    circuit_.var_offsets.push_back(
        static_cast<std::uint32_t>(circuit_.soa_slots));
    circuit_.soa_slots += dist->size();
    var_slot_.emplace(packed, slot);
    return slot;
  }

  Result<std::uint32_t> Emit(CircuitNode node) {
    BAYESCROWD_RETURN_NOT_OK(Charge(1));
    const std::uint32_t id =
        static_cast<std::uint32_t>(circuit_.nodes.size());
    circuit_.nodes.push_back(node);
    return id;
  }

  Result<std::uint32_t> EmitConst(double value) {
    CircuitNode node;
    node.kind = CircuitNodeKind::kConst;
    node.constant = value;
    return Emit(node);
  }

  Result<std::uint32_t> EmitRange(CircuitNodeKind kind, std::uint32_t first,
                                  std::uint32_t count,
                                  std::int32_t var_slot = -1) {
    CircuitNode node;
    node.kind = kind;
    node.first = first;
    node.count = count;
    node.var_slot = var_slot;
    return Emit(node);
  }

  Result<std::uint32_t> AppendExpr(const Expression& e) {
    BAYESCROWD_ASSIGN_OR_RETURN(const std::int32_t ls, VarSlot(e.lhs));
    std::int32_t rs = -1;
    if (e.rhs_is_var) {
      BAYESCROWD_ASSIGN_OR_RETURN(rs, VarSlot(e.rhs_var));
    }
    circuit_.exprs.push_back(e);
    circuit_.expr_lhs_slot.push_back(ls);
    circuit_.expr_rhs_slot.push_back(rs);
    return static_cast<std::uint32_t>(circuit_.exprs.size() - 1);
  }

  /// Distinct-variable conjunct: the disjunctive-rule leaf.
  Result<std::uint32_t> EmitLeafConjunct(const Conjunct& conjunct) {
    BAYESCROWD_RETURN_NOT_OK(Charge(conjunct.size()));
    const std::uint32_t first =
        static_cast<std::uint32_t>(circuit_.exprs.size());
    for (const Expression& e : conjunct) {
      BAYESCROWD_RETURN_NOT_OK(AppendExpr(e).status());
    }
    return EmitRange(CircuitNodeKind::kConjunct, first,
                     static_cast<std::uint32_t>(conjunct.size()));
  }

  /// Correlated conjunct: exact enumeration at eval time. The compile
  /// pre-pays the enumeration space so an eval can never hit the inner
  /// Naive budget (compiled evaluation must not start failing later).
  Result<std::uint32_t> EmitLeafNaive(const Conjunct& conjunct) {
    const std::uint64_t inner_max =
        adpll_.max_conjunct_assignments > 0 ? adpll_.max_conjunct_assignments
                                            : NaiveOptions{}.max_assignments;
    seen_vars_.clear();
    std::uint64_t space = 1;
    const auto fold_var = [this, inner_max,
                           &space](const CellRef& var) -> Status {
      for (const CellRef& v : seen_vars_) {
        if (v == var) return Status::OK();
      }
      seen_vars_.push_back(var);
      const std::vector<double>* dist = dists_.Find(var);
      if (dist == nullptr) {
        return Status::NotFound(StrFormat("no distribution for Var(%zu,%zu)",
                                          var.object, var.attribute));
      }
      if (space > inner_max / dist->size()) {
        return Status::ResourceExhausted(
            "conjunct enumeration space exceeds the inner Naive budget");
      }
      space *= dist->size();
      return Status::OK();
    };
    for (const Expression& e : conjunct) {
      BAYESCROWD_RETURN_NOT_OK(fold_var(e.lhs));
      if (e.rhs_is_var) {
        BAYESCROWD_RETURN_NOT_OK(fold_var(e.rhs_var));
      }
    }
    BAYESCROWD_RETURN_NOT_OK(Charge(space));
    const std::uint32_t first =
        static_cast<std::uint32_t>(circuit_.exprs.size());
    for (const Expression& e : conjunct) {
      BAYESCROWD_RETURN_NOT_OK(AppendExpr(e).status());
    }
    return EmitRange(CircuitNodeKind::kNaive, first,
                     static_cast<std::uint32_t>(conjunct.size()));
  }

  Result<std::uint32_t> EmitProduct(const std::vector<std::uint32_t>& kids) {
    const std::uint32_t first =
        static_cast<std::uint32_t>(circuit_.children.size());
    circuit_.children.insert(circuit_.children.end(), kids.begin(),
                             kids.end());
    return EmitRange(CircuitNodeKind::kProduct, first,
                     static_cast<std::uint32_t>(kids.size()));
  }

  // Mirrors AdpllSearch::Recurse decision for decision: same rule order,
  // same branch variable, but every value child is compiled (a value
  // with zero mass today can carry mass under a future posterior; at
  // eval time zero-mass branches are skipped exactly like ADPLL's).
  Result<std::uint32_t> CompileNode(const Condition& condition) {
    if (condition.IsTrue()) return EmitConst(1.0);
    if (condition.IsFalse()) return EmitConst(0.0);

    // Special conjunctive rule: variable-disjoint conjuncts multiply.
    if (condition.ConjunctsAreIndependent()) {
      std::vector<std::uint32_t> leaves;
      leaves.reserve(condition.conjuncts().size());
      for (const Conjunct& conjunct : condition.conjuncts()) {
        // The same distinct-variable scan as ConjunctProbability.
        bool distinct = true;
        seen_vars_.clear();
        const auto note = [this](const CellRef& var) {
          for (const CellRef& v : seen_vars_) {
            if (v == var) return false;
          }
          seen_vars_.push_back(var);
          return true;
        };
        for (const Expression& e : conjunct) {
          if (!note(e.lhs) || (e.rhs_is_var && !note(e.rhs_var))) {
            distinct = false;
            break;
          }
        }
        BAYESCROWD_ASSIGN_OR_RETURN(const std::uint32_t leaf,
                                    distinct ? EmitLeafConjunct(conjunct)
                                             : EmitLeafNaive(conjunct));
        leaves.push_back(leaf);
      }
      return EmitProduct(leaves);
    }

    // Star fast path: store the plan; tables are refilled per eval.
    if (adpll_.star_fast_path) {
      StarPlan plan;
      Status status = Status::OK();
      if (BuildStarPlan(condition, dists_, adpll_.max_hub_space, &plan,
                        &star_scratch_, &status)) {
        BAYESCROWD_RETURN_NOT_OK(status);
        BAYESCROWD_RETURN_NOT_OK(Charge(plan.space));
        const std::int32_t index =
            static_cast<std::int32_t>(circuit_.stars.size());
        circuit_.stars.push_back(std::move(plan));
        return EmitRange(CircuitNodeKind::kStar, 0, 0, index);
      }
    }

    // Refinement: split variable-disjoint *groups* of conjuncts.
    if (adpll_.component_decomposition) {
      const auto components = condition.ConjunctComponents();
      if (components.size() > 1) {
        std::vector<std::uint32_t> kids;
        kids.reserve(components.size());
        for (const auto& indices : components) {
          std::vector<Conjunct> sub;
          sub.reserve(indices.size());
          for (std::size_t c : indices) {
            sub.push_back(condition.conjuncts()[c]);
          }
          BAYESCROWD_ASSIGN_OR_RETURN(
              const std::uint32_t child,
              CompileNode(Condition::Cnf(std::move(sub))));
          kids.push_back(child);
        }
        return EmitProduct(kids);
      }
    }

    // Branch on the heuristic's variable, over its full domain.
    const CellRef var = adpll_.heuristic == BranchHeuristic::kFirst
                            ? condition.Variables().front()
                            : condition.MostFrequentVariable();
    BAYESCROWD_ASSIGN_OR_RETURN(const std::int32_t slot, VarSlot(var));
    const std::size_t size =
        circuit_.var_sizes[static_cast<std::size_t>(slot)];
    std::vector<std::uint32_t> kids;
    kids.reserve(size);
    for (std::size_t value = 0; value < size; ++value) {
      BAYESCROWD_ASSIGN_OR_RETURN(
          const std::uint32_t child,
          CompileNode(condition.SubstituteVariable(
              var, static_cast<Level>(value))));
      kids.push_back(child);
    }
    const std::uint32_t first =
        static_cast<std::uint32_t>(circuit_.children.size());
    circuit_.children.insert(circuit_.children.end(), kids.begin(),
                             kids.end());
    return EmitRange(CircuitNodeKind::kDecision, first,
                     static_cast<std::uint32_t>(size), slot);
  }

  const DistributionMap& dists_;
  const AdpllOptions& adpll_;
  const std::uint64_t max_nodes_;
  CompiledCircuit circuit_;
  std::uint64_t cost_ = 0;
  std::unordered_map<PackedVar, std::int32_t> var_slot_;
  std::vector<CellRef> seen_vars_;
  StarScratch star_scratch_;
};

}  // namespace

const char* CompileModeToString(CompileMode mode) {
  switch (mode) {
    case CompileMode::kOff:
      return "off";
    case CompileMode::kAuto:
      return "auto";
    case CompileMode::kOn:
      return "on";
  }
  return "?";
}

bool ParseCompileMode(const std::string& name, CompileMode* mode) {
  if (name == "off") {
    *mode = CompileMode::kOff;
  } else if (name == "auto") {
    *mode = CompileMode::kAuto;
  } else if (name == "on") {
    *mode = CompileMode::kOn;
  } else {
    return false;
  }
  return true;
}

Result<CompiledCircuit> CompileCondition(const Condition& condition,
                                         const DistributionMap& dists,
                                         const AdpllOptions& adpll,
                                         const CompileOptions& compile) {
  CircuitCompiler compiler(dists, adpll, compile.max_nodes);
  return compiler.Compile(condition);
}

}  // namespace bayescrowd
