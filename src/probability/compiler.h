// CircuitCompiler: knowledge compilation of one condition into a
// CompiledCircuit (see circuit.h) by mirroring ADPLL's recursion.
//
// The compile walks the exact decision order of AdpllSearch::Recurse —
// decided constants, the independent-conjunct product, the star fast
// path, component decomposition, then branching on the same heuristic's
// variable — but records structure instead of computing numbers, and
// compiles *every* value branch (a branch that is zero-probability
// today can carry mass under tomorrow's posteriors). A node budget
// makes blowup degrade instead of failing: exceeding it aborts the
// compile with ResourceExhausted and the evaluator keeps using the
// governed ADPLL ladder for that condition.

#ifndef BAYESCROWD_PROBABILITY_COMPILER_H_
#define BAYESCROWD_PROBABILITY_COMPILER_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "ctable/condition.h"
#include "probability/adpll.h"
#include "probability/circuit.h"
#include "probability/distributions.h"

namespace bayescrowd {

enum class CompileMode : std::uint8_t {
  kOff = 0,   // Never compile; every evaluation re-runs the solver.
  kAuto = 1,  // Compile when the configuration is eligible (default).
  kOn = 2,    // Same in-library behavior as kAuto; the CLI additionally
              // rejects configurations that cannot compile.
};

const char* CompileModeToString(CompileMode mode);
bool ParseCompileMode(const std::string& name, CompileMode* mode);

struct CompileOptions {
  CompileMode mode = CompileMode::kAuto;

  /// Compile budget: total circuit cost (nodes, plus the enumeration
  /// spaces of star and naive leaves) before the compile aborts with
  /// ResourceExhausted and the condition stays on the ADPLL ladder.
  std::uint64_t max_nodes = 1ull << 16;
};

/// Compiles `condition` against the structure of `dists` (arities only;
/// no posterior values are baked in) under the ADPLL options' search
/// shape. Errors: ResourceExhausted when `compile.max_nodes` is
/// exceeded or a correlated conjunct's enumeration space exceeds the
/// inner Naive budget; InvalidArgument for the random branch heuristic
/// (its order is not value-independent); NotFound for an unregistered
/// variable.
Result<CompiledCircuit> CompileCondition(const Condition& condition,
                                         const DistributionMap& dists,
                                         const AdpllOptions& adpll,
                                         const CompileOptions& compile);

}  // namespace bayescrowd

#endif  // BAYESCROWD_PROBABILITY_COMPILER_H_
