#include "probability/distributions.h"

#include <cmath>

#include "common/string_util.h"

namespace bayescrowd {

Status DistributionMap::Set(const CellRef& var,
                            std::vector<double> distribution) {
  if (distribution.empty()) {
    return Status::InvalidArgument("empty distribution");
  }
  double total = 0.0;
  for (double p : distribution) {
    if (p < 0.0 || std::isnan(p)) {
      return Status::InvalidArgument("negative or NaN probability");
    }
    total += p;
  }
  if (std::abs(total - 1.0) > 1e-6) {
    return Status::InvalidArgument(
        StrFormat("distribution sums to %f, expected 1", total));
  }
  map_[var] = std::move(distribution);
  return Status::OK();
}

Result<std::vector<double>> DistributionMap::Get(const CellRef& var) const {
  const auto it = map_.find(var);
  if (it == map_.end()) {
    return Status::NotFound(StrFormat("no distribution for Var(%zu,%zu)",
                                      var.object, var.attribute));
  }
  return it->second;
}

const std::vector<double>* DistributionMap::Find(const CellRef& var) const {
  const auto it = map_.find(var);
  return it == map_.end() ? nullptr : &it->second;
}

double TailMassGreater(const double* dist, std::size_t size, Level bound) {
  double p = 0.0;
  for (std::size_t v = 0; v < size; ++v) {
    if (static_cast<Level>(v) > bound) p += dist[v];
  }
  return p;
}

double HeadMassLess(const double* dist, std::size_t size, Level bound) {
  double p = 0.0;
  for (std::size_t v = 0; v < size; ++v) {
    if (static_cast<Level>(v) < bound) p += dist[v];
  }
  return p;
}

double CrossMass(const double* lhs, std::size_t lhs_size, const double* rhs,
                 std::size_t rhs_size, CmpOp op) {
  // Integrate P(lhs op rhs) with a suffix/prefix sum over rhs.
  double p = 0.0;
  if (op == CmpOp::kGreater) {
    // P(lhs > rhs) = sum_a p_l(a) * P(rhs < a).
    double rhs_prefix = 0.0;  // P(rhs < a), built incrementally.
    for (std::size_t a = 0; a < lhs_size; ++a) {
      if (a > 0 && a - 1 < rhs_size) rhs_prefix += rhs[a - 1];
      p += lhs[a] * rhs_prefix;
    }
  } else {
    // P(lhs < rhs) = sum_a p_l(a) * P(rhs > a).
    double rhs_suffix = 0.0;
    for (std::size_t b = 1; b < rhs_size; ++b) rhs_suffix += rhs[b];
    for (std::size_t a = 0; a < lhs_size; ++a) {
      p += lhs[a] * rhs_suffix;
      if (a + 1 < rhs_size) rhs_suffix -= rhs[a + 1];
    }
  }
  return p;
}

Result<double> DistributionMap::ProbGreater(const CellRef& var,
                                            Level bound) const {
  const std::vector<double>* dist = Find(var);
  if (dist == nullptr) {
    return Status::NotFound("unregistered variable");
  }
  return TailMassGreater(dist->data(), dist->size(), bound);
}

Result<double> DistributionMap::ProbLess(const CellRef& var,
                                         Level bound) const {
  const std::vector<double>* dist = Find(var);
  if (dist == nullptr) {
    return Status::NotFound("unregistered variable");
  }
  return HeadMassLess(dist->data(), dist->size(), bound);
}

Result<double> ExpressionProbability(const Expression& expression,
                                     const DistributionMap& dists) {
  if (!expression.rhs_is_var) {
    return expression.op == CmpOp::kGreater
               ? dists.ProbGreater(expression.lhs, expression.rhs_const)
               : dists.ProbLess(expression.lhs, expression.rhs_const);
  }
  const std::vector<double>* lhs = dists.Find(expression.lhs);
  const std::vector<double>* rhs = dists.Find(expression.rhs_var);
  if (lhs == nullptr || rhs == nullptr) {
    return Status::NotFound("unregistered variable in var-var expression");
  }
  return CrossMass(lhs->data(), lhs->size(), rhs->data(), rhs->size(),
                   expression.op);
}

}  // namespace bayescrowd
