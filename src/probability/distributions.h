// DistributionMap: the per-variable value distributions that probability
// computation integrates over.
//
// Distributions come from the Bayesian-network posteriors (preprocessing
// step), optionally conditioned on crowd knowledge
// (KnowledgeBase::ConditionDistribution). This module is deliberately
// independent of the bayesnet library: it consumes plain vectors.

#ifndef BAYESCROWD_PROBABILITY_DISTRIBUTIONS_H_
#define BAYESCROWD_PROBABILITY_DISTRIBUTIONS_H_

#include <map>
#include <vector>

#include "common/result.h"
#include "ctable/expression.h"
#include "data/table.h"

namespace bayescrowd {

/// Maps variables (missing cells) to normalized value distributions.
class DistributionMap {
 public:
  DistributionMap() = default;

  /// Registers the distribution of `var`. It must be non-empty, have no
  /// negative entries and sum to 1 within tolerance.
  Status Set(const CellRef& var, std::vector<double> distribution);

  bool Contains(const CellRef& var) const {
    return map_.find(var) != map_.end();
  }

  /// Distribution of `var`; NotFound if unregistered.
  Result<std::vector<double>> Get(const CellRef& var) const;

  /// Borrowed pointer for hot paths; nullptr if unregistered.
  const std::vector<double>* Find(const CellRef& var) const;

  std::size_t size() const { return map_.size(); }

  /// P(var > c) / P(var < c) under the registered distribution.
  Result<double> ProbGreater(const CellRef& var, Level bound) const;
  Result<double> ProbLess(const CellRef& var, Level bound) const;

 private:
  std::map<CellRef, std::vector<double>> map_;
};

/// P(e) for a single expression, assuming distinct variables are
/// independent (var-var expressions integrate over the product
/// distribution).
Result<double> ExpressionProbability(const Expression& expression,
                                     const DistributionMap& dists);

/// Span-based primitives behind ProbGreater / ProbLess /
/// ExpressionProbability. The compiled-circuit evaluator reads its
/// distributions out of a contiguous SoA copy, so these take raw spans;
/// DistributionMap delegates to them, keeping both paths one arithmetic
/// source (and therefore bit-identical).
double TailMassGreater(const double* dist, std::size_t size, Level bound);
double HeadMassLess(const double* dist, std::size_t size, Level bound);
double CrossMass(const double* lhs, std::size_t lhs_size, const double* rhs,
                 std::size_t rhs_size, CmpOp op);

}  // namespace bayescrowd

#endif  // BAYESCROWD_PROBABILITY_DISTRIBUTIONS_H_
