#include "probability/evaluator.h"

namespace bayescrowd {

const char* ProbabilityMethodToString(ProbabilityMethod method) {
  switch (method) {
    case ProbabilityMethod::kAdpll:
      return "adpll";
    case ProbabilityMethod::kNaive:
      return "naive";
    case ProbabilityMethod::kSampled:
      return "sampled";
    case ProbabilityMethod::kSampledRaoBlackwell:
      return "sampled-rb";
  }
  return "?";
}

Result<double> ProbabilityEvaluator::Probability(const Condition& condition) {
  Result<double> result = Status::Internal("unknown probability method");
  switch (options_.method) {
    case ProbabilityMethod::kAdpll:
      result = AdpllProbability(condition, dists_, options_.adpll,
                                &adpll_stats_);
      break;
    case ProbabilityMethod::kNaive:
      result = NaiveProbability(condition, dists_, options_.naive);
      break;
    case ProbabilityMethod::kSampled:
      return SampledProbability(condition, dists_, options_.sampling, rng_);
    case ProbabilityMethod::kSampledRaoBlackwell:
      return SampledProbabilityRaoBlackwell(condition, dists_,
                                            options_.sampling, rng_);
  }
  if (!result.ok() && options_.sampling_fallback &&
      result.status().code() == StatusCode::kResourceExhausted) {
    SamplingOptions fallback;
    fallback.num_samples = options_.fallback_samples;
    return SampledProbability(condition, dists_, fallback, rng_);
  }
  return result;
}

}  // namespace bayescrowd
