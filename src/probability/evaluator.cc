#include "probability/evaluator.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/string_util.h"
#include "obs/trace.h"

namespace bayescrowd {
namespace {

std::uint64_t SplitMix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

const char* ProbabilityMethodToString(ProbabilityMethod method) {
  switch (method) {
    case ProbabilityMethod::kAdpll:
      return "adpll";
    case ProbabilityMethod::kNaive:
      return "naive";
    case ProbabilityMethod::kSampled:
      return "sampled";
    case ProbabilityMethod::kSampledRaoBlackwell:
      return "sampled-rb";
  }
  return "?";
}

void ProbabilityEvaluator::BindMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    if (owned_metrics_ == nullptr) {
      owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    }
    registry = owned_metrics_.get();
  }
  metrics_ = registry;
  ins_.cache_hits = registry->GetCounter("evaluator.cache.hits");
  ins_.cache_misses = registry->GetCounter("evaluator.cache.misses");
  ins_.cache_evictions = registry->GetCounter("evaluator.cache.evictions");
  ins_.adpll_calls = registry->GetCounter("adpll.calls");
  ins_.adpll_branches = registry->GetCounter("adpll.branches");
  ins_.adpll_direct_evals = registry->GetCounter("adpll.direct_evals");
  ins_.adpll_component_splits =
      registry->GetCounter("adpll.component_splits");
  ins_.adpll_star_evals = registry->GetCounter("adpll.star_evals");
  ins_.solver_budget_exhausted =
      registry->GetCounter("solver.budget_exhausted");
  ins_.solver_deadline_hits = registry->GetCounter("solver.deadline_hits");
  ins_.solver_tier_exact = registry->GetCounter("solver.ladder_tier.exact");
  ins_.solver_tier_partial =
      registry->GetCounter("solver.ladder_tier.partial");
  ins_.solver_tier_sampled =
      registry->GetCounter("solver.ladder_tier.sampled");
  ins_.solver_tier_unknown =
      registry->GetCounter("solver.ladder_tier.unknown");
  ins_.compile_builds = registry->GetCounter("compile.builds");
  ins_.compile_fallbacks = registry->GetCounter("compile.fallbacks");
  ins_.compile_reuses = registry->GetCounter("compile.reuses");
  ins_.compile_nodes = registry->GetCounter("compile.nodes");
  ins_.compile_restored = registry->GetCounter("compile.restored");
  ins_.compile_evictions = registry->GetCounter("compile.evictions");
  ins_.batch_size = registry->GetHistogram(
      "evaluator.batch.size", {1.0, 4.0, 16.0, 64.0, 256.0, 1024.0});
  ins_.batch_misses = registry->GetHistogram(
      "evaluator.batch.misses", {1.0, 4.0, 16.0, 64.0, 256.0, 1024.0});
  ResolveCostInstruments();
}

void ProbabilityEvaluator::ResolveCostInstruments() {
  const auto labeled = [this](const char* name, std::size_t tier,
                              const char* compile_state) {
    return metrics_->GetCounter(
        name, {{"session", cost_session_},
               {"phase", cost_phase_},
               {"solver_tier",
                ProbQualityToString(static_cast<ProbQuality>(tier))},
               {"compile_state", compile_state}});
  };
  for (std::size_t tier = 0; tier < kTierCount; ++tier) {
    cost_.adpll_nodes[tier] = labeled("cost.adpll_nodes", tier, "search");
    cost_.cache_hits[tier] = labeled("cost.cache_hits", tier, "memo");
    cost_.cache_misses[tier] = labeled("cost.cache_misses", tier, "memo");
  }
  cost_.replay_ops = labeled(
      "cost.replay_ops", static_cast<std::size_t>(ProbQuality::kExact),
      "replay");
}

void ProbabilityEvaluator::SetCostContext(const std::string& session,
                                          const std::string& phase) {
  if (session == cost_session_ && phase == cost_phase_) return;
  cost_session_ = session;
  cost_phase_ = phase;
  ResolveCostInstruments();
}

EvaluatorCacheStats ProbabilityEvaluator::cache_stats() const {
  EvaluatorCacheStats out;
  out.hits = ins_.cache_hits->value();
  out.misses = ins_.cache_misses->value();
  out.evictions = ins_.cache_evictions->value();
  return out;
}

AdpllStats ProbabilityEvaluator::adpll_stats() const {
  AdpllStats out;
  out.calls = ins_.adpll_calls->value();
  out.branches = ins_.adpll_branches->value();
  out.direct_evals = ins_.adpll_direct_evals->value();
  out.component_splits = ins_.adpll_component_splits->value();
  out.star_evals = ins_.adpll_star_evals->value();
  return out;
}

void ProbabilityEvaluator::AddAdpllStats(const AdpllStats& stats) {
  ins_.adpll_calls->Increment(stats.calls);
  ins_.adpll_branches->Increment(stats.branches);
  ins_.adpll_direct_evals->Increment(stats.direct_evals);
  ins_.adpll_component_splits->Increment(stats.component_splits);
  ins_.adpll_star_evals->Increment(stats.star_evals);
}

GovernorTally ProbabilityEvaluator::solver_stats() const {
  GovernorTally out;
  out.budget_exhausted = ins_.solver_budget_exhausted->value();
  out.deadline_hits = ins_.solver_deadline_hits->value();
  out.tier_exact = ins_.solver_tier_exact->value();
  out.tier_partial = ins_.solver_tier_partial->value();
  out.tier_sampled = ins_.solver_tier_sampled->value();
  out.tier_unknown = ins_.solver_tier_unknown->value();
  return out;
}

void ProbabilityEvaluator::AddSolverTally(const GovernorTally& tally) {
  ins_.solver_budget_exhausted->Increment(tally.budget_exhausted);
  ins_.solver_deadline_hits->Increment(tally.deadline_hits);
  ins_.solver_tier_exact->Increment(tally.tier_exact);
  ins_.solver_tier_partial->Increment(tally.tier_partial);
  ins_.solver_tier_sampled->Increment(tally.tier_sampled);
  ins_.solver_tier_unknown->Increment(tally.tier_unknown);
}

CircuitStats ProbabilityEvaluator::compile_stats() const {
  CircuitStats out;
  out.builds = ins_.compile_builds->value();
  out.fallbacks = ins_.compile_fallbacks->value();
  out.reuses = ins_.compile_reuses->value();
  out.nodes = ins_.compile_nodes->value();
  out.restored = ins_.compile_restored->value();
  out.evictions = ins_.compile_evictions->value();
  return out;
}

void ProbabilityEvaluator::AddCircuitStats(const CircuitStats& stats) {
  ins_.compile_builds->Increment(stats.builds);
  ins_.compile_fallbacks->Increment(stats.fallbacks);
  ins_.compile_reuses->Increment(stats.reuses);
  ins_.compile_nodes->Increment(stats.nodes);
  ins_.compile_restored->Increment(stats.restored);
  ins_.compile_evictions->Increment(stats.evictions);
}

std::uint64_t ProbabilityEvaluator::CompileTag() const {
  if (!CompileActive()) return 0;
  std::uint64_t h = SplitMix64(0xC1DC1ULL);
  h = SplitMix64(h ^ options_.compile.max_nodes);
  h = SplitMix64(h ^ kCircuitFormatVersion);
  return h == 0 ? 1 : h;
}

std::uint64_t ProbabilityEvaluator::ScopeTag() const {
  if (options_.cache_scope == 0) return 0;
  const std::uint64_t h = SplitMix64(options_.cache_scope ^ 0x5C09EULL);
  return h == 0 ? 1 : h;
}

std::uint64_t ProbabilityEvaluator::DistStamp(
    const Condition& condition) const {
  // Sum of per-occurrence digests: order-insensitive, and equal
  // conditions produce equal multisets of occurrences, so the stamp
  // matches iff no mentioned variable's epoch moved since insertion.
  std::uint64_t stamp = 0;
  const auto add = [this, &stamp](const CellRef& var) {
    const PackedVar packed = PackVar(var);
    const auto it = var_epoch_.find(packed);
    const std::uint64_t epoch = it == var_epoch_.end() ? 0 : it->second;
    stamp += SplitMix64(packed ^ (epoch * 0xD6E8FEB86659FD93ULL));
  };
  for (const Conjunct& conjunct : condition.conjuncts()) {
    for (const Expression& e : conjunct) {
      add(e.lhs);
      if (e.rhs_is_var) add(e.rhs_var);
    }
  }
  return stamp;
}

Status ProbabilityEvaluator::SetDistribution(const CellRef& var,
                                             std::vector<double> dist) {
  BAYESCROWD_RETURN_NOT_OK(dists_.Set(var, std::move(dist)));
  InvalidateVariable(var);
  return Status::OK();
}

void ProbabilityEvaluator::InvalidateVariable(const CellRef& var) {
  const PackedVar packed = PackVar(var);
  ++var_epoch_[packed];
  const auto it = var_index_.find(packed);
  if (it == var_index_.end()) return;
  for (const ConditionFingerprint& fingerprint : it->second) {
    ins_.cache_evictions->Increment(cache_.erase(fingerprint));
  }
  var_index_.erase(it);
}

void ProbabilityEvaluator::ClearCache() {
  ins_.cache_evictions->Increment(cache_.size());
  cache_.clear();
  var_index_.clear();
}

bool ProbabilityEvaluator::IsCached(const Condition& condition) const {
  if (condition.IsDecided()) return false;
  const auto it = cache_.find(condition.Fingerprint());
  return it != cache_.end() &&
         it->second.stamp == (DistStamp(condition) ^ BudgetTag() ^
                              CompileTag() ^ ScopeTag());
}

Rng ProbabilityEvaluator::ConditionRng(
    const ConditionFingerprint& fingerprint) const {
  return Rng(options_.sampling_seed ^ SplitMix64(fingerprint.first) ^
             SplitMix64(fingerprint.second ^ 0xC2B2AE3D27D4EB4FULL));
}

void ProbabilityEvaluator::Insert(const ConditionFingerprint& fingerprint,
                                  const Condition& condition,
                                  const ProbInterval& interval) {
  cache_[fingerprint] = CacheEntry{
      interval,
      DistStamp(condition) ^ BudgetTag() ^ CompileTag() ^ ScopeTag()};
  for (const CellRef& var : condition.Variables()) {
    var_index_[PackVar(var)].push_back(fingerprint);
  }
}

void ProbabilityEvaluator::SerializeMemoState(std::string* out) const {
  BinWriter w(out);
  for (const std::uint64_t word : rng_.SaveState()) w.WriteU64(word);

  // Sort every map before writing so the blob is canonical: two
  // processes that reached the same logical state emit identical bytes
  // regardless of hash-table iteration order.
  std::vector<std::pair<ConditionFingerprint, CacheEntry>> entries(
      cache_.begin(), cache_.end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.WriteU64(entries.size());
  for (const auto& [fingerprint, entry] : entries) {
    w.WriteU64(fingerprint.first);
    w.WriteU64(fingerprint.second);
    w.WriteDouble(entry.interval.lo);
    w.WriteDouble(entry.interval.hi);
    w.WriteU8(static_cast<std::uint8_t>(entry.interval.quality));
    w.WriteU64(entry.stamp);
  }

  std::vector<std::pair<PackedVar, std::vector<ConditionFingerprint>>> index(
      var_index_.begin(), var_index_.end());
  std::sort(index.begin(), index.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.WriteU64(index.size());
  for (auto& [var, fingerprints] : index) {
    std::sort(fingerprints.begin(), fingerprints.end());
    w.WriteU64(var);
    w.WriteU64(fingerprints.size());
    for (const ConditionFingerprint& fingerprint : fingerprints) {
      w.WriteU64(fingerprint.first);
      w.WriteU64(fingerprint.second);
    }
  }

  std::vector<std::pair<PackedVar, std::uint64_t>> epochs(var_epoch_.begin(),
                                                          var_epoch_.end());
  std::sort(epochs.begin(), epochs.end());
  w.WriteU64(epochs.size());
  for (const auto& [var, epoch] : epochs) {
    w.WriteU64(var);
    w.WriteU64(epoch);
  }

  // Format-3 appendix: compiled artifacts and the compile-refusal set,
  // both fingerprint-sorted for canonical bytes. A resumed session then
  // re-evaluates circuits immediately instead of re-solving (and
  // re-compiling) every condition once per resume.
  std::vector<std::pair<ConditionFingerprint, const CompiledCircuit*>>
      circuits;
  circuits.reserve(circuits_.size());
  for (const auto& [fingerprint, circuit] : circuits_) {
    circuits.emplace_back(fingerprint, circuit.get());
  }
  std::sort(circuits.begin(), circuits.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.WriteU64(circuit_store_tag_);
  w.WriteU64(circuits.size());
  for (const auto& [fingerprint, circuit] : circuits) {
    w.WriteU64(fingerprint.first);
    w.WriteU64(fingerprint.second);
    std::string blob;
    BinWriter cw(&blob);
    circuit->Serialize(&cw);
    w.WriteString(blob);
  }

  std::vector<ConditionFingerprint> failed(circuit_failed_.begin(),
                                           circuit_failed_.end());
  std::sort(failed.begin(), failed.end());
  w.WriteU64(failed.size());
  for (const ConditionFingerprint& fingerprint : failed) {
    w.WriteU64(fingerprint.first);
    w.WriteU64(fingerprint.second);
  }
}

Status ProbabilityEvaluator::RestoreMemoState(BinReader* reader,
                                              std::uint32_t format) {
  if (format == 0 || format > kMemoStateFormat) {
    return Status::InvalidArgument(
        StrFormat("unsupported memo-state format %u",
                  static_cast<unsigned>(format)));
  }
  std::array<std::uint64_t, 4> rng_state{};
  for (std::uint64_t& word : rng_state) {
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&word));
  }
  rng_.LoadState(rng_state);

  cache_.clear();
  var_index_.clear();
  var_epoch_.clear();
  circuits_.clear();
  circuit_failed_.clear();
  circuit_store_tag_ = 0;

  std::uint64_t n = 0;
  BAYESCROWD_RETURN_NOT_OK(reader->ReadCount(&n, 32));
  for (std::uint64_t i = 0; i < n; ++i) {
    ConditionFingerprint fingerprint;
    CacheEntry entry;
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&fingerprint.first));
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&fingerprint.second));
    if (format == 1) {
      // Pre-governor blobs hold exact point probabilities under tag-0
      // stamps; the inert governor's tag is also 0, so they stay live.
      double probability = 0.0;
      BAYESCROWD_RETURN_NOT_OK(reader->ReadDouble(&probability));
      entry.interval = ProbInterval::Exact(probability);
    } else {
      std::uint8_t quality = 0;
      BAYESCROWD_RETURN_NOT_OK(reader->ReadDouble(&entry.interval.lo));
      BAYESCROWD_RETURN_NOT_OK(reader->ReadDouble(&entry.interval.hi));
      BAYESCROWD_RETURN_NOT_OK(reader->ReadU8(&quality));
      if (quality > static_cast<std::uint8_t>(ProbQuality::kUnknown)) {
        return Status::InvalidArgument("memo state: bad ProbQuality");
      }
      entry.interval.quality = static_cast<ProbQuality>(quality);
    }
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&entry.stamp));
    cache_.emplace(fingerprint, entry);
  }

  BAYESCROWD_RETURN_NOT_OK(reader->ReadCount(&n, 16));
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t var = 0;
    std::uint64_t count = 0;
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&var));
    BAYESCROWD_RETURN_NOT_OK(reader->ReadCount(&count, 16));
    std::vector<ConditionFingerprint> fingerprints;
    fingerprints.reserve(count);
    for (std::uint64_t k = 0; k < count; ++k) {
      ConditionFingerprint fingerprint;
      BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&fingerprint.first));
      BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&fingerprint.second));
      fingerprints.push_back(fingerprint);
    }
    var_index_.emplace(var, std::move(fingerprints));
  }

  BAYESCROWD_RETURN_NOT_OK(reader->ReadCount(&n, 16));
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t var = 0;
    std::uint64_t epoch = 0;
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&var));
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&epoch));
    var_epoch_.emplace(var, epoch);
  }
  if (format < 3) return Status::OK();

  CircuitStats restored;
  BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&circuit_store_tag_));
  BAYESCROWD_RETURN_NOT_OK(reader->ReadCount(&n, 24));
  for (std::uint64_t i = 0; i < n; ++i) {
    ConditionFingerprint fingerprint;
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&fingerprint.first));
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&fingerprint.second));
    std::string blob;
    BAYESCROWD_RETURN_NOT_OK(reader->ReadString(&blob));
    auto circuit = std::make_unique<CompiledCircuit>();
    BinReader cr(blob);
    BAYESCROWD_RETURN_NOT_OK(CompiledCircuit::Deserialize(&cr, circuit.get()));
    circuits_.emplace(fingerprint, std::move(circuit));
    ++restored.restored;
  }

  BAYESCROWD_RETURN_NOT_OK(reader->ReadCount(&n, 16));
  for (std::uint64_t i = 0; i < n; ++i) {
    ConditionFingerprint fingerprint;
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&fingerprint.first));
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&fingerprint.second));
    circuit_failed_.insert(fingerprint);
  }
  AddCircuitStats(restored);
  return Status::OK();
}

Result<std::size_t> ProbabilityEvaluator::MergeMemoState(
    BinReader* reader, std::uint32_t format) {
  if (format == 0 || format > kMemoStateFormat) {
    return Status::InvalidArgument(
        StrFormat("unsupported memo-state format %u",
                  static_cast<unsigned>(format)));
  }
  // The donor's RNG position belongs to the donor's sampling stream;
  // read past it, keep our own.
  std::array<std::uint64_t, 4> rng_state{};
  for (std::uint64_t& word : rng_state) {
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&word));
  }

  std::size_t imported = 0;
  std::uint64_t n = 0;
  BAYESCROWD_RETURN_NOT_OK(reader->ReadCount(&n, 32));
  for (std::uint64_t i = 0; i < n; ++i) {
    ConditionFingerprint fingerprint;
    CacheEntry entry;
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&fingerprint.first));
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&fingerprint.second));
    if (format == 1) {
      double probability = 0.0;
      BAYESCROWD_RETURN_NOT_OK(reader->ReadDouble(&probability));
      entry.interval = ProbInterval::Exact(probability);
    } else {
      std::uint8_t quality = 0;
      BAYESCROWD_RETURN_NOT_OK(reader->ReadDouble(&entry.interval.lo));
      BAYESCROWD_RETURN_NOT_OK(reader->ReadDouble(&entry.interval.hi));
      BAYESCROWD_RETURN_NOT_OK(reader->ReadU8(&quality));
      if (quality > static_cast<std::uint8_t>(ProbQuality::kUnknown)) {
        return Status::InvalidArgument("memo state: bad ProbQuality");
      }
      entry.interval.quality = static_cast<ProbQuality>(quality);
    }
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&entry.stamp));
    if (cache_.emplace(fingerprint, entry).second) ++imported;
  }

  // Variable index: append the donor's fingerprints so imported
  // entries still evict when one of their variables re-conditions.
  // Duplicates are tolerated by eviction (and bounded — one merge per
  // session create).
  BAYESCROWD_RETURN_NOT_OK(reader->ReadCount(&n, 16));
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t var = 0;
    std::uint64_t count = 0;
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&var));
    BAYESCROWD_RETURN_NOT_OK(reader->ReadCount(&count, 16));
    std::vector<ConditionFingerprint>& slot = var_index_[var];
    for (std::uint64_t k = 0; k < count; ++k) {
      ConditionFingerprint fingerprint;
      BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&fingerprint.first));
      BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&fingerprint.second));
      slot.push_back(fingerprint);
    }
  }

  // Donor epochs are *not* adopted: stamps validate against the local
  // epochs, so entries the donor computed under moved epochs simply
  // never hit. Read past the section.
  BAYESCROWD_RETURN_NOT_OK(reader->ReadCount(&n, 16));
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t var = 0;
    std::uint64_t epoch = 0;
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&var));
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&epoch));
  }
  if (format < 3) return imported;

  // Circuits carry the donor's store tag. An empty local store adopts
  // the donor's tag wholesale; a populated store only accepts a
  // matching tag. Either way the first governed evaluation re-checks
  // the tag (SyncCircuitStore) and drops a mismatched store, so an
  // adopted-but-wrong tag costs the artifacts, never correctness.
  std::uint64_t donor_tag = 0;
  BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&donor_tag));
  const bool adopt = circuits_.empty() && circuit_failed_.empty();
  const bool accept = adopt || donor_tag == circuit_store_tag_;
  CircuitStats restored;
  BAYESCROWD_RETURN_NOT_OK(reader->ReadCount(&n, 24));
  for (std::uint64_t i = 0; i < n; ++i) {
    ConditionFingerprint fingerprint;
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&fingerprint.first));
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&fingerprint.second));
    std::string blob;
    BAYESCROWD_RETURN_NOT_OK(reader->ReadString(&blob));
    if (!accept || circuits_.size() >= kMaxCircuits) continue;
    auto circuit = std::make_unique<CompiledCircuit>();
    BinReader cr(blob);
    BAYESCROWD_RETURN_NOT_OK(
        CompiledCircuit::Deserialize(&cr, circuit.get()));
    if (circuits_.emplace(fingerprint, std::move(circuit)).second) {
      ++restored.restored;
    }
  }
  BAYESCROWD_RETURN_NOT_OK(reader->ReadCount(&n, 16));
  for (std::uint64_t i = 0; i < n; ++i) {
    ConditionFingerprint fingerprint;
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&fingerprint.first));
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&fingerprint.second));
    if (accept) circuit_failed_.insert(fingerprint);
  }
  if (adopt && accept) circuit_store_tag_ = donor_tag;
  AddCircuitStats(restored);
  return imported;
}

Result<double> ProbabilityEvaluator::Compute(const Condition& condition,
                                             Rng& rng, AdpllStats* stats,
                                             AdpllScratch* scratch) {
  Result<double> result = Status::Internal("unknown probability method");
  switch (options_.method) {
    case ProbabilityMethod::kAdpll: {
      BAYESCROWD_TRACE_SPAN("adpll.solve");
      result = AdpllProbability(condition, dists_, options_.adpll, stats,
                                scratch);
      break;
    }
    case ProbabilityMethod::kNaive:
      result = NaiveProbability(condition, dists_, options_.naive);
      break;
    case ProbabilityMethod::kSampled:
      return SampledProbability(condition, dists_, options_.sampling, rng);
    case ProbabilityMethod::kSampledRaoBlackwell:
      return SampledProbabilityRaoBlackwell(condition, dists_,
                                            options_.sampling, rng);
  }
  if (!result.ok() && options_.sampling_fallback &&
      result.status().code() == StatusCode::kResourceExhausted) {
    SamplingOptions fallback;
    fallback.num_samples = options_.fallback_samples;
    return SampledProbability(condition, dists_, fallback, rng);
  }
  return result;
}

Result<ProbInterval> ProbabilityEvaluator::ComputeInterval(
    const Condition& condition, Rng& rng, AdpllStats* stats,
    GovernorTally* tally, AdpllScratch* scratch) {
  if (!options_.governor.enabled()) {
    // Inert governor: the legacy point-valued path, byte for byte
    // (including the sampling_fallback behavior), graded kExact.
    BAYESCROWD_ASSIGN_OR_RETURN(const double p,
                                Compute(condition, rng, stats, scratch));
    return ProbInterval::Exact(p);
  }
  const SolverGovernor governor(options_.governor);
  switch (options_.method) {
    case ProbabilityMethod::kAdpll: {
      BAYESCROWD_TRACE_SPAN("adpll.solve");
      return governor.Evaluate(condition, dists_, options_.adpll,
                               options_.sampling, rng, stats, tally,
                               scratch);
    }
    case ProbabilityMethod::kNaive:
      return governor.EvaluateNaive(condition, dists_, options_.naive,
                                    options_.sampling, rng, tally);
    case ProbabilityMethod::kSampled:
    case ProbabilityMethod::kSampledRaoBlackwell: {
      // Sampled methods have no exact tier; the governor only adds the
      // wall-clock cap, degrading a cancelled estimate to [0, 1].
      SolverControl control;
      if (options_.governor.deadline_ms > 0) {
        control.SetDeadline(
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(options_.governor.deadline_ms));
      }
      SamplingOptions governed = options_.sampling;
      governed.control = &control;
      Result<double> p =
          options_.method == ProbabilityMethod::kSampled
              ? SampledProbability(condition, dists_, governed, rng)
              : SampledProbabilityRaoBlackwell(condition, dists_, governed,
                                               rng);
      if (p.ok()) {
        if (tally != nullptr) ++tally->tier_sampled;
        return ProbInterval{p.value(), p.value(), ProbQuality::kSampledCI};
      }
      if (p.status().code() != StatusCode::kResourceExhausted) {
        return p.status();
      }
      if (tally != nullptr) {
        ++tally->budget_exhausted;
        ++tally->deadline_hits;
        ++tally->tier_unknown;
      }
      return ProbInterval::Unknown();
    }
  }
  return Status::Internal("unknown probability method");
}

std::unique_ptr<const CompiledCircuit> ProbabilityEvaluator::BuildCircuit(
    const Condition& condition, CircuitStats* stats) {
  BAYESCROWD_TRACE_SPAN("circuit.compile");
  Result<CompiledCircuit> compiled = CompileCondition(
      condition, dists_, options_.adpll, options_.compile);
  if (!compiled.ok()) {
    // Budget or structural refusal: the condition stays on the ADPLL
    // ladder (the refusal is recorded by the caller so it never
    // retries). Compile errors are never surfaced — the exact answer
    // was already computed.
    ++stats->fallbacks;
    return nullptr;
  }
  ++stats->builds;
  stats->nodes += compiled.value().nodes.size();
  return std::make_unique<const CompiledCircuit>(
      std::move(compiled).value());
}

void ProbabilityEvaluator::StoreCircuit(
    const ConditionFingerprint& fingerprint,
    std::unique_ptr<const CompiledCircuit> circuit, CircuitStats* stats) {
  if (circuits_.size() >= kMaxCircuits) {
    stats->evictions += circuits_.size();
    circuits_.clear();
    circuit_failed_.clear();
  }
  circuits_.emplace(fingerprint, std::move(circuit));
}

void ProbabilityEvaluator::ReserveScratch(std::size_t lanes) {
  if (adpll_scratch_.size() < lanes) adpll_scratch_.resize(lanes);
  if (circuit_scratch_.size() < lanes) circuit_scratch_.resize(lanes);
}

void ProbabilityEvaluator::SyncCircuitStore(CircuitStats* stats) {
  const std::uint64_t tag = BudgetTag() ^ CompileTag() ^ ScopeTag();
  if (tag == circuit_store_tag_) return;
  stats->evictions += circuits_.size();
  circuits_.clear();
  circuit_failed_.clear();
  circuit_store_tag_ = tag;
}

Result<double> ProbabilityEvaluator::Probability(const Condition& condition) {
  BAYESCROWD_ASSIGN_OR_RETURN(const ProbInterval interval,
                              ProbabilityInterval(condition));
  return interval.midpoint();
}

Result<ProbInterval> ProbabilityEvaluator::ProbabilityInterval(
    const Condition& condition) {
  if (condition.IsTrue()) return ProbInterval::Exact(1.0);
  if (condition.IsFalse()) return ProbInterval::Exact(0.0);
  ReserveScratch(1);
  AdpllStats stats;
  GovernorTally tally;
  const bool governed = options_.governor.enabled();
  if (!Memoizable()) {
    // Governed sampling tiers draw from the per-condition stream so the
    // sequential and batch paths agree; the legacy path keeps the
    // shared stream for bit-compatibility.
    Rng cond_rng =
        governed ? ConditionRng(condition.Fingerprint()) : Rng(0);
    Result<ProbInterval> p =
        ComputeInterval(condition, governed ? cond_rng : rng_, &stats,
                        &tally, &adpll_scratch_[0]);
    AddAdpllStats(stats);
    AddSolverTally(tally);
    if (p.ok()) {
      cost_.adpll_nodes[TierIndex(p.value().quality)]->Increment(stats.calls);
    }
    return p;
  }

  const ConditionFingerprint fingerprint = condition.Fingerprint();
  const auto it = cache_.find(fingerprint);
  if (it != cache_.end() &&
      it->second.stamp == (DistStamp(condition) ^ BudgetTag() ^
                           CompileTag() ^ ScopeTag())) {
    ins_.cache_hits->Increment();
    cost_.cache_hits[TierIndex(it->second.interval.quality)]->Increment();
    return it->second.interval;
  }
  ins_.cache_misses->Increment();

  // Compiled fast path: a memo miss whose condition already holds an
  // artifact replays it under the current posteriors instead of
  // re-running the solver. The replayed value is bit-identical to what
  // ADPLL would compute (see circuit.h), so it is graded kExact.
  const bool compiling = CompileActive();
  CircuitStats circuit_stats;
  if (compiling) {
    SyncCircuitStore(&circuit_stats);
    const auto cit = circuits_.find(fingerprint);
    if (cit != circuits_.end()) {
      Result<double> replay = 0.0;
      {
        BAYESCROWD_TRACE_SPAN("circuit.eval");
        replay = cit->second->Evaluate(dists_, &circuit_scratch_[0]);
      }
      if (replay.ok()) {
        ++circuit_stats.reuses;
        AddCircuitStats(circuit_stats);
        if (governed) {
          ++tally.tier_exact;
          AddSolverTally(tally);
        }
        cost_.replay_ops->Increment(cit->second->nodes.size());
        cost_.cache_misses[TierIndex(ProbQuality::kExact)]->Increment();
        const ProbInterval interval = ProbInterval::Exact(replay.value());
        Insert(fingerprint, condition, interval);
        return interval;
      }
      // Stale artifact (a referenced distribution vanished or changed
      // arity): drop it, pin the refusal, and use the solver.
      circuits_.erase(cit);
      circuit_failed_.insert(fingerprint);
      ++circuit_stats.fallbacks;
    }
  }

  Rng cond_rng = governed ? ConditionRng(fingerprint) : Rng(0);
  Result<ProbInterval> computed =
      ComputeInterval(condition, governed ? cond_rng : rng_, &stats,
                      &tally, &adpll_scratch_[0]);
  AddAdpllStats(stats);
  AddSolverTally(tally);
  if (!computed.ok()) {
    AddCircuitStats(circuit_stats);
    return computed.status();
  }
  const ProbInterval interval = computed.value();
  cost_.adpll_nodes[TierIndex(interval.quality)]->Increment(stats.calls);
  cost_.cache_misses[TierIndex(interval.quality)]->Increment();
  // Compile after the first exact solve only: a degraded first answer
  // means the formula is past the governed budget, and its circuit
  // would disagree with the ladder's graded interval.
  if (compiling && interval.quality == ProbQuality::kExact &&
      circuits_.find(fingerprint) == circuits_.end() &&
      circuit_failed_.find(fingerprint) == circuit_failed_.end()) {
    std::unique_ptr<const CompiledCircuit> circuit =
        BuildCircuit(condition, &circuit_stats);
    if (circuit != nullptr) {
      StoreCircuit(fingerprint, std::move(circuit), &circuit_stats);
    } else {
      circuit_failed_.insert(fingerprint);
    }
  }
  AddCircuitStats(circuit_stats);
  Insert(fingerprint, condition, interval);
  return interval;
}

Result<std::vector<double>> ProbabilityEvaluator::EvaluateBatch(
    const std::vector<const Condition*>& conditions) {
  BAYESCROWD_ASSIGN_OR_RETURN(const std::vector<ProbInterval> intervals,
                              EvaluateBatchIntervals(conditions));
  std::vector<double> probabilities(intervals.size(), 0.0);
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    probabilities[i] = intervals[i].midpoint();
  }
  return probabilities;
}

Result<std::vector<ProbInterval>>
ProbabilityEvaluator::EvaluateBatchIntervals(
    const std::vector<const Condition*>& conditions) {
  BAYESCROWD_TRACE_SPAN("evaluator.batch");
  const std::size_t n = conditions.size();
  std::vector<ProbInterval> intervals(n, ProbInterval::Exact(0.0));
  ins_.batch_size->Observe(static_cast<double>(n));

  // Sequential pass: constants and memo hits; collect the rest. The
  // cache maps are touched on this thread only.
  const bool memoizable = Memoizable();
  const std::uint64_t tag = BudgetTag() ^ CompileTag() ^ ScopeTag();
  std::vector<std::size_t> misses;
  std::vector<ConditionFingerprint> fingerprints(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Condition& cond = *conditions[i];
    if (cond.IsTrue()) {
      intervals[i] = ProbInterval::Exact(1.0);
      continue;
    }
    if (cond.IsFalse()) continue;
    fingerprints[i] = cond.Fingerprint();
    if (memoizable) {
      const auto it = cache_.find(fingerprints[i]);
      if (it != cache_.end() &&
          it->second.stamp == (DistStamp(cond) ^ tag)) {
        ins_.cache_hits->Increment();
        cost_.cache_hits[TierIndex(it->second.interval.quality)]
            ->Increment();
        intervals[i] = it->second.interval;
        continue;
      }
      ins_.cache_misses->Increment();
    }
    misses.push_back(i);
  }
  ins_.batch_misses->Observe(static_cast<double>(misses.size()));

  // Artifact lookups happen on this thread too (the maps are not
  // lane-safe): each miss resolves to either a shared circuit pointer
  // to replay, or a flag to compile after an exact first solve.
  const bool compiling = CompileActive();
  const bool governed = options_.governor.enabled();
  std::vector<const CompiledCircuit*> miss_circuit;
  std::vector<char> want_compile;
  if (compiling) {
    CircuitStats sync_stats;
    SyncCircuitStore(&sync_stats);
    AddCircuitStats(sync_stats);
    miss_circuit.assign(misses.size(), nullptr);
    want_compile.assign(misses.size(), 0);
    for (std::size_t m = 0; m < misses.size(); ++m) {
      const ConditionFingerprint& fingerprint = fingerprints[misses[m]];
      const auto cit = circuits_.find(fingerprint);
      if (cit != circuits_.end()) {
        miss_circuit[m] = cit->second.get();
      } else if (circuit_failed_.find(fingerprint) ==
                 circuit_failed_.end()) {
        want_compile[m] = 1;
      }
    }
  }

  // Parallel pass: each miss is an independent model-counting call that
  // only reads dists_ (and shared, immutable circuits). Results land in
  // per-index slots, ADPLL and governor counters in per-lane
  // accumulators, sampling draws come from per-condition generators,
  // and compiled artifacts go to per-miss slots — so any lane count
  // computes the same numbers and the same cache state.
  const std::size_t lanes = pool_ == nullptr ? 1 : pool_->size();
  std::vector<AdpllStats> lane_stats(std::max<std::size_t>(lanes, 1));
  std::vector<GovernorTally> lane_tallies(lane_stats.size());
  ReserveScratch(lane_stats.size());
  std::vector<Status> errors(misses.size(), Status::OK());
  std::vector<char> circuit_served(misses.size(), 0);
  std::vector<char> circuit_stale(misses.size(), 0);
  std::vector<char> compile_refused(misses.size(), 0);
  std::vector<std::unique_ptr<const CompiledCircuit>> built(misses.size());
  // Per-miss ADPLL node counts, charged to the labeled cost series
  // after the barrier: the delta each miss adds to its lane's tally is
  // schedule-independent, so the per-tier totals are too.
  std::vector<std::uint64_t> miss_nodes(misses.size(), 0);
  const auto evaluate_one = [this, &conditions, &fingerprints, &misses,
                             &intervals, &errors, &lane_stats,
                             &lane_tallies, &miss_circuit, &want_compile,
                             &circuit_served, &circuit_stale,
                             &compile_refused, &built, &miss_nodes,
                             compiling,
                             governed](std::size_t lane, std::size_t m) {
    const std::size_t i = misses[m];
    if (compiling && miss_circuit[m] != nullptr) {
      Result<double> replay = 0.0;
      {
        BAYESCROWD_TRACE_SPAN("circuit.eval");
        replay = miss_circuit[m]->Evaluate(dists_, &circuit_scratch_[lane]);
      }
      if (replay.ok()) {
        intervals[i] = ProbInterval::Exact(replay.value());
        circuit_served[m] = 1;
        if (governed) ++lane_tallies[lane].tier_exact;
        return;
      }
      circuit_stale[m] = 1;
    }
    Rng rng = ConditionRng(fingerprints[i]);
    const std::uint64_t calls_before = lane_stats[lane].calls;
    Result<ProbInterval> p = ComputeInterval(
        *conditions[i], rng, &lane_stats[lane], &lane_tallies[lane],
        &adpll_scratch_[lane]);
    miss_nodes[m] = lane_stats[lane].calls - calls_before;
    if (!p.ok()) {
      errors[m] = p.status();
      return;
    }
    intervals[i] = p.value();
    if (compiling && want_compile[m] != 0 &&
        p.value().quality == ProbQuality::kExact) {
      CircuitStats ignored;  // Recounted deterministically post-barrier.
      built[m] = BuildCircuit(*conditions[i], &ignored);
      if (built[m] == nullptr) compile_refused[m] = 1;
    }
  };
  Status pool_status = Status::OK();
  if (pool_ != nullptr && misses.size() > 1) {
    pool_status = pool_->ParallelFor(misses.size(), evaluate_one);
  } else {
    for (std::size_t m = 0; m < misses.size(); ++m) evaluate_one(0, m);
  }

  // Merge per-lane tallies after the barrier: deterministic totals, and
  // one counter increment per lane instead of one per condition.
  AdpllStats merged;
  for (const AdpllStats& stats : lane_stats) merged += stats;
  AddAdpllStats(merged);
  GovernorTally tally;
  for (const GovernorTally& t : lane_tallies) tally += t;
  AddSolverTally(tally);
  BAYESCROWD_RETURN_NOT_OK(pool_status);
  for (const Status& status : errors) {
    BAYESCROWD_RETURN_NOT_OK(status);
  }

  // Charge the labeled cost units in miss order on this thread: the
  // resulting tier grades the charge, replays bill their arena size.
  for (std::size_t m = 0; m < misses.size(); ++m) {
    const std::size_t tier = TierIndex(intervals[misses[m]].quality);
    if (circuit_served[m] != 0) {
      cost_.replay_ops->Increment(miss_circuit[m]->nodes.size());
    } else if (miss_nodes[m] > 0) {
      cost_.adpll_nodes[tier]->Increment(miss_nodes[m]);
    }
    if (memoizable) cost_.cache_misses[tier]->Increment();
  }

  // Fold the per-miss circuit outcomes into the shared maps in miss
  // order, on this thread — identical state for every lane count.
  if (compiling) {
    CircuitStats circuit_stats;
    for (std::size_t m = 0; m < misses.size(); ++m) {
      const ConditionFingerprint& fingerprint = fingerprints[misses[m]];
      if (circuit_served[m] != 0) ++circuit_stats.reuses;
      if (circuit_stale[m] != 0) {
        circuits_.erase(fingerprint);
        circuit_failed_.insert(fingerprint);
        ++circuit_stats.fallbacks;
      }
      if (compile_refused[m] != 0) {
        circuit_failed_.insert(fingerprint);
        ++circuit_stats.fallbacks;
      }
      if (built[m] != nullptr &&
          circuits_.find(fingerprint) == circuits_.end()) {
        // A duplicate condition in one batch builds twice; the second
        // (identical) artifact is dropped so counters stay put.
        ++circuit_stats.builds;
        circuit_stats.nodes += built[m]->nodes.size();
        StoreCircuit(fingerprint, std::move(built[m]), &circuit_stats);
      }
    }
    AddCircuitStats(circuit_stats);
  }

  if (memoizable) {
    for (const std::size_t i : misses) {
      Insert(fingerprints[i], *conditions[i], intervals[i]);
    }
  }
  return intervals;
}

Result<std::vector<double>> ProbabilityEvaluator::EvaluateAll(
    const CTable& ctable, const std::vector<std::size_t>& ids) {
  std::vector<const Condition*> conditions;
  conditions.reserve(ids.size());
  for (const std::size_t id : ids) {
    conditions.push_back(&ctable.condition(id));
  }
  return EvaluateBatch(conditions);
}

Result<std::vector<ProbInterval>> ProbabilityEvaluator::EvaluateAllIntervals(
    const CTable& ctable, const std::vector<std::size_t>& ids) {
  std::vector<const Condition*> conditions;
  conditions.reserve(ids.size());
  for (const std::size_t id : ids) {
    conditions.push_back(&ctable.condition(id));
  }
  return EvaluateBatchIntervals(conditions);
}

}  // namespace bayescrowd
