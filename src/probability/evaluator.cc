#include "probability/evaluator.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "obs/trace.h"

namespace bayescrowd {
namespace {

std::uint64_t SplitMix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

const char* ProbabilityMethodToString(ProbabilityMethod method) {
  switch (method) {
    case ProbabilityMethod::kAdpll:
      return "adpll";
    case ProbabilityMethod::kNaive:
      return "naive";
    case ProbabilityMethod::kSampled:
      return "sampled";
    case ProbabilityMethod::kSampledRaoBlackwell:
      return "sampled-rb";
  }
  return "?";
}

void ProbabilityEvaluator::BindMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    if (owned_metrics_ == nullptr) {
      owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    }
    registry = owned_metrics_.get();
  }
  metrics_ = registry;
  ins_.cache_hits = registry->GetCounter("evaluator.cache.hits");
  ins_.cache_misses = registry->GetCounter("evaluator.cache.misses");
  ins_.cache_evictions = registry->GetCounter("evaluator.cache.evictions");
  ins_.adpll_calls = registry->GetCounter("adpll.calls");
  ins_.adpll_branches = registry->GetCounter("adpll.branches");
  ins_.adpll_direct_evals = registry->GetCounter("adpll.direct_evals");
  ins_.adpll_component_splits =
      registry->GetCounter("adpll.component_splits");
  ins_.adpll_star_evals = registry->GetCounter("adpll.star_evals");
  ins_.batch_size = registry->GetHistogram(
      "evaluator.batch.size", {1.0, 4.0, 16.0, 64.0, 256.0, 1024.0});
  ins_.batch_misses = registry->GetHistogram(
      "evaluator.batch.misses", {1.0, 4.0, 16.0, 64.0, 256.0, 1024.0});
}

EvaluatorCacheStats ProbabilityEvaluator::cache_stats() const {
  EvaluatorCacheStats out;
  out.hits = ins_.cache_hits->value();
  out.misses = ins_.cache_misses->value();
  out.evictions = ins_.cache_evictions->value();
  return out;
}

AdpllStats ProbabilityEvaluator::adpll_stats() const {
  AdpllStats out;
  out.calls = ins_.adpll_calls->value();
  out.branches = ins_.adpll_branches->value();
  out.direct_evals = ins_.adpll_direct_evals->value();
  out.component_splits = ins_.adpll_component_splits->value();
  out.star_evals = ins_.adpll_star_evals->value();
  return out;
}

void ProbabilityEvaluator::AddAdpllStats(const AdpllStats& stats) {
  ins_.adpll_calls->Increment(stats.calls);
  ins_.adpll_branches->Increment(stats.branches);
  ins_.adpll_direct_evals->Increment(stats.direct_evals);
  ins_.adpll_component_splits->Increment(stats.component_splits);
  ins_.adpll_star_evals->Increment(stats.star_evals);
}

std::uint64_t ProbabilityEvaluator::DistStamp(
    const Condition& condition) const {
  // Sum of per-occurrence digests: order-insensitive, and equal
  // conditions produce equal multisets of occurrences, so the stamp
  // matches iff no mentioned variable's epoch moved since insertion.
  std::uint64_t stamp = 0;
  const auto add = [this, &stamp](const CellRef& var) {
    const PackedVar packed = PackVar(var);
    const auto it = var_epoch_.find(packed);
    const std::uint64_t epoch = it == var_epoch_.end() ? 0 : it->second;
    stamp += SplitMix64(packed ^ (epoch * 0xD6E8FEB86659FD93ULL));
  };
  for (const Conjunct& conjunct : condition.conjuncts()) {
    for (const Expression& e : conjunct) {
      add(e.lhs);
      if (e.rhs_is_var) add(e.rhs_var);
    }
  }
  return stamp;
}

Status ProbabilityEvaluator::SetDistribution(const CellRef& var,
                                             std::vector<double> dist) {
  BAYESCROWD_RETURN_NOT_OK(dists_.Set(var, std::move(dist)));
  InvalidateVariable(var);
  return Status::OK();
}

void ProbabilityEvaluator::InvalidateVariable(const CellRef& var) {
  const PackedVar packed = PackVar(var);
  ++var_epoch_[packed];
  const auto it = var_index_.find(packed);
  if (it == var_index_.end()) return;
  for (const ConditionFingerprint& fingerprint : it->second) {
    ins_.cache_evictions->Increment(cache_.erase(fingerprint));
  }
  var_index_.erase(it);
}

void ProbabilityEvaluator::ClearCache() {
  ins_.cache_evictions->Increment(cache_.size());
  cache_.clear();
  var_index_.clear();
}

bool ProbabilityEvaluator::IsCached(const Condition& condition) const {
  if (condition.IsDecided()) return false;
  const auto it = cache_.find(condition.Fingerprint());
  return it != cache_.end() && it->second.stamp == DistStamp(condition);
}

Rng ProbabilityEvaluator::ConditionRng(
    const ConditionFingerprint& fingerprint) const {
  return Rng(options_.sampling_seed ^ SplitMix64(fingerprint.first) ^
             SplitMix64(fingerprint.second ^ 0xC2B2AE3D27D4EB4FULL));
}

void ProbabilityEvaluator::Insert(const ConditionFingerprint& fingerprint,
                                  const Condition& condition,
                                  double probability) {
  cache_[fingerprint] = CacheEntry{probability, DistStamp(condition)};
  for (const CellRef& var : condition.Variables()) {
    var_index_[PackVar(var)].push_back(fingerprint);
  }
}

void ProbabilityEvaluator::SerializeMemoState(std::string* out) const {
  BinWriter w(out);
  for (const std::uint64_t word : rng_.SaveState()) w.WriteU64(word);

  // Sort every map before writing so the blob is canonical: two
  // processes that reached the same logical state emit identical bytes
  // regardless of hash-table iteration order.
  std::vector<std::pair<ConditionFingerprint, CacheEntry>> entries(
      cache_.begin(), cache_.end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.WriteU64(entries.size());
  for (const auto& [fingerprint, entry] : entries) {
    w.WriteU64(fingerprint.first);
    w.WriteU64(fingerprint.second);
    w.WriteDouble(entry.probability);
    w.WriteU64(entry.stamp);
  }

  std::vector<std::pair<PackedVar, std::vector<ConditionFingerprint>>> index(
      var_index_.begin(), var_index_.end());
  std::sort(index.begin(), index.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.WriteU64(index.size());
  for (auto& [var, fingerprints] : index) {
    std::sort(fingerprints.begin(), fingerprints.end());
    w.WriteU64(var);
    w.WriteU64(fingerprints.size());
    for (const ConditionFingerprint& fingerprint : fingerprints) {
      w.WriteU64(fingerprint.first);
      w.WriteU64(fingerprint.second);
    }
  }

  std::vector<std::pair<PackedVar, std::uint64_t>> epochs(var_epoch_.begin(),
                                                          var_epoch_.end());
  std::sort(epochs.begin(), epochs.end());
  w.WriteU64(epochs.size());
  for (const auto& [var, epoch] : epochs) {
    w.WriteU64(var);
    w.WriteU64(epoch);
  }
}

Status ProbabilityEvaluator::RestoreMemoState(BinReader* reader) {
  std::array<std::uint64_t, 4> rng_state{};
  for (std::uint64_t& word : rng_state) {
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&word));
  }
  rng_.LoadState(rng_state);

  cache_.clear();
  var_index_.clear();
  var_epoch_.clear();

  std::uint64_t n = 0;
  BAYESCROWD_RETURN_NOT_OK(reader->ReadCount(&n, 32));
  for (std::uint64_t i = 0; i < n; ++i) {
    ConditionFingerprint fingerprint;
    CacheEntry entry;
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&fingerprint.first));
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&fingerprint.second));
    BAYESCROWD_RETURN_NOT_OK(reader->ReadDouble(&entry.probability));
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&entry.stamp));
    cache_.emplace(fingerprint, entry);
  }

  BAYESCROWD_RETURN_NOT_OK(reader->ReadCount(&n, 16));
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t var = 0;
    std::uint64_t count = 0;
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&var));
    BAYESCROWD_RETURN_NOT_OK(reader->ReadCount(&count, 16));
    std::vector<ConditionFingerprint> fingerprints;
    fingerprints.reserve(count);
    for (std::uint64_t k = 0; k < count; ++k) {
      ConditionFingerprint fingerprint;
      BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&fingerprint.first));
      BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&fingerprint.second));
      fingerprints.push_back(fingerprint);
    }
    var_index_.emplace(var, std::move(fingerprints));
  }

  BAYESCROWD_RETURN_NOT_OK(reader->ReadCount(&n, 16));
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t var = 0;
    std::uint64_t epoch = 0;
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&var));
    BAYESCROWD_RETURN_NOT_OK(reader->ReadU64(&epoch));
    var_epoch_.emplace(var, epoch);
  }
  return Status::OK();
}

Result<double> ProbabilityEvaluator::Compute(const Condition& condition,
                                             Rng& rng, AdpllStats* stats) {
  Result<double> result = Status::Internal("unknown probability method");
  switch (options_.method) {
    case ProbabilityMethod::kAdpll: {
      BAYESCROWD_TRACE_SPAN("adpll.solve");
      result = AdpllProbability(condition, dists_, options_.adpll, stats);
      break;
    }
    case ProbabilityMethod::kNaive:
      result = NaiveProbability(condition, dists_, options_.naive);
      break;
    case ProbabilityMethod::kSampled:
      return SampledProbability(condition, dists_, options_.sampling, rng);
    case ProbabilityMethod::kSampledRaoBlackwell:
      return SampledProbabilityRaoBlackwell(condition, dists_,
                                            options_.sampling, rng);
  }
  if (!result.ok() && options_.sampling_fallback &&
      result.status().code() == StatusCode::kResourceExhausted) {
    SamplingOptions fallback;
    fallback.num_samples = options_.fallback_samples;
    return SampledProbability(condition, dists_, fallback, rng);
  }
  return result;
}

Result<double> ProbabilityEvaluator::Probability(const Condition& condition) {
  if (condition.IsTrue()) return 1.0;
  if (condition.IsFalse()) return 0.0;
  AdpllStats tally;
  if (!Memoizable()) {
    Result<double> p = Compute(condition, rng_, &tally);
    AddAdpllStats(tally);
    return p;
  }

  const ConditionFingerprint fingerprint = condition.Fingerprint();
  const auto it = cache_.find(fingerprint);
  if (it != cache_.end() && it->second.stamp == DistStamp(condition)) {
    ins_.cache_hits->Increment();
    return it->second.probability;
  }
  ins_.cache_misses->Increment();
  Result<double> computed = Compute(condition, rng_, &tally);
  AddAdpllStats(tally);
  BAYESCROWD_ASSIGN_OR_RETURN(const double p, std::move(computed));
  Insert(fingerprint, condition, p);
  return p;
}

Result<std::vector<double>> ProbabilityEvaluator::EvaluateBatch(
    const std::vector<const Condition*>& conditions) {
  BAYESCROWD_TRACE_SPAN("evaluator.batch");
  const std::size_t n = conditions.size();
  std::vector<double> probabilities(n, 0.0);
  ins_.batch_size->Observe(static_cast<double>(n));

  // Sequential pass: constants and memo hits; collect the rest. The
  // cache maps are touched on this thread only.
  const bool memoizable = Memoizable();
  std::vector<std::size_t> misses;
  std::vector<ConditionFingerprint> fingerprints(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Condition& cond = *conditions[i];
    if (cond.IsTrue()) {
      probabilities[i] = 1.0;
      continue;
    }
    if (cond.IsFalse()) continue;
    fingerprints[i] = cond.Fingerprint();
    if (memoizable) {
      const auto it = cache_.find(fingerprints[i]);
      if (it != cache_.end() && it->second.stamp == DistStamp(cond)) {
        ins_.cache_hits->Increment();
        probabilities[i] = it->second.probability;
        continue;
      }
      ins_.cache_misses->Increment();
    }
    misses.push_back(i);
  }
  ins_.batch_misses->Observe(static_cast<double>(misses.size()));

  // Parallel pass: each miss is an independent model-counting call that
  // only reads dists_. Results land in per-index slots, ADPLL counters
  // in per-lane accumulators, and sampling draws come from
  // per-condition generators — so any lane count computes the same
  // numbers.
  const std::size_t lanes = pool_ == nullptr ? 1 : pool_->size();
  std::vector<AdpllStats> lane_stats(std::max<std::size_t>(lanes, 1));
  std::vector<Status> errors(misses.size(), Status::OK());
  const auto evaluate_one = [this, &conditions, &fingerprints, &misses,
                             &probabilities, &errors,
                             &lane_stats](std::size_t lane,
                                          std::size_t m) {
    const std::size_t i = misses[m];
    Rng rng = ConditionRng(fingerprints[i]);
    Result<double> p = Compute(*conditions[i], rng, &lane_stats[lane]);
    if (p.ok()) {
      probabilities[i] = p.value();
    } else {
      errors[m] = p.status();
    }
  };
  if (pool_ != nullptr && misses.size() > 1) {
    pool_->ParallelFor(misses.size(), evaluate_one);
  } else {
    for (std::size_t m = 0; m < misses.size(); ++m) evaluate_one(0, m);
  }

  // Merge per-lane tallies after the barrier: deterministic totals, and
  // one counter increment per lane instead of one per condition.
  AdpllStats merged;
  for (const AdpllStats& stats : lane_stats) merged += stats;
  AddAdpllStats(merged);
  for (const Status& status : errors) {
    BAYESCROWD_RETURN_NOT_OK(status);
  }
  if (memoizable) {
    for (const std::size_t i : misses) {
      Insert(fingerprints[i], *conditions[i], probabilities[i]);
    }
  }
  return probabilities;
}

Result<std::vector<double>> ProbabilityEvaluator::EvaluateAll(
    const CTable& ctable, const std::vector<std::size_t>& ids) {
  std::vector<const Condition*> conditions;
  conditions.reserve(ids.size());
  for (const std::size_t id : ids) {
    conditions.push_back(&ctable.condition(id));
  }
  return EvaluateBatch(conditions);
}

}  // namespace bayescrowd
