// ProbabilityEvaluator: a method-dispatching facade over the exact and
// approximate Pr(φ) algorithms, holding the variable distributions.

#ifndef BAYESCROWD_PROBABILITY_EVALUATOR_H_
#define BAYESCROWD_PROBABILITY_EVALUATOR_H_

#include "common/random.h"
#include "common/result.h"
#include "ctable/condition.h"
#include "probability/adpll.h"
#include "probability/distributions.h"
#include "probability/naive.h"
#include "probability/sampling.h"

namespace bayescrowd {

enum class ProbabilityMethod : std::uint8_t {
  kAdpll,
  kNaive,
  kSampled,
  kSampledRaoBlackwell,
};

const char* ProbabilityMethodToString(ProbabilityMethod method);

struct ProbabilityOptions {
  ProbabilityMethod method = ProbabilityMethod::kAdpll;
  AdpllOptions adpll;
  NaiveOptions naive;
  SamplingOptions sampling;
  std::uint64_t sampling_seed = 1234;

  /// When an exact method exhausts its resource budget on a
  /// pathological condition, estimate by Monte-Carlo sampling instead
  /// of failing.
  bool sampling_fallback = false;
  std::size_t fallback_samples = 20'000;
};

/// Owns the distributions and dispatches Pr(φ) to the selected method.
class ProbabilityEvaluator {
 public:
  explicit ProbabilityEvaluator(ProbabilityOptions options = {})
      : options_(std::move(options)), rng_(options_.sampling_seed) {}

  DistributionMap& distributions() { return dists_; }
  const DistributionMap& distributions() const { return dists_; }

  const ProbabilityOptions& options() const { return options_; }
  ProbabilityOptions& options() { return options_; }

  /// Pr(φ) by the configured method.
  Result<double> Probability(const Condition& condition);

  /// Pr(e) of one expression.
  Result<double> Probability(const Expression& expression) const {
    return ExpressionProbability(expression, dists_);
  }

  const AdpllStats& adpll_stats() const { return adpll_stats_; }

 private:
  ProbabilityOptions options_;
  DistributionMap dists_;
  AdpllStats adpll_stats_;
  Rng rng_;
};

}  // namespace bayescrowd

#endif  // BAYESCROWD_PROBABILITY_EVALUATOR_H_
