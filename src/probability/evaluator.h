// ProbabilityEvaluator: a method-dispatching facade over the exact and
// approximate Pr(φ) algorithms, holding the variable distributions.
//
// Beyond dispatch, the evaluator owns the two optimizations that carry
// the crowdsourcing loop (see DESIGN.md, "Concurrency & caching model"):
//
//  * a memo cache keyed by condition fingerprint, stamped with the
//    distribution epochs of the variables the condition mentions.
//    Folding a crowd answer only re-conditions the answered variable's
//    distribution, so SetDistribution() evicts exactly the cached
//    conditions that mention it (variable-indexed invalidation) and
//    every other entry keeps serving hits across rounds;
//  * a batch API (EvaluateAll / EvaluateBatch) that fans the independent
//    model-counting calls of one round across an optional ThreadPool,
//    with per-lane AdpllStats merged after the barrier. Results are
//    written into per-index slots and sampling draws use per-condition
//    seeds, so outputs are bit-identical for any thread count;
//  * a knowledge-compilation layer (circuit.h / compiler.h): the first
//    exact solve of a condition also compiles its ADPLL trace into a
//    CompiledCircuit, and later memo misses for the same formula under
//    shifted posteriors — the round loop's entire hot path — replay the
//    circuit in one arena pass instead of re-running the search. The
//    circuit reproduces ADPLL bit for bit, compile failures fall back
//    to the governed ladder, and artifacts ride checkpoints so a
//    resumed session keeps its compiled state.

#ifndef BAYESCROWD_PROBABILITY_EVALUATOR_H_
#define BAYESCROWD_PROBABILITY_EVALUATOR_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <memory>

#include "common/binio.h"
#include "common/random.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "ctable/condition.h"
#include "ctable/ctable.h"
#include "obs/metrics.h"
#include "probability/adpll.h"
#include "probability/circuit.h"
#include "probability/compiler.h"
#include "probability/distributions.h"
#include "probability/governor.h"
#include "probability/interval.h"
#include "probability/naive.h"
#include "probability/sampling.h"

namespace bayescrowd {

enum class ProbabilityMethod : std::uint8_t {
  kAdpll,
  kNaive,
  kSampled,
  kSampledRaoBlackwell,
};

const char* ProbabilityMethodToString(ProbabilityMethod method);

struct ProbabilityOptions {
  ProbabilityMethod method = ProbabilityMethod::kAdpll;
  AdpllOptions adpll;
  NaiveOptions naive;
  SamplingOptions sampling;
  std::uint64_t sampling_seed = 1234;

  /// When an exact method exhausts its resource budget on a
  /// pathological condition, estimate by Monte-Carlo sampling instead
  /// of failing.
  bool sampling_fallback = false;
  std::size_t fallback_samples = 20'000;

  /// Memoize Pr(φ) per condition fingerprint (exact methods only;
  /// sampled estimates are never cached). Disable for ablations.
  bool memoize = true;

  /// Resource budgets + degradation ladder for every evaluation (see
  /// governor.h). Inert by default: all solver paths then behave
  /// byte-identically to a build without the governor. When enabled it
  /// supersedes `sampling_fallback` for the governed methods — the
  /// ladder's sampling tier plays that role with an explicit grade.
  GovernorOptions governor;

  /// Knowledge compilation of memoized ADPLL solves (see compiler.h).
  /// Only engages for eligible configurations — memoized kAdpll with a
  /// deterministic branch heuristic, and not under the strict ladder
  /// (whose budget-exhausted evaluations must stay budget-exhausted).
  CompileOptions compile;

  /// Tenant-safe cache scope. Folded into every memo stamp and into
  /// the circuit-store tag (alongside BudgetTag/CompileTag), so two
  /// sessions over *different* datasets or tenants can exchange memo
  /// blobs through a shared cache without aliasing: DistStamp digests
  /// distribution *epochs*, not values, and two fresh sessions start
  /// at identical epochs — without a scope key, dataset A's cached
  /// Pr(φ) could validate against dataset B's equal-fingerprint
  /// condition. A serving layer derives this from the tenant id plus
  /// the dataset/options fingerprint (see serve/cache.h). 0 (the
  /// default) contributes nothing, keeping every pre-scope stamp and
  /// checkpoint blob valid.
  std::uint64_t cache_scope = 0;
};

/// Current on-disk format of SerializeMemoState blobs. Format 1 (point
/// probabilities, pre-governor) and format 2 (graded intervals, no
/// compile artifacts) are still readable; pass the version recorded
/// alongside the blob to RestoreMemoState. Format 3 appends the
/// compiled-circuit artifacts and the compile-refusal set.
inline constexpr std::uint32_t kMemoStateFormat = 3;

/// Cumulative memo-cache counters (never reset by the evaluator; take
/// before/after snapshots for per-phase rates).
struct EvaluatorCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;    // Lookups that had to compute.
  std::uint64_t evictions = 0; // Entries dropped by invalidation.
};

/// Owns the distributions and dispatches Pr(φ) to the selected method.
class ProbabilityEvaluator {
 public:
  explicit ProbabilityEvaluator(ProbabilityOptions options = {})
      : options_(std::move(options)), rng_(options_.sampling_seed) {
    BindMetrics(nullptr);
  }

  /// Mutable access for bulk setup. Mutating distributions through this
  /// handle bypasses variable-indexed invalidation, so it conservatively
  /// drops the whole memo cache; use SetDistribution() on hot paths.
  DistributionMap& distributions() {
    ClearCache();
    return dists_;
  }
  const DistributionMap& distributions() const { return dists_; }

  /// Registers or replaces one variable's distribution and evicts
  /// exactly the cached conditions that mention it.
  Status SetDistribution(const CellRef& var, std::vector<double> dist);

  const ProbabilityOptions& options() const { return options_; }
  ProbabilityOptions& options() { return options_; }

  /// Optional worker pool for the batch APIs (non-owning; nullptr means
  /// evaluate sequentially on the calling thread).
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* thread_pool() const { return pool_; }

  /// Pr(φ) by the configured method (memoized). With a governor
  /// enabled this is the midpoint of ProbabilityInterval().
  Result<double> Probability(const Condition& condition);

  /// Governed Pr(φ): exact when the budget suffices (lo == hi), a
  /// graded interval otherwise. With the governor inert the result is
  /// always kExact and numerically identical to Probability().
  Result<ProbInterval> ProbabilityInterval(const Condition& condition);

  /// Pr(φ) for a batch of conditions, fanned across the thread pool.
  /// results[i] corresponds to conditions[i]; decided conditions cost
  /// nothing. Deterministic for any pool size.
  Result<std::vector<double>> EvaluateBatch(
      const std::vector<const Condition*>& conditions);

  /// Interval-valued batch evaluation (the governed primitive the
  /// double-valued APIs delegate to). Deterministic for any pool size:
  /// per-index result slots, per-lane stat tallies, per-condition
  /// sampling streams.
  Result<std::vector<ProbInterval>> EvaluateBatchIntervals(
      const std::vector<const Condition*>& conditions);

  /// Pr(φ(o)) for every object id in `ids` (batch over a c-table).
  Result<std::vector<double>> EvaluateAll(const CTable& ctable,
                                          const std::vector<std::size_t>& ids);

  /// Interval-valued EvaluateAll.
  Result<std::vector<ProbInterval>> EvaluateAllIntervals(
      const CTable& ctable, const std::vector<std::size_t>& ids);

  /// Pr(e) of one expression.
  Result<double> Probability(const Expression& expression) const {
    return ExpressionProbability(expression, dists_);
  }

  /// Evicts every cached condition mentioning `var` and bumps its
  /// distribution epoch (also done by SetDistribution).
  void InvalidateVariable(const CellRef& var);

  /// Drops the entire memo cache.
  void ClearCache();

  /// True when Pr(condition) would be served from the memo cache.
  bool IsCached(const Condition& condition) const;

  std::size_t CacheSize() const { return cache_.size(); }

  /// Cache and ADPLL counters, read back from the bound metrics
  /// registry (by value: the registry is the single source of truth).
  EvaluatorCacheStats cache_stats() const;
  AdpllStats adpll_stats() const;

  /// Governor counters ("solver.*"), read back the same way. All zero
  /// while the governor is inert.
  GovernorTally solver_stats() const;

  /// Compile-layer counters ("compile.*"), read back the same way. All
  /// zero while compilation is off or ineligible.
  CircuitStats compile_stats() const;

  /// Number of compiled artifacts currently cached.
  std::size_t CircuitCount() const { return circuits_.size(); }

  /// Points the evaluator's instruments ("evaluator.cache.*",
  /// "adpll.*", "evaluator.batch.*") at `registry`. nullptr (the
  /// constructor default) binds a private registry, so fresh evaluators
  /// always start from zeroed counters; the framework rebinds to its
  /// per-run registry. Not thread-safe against concurrent evaluation.
  void BindMetrics(obs::MetricsRegistry* registry);
  obs::MetricsRegistry* metrics() const { return metrics_; }

  /// Cost-attribution context. Every deterministic cost unit the
  /// evaluator produces (cost.adpll_nodes, cost.replay_ops,
  /// cost.cache_hits / cost.cache_misses) is charged to a labeled
  /// series {session, phase, solver_tier, compile_state}; the framework
  /// switches the phase at each round-loop boundary ("select",
  /// "update", "answer"). Handles re-resolve only when the context
  /// actually changes — a few mutexed map lookups per phase switch, and
  /// the per-evaluation charges stay lock-free relaxed adds. Charging
  /// happens at the deterministic fold points (sequential cache pass,
  /// post-barrier merge), so labeled totals are byte-identical at any
  /// thread count. Call after BindMetrics; not thread-safe against
  /// concurrent evaluation.
  void SetCostContext(const std::string& session, const std::string& phase);
  const std::string& cost_session() const { return cost_session_; }
  const std::string& cost_phase() const { return cost_phase_; }

  /// Replaces the solver governor for every subsequent evaluation — the
  /// serving layer's QoS hook (a heavy tenant's sessions get walked
  /// down to tighter budgets at round boundaries). BudgetTag() follows
  /// the new configuration, so memo entries written under the old
  /// budgets simply stop matching (sound, never wrong). Deterministic
  /// as long as callers tighten only at deterministic points; not
  /// thread-safe against concurrent evaluation.
  void SetGovernor(const GovernorOptions& governor) {
    options_.governor = governor;
  }
  const GovernorOptions& governor() const { return options_.governor; }

  /// Appends the memo state (sampling RNG position, cache entries with
  /// their stamps, variable index, distribution epochs) to `out` in a
  /// canonical binary form, so a resumed session replays the exact
  /// hit/miss sequence of the uninterrupted run. Distributions are NOT
  /// included — the caller re-derives them from checkpointed knowledge.
  void SerializeMemoState(std::string* out) const;

  /// Restores state written by SerializeMemoState. Call after the
  /// post-resume SetDistribution pass: the imported epochs overwrite the
  /// setup-time ones, keeping the saved stamps valid. `format` selects
  /// the blob layout: format-1 blobs (pre-governor checkpoints) load as
  /// exact point entries.
  Status RestoreMemoState(BinReader* reader,
                          std::uint32_t format = kMemoStateFormat);

  /// Warm-start merge for a shared cross-session cache: imports the
  /// memo entries, variable index, compiled artifacts and refusal set
  /// of a SerializeMemoState blob WITHOUT touching this evaluator's
  /// RNG stream, distribution epochs, or existing entries (existing
  /// entries win on fingerprint collisions; RestoreMemoState, by
  /// contrast, clears everything and adopts the blob's epochs). An
  /// imported entry only ever serves a hit when its stamp validates
  /// against the *local* epochs and scope/budget/compile tags — the
  /// standard lookup check — so merging a foreign blob is always
  /// sound; mismatched entries are dead weight, never wrong answers.
  /// Circuits merge only when the blob's store tag matches the active
  /// one (adopted wholesale when the local store is empty; a mismatch
  /// at the next evaluation drops them, the SyncCircuitStore rule).
  /// Returns the number of memo entries imported.
  Result<std::size_t> MergeMemoState(BinReader* reader,
                                     std::uint32_t format = kMemoStateFormat);

 private:
  struct CacheEntry {
    ProbInterval interval;    // Exact entries have lo == hi.
    std::uint64_t stamp = 0;  // Distribution-epoch stamp at insertion.
  };

  /// Order-insensitive digest of the distribution epochs of every
  /// variable occurrence in `condition`; changes whenever any mentioned
  /// variable's distribution is replaced.
  std::uint64_t DistStamp(const Condition& condition) const;

  /// Budget-tier component of cache stamps: entries computed under one
  /// governor configuration never satisfy lookups under another (a
  /// low-budget interval must not be served where a higher-budget
  /// exact value was asked for). 0 — the v1 stamp — when inert.
  std::uint64_t BudgetTag() const { return options_.governor.Fingerprint(); }

  /// Compile-artifact component of cache stamps, mirroring BudgetTag():
  /// entries (and on-disk artifacts) produced under one compile
  /// configuration or circuit format never alias another. 0 — the
  /// legacy stamp — whenever compilation is inactive, which keeps
  /// pre-compile cache blobs valid.
  std::uint64_t CompileTag() const;

  /// Tenant-scope component of cache stamps (see
  /// ProbabilityOptions::cache_scope). 0 — the legacy stamp — for the
  /// default scope.
  std::uint64_t ScopeTag() const;

  bool Memoizable() const {
    return options_.memoize &&
           (options_.method == ProbabilityMethod::kAdpll ||
            options_.method == ProbabilityMethod::kNaive);
  }

  /// True when this configuration compiles circuits: memoized kAdpll
  /// with a value-independent branch heuristic, and not under the
  /// strict ladder (strict mode's contract is "exact within budget or
  /// [0,1]" — serving compiled exact answers would change which).
  bool CompileActive() const {
    return options_.compile.mode != CompileMode::kOff && Memoizable() &&
           options_.method == ProbabilityMethod::kAdpll &&
           options_.adpll.heuristic != BranchHeuristic::kRandom &&
           !(options_.governor.enabled() &&
             options_.governor.ladder == LadderMode::kStrict);
  }

  /// One uncached evaluation. `rng` supplies sampling draws (batch mode
  /// passes a per-condition generator so parallel order cannot leak into
  /// results); `stats` receives ADPLL counters; `scratch` holds the
  /// solver's reusable per-lane buffers (nullptr: per-call buffers).
  Result<double> Compute(const Condition& condition, Rng& rng,
                         AdpllStats* stats, AdpllScratch* scratch);

  /// One uncached *governed* evaluation: dispatches to Compute when the
  /// governor is inert (grading the result kExact), otherwise walks the
  /// degradation ladder. `tally` receives the governor counters.
  Result<ProbInterval> ComputeInterval(const Condition& condition, Rng& rng,
                                       AdpllStats* stats,
                                       GovernorTally* tally,
                                       AdpllScratch* scratch);

  /// Compiles `condition` after its first exact evaluation. Returns the
  /// artifact, or nullptr when the compile refused (budget/structure) —
  /// the caller then records the refusal so the condition never
  /// retries. Counts into `stats`.
  std::unique_ptr<const CompiledCircuit> BuildCircuit(
      const Condition& condition, CircuitStats* stats);

  /// Stores one compiled artifact under the (deterministic, miss-order)
  /// cache-cap policy. Counts into `stats`.
  void StoreCircuit(const ConditionFingerprint& fingerprint,
                    std::unique_ptr<const CompiledCircuit> circuit,
                    CircuitStats* stats);

  /// Ensures the per-lane solver scratch vectors cover `lanes` lanes.
  void ReserveScratch(std::size_t lanes);

  /// Drops the artifact store when the active budget/compile tag no
  /// longer matches the one it was populated under. Counts into
  /// `stats`.
  void SyncCircuitStore(CircuitStats* stats);

  /// Folds one compile-layer tally into the counters.
  void AddCircuitStats(const CircuitStats& stats);

  /// Deterministic per-condition sampling stream.
  Rng ConditionRng(const ConditionFingerprint& fingerprint) const;

  void Insert(const ConditionFingerprint& fingerprint,
              const Condition& condition, const ProbInterval& interval);

  /// Folds one (per-call or per-lane) ADPLL tally into the counters.
  void AddAdpllStats(const AdpllStats& stats);

  /// Same for the governor counters.
  void AddSolverTally(const GovernorTally& tally);

  ProbabilityOptions options_;
  DistributionMap dists_;
  Rng rng_;

  ThreadPool* pool_ = nullptr;

  std::unordered_map<ConditionFingerprint, CacheEntry,
                     ConditionFingerprintHash>
      cache_;

  /// Compiled artifacts by condition fingerprint. Value-independent:
  /// entries survive distribution updates (only an arity change stales
  /// one, detected at evaluation). unique_ptr keeps the arenas stable
  /// while lanes share them during a batch.
  std::unordered_map<ConditionFingerprint,
                     std::unique_ptr<const CompiledCircuit>,
                     ConditionFingerprintHash>
      circuits_;
  /// Conditions whose compile refused (budget/structure) or whose
  /// circuit failed to evaluate — never retried.
  std::unordered_set<ConditionFingerprint, ConditionFingerprintHash>
      circuit_failed_;
  /// BudgetTag ^ CompileTag the artifact store was populated under. A
  /// governed lookup must never replay a circuit from another budget
  /// configuration (a fresh run under that budget may degrade where
  /// the circuit is exact), so a tag change drops the store — the same
  /// rule the memo stamps enforce, applied store-wide.
  std::uint64_t circuit_store_tag_ = 0;
  /// Artifact-cache cap: reaching it clears the whole map (a
  /// deterministic policy — LRU would depend on evaluation order).
  static constexpr std::size_t kMaxCircuits = 8192;

  /// Per-lane solver scratch (element 0 serves the sequential paths);
  /// grown to the pool width before a parallel batch pass.
  std::vector<AdpllScratch> adpll_scratch_;
  std::vector<CircuitScratch> circuit_scratch_;
  /// Fingerprints of cached conditions per mentioned variable (may hold
  /// stale fingerprints; eviction tolerates them).
  std::unordered_map<PackedVar, std::vector<ConditionFingerprint>>
      var_index_;
  /// Times each variable's distribution has been replaced.
  std::unordered_map<PackedVar, std::uint64_t> var_epoch_;

  /// Metrics sink (never null after construction) and resolved
  /// instrument handles — lock-free increments on the hot paths.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  struct Instruments {
    obs::Counter* cache_hits = nullptr;
    obs::Counter* cache_misses = nullptr;
    obs::Counter* cache_evictions = nullptr;
    obs::Counter* adpll_calls = nullptr;
    obs::Counter* adpll_branches = nullptr;
    obs::Counter* adpll_direct_evals = nullptr;
    obs::Counter* adpll_component_splits = nullptr;
    obs::Counter* adpll_star_evals = nullptr;
    obs::Counter* solver_budget_exhausted = nullptr;
    obs::Counter* solver_deadline_hits = nullptr;
    obs::Counter* solver_tier_exact = nullptr;
    obs::Counter* solver_tier_partial = nullptr;
    obs::Counter* solver_tier_sampled = nullptr;
    obs::Counter* solver_tier_unknown = nullptr;
    obs::Counter* compile_builds = nullptr;
    obs::Counter* compile_fallbacks = nullptr;
    obs::Counter* compile_reuses = nullptr;
    obs::Counter* compile_nodes = nullptr;
    obs::Counter* compile_restored = nullptr;
    obs::Counter* compile_evictions = nullptr;
    obs::Histogram* batch_size = nullptr;
    obs::Histogram* batch_misses = nullptr;
  } ins_;

  /// Labeled cost-unit handles, one per solver tier (ProbQuality's four
  /// grades), re-resolved by SetCostContext / BindMetrics.
  static constexpr std::size_t kTierCount = 4;
  void ResolveCostInstruments();
  std::size_t TierIndex(ProbQuality quality) const {
    return static_cast<std::size_t>(quality) < kTierCount
               ? static_cast<std::size_t>(quality)
               : kTierCount - 1;
  }
  std::string cost_session_ = "s0";
  std::string cost_phase_ = "adhoc";
  struct CostInstruments {
    obs::Counter* adpll_nodes[kTierCount] = {};
    obs::Counter* cache_hits[kTierCount] = {};
    obs::Counter* cache_misses[kTierCount] = {};
    obs::Counter* replay_ops = nullptr;  // Circuit replay: always exact.
  } cost_;
};

}  // namespace bayescrowd

#endif  // BAYESCROWD_PROBABILITY_EVALUATOR_H_
