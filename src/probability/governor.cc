#include "probability/governor.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "obs/trace.h"

namespace bayescrowd {
namespace {

std::uint64_t SplitMix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

bool AllowsPartialTier(LadderMode mode) {
  return mode == LadderMode::kFull || mode == LadderMode::kInterval;
}

bool AllowsSampleTier(LadderMode mode) {
  return mode == LadderMode::kFull || mode == LadderMode::kSample;
}

}  // namespace

const char* ProbQualityToString(ProbQuality quality) {
  switch (quality) {
    case ProbQuality::kExact:
      return "exact";
    case ProbQuality::kPartialBound:
      return "partial";
    case ProbQuality::kSampledCI:
      return "sampled";
    case ProbQuality::kUnknown:
      return "unknown";
  }
  return "?";
}

const char* LadderModeToString(LadderMode mode) {
  switch (mode) {
    case LadderMode::kFull:
      return "full";
    case LadderMode::kInterval:
      return "interval";
    case LadderMode::kSample:
      return "sample";
    case LadderMode::kStrict:
      return "strict";
  }
  return "?";
}

bool ParseLadderMode(const std::string& name, LadderMode* mode) {
  if (name == "full") {
    *mode = LadderMode::kFull;
  } else if (name == "interval") {
    *mode = LadderMode::kInterval;
  } else if (name == "sample") {
    *mode = LadderMode::kSample;
  } else if (name == "strict") {
    *mode = LadderMode::kStrict;
  } else {
    return false;
  }
  return true;
}

std::uint64_t GovernorOptions::Fingerprint() const {
  // 0 is reserved for the inert governor so pre-governor cache blobs
  // keep their stamps. The deadline *value* is excluded (wall-clock
  // degrades, never changes results), but deadline-enabled runs still
  // get their own tag: they may cache degraded intervals that must not
  // be served to an ungoverned run.
  if (!enabled()) return 0;
  std::uint64_t h = SplitMix64(0xB0D6E7ULL);
  h = SplitMix64(h ^ max_nodes);
  h = SplitMix64(h ^ max_components);
  h = SplitMix64(h ^ static_cast<std::uint64_t>(ladder));
  h = SplitMix64(h ^ static_cast<std::uint64_t>(interval_samples));
  std::uint64_t z_bits = 0;
  static_assert(sizeof(z_bits) == sizeof(confidence_z));
  std::memcpy(&z_bits, &confidence_z, sizeof(z_bits));
  h = SplitMix64(h ^ z_bits);
  return h == 0 ? 1 : h;
}

Result<ProbInterval> SolverGovernor::SampleTier(
    const Condition& condition, const DistributionMap& dists,
    const SamplingOptions& sampling, SolverControl* control, Rng& rng,
    GovernorTally* tally) const {
  BAYESCROWD_TRACE_SPAN("governor.tier.sampled");
  SamplingOptions tier = sampling;
  tier.num_samples = options_.interval_samples;
  tier.control = control;
  Result<ProbInterval> ci = SampledProbabilityInterval(
      condition, dists, tier, options_.confidence_z, rng);
  if (ci.ok() && tally != nullptr) ++tally->tier_sampled;
  return ci;
}

Result<ProbInterval> SolverGovernor::Evaluate(
    const Condition& condition, const DistributionMap& dists,
    const AdpllOptions& base, const SamplingOptions& sampling, Rng& rng,
    AdpllStats* stats, GovernorTally* tally, AdpllScratch* scratch) const {
  SolverControl control;
  if (options_.deadline_ms > 0) {
    control.SetDeadline(std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.deadline_ms));
  }

  AdpllOptions governed = base;
  if (options_.max_nodes > 0) {
    governed.max_calls = std::min(base.max_calls, options_.max_nodes);
    governed.max_conjunct_assignments =
        base.max_conjunct_assignments > 0
            ? std::min(base.max_conjunct_assignments, options_.max_nodes)
            : options_.max_nodes;
  }
  if (options_.max_components > 0) {
    governed.max_component_splits =
        base.max_component_splits > 0
            ? std::min(base.max_component_splits, options_.max_components)
            : options_.max_components;
  }
  governed.control = &control;

  // Tier 1: exact ADPLL within the budget.
  {
    BAYESCROWD_TRACE_SPAN("governor.tier.exact");
    Result<double> exact =
        AdpllProbability(condition, dists, governed, stats, scratch);
    if (exact.ok()) {
      if (tally != nullptr) ++tally->tier_exact;
      return ProbInterval::Exact(exact.value());
    }
    if (exact.status().code() != StatusCode::kResourceExhausted) {
      return exact.status();
    }
  }
  if (tally != nullptr) {
    ++tally->budget_exhausted;
    if (control.stopped()) ++tally->deadline_hits;
  }

  // Tier 2: partial ADPLL with the same deterministic budget; closed
  // subtrees widen the answer instead of aborting it.
  if (AllowsPartialTier(options_.ladder)) {
    BAYESCROWD_TRACE_SPAN("governor.tier.partial");
    BAYESCROWD_ASSIGN_OR_RETURN(
        const ProbInterval partial,
        AdpllPartialProbability(condition, dists, governed, stats, nullptr,
                                scratch));
    if (partial.width() < 1.0) {
      if (tally != nullptr) {
        if (partial.exact()) {
          ++tally->tier_exact;
        } else {
          ++tally->tier_partial;
        }
      }
      return partial;
    }
  }

  // Tier 3: sampled estimate with a confidence interval.
  if (AllowsSampleTier(options_.ladder)) {
    Result<ProbInterval> ci =
        SampleTier(condition, dists, sampling, &control, rng, tally);
    if (ci.ok()) return ci;
    if (ci.status().code() != StatusCode::kResourceExhausted) {
      return ci.status();
    }
  }

  // Tier 4: nothing learned in budget.
  if (tally != nullptr) ++tally->tier_unknown;
  return ProbInterval::Unknown();
}

Result<ProbInterval> SolverGovernor::EvaluateNaive(
    const Condition& condition, const DistributionMap& dists,
    const NaiveOptions& base, const SamplingOptions& sampling, Rng& rng,
    GovernorTally* tally) const {
  SolverControl control;
  if (options_.deadline_ms > 0) {
    control.SetDeadline(std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.deadline_ms));
  }

  NaiveOptions governed = base;
  if (options_.max_nodes > 0) {
    governed.max_assignments =
        std::min(base.max_assignments, options_.max_nodes);
  }
  governed.control = &control;

  {
    BAYESCROWD_TRACE_SPAN("governor.tier.exact");
    Result<double> exact = NaiveProbability(condition, dists, governed);
    if (exact.ok()) {
      if (tally != nullptr) ++tally->tier_exact;
      return ProbInterval::Exact(exact.value());
    }
    if (exact.status().code() != StatusCode::kResourceExhausted) {
      return exact.status();
    }
  }
  if (tally != nullptr) {
    ++tally->budget_exhausted;
    if (control.stopped()) ++tally->deadline_hits;
  }

  if (AllowsPartialTier(options_.ladder)) {
    BAYESCROWD_TRACE_SPAN("governor.tier.partial");
    BAYESCROWD_ASSIGN_OR_RETURN(
        const ProbInterval partial,
        NaiveBoundedProbability(condition, dists, governed));
    if (partial.width() < 1.0) {
      if (tally != nullptr) {
        if (partial.exact()) {
          ++tally->tier_exact;
        } else {
          ++tally->tier_partial;
        }
      }
      return partial;
    }
  }

  if (AllowsSampleTier(options_.ladder)) {
    Result<ProbInterval> ci =
        SampleTier(condition, dists, sampling, &control, rng, tally);
    if (ci.ok()) return ci;
    if (ci.status().code() != StatusCode::kResourceExhausted) {
      return ci.status();
    }
  }

  if (tally != nullptr) ++tally->tier_unknown;
  return ProbInterval::Unknown();
}

}  // namespace bayescrowd
