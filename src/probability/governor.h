// SolverGovernor: deterministic resource budgets and the graceful
// degradation ladder for Pr(φ) evaluation (DESIGN.md §10).
//
// Pr(φ) is #SAT-hard (paper, Theorem 1): one adversarial c-table
// condition can stall a whole query session inside the solver, where
// crowd-side retries and checkpoints cannot help. The governor gives
// every evaluation a budget and, when it runs out, walks a ladder of
// weaker-but-sound answers instead of hanging:
//
//   tier 1  exact ADPLL within the node budget            → kExact
//   tier 2  partial ADPLL, unexplored subtrees closed
//           into a sound [lo, hi] interval                → kPartialBound
//   tier 3  generalized-ApproxCount sampling with a
//           normal-approximation confidence interval      → kSampledCI
//   tier 4  the uninformative [0, 1]                      → kUnknown
//
// Determinism contract: the node and component budgets are counted in
// solver decisions, so which tier answers — and the answer itself — is
// reproducible across runs, thread counts, and kill/resume. The
// optional wall-clock deadline only *degrades* (drops to a lower
// tier); it never changes the value any tier produces.

#ifndef BAYESCROWD_PROBABILITY_GOVERNOR_H_
#define BAYESCROWD_PROBABILITY_GOVERNOR_H_

#include <cstdint>
#include <string>

#include "common/random.h"
#include "common/result.h"
#include "ctable/condition.h"
#include "probability/adpll.h"
#include "probability/distributions.h"
#include "probability/interval.h"
#include "probability/naive.h"
#include "probability/sampling.h"

namespace bayescrowd {

/// How far down the ladder a governed evaluation may degrade.
enum class LadderMode : std::uint8_t {
  kFull = 0,      // exact → partial interval → sampled CI → [0,1]
  kInterval = 1,  // exact → partial interval → [0,1] (no sampling)
  kSample = 2,    // exact → sampled CI → [0,1] (skip partial ADPLL)
  kStrict = 3,    // exact → [0,1] (degrade straight to unknown)
};

const char* LadderModeToString(LadderMode mode);

/// Parses a CLI ladder name ("full", "interval", "sample", "strict").
/// Returns false on unknown names, leaving `mode` untouched.
bool ParseLadderMode(const std::string& name, LadderMode* mode);

struct GovernorOptions {
  /// Decision/node budget per evaluation, counted in ADPLL recursive
  /// calls (and Naive assignments for the kNaive method). 0 = unlimited.
  std::uint64_t max_nodes = 0;

  /// Budget on component-decomposition splits per evaluation.
  /// 0 = unlimited.
  std::uint64_t max_components = 0;

  /// Optional wall-clock cap per evaluation, in milliseconds. Only ever
  /// triggers degradation to a lower tier — never changes the value an
  /// uninterrupted tier would produce — so it is excluded from the
  /// budget fingerprint and from the session config fingerprint.
  /// 0 = no deadline.
  std::int64_t deadline_ms = 0;

  /// Which degradation steps are allowed once a budget is exhausted.
  LadderMode ladder = LadderMode::kFull;

  /// Sample count for the ladder's sampling tier.
  std::size_t interval_samples = 4096;

  /// Normal quantile for the sampling tier's confidence interval
  /// (2.576 ≈ a two-sided 99% interval).
  double confidence_z = 2.5758293035489004;

  /// An inert governor (nothing to enforce) leaves every solver path
  /// byte-identical to the ungoverned build.
  bool enabled() const {
    return max_nodes > 0 || max_components > 0 || deadline_ms > 0;
  }

  /// Digest of the budget configuration that changes *values* (the
  /// deadline does not). Folded into evaluator cache stamps so results
  /// computed under one budget tier are never served under another;
  /// exactly 0 when the governor is inert, which keeps pre-governor
  /// cache blobs valid.
  std::uint64_t Fingerprint() const;
};

/// Counters for one governed evaluation, merged deterministically by
/// the evaluator (per lane, then across lanes after the batch barrier).
struct GovernorTally {
  std::uint64_t budget_exhausted = 0;  // Tier-1 exact solves that ran out.
  std::uint64_t deadline_hits = 0;     // Wall-clock cap fired.
  std::uint64_t tier_exact = 0;
  std::uint64_t tier_partial = 0;
  std::uint64_t tier_sampled = 0;
  std::uint64_t tier_unknown = 0;

  GovernorTally& operator+=(const GovernorTally& other) {
    budget_exhausted += other.budget_exhausted;
    deadline_hits += other.deadline_hits;
    tier_exact += other.tier_exact;
    tier_partial += other.tier_partial;
    tier_sampled += other.tier_sampled;
    tier_unknown += other.tier_unknown;
    return *this;
  }
};

/// Walks the degradation ladder for one Pr(φ) evaluation. Stateless
/// apart from its options: every call builds a fresh SolverControl, so
/// governed evaluations are independent and safe to fan across lanes.
class SolverGovernor {
 public:
  explicit SolverGovernor(GovernorOptions options)
      : options_(options) {}

  const GovernorOptions& options() const { return options_; }
  bool enabled() const { return options_.enabled(); }

  /// Governed evaluation with ADPLL as the exact tier. `base` carries
  /// the caller's solver configuration; the governor clamps its budgets
  /// and installs cancellation. `rng` feeds the sampling tier only;
  /// `scratch` holds the solver's reusable buffers (see AdpllScratch).
  Result<ProbInterval> Evaluate(const Condition& condition,
                                const DistributionMap& dists,
                                const AdpllOptions& base,
                                const SamplingOptions& sampling, Rng& rng,
                                AdpllStats* stats, GovernorTally* tally,
                                AdpllScratch* scratch = nullptr) const;

  /// Governed evaluation with full Naive enumeration as the exact tier.
  Result<ProbInterval> EvaluateNaive(const Condition& condition,
                                     const DistributionMap& dists,
                                     const NaiveOptions& base,
                                     const SamplingOptions& sampling,
                                     Rng& rng, GovernorTally* tally) const;

 private:
  Result<ProbInterval> SampleTier(const Condition& condition,
                                  const DistributionMap& dists,
                                  const SamplingOptions& sampling,
                                  SolverControl* control, Rng& rng,
                                  GovernorTally* tally) const;

  GovernorOptions options_;
};

}  // namespace bayescrowd

#endif  // BAYESCROWD_PROBABILITY_GOVERNOR_H_
