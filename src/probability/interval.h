// Interval-valued probabilities and cooperative solver cancellation —
// the shared vocabulary of the resource-governed solving layer (see
// DESIGN.md §10).
//
// Pr(φ) is #SAT-hard, so a budgeted solve may not finish. Instead of
// hanging or failing, a governed evaluation returns a *sound* interval
// [lo, hi] that is guaranteed to contain the exact probability, graded
// by how it was obtained (ProbQuality). Exact results are the special
// case lo == hi.

#ifndef BAYESCROWD_PROBABILITY_INTERVAL_H_
#define BAYESCROWD_PROBABILITY_INTERVAL_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace bayescrowd {

/// How a probability (interval) was obtained, ordered best-first. The
/// grade travels with the value through the evaluator cache, the
/// strategy layer, checkpoints, and telemetry.
enum class ProbQuality : std::uint8_t {
  kExact = 0,        // Full solve; lo == hi.
  kPartialBound = 1, // Truncated exact search; sound [lo, hi].
  kSampledCI = 2,    // Monte-Carlo estimate with a confidence interval.
  kUnknown = 3,      // Nothing learned: [0, 1].
};

const char* ProbQualityToString(ProbQuality quality);

/// A closed probability interval with its provenance grade. Invariant:
/// 0 <= lo <= hi <= 1, and quality == kExact implies lo == hi.
struct ProbInterval {
  double lo = 0.0;
  double hi = 1.0;
  ProbQuality quality = ProbQuality::kUnknown;

  static ProbInterval Exact(double p) {
    return ProbInterval{p, p, ProbQuality::kExact};
  }
  static ProbInterval Unknown() {
    return ProbInterval{0.0, 1.0, ProbQuality::kUnknown};
  }

  double midpoint() const { return 0.5 * (lo + hi); }
  double width() const { return hi - lo; }
  bool exact() const { return quality == ProbQuality::kExact; }
  bool Contains(double p) const { return lo <= p && p <= hi; }

  bool operator==(const ProbInterval& other) const {
    return lo == other.lo && hi == other.hi && quality == other.quality;
  }
  bool operator!=(const ProbInterval& other) const {
    return !(*this == other);
  }
};

/// The most-uncertain probability consistent with `interval`: the point
/// closest to 1/2 (1/2 itself when contained). Equals the exact value
/// for exact intervals. The strategy layer's pessimistic ranking uses
/// this instead of the midpoint.
inline double PessimisticPoint(const ProbInterval& interval) {
  if (interval.lo > 0.5) return interval.lo;
  if (interval.hi < 0.5) return interval.hi;
  return 0.5;
}

/// Cooperative cancellation handle threaded into the ADPLL recursion,
/// the Naive odometer, and the samplers. Two triggers: an explicit
/// cross-thread Cancel(), and an optional wall-clock deadline. The
/// deadline is polled only every kDeadlinePollPeriod ticks so the
/// common path costs one pointer compare plus one relaxed atomic load.
///
/// Determinism contract: cancellation *degrades* a solve (the governor
/// drops to a lower ladder tier); it never changes the value an
/// uncancelled solve would produce. Wall-clock caps are therefore safe
/// to use even where results must be reproducible — only *whether* a
/// tier completes is timing-dependent, never its output.
class SolverControl {
 public:
  SolverControl() = default;

  SolverControl(const SolverControl&) = delete;
  SolverControl& operator=(const SolverControl&) = delete;

  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }

  /// Thread-safe; the solve observes it at its next ShouldStop poll.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Polled by solver inner loops. Sticky: once true, stays true.
  bool ShouldStop() {
    if (stopped_) return true;
    if (cancelled_.load(std::memory_order_relaxed)) {
      stopped_ = true;
      return true;
    }
    if (has_deadline_ && ++ticks_ % kDeadlinePollPeriod == 0 &&
        std::chrono::steady_clock::now() >= deadline_) {
      stopped_ = true;
    }
    return stopped_;
  }

  /// True when a previous ShouldStop() fired (no fresh poll).
  bool stopped() const { return stopped_; }

 private:
  static constexpr std::uint64_t kDeadlinePollPeriod = 256;

  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  std::uint64_t ticks_ = 0;
  bool stopped_ = false;
};

}  // namespace bayescrowd

#endif  // BAYESCROWD_PROBABILITY_INTERVAL_H_
