#include "probability/naive.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"

namespace bayescrowd {

bool EvaluateConditionComplete(
    const Condition& condition,
    const std::function<Level(const CellRef&)>& value_of) {
  if (condition.IsTrue()) return true;
  if (condition.IsFalse()) return false;
  for (const Conjunct& conjunct : condition.conjuncts()) {
    bool satisfied = false;
    for (const Expression& expr : conjunct) {
      const Level lhs = value_of(expr.lhs);
      const Level rhs =
          expr.rhs_is_var ? value_of(expr.rhs_var) : expr.rhs_const;
      if (expr.EvaluateComplete(lhs, rhs) == Truth::kTrue) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

namespace {

// Shared enumeration core. Scans up to `max_steps` assignments (also
// stopping on `control`), accumulating the satisfied and the visited
// probability mass. Returns the number of assignments visited; a full
// scan visited `space` of them.
struct ScanResult {
  double satisfied_mass = 0.0;
  double visited_mass = 0.0;
  std::uint64_t visited = 0;
  std::uint64_t space = 0;
};

// When `bail_if_space_exceeds` is nonzero and the assignment space is
// larger, returns without scanning (visited == 0) so callers that treat
// oversize spaces as a hard error pay nothing for the discovery.
Result<ScanResult> ScanAssignments(const Condition& condition,
                                   const DistributionMap& dists,
                                   std::uint64_t max_steps,
                                   SolverControl* control,
                                   std::uint64_t bail_if_space_exceeds = 0) {
  ScanResult out;
  const std::vector<CellRef> vars = condition.Variables();
  std::vector<const std::vector<double>*> var_dists(vars.size());
  std::uint64_t space = 1;
  bool overflow = false;
  for (std::size_t i = 0; i < vars.size(); ++i) {
    var_dists[i] = dists.Find(vars[i]);
    if (var_dists[i] == nullptr) {
      return Status::NotFound(
          StrFormat("no distribution for Var(%zu,%zu)", vars[i].object,
                    vars[i].attribute));
    }
    const auto card = static_cast<std::uint64_t>(var_dists[i]->size());
    if (space > UINT64_MAX / card) overflow = true;
    if (!overflow) space *= card;
  }
  out.space = overflow ? UINT64_MAX : space;
  if (bail_if_space_exceeds != 0 && out.space > bail_if_space_exceeds) {
    return out;
  }

  // Odometer over assignments.
  std::vector<Level> assignment(vars.size(), 0);
  std::map<CellRef, std::size_t> var_index;
  for (std::size_t i = 0; i < vars.size(); ++i) var_index[vars[i]] = i;
  const auto value_of = [&](const CellRef& var) {
    return assignment[var_index.at(var)];
  };

  const std::uint64_t steps = std::min(out.space, max_steps);
  for (std::uint64_t step = 0; step < steps; ++step) {
    if (control != nullptr && control->ShouldStop()) break;
    double weight = 1.0;
    for (std::size_t i = 0; i < vars.size(); ++i) {
      weight *= (*var_dists[i])[static_cast<std::size_t>(assignment[i])];
    }
    if (weight > 0.0) {
      out.visited_mass += weight;
      if (EvaluateConditionComplete(condition, value_of)) {
        out.satisfied_mass += weight;
      }
    }
    ++out.visited;
    // Advance the odometer.
    for (std::size_t i = 0; i < vars.size(); ++i) {
      if (++assignment[i] <
          static_cast<Level>(var_dists[i]->size())) {
        break;
      }
      assignment[i] = 0;
    }
  }
  return out;
}

}  // namespace

Result<double> NaiveProbability(const Condition& condition,
                                const DistributionMap& dists,
                                const NaiveOptions& options) {
  if (condition.IsTrue()) return 1.0;
  if (condition.IsFalse()) return 0.0;

  BAYESCROWD_ASSIGN_OR_RETURN(
      const ScanResult scan,
      ScanAssignments(condition, dists, options.max_assignments,
                      options.control,
                      /*bail_if_space_exceeds=*/options.max_assignments));
  if (scan.space > options.max_assignments) {
    return Status::ResourceExhausted(StrFormat(
        "assignment space exceeds limit of %llu",
        static_cast<unsigned long long>(options.max_assignments)));
  }
  if (scan.visited < scan.space) {
    return Status::ResourceExhausted("naive enumeration cancelled");
  }
  return scan.satisfied_mass;
}

Result<ProbInterval> NaiveBoundedProbability(const Condition& condition,
                                             const DistributionMap& dists,
                                             const NaiveOptions& options) {
  if (condition.IsTrue()) return ProbInterval::Exact(1.0);
  if (condition.IsFalse()) return ProbInterval::Exact(0.0);

  BAYESCROWD_ASSIGN_OR_RETURN(
      const ScanResult scan,
      ScanAssignments(condition, dists, options.max_assignments,
                      options.control));
  if (scan.visited >= scan.space) {
    return ProbInterval::Exact(scan.satisfied_mass);
  }
  // Unvisited assignments may all satisfy (hi) or all fail (lo).
  ProbInterval out;
  out.lo = std::min(1.0, std::max(0.0, scan.satisfied_mass));
  out.hi = std::min(
      1.0, std::max(out.lo, scan.satisfied_mass +
                                std::max(0.0, 1.0 - scan.visited_mass)));
  out.quality = ProbQuality::kPartialBound;
  return out;
}

}  // namespace bayescrowd
