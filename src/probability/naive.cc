#include "probability/naive.h"

#include <map>

#include "common/string_util.h"

namespace bayescrowd {

bool EvaluateConditionComplete(
    const Condition& condition,
    const std::function<Level(const CellRef&)>& value_of) {
  if (condition.IsTrue()) return true;
  if (condition.IsFalse()) return false;
  for (const Conjunct& conjunct : condition.conjuncts()) {
    bool satisfied = false;
    for (const Expression& expr : conjunct) {
      const Level lhs = value_of(expr.lhs);
      const Level rhs =
          expr.rhs_is_var ? value_of(expr.rhs_var) : expr.rhs_const;
      if (expr.EvaluateComplete(lhs, rhs) == Truth::kTrue) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

Result<double> NaiveProbability(const Condition& condition,
                                const DistributionMap& dists,
                                const NaiveOptions& options) {
  if (condition.IsTrue()) return 1.0;
  if (condition.IsFalse()) return 0.0;

  const std::vector<CellRef> vars = condition.Variables();
  std::vector<const std::vector<double>*> var_dists(vars.size());
  std::uint64_t space = 1;
  for (std::size_t i = 0; i < vars.size(); ++i) {
    var_dists[i] = dists.Find(vars[i]);
    if (var_dists[i] == nullptr) {
      return Status::NotFound(
          StrFormat("no distribution for Var(%zu,%zu)", vars[i].object,
                    vars[i].attribute));
    }
    const auto card = static_cast<std::uint64_t>(var_dists[i]->size());
    if (space > options.max_assignments / card) {
      return Status::ResourceExhausted(StrFormat(
          "assignment space exceeds limit of %llu",
          static_cast<unsigned long long>(options.max_assignments)));
    }
    space *= card;
  }

  // Odometer over assignments.
  std::vector<Level> assignment(vars.size(), 0);
  std::map<CellRef, std::size_t> var_index;
  for (std::size_t i = 0; i < vars.size(); ++i) var_index[vars[i]] = i;
  const auto value_of = [&](const CellRef& var) {
    return assignment[var_index.at(var)];
  };

  double total = 0.0;
  for (std::uint64_t step = 0; step < space; ++step) {
    double weight = 1.0;
    for (std::size_t i = 0; i < vars.size(); ++i) {
      weight *= (*var_dists[i])[static_cast<std::size_t>(assignment[i])];
    }
    if (weight > 0.0 && EvaluateConditionComplete(condition, value_of)) {
      total += weight;
    }
    // Advance the odometer.
    for (std::size_t i = 0; i < vars.size(); ++i) {
      if (++assignment[i] <
          static_cast<Level>(var_dists[i]->size())) {
        break;
      }
      assignment[i] = 0;
    }
  }
  return total;
}

}  // namespace bayescrowd
