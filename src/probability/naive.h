// Naive probability computation: full enumeration of the variable
// assignment space (the brute-force comparison point of Figure 3).

#ifndef BAYESCROWD_PROBABILITY_NAIVE_H_
#define BAYESCROWD_PROBABILITY_NAIVE_H_

#include <cstdint>

#include "common/result.h"
#include "ctable/condition.h"
#include "probability/distributions.h"

namespace bayescrowd {

struct NaiveOptions {
  /// Enumeration is aborted with ResourceExhausted beyond this many
  /// assignments (the space is N^(#vars)).
  std::uint64_t max_assignments = 200'000'000;
};

/// Pr(φ) by summing the probabilities of all satisfying assignments.
/// Exact; exponential in the number of variables.
Result<double> NaiveProbability(const Condition& condition,
                                const DistributionMap& dists,
                                const NaiveOptions& options = {});

/// Truth of `condition` under a full assignment of its variables.
/// Exposed for tests and for the sampling estimator.
bool EvaluateConditionComplete(
    const Condition& condition,
    const std::function<Level(const CellRef&)>& value_of);

}  // namespace bayescrowd

#endif  // BAYESCROWD_PROBABILITY_NAIVE_H_
