// Naive probability computation: full enumeration of the variable
// assignment space (the brute-force comparison point of Figure 3).

#ifndef BAYESCROWD_PROBABILITY_NAIVE_H_
#define BAYESCROWD_PROBABILITY_NAIVE_H_

#include <cstdint>

#include "common/result.h"
#include "ctable/condition.h"
#include "probability/distributions.h"
#include "probability/interval.h"

namespace bayescrowd {

struct NaiveOptions {
  /// Enumeration is aborted with ResourceExhausted beyond this many
  /// assignments (the space is N^(#vars)).
  std::uint64_t max_assignments = 200'000'000;

  /// Cooperative cancellation, polled inside the odometer loop.
  /// Non-owning; may be null. Aborts with ResourceExhausted.
  SolverControl* control = nullptr;
};

/// Pr(φ) by summing the probabilities of all satisfying assignments.
/// Exact; exponential in the number of variables.
Result<double> NaiveProbability(const Condition& condition,
                                const DistributionMap& dists,
                                const NaiveOptions& options = {});

/// Anytime variant: enumerates at most `max_assignments` assignments
/// (and honors `control`) and closes the unvisited mass into a sound
/// interval: lo = satisfied mass seen, hi = 1 − unsatisfied mass seen.
/// Completing the scan yields an exact result (quality kExact).
Result<ProbInterval> NaiveBoundedProbability(const Condition& condition,
                                             const DistributionMap& dists,
                                             const NaiveOptions& options = {});

/// Truth of `condition` under a full assignment of its variables.
/// Exposed for tests and for the sampling estimator.
bool EvaluateConditionComplete(
    const Condition& condition,
    const std::function<Level(const CellRef&)>& value_of);

}  // namespace bayescrowd

#endif  // BAYESCROWD_PROBABILITY_NAIVE_H_
