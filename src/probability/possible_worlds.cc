#include "probability/possible_worlds.h"

#include "common/string_util.h"

namespace bayescrowd {
namespace {

// True when rows a and b of `world` are identical.
bool RowsEqual(const Table& world, std::size_t a, std::size_t b) {
  for (std::size_t j = 0; j < world.num_attributes(); ++j) {
    if (world.At(a, j) != world.At(b, j)) return false;
  }
  return true;
}

}  // namespace

Result<std::vector<double>> SkylineMembershipByEnumeration(
    const Table& incomplete, const DistributionMap& dists,
    const PossibleWorldOptions& options) {
  const std::size_t n = incomplete.num_objects();
  const std::size_t d = incomplete.num_attributes();
  const std::vector<CellRef> cells = incomplete.MissingCells();

  // Validate distributions and bound the world count.
  std::vector<const std::vector<double>*> cell_dists(cells.size());
  std::uint64_t worlds = 1;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    cell_dists[c] = dists.Find(cells[c]);
    if (cell_dists[c] == nullptr) {
      return Status::NotFound(
          StrFormat("no distribution for Var(%zu,%zu)", cells[c].object,
                    cells[c].attribute));
    }
    const auto card = static_cast<std::uint64_t>(cell_dists[c]->size());
    if (worlds > options.max_worlds / card) {
      return Status::ResourceExhausted(StrFormat(
          "world count exceeds limit of %llu",
          static_cast<unsigned long long>(options.max_worlds)));
    }
    worlds *= card;
  }

  // Which fully-observed pairs are exact duplicates (the c-table
  // semantics' carve-out). Precomputed once.
  std::vector<bool> row_complete(n);
  for (std::size_t i = 0; i < n; ++i) {
    row_complete[i] = incomplete.IsRowComplete(i);
  }

  Table world = incomplete;  // Mutated in place per world.
  std::vector<Level> assignment(cells.size(), 0);
  for (std::size_t c = 0; c < cells.size(); ++c) {
    world.SetCell(cells[c].object, cells[c].attribute, 0);
  }

  std::vector<double> membership(n, 0.0);
  for (std::uint64_t step = 0; step < worlds; ++step) {
    double weight = 1.0;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      weight *= (*cell_dists[c])[static_cast<std::size_t>(assignment[c])];
    }
    if (weight > 0.0) {
      for (std::size_t o = 0; o < n; ++o) {
        bool answer = true;
        for (std::size_t p = 0; p < n && answer; ++p) {
          if (p == o) continue;
          if (options.semantics == WorldSemantics::kStrictSkyline) {
            // p eliminates o iff p dominates o (Definition 1).
            bool ge_everywhere = true;
            bool gt_somewhere = false;
            for (std::size_t j = 0; j < d; ++j) {
              const Level pv = world.At(p, j);
              const Level ov = world.At(o, j);
              if (pv < ov) {
                ge_everywhere = false;
                break;
              }
              if (pv > ov) gt_somewhere = true;
            }
            if (ge_everywhere && gt_somewhere) answer = false;
          } else {
            // C-table reading: o must strictly beat p somewhere —
            // unless p is a fully-observed duplicate of a
            // fully-observed o (can never strictly dominate).
            if (row_complete[o] && row_complete[p] &&
                RowsEqual(incomplete, o, p)) {
              continue;
            }
            bool beats = false;
            for (std::size_t j = 0; j < d; ++j) {
              if (world.At(o, j) > world.At(p, j)) {
                beats = true;
                break;
              }
            }
            if (!beats) answer = false;
          }
        }
        if (answer) membership[o] += weight;
      }
    }
    // Advance the odometer, updating the world in place.
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (++assignment[c] <
          static_cast<Level>(cell_dists[c]->size())) {
        world.SetCell(cells[c].object, cells[c].attribute, assignment[c]);
        break;
      }
      assignment[c] = 0;
      world.SetCell(cells[c].object, cells[c].attribute, 0);
    }
  }
  return membership;
}

}  // namespace bayescrowd
