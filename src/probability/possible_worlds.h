// Possible-world enumeration: the ground-truth reference for the whole
// modeling + probability pipeline.
//
// A possible world is one completion of the incomplete table, weighted
// by the product of the per-cell distributions. Enumerating all worlds
// gives exact skyline-membership probabilities without going through
// c-tables or ADPLL — which is exactly what makes it a strong
// cross-check (and a usable tool for tiny datasets). Exponential in the
// number of missing cells.

#ifndef BAYESCROWD_PROBABILITY_POSSIBLE_WORLDS_H_
#define BAYESCROWD_PROBABILITY_POSSIBLE_WORLDS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/table.h"
#include "probability/distributions.h"

namespace bayescrowd {

/// Which dominance reading to integrate.
enum class WorldSemantics : std::uint8_t {
  /// Definition 1 verbatim: o is a skyline member of the world iff no
  /// object dominates it (>= everywhere, > somewhere).
  kStrictSkyline,

  /// The paper's c-table reading (Section 4.1): o survives each
  /// possible dominator p iff o strictly beats p somewhere — except
  /// that a fully-observed exact duplicate of a fully-observed o is
  /// ignored (it can never strictly dominate). Matches what
  /// BuildCondition + Pr(φ(o)) computes, so
  ///   SkylineMembershipByEnumeration(..., kCTable)[o] == Pr(φ(o))
  /// exactly, for every object.
  kCTable,
};

struct PossibleWorldOptions {
  WorldSemantics semantics = WorldSemantics::kCTable;

  /// Enumeration aborts with ResourceExhausted beyond this many worlds
  /// (the space is the product of the missing cells' domain sizes).
  std::uint64_t max_worlds = 50'000'000;
};

/// Exact P(o is an answer) for every object, by summing world weights.
/// Every missing cell needs a distribution in `dists`.
Result<std::vector<double>> SkylineMembershipByEnumeration(
    const Table& incomplete, const DistributionMap& dists,
    const PossibleWorldOptions& options = {});

}  // namespace bayescrowd

#endif  // BAYESCROWD_PROBABILITY_POSSIBLE_WORLDS_H_
