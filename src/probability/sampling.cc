#include "probability/sampling.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/string_util.h"
#include "probability/naive.h"

namespace bayescrowd {
namespace {

// Gathers the variables and their distributions; NotFound if any is
// unregistered.
Status CollectDistributions(
    const Condition& condition, const DistributionMap& dists,
    std::vector<CellRef>* vars,
    std::vector<const std::vector<double>*>* var_dists) {
  *vars = condition.Variables();
  var_dists->resize(vars->size());
  for (std::size_t i = 0; i < vars->size(); ++i) {
    (*var_dists)[i] = dists.Find((*vars)[i]);
    if ((*var_dists)[i] == nullptr) {
      return Status::NotFound(
          StrFormat("no distribution for Var(%zu,%zu)", (*vars)[i].object,
                    (*vars)[i].attribute));
    }
  }
  return Status::OK();
}

Level SampleFrom(const std::vector<double>& dist, Rng& rng) {
  double target = rng.NextDouble();
  for (std::size_t v = 0; v < dist.size(); ++v) {
    target -= dist[v];
    if (target < 0.0) return static_cast<Level>(v);
  }
  return static_cast<Level>(dist.size()) - 1;
}

}  // namespace

Result<double> SampledProbability(const Condition& condition,
                                  const DistributionMap& dists,
                                  const SamplingOptions& options, Rng& rng) {
  if (condition.IsTrue()) return 1.0;
  if (condition.IsFalse()) return 0.0;
  if (options.num_samples == 0) {
    return Status::InvalidArgument("num_samples must be > 0");
  }

  std::vector<CellRef> vars;
  std::vector<const std::vector<double>*> var_dists;
  BAYESCROWD_RETURN_NOT_OK(
      CollectDistributions(condition, dists, &vars, &var_dists));

  std::map<CellRef, std::size_t> index;
  for (std::size_t i = 0; i < vars.size(); ++i) index[vars[i]] = i;
  std::vector<Level> assignment(vars.size());
  const auto value_of = [&](const CellRef& var) {
    return assignment[index.at(var)];
  };

  std::size_t hits = 0;
  for (std::size_t s = 0; s < options.num_samples; ++s) {
    if (options.control != nullptr && options.control->ShouldStop()) {
      return Status::ResourceExhausted("sampling cancelled");
    }
    for (std::size_t i = 0; i < vars.size(); ++i) {
      assignment[i] = SampleFrom(*var_dists[i], rng);
    }
    if (EvaluateConditionComplete(condition, value_of)) ++hits;
  }
  return static_cast<double>(hits) /
         static_cast<double>(options.num_samples);
}

Result<double> SampledProbabilityRaoBlackwell(const Condition& condition,
                                              const DistributionMap& dists,
                                              const SamplingOptions& options,
                                              Rng& rng) {
  if (condition.IsTrue()) return 1.0;
  if (condition.IsFalse()) return 0.0;
  if (options.num_samples == 0) {
    return Status::InvalidArgument("num_samples must be > 0");
  }
  if (condition.conjuncts().size() < 2) {
    // Single conjunct: exact small enumeration is cheaper than sampling.
    return NaiveProbability(condition, dists);
  }

  // Hold out the largest conjunct for exact conditional integration.
  std::size_t held = 0;
  for (std::size_t c = 1; c < condition.conjuncts().size(); ++c) {
    if (condition.conjuncts()[c].size() >
        condition.conjuncts()[held].size()) {
      held = c;
    }
  }
  std::vector<CellRef> held_vars;
  for (const Expression& e : condition.conjuncts()[held]) {
    for (const CellRef& var : e.Variables()) {
      if (std::find(held_vars.begin(), held_vars.end(), var) ==
          held_vars.end()) {
        held_vars.push_back(var);
      }
    }
  }

  std::vector<CellRef> vars;
  std::vector<const std::vector<double>*> var_dists;
  BAYESCROWD_RETURN_NOT_OK(
      CollectDistributions(condition, dists, &vars, &var_dists));

  // Variables to sample: everything not exclusive to the held conjunct.
  // (Shared variables must still be sampled so the held conjunct's
  // conditional probability is computed against a full context.)
  std::vector<bool> sampled(vars.size(), true);
  for (std::size_t i = 0; i < vars.size(); ++i) {
    const CellRef& var = vars[i];
    bool only_in_held = std::find(held_vars.begin(), held_vars.end(),
                                  var) != held_vars.end();
    if (!only_in_held) continue;
    for (std::size_t c = 0; c < condition.conjuncts().size(); ++c) {
      if (c == held) continue;
      for (const Expression& e : condition.conjuncts()[c]) {
        if (e.InvolvesVariable(var)) {
          only_in_held = false;
          break;
        }
      }
      if (!only_in_held) break;
    }
    if (only_in_held) sampled[i] = false;
  }

  std::map<CellRef, std::size_t> index;
  for (std::size_t i = 0; i < vars.size(); ++i) index[vars[i]] = i;
  std::vector<Level> assignment(vars.size(), 0);
  const auto value_of = [&](const CellRef& var) {
    return assignment[index.at(var)];
  };

  double total = 0.0;
  for (std::size_t s = 0; s < options.num_samples; ++s) {
    if (options.control != nullptr && options.control->ShouldStop()) {
      return Status::ResourceExhausted("sampling cancelled");
    }
    for (std::size_t i = 0; i < vars.size(); ++i) {
      if (sampled[i]) assignment[i] = SampleFrom(*var_dists[i], rng);
    }
    // All other conjuncts must hold under the sampled assignment.
    bool rest_ok = true;
    for (std::size_t c = 0; c < condition.conjuncts().size() && rest_ok;
         ++c) {
      if (c == held) continue;
      bool satisfied = false;
      for (const Expression& e : condition.conjuncts()[c]) {
        const Level lhs = value_of(e.lhs);
        const Level rhs = e.rhs_is_var ? value_of(e.rhs_var) : e.rhs_const;
        if (e.EvaluateComplete(lhs, rhs) == Truth::kTrue) {
          satisfied = true;
          break;
        }
      }
      rest_ok = satisfied;
    }
    if (!rest_ok) continue;

    // Exact P(held conjunct | sampled shared variables): substitute the
    // sampled values, then integrate the exclusive variables.
    Condition reduced = Condition::Cnf({condition.conjuncts()[held]});
    for (std::size_t i = 0; i < vars.size(); ++i) {
      if (!sampled[i] || reduced.IsDecided()) continue;
      reduced = reduced.SubstituteVariable(vars[i], assignment[i]);
    }
    BAYESCROWD_ASSIGN_OR_RETURN(const double p_held,
                                NaiveProbability(reduced, dists));
    total += p_held;
  }
  return total / static_cast<double>(options.num_samples);
}

Result<ProbInterval> SampledProbabilityInterval(const Condition& condition,
                                                const DistributionMap& dists,
                                                const SamplingOptions& options,
                                                double confidence_z,
                                                Rng& rng) {
  if (condition.IsTrue()) return ProbInterval::Exact(1.0);
  if (condition.IsFalse()) return ProbInterval::Exact(0.0);
  BAYESCROWD_ASSIGN_OR_RETURN(
      const double estimate,
      SampledProbability(condition, dists, options, rng));
  const double n = static_cast<double>(options.num_samples);
  const double half =
      confidence_z * std::sqrt(estimate * (1.0 - estimate) / n) + 0.5 / n;
  ProbInterval out;
  out.lo = std::max(0.0, estimate - half);
  out.hi = std::min(1.0, estimate + half);
  out.quality = ProbQuality::kSampledCI;
  return out;
}

}  // namespace bayescrowd
