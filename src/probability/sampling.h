// Sampling-based approximate probability computation — the generalized
// ApproxCount comparison point of Section 5. Assignments are forward-
// sampled from the variable distributions and the satisfaction rate is
// the estimate; a per-conjunct Rao-Blackwellised variant reduces
// variance by integrating the last correlated conjunct exactly.

#ifndef BAYESCROWD_PROBABILITY_SAMPLING_H_
#define BAYESCROWD_PROBABILITY_SAMPLING_H_

#include <cstdint>

#include "common/random.h"
#include "common/result.h"
#include "ctable/condition.h"
#include "probability/distributions.h"

namespace bayescrowd {

struct SamplingOptions {
  std::size_t num_samples = 10'000;
};

/// Monte-Carlo estimate of Pr(φ): fraction of sampled assignments that
/// satisfy the condition.
Result<double> SampledProbability(const Condition& condition,
                                  const DistributionMap& dists,
                                  const SamplingOptions& options, Rng& rng);

/// Rao-Blackwellised estimate: samples every variable except those of
/// one chosen conjunct, whose conditional probability is computed
/// exactly per sample. Lower variance at slightly higher per-sample
/// cost.
Result<double> SampledProbabilityRaoBlackwell(const Condition& condition,
                                              const DistributionMap& dists,
                                              const SamplingOptions& options,
                                              Rng& rng);

}  // namespace bayescrowd

#endif  // BAYESCROWD_PROBABILITY_SAMPLING_H_
