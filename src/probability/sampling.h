// Sampling-based approximate probability computation — the generalized
// ApproxCount comparison point of Section 5. Assignments are forward-
// sampled from the variable distributions and the satisfaction rate is
// the estimate; a per-conjunct Rao-Blackwellised variant reduces
// variance by integrating the last correlated conjunct exactly.

#ifndef BAYESCROWD_PROBABILITY_SAMPLING_H_
#define BAYESCROWD_PROBABILITY_SAMPLING_H_

#include <cstdint>

#include "common/random.h"
#include "common/result.h"
#include "ctable/condition.h"
#include "probability/distributions.h"
#include "probability/interval.h"

namespace bayescrowd {

struct SamplingOptions {
  std::size_t num_samples = 10'000;

  /// Cooperative cancellation, polled between samples. Non-owning; may
  /// be null. Aborts with ResourceExhausted.
  SolverControl* control = nullptr;
};

/// Monte-Carlo estimate of Pr(φ): fraction of sampled assignments that
/// satisfy the condition.
Result<double> SampledProbability(const Condition& condition,
                                  const DistributionMap& dists,
                                  const SamplingOptions& options, Rng& rng);

/// Rao-Blackwellised estimate: samples every variable except those of
/// one chosen conjunct, whose conditional probability is computed
/// exactly per sample. Lower variance at slightly higher per-sample
/// cost.
Result<double> SampledProbabilityRaoBlackwell(const Condition& condition,
                                              const DistributionMap& dists,
                                              const SamplingOptions& options,
                                              Rng& rng);

/// Monte-Carlo estimate wrapped in a normal-approximation confidence
/// interval (± z·sqrt(p̂(1−p̂)/n) + ½/n continuity margin, clamped to
/// [0,1]), graded kSampledCI — the generalized-ApproxCount tier of the
/// degradation ladder. Unlike the sound partial-ADPLL bounds this is a
/// *statistical* interval; `confidence_z` picks its level (2.576 ≈
/// 99%). Decided conditions come back exact.
Result<ProbInterval> SampledProbabilityInterval(const Condition& condition,
                                                const DistributionMap& dists,
                                                const SamplingOptions& options,
                                                double confidence_z, Rng& rng);

}  // namespace bayescrowd

#endif  // BAYESCROWD_PROBABILITY_SAMPLING_H_
