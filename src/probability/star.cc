#include "probability/star.h"

#include "common/string_util.h"

namespace bayescrowd {

bool BuildStarPlan(const Condition& condition, const DistributionMap& dists,
                   std::size_t max_hub_space, StarPlan* plan,
                   StarScratch* scratch, Status* status) {
  *status = Status::OK();

  // Hub discovery.
  auto& occurrences = scratch->occurrences;
  auto& order = scratch->order;
  auto& hub_slot = scratch->hub_slot;
  occurrences.clear();
  order.clear();
  hub_slot.clear();
  occurrences.reserve(condition.conjuncts().size() * 2);
  for (const Conjunct& conj : condition.conjuncts()) {
    for (const Expression& e : conj) {
      if (++occurrences[PackVar(e.lhs)] == 1) order.push_back(e.lhs);
      if (e.rhs_is_var && ++occurrences[PackVar(e.rhs_var)] == 1) {
        order.push_back(e.rhs_var);
      }
    }
  }
  plan->hub.clear();
  for (const CellRef& var : order) {
    if (occurrences[PackVar(var)] >= 2) {
      hub_slot[PackVar(var)] = static_cast<int>(plan->hub.size());
      plan->hub.push_back(var);
    }
  }
  if (plan->hub.empty() || plan->hub.size() > 16) return false;

  // Joint-domain bound.
  plan->hub_sizes.clear();
  std::size_t space = 1;
  for (const CellRef& var : plan->hub) {
    const std::vector<double>* dist = dists.Find(var);
    if (dist == nullptr) {
      *status = Status::NotFound(StrFormat("no distribution for Var(%zu,%zu)",
                                           var.object, var.attribute));
      return true;  // Applicable, but errored.
    }
    if (space > max_hub_space / dist->size()) return false;
    space *= dist->size();
    plan->hub_sizes.push_back(static_cast<std::uint32_t>(dist->size()));
  }
  plan->space = space;

  // Classify expressions. Values (constants, tables) are EvalStarPlan's
  // job; only slots, offsets and the original expressions live here.
  plan->exprs.clear();
  plan->conjunct_offsets.clear();
  plan->table_slots = 0;
  for (const Conjunct& conj : condition.conjuncts()) {
    plan->conjunct_offsets.push_back(
        static_cast<std::uint32_t>(plan->exprs.size()));
    for (const Expression& e : conj) {
      StarExpr ce;
      const auto lhs_it = hub_slot.find(PackVar(e.lhs));
      const int lslot = lhs_it == hub_slot.end() ? -1 : lhs_it->second;
      int rslot = -1;
      if (e.rhs_is_var) {
        const auto rhs_it = hub_slot.find(PackVar(e.rhs_var));
        rslot = rhs_it == hub_slot.end() ? -1 : rhs_it->second;
      }
      if (lslot < 0 && rslot < 0) {
        // Private-only: constant probability, refilled per eval.
        ce.kind = StarExpr::Kind::kConstant;
        ce.expr = e;
      } else if (lslot >= 0 && (!e.rhs_is_var || rslot >= 0)) {
        // Fully decided per hub assignment.
        ce.kind = StarExpr::Kind::kDecided;
        ce.lhs_slot = lslot;
        ce.rhs_slot = rslot;
        ce.op = e.op;
        ce.rhs_is_var = e.rhs_is_var;
        ce.rhs_const = e.rhs_const;
      } else {
        // Exactly one hub variable: tabulated over its values per eval.
        ce.kind = StarExpr::Kind::kTablePrime;
        ce.hub_is_lhs = lslot >= 0;
        ce.lhs_slot = ce.hub_is_lhs ? lslot : rslot;  // Table slot.
        ce.expr = e;
        ce.table_size =
            plan->hub_sizes[static_cast<std::size_t>(ce.lhs_slot)];
        ce.table_offset = static_cast<std::uint32_t>(plan->table_slots);
        plan->table_slots += ce.table_size;
      }
      plan->exprs.push_back(ce);
    }
  }
  plan->conjunct_offsets.push_back(
      static_cast<std::uint32_t>(plan->exprs.size()));
  return true;
}

Result<double> EvalStarPlan(const StarPlan& plan, const DistributionMap& dists,
                            StarScratch* scratch) {
  // Hub distributions. A plan can outlive the posteriors it was built
  // under (circuit reuse), so re-resolve and re-check the arity.
  scratch->hub_dists.resize(plan.hub.size());
  for (std::size_t i = 0; i < plan.hub.size(); ++i) {
    scratch->hub_dists[i] = dists.Find(plan.hub[i]);
    if (scratch->hub_dists[i] == nullptr) {
      return Status::NotFound(StrFormat("no distribution for Var(%zu,%zu)",
                                        plan.hub[i].object,
                                        plan.hub[i].attribute));
    }
    if (scratch->hub_dists[i]->size() != plan.hub_sizes[i]) {
      return Status::FailedPrecondition(
          "hub distribution arity changed since the plan was built");
    }
  }

  // Fill constants and tables from the current distributions, in the
  // same expression order (and with the same arithmetic) as the fused
  // ADPLL compile loop.
  scratch->const_probs.resize(plan.exprs.size());
  scratch->tables.resize(plan.table_slots);
  for (std::size_t idx = 0; idx < plan.exprs.size(); ++idx) {
    const StarExpr& ce = plan.exprs[idx];
    switch (ce.kind) {
      case StarExpr::Kind::kConstant: {
        const auto p = ExpressionProbability(ce.expr, dists);
        if (!p.ok()) return p.status();
        scratch->const_probs[idx] = p.value();
        break;
      }
      case StarExpr::Kind::kDecided:
        break;
      case StarExpr::Kind::kTablePrime: {
        const CellRef hub_var = ce.hub_is_lhs ? ce.expr.lhs : ce.expr.rhs_var;
        const CellRef private_var =
            ce.hub_is_lhs ? ce.expr.rhs_var : ce.expr.lhs;
        const std::vector<double>* hub_dist = dists.Find(hub_var);
        const std::vector<double>* priv_dist = dists.Find(private_var);
        if (hub_dist == nullptr || priv_dist == nullptr) {
          return Status::NotFound("no distribution for variable");
        }
        if (hub_dist->size() != ce.table_size) {
          return Status::FailedPrecondition(
              "hub distribution arity changed since the plan was built");
        }
        for (std::size_t v = 0; v < hub_dist->size(); ++v) {
          // Truth probability of the expression given hub value v.
          double p = 0.0;
          for (std::size_t w = 0; w < priv_dist->size(); ++w) {
            const Level lhs_val = ce.hub_is_lhs ? static_cast<Level>(v)
                                                : static_cast<Level>(w);
            const Level rhs_val = ce.hub_is_lhs ? static_cast<Level>(w)
                                                : static_cast<Level>(v);
            const bool truth = (ce.expr.op == CmpOp::kGreater)
                                   ? lhs_val > rhs_val
                                   : lhs_val < rhs_val;
            if (truth) p += (*priv_dist)[w];
          }
          scratch->tables[ce.table_offset + v] = p;
        }
        break;
      }
    }
  }

  // Enumerate hub assignments.
  scratch->h.assign(plan.hub.size(), 0);
  std::vector<Level>& h = scratch->h;
  double total = 0.0;
  for (std::size_t step = 0; step < plan.space; ++step) {
    double weight = 1.0;
    for (std::size_t i = 0; i < plan.hub.size(); ++i) {
      weight *= (*scratch->hub_dists[i])[static_cast<std::size_t>(h[i])];
    }
    if (weight > 0.0) {
      double product = 1.0;
      for (std::size_t c = 0; c + 1 < plan.conjunct_offsets.size(); ++c) {
        bool satisfied = false;
        double miss = 1.0;
        for (std::uint32_t e = plan.conjunct_offsets[c];
             e < plan.conjunct_offsets[c + 1]; ++e) {
          const StarExpr& ce = plan.exprs[e];
          switch (ce.kind) {
            case StarExpr::Kind::kConstant:
              miss *= 1.0 - scratch->const_probs[e];
              break;
            case StarExpr::Kind::kDecided: {
              const Level lhs = h[static_cast<std::size_t>(ce.lhs_slot)];
              const Level rhs =
                  ce.rhs_slot >= 0
                      ? h[static_cast<std::size_t>(ce.rhs_slot)]
                      : ce.rhs_const;
              const bool truth = (ce.op == CmpOp::kGreater) ? lhs > rhs
                                                            : lhs < rhs;
              if (truth) satisfied = true;
              break;
            }
            case StarExpr::Kind::kTablePrime:
              miss *= 1.0 -
                      scratch->tables[ce.table_offset +
                                      static_cast<std::size_t>(h[
                                          static_cast<std::size_t>(
                                              ce.lhs_slot)])];
              break;
          }
          if (satisfied) break;
        }
        product *= satisfied ? 1.0 : 1.0 - miss;
        if (product == 0.0) break;
      }
      total += weight * product;
    }
    // Advance the odometer.
    for (std::size_t i = 0; i < plan.hub.size(); ++i) {
      if (++h[i] < static_cast<Level>(scratch->hub_dists[i]->size())) break;
      h[i] = 0;
    }
  }
  return total;
}

}  // namespace bayescrowd
