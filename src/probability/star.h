// Star fast path, split into a reusable *plan* (structure) and an
// *evaluation* (arithmetic under the current distributions).
//
// Let H be the variables occurring more than once in a condition. When
// H's joint domain is small,
//   Pr(φ) = Σ_h p(h) Π_conjuncts Pr(conjunct | H = h),
// and given h every conjunct's surviving expressions touch distinct
// single-occurrence variables, so the disjunctive rule applies with
// per-expression probabilities that are either constants or lookups in
// tables indexed by one hub value.
//
// ADPLL historically built and evaluated this in one shot, allocating
// the hub maps and tables on every call. The split serves two masters:
//  * AdpllScratch reuses the buffers across solves (hot-path fix);
//  * the compiled-circuit evaluator stores the plan in its artifact and
//    refills constants/tables from the *current* posteriors each round.
// Both run the same EvalStarPlan, so a circuit-evaluated star is
// bit-identical to the ADPLL fast path by construction.

#ifndef BAYESCROWD_PROBABILITY_STAR_H_
#define BAYESCROWD_PROBABILITY_STAR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "ctable/condition.h"
#include "probability/distributions.h"

namespace bayescrowd {

// One expression, classified for hub enumeration.
struct StarExpr {
  enum class Kind : std::uint8_t {
    kConstant,    // No hub variable: probability refilled per eval.
    kDecided,     // Both operands hub/const: truth decided per h.
    kTablePrime,  // One hub variable: probability = table[hub value].
  } kind = Kind::kConstant;

  // kDecided: comparison of hub slots/constant.
  int lhs_slot = -1;          // Hub slot of lhs (kTablePrime: table slot).
  int rhs_slot = -1;          // Hub slot of rhs var (-1: const/private).
  CmpOp op = CmpOp::kGreater;
  Level rhs_const = 0;
  bool rhs_is_var = false;

  // kConstant / kTablePrime: the original expression, re-integrated
  // against the distributions at every evaluation.
  Expression expr;
  bool hub_is_lhs = false;           // kTablePrime: which side is the hub.
  std::uint32_t table_offset = 0;    // kTablePrime: into scratch tables.
  std::uint32_t table_size = 0;      // kTablePrime: hub domain size.
};

/// Value-independent star decomposition of one condition: hub variables
/// in first-occurrence order, classified expressions flattened
/// conjunct-major. Immutable once built — safe to share across lanes.
struct StarPlan {
  std::vector<CellRef> hub;
  std::vector<std::uint32_t> hub_sizes;         // Domain size per hub var.
  std::vector<StarExpr> exprs;
  std::vector<std::uint32_t> conjunct_offsets;  // exprs range per conjunct.
  std::size_t space = 0;                        // Joint hub domain size.
  std::size_t table_slots = 0;                  // Σ kTablePrime table sizes.
};

/// Reusable buffers for building and evaluating star plans. One scratch
/// per concurrent caller; contents are meaningless between calls.
struct StarScratch {
  // Build-time hub discovery.
  std::unordered_map<PackedVar, int> occurrences;
  std::vector<CellRef> order;
  std::unordered_map<PackedVar, int> hub_slot;
  // Eval-time state (tables are refilled from the current posteriors).
  std::vector<const std::vector<double>*> hub_dists;
  std::vector<double> const_probs;  // Per-expr, kConstant entries only.
  std::vector<double> tables;       // Flat kTablePrime table arena.
  std::vector<Level> h;             // Odometer.
};

/// Builds the star decomposition of `condition`. Returns false when the
/// decomposition does not apply (no hub, more than 16 hub variables, or
/// joint domain above `max_hub_space`) — the caller then branches
/// normally, which shrinks the hub by one. Returns true when it applies;
/// `*status` reports any error discovered while sizing the hub (missing
/// hub distribution), mirroring ADPLL's "applicable but errored" case.
bool BuildStarPlan(const Condition& condition, const DistributionMap& dists,
                   std::size_t max_hub_space, StarPlan* plan,
                   StarScratch* scratch, Status* status);

/// Fills the plan's per-expression constants and tables from `dists`,
/// then enumerates the hub joint domain. The arithmetic (fill loops,
/// odometer order, short-circuits) is the ADPLL star fast path verbatim,
/// so evaluating a stored plan under any posterior matches what ADPLL
/// would compute on the same condition.
Result<double> EvalStarPlan(const StarPlan& plan, const DistributionMap& dists,
                            StarScratch* scratch);

}  // namespace bayescrowd

#endif  // BAYESCROWD_PROBABILITY_STAR_H_
