#include "serve/cache.h"

#include <utility>

namespace bayescrowd::serve {

SharedQueryCache::SharedQueryCache(Options options)
    : options_(std::move(options)) {
  if (options_.max_entries == 0) options_.max_entries = 1;
}

void SharedQueryCache::Put(std::uint64_t scope, std::string blob) {
  std::lock_guard<std::mutex> lock(mu_);
  if (blob.size() > options_.max_bytes) {
    ++stats_.rejected;
    return;
  }
  auto it = entries_.find(scope);
  if (it != entries_.end()) {
    stats_.bytes -= it->second.blob.size();
    stats_.bytes += blob.size();
    it->second.blob = std::move(blob);
    lru_.erase(it->second.lru_pos);
    it->second.lru_pos = lru_.insert(lru_.begin(), scope);
  } else {
    Entry entry;
    stats_.bytes += blob.size();
    entry.blob = std::move(blob);
    entry.lru_pos = lru_.insert(lru_.begin(), scope);
    entries_.emplace(scope, std::move(entry));
  }
  ++stats_.donations;
  EvictPastBudgetsLocked();
  stats_.entries = entries_.size();
}

bool SharedQueryCache::Get(std::uint64_t scope, std::string* blob) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(scope);
  if (it == entries_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  lru_.erase(it->second.lru_pos);
  it->second.lru_pos = lru_.insert(lru_.begin(), scope);
  *blob = it->second.blob;
  return true;
}

void SharedQueryCache::EvictPastBudgetsLocked() {
  while (!lru_.empty() && (entries_.size() > options_.max_entries ||
                           stats_.bytes > options_.max_bytes)) {
    const std::uint64_t victim = lru_.back();
    auto it = entries_.find(victim);
    stats_.bytes -= it->second.blob.size();
    entries_.erase(it);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

SharedQueryCache::Stats SharedQueryCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = stats_;
  out.entries = entries_.size();
  return out;
}

}  // namespace bayescrowd::serve
