// SharedQueryCache: the serving layer's cross-session Pr(φ) memo and
// compiled-circuit cache.
//
// A resident server answers many queries over the same few datasets;
// the expensive part of each — exact #SAT solves and knowledge-compiled
// circuits — is embarrassingly reusable across sessions of the same
// tenant over the same data. This cache holds SerializeMemoState blobs
// keyed by a tenant-safe scope key (see SessionManager's scope
// derivation and ProbabilityOptions::cache_scope): a finished session
// donates its memo state here, and a later warm-started session of the
// same scope imports it via ProbabilityEvaluator::MergeMemoState.
//
// Safety is delegated to the evaluator's stamp discipline: an imported
// entry only serves a hit when its DistStamp ^ BudgetTag ^ CompileTag ^
// ScopeTag validates against the importing evaluator, so a stale or
// foreign blob is dead weight, never a wrong answer. The cache itself
// only bounds memory: least-recently-used scopes are evicted when the
// byte or entry budget is exceeded.

#ifndef BAYESCROWD_SERVE_CACHE_H_
#define BAYESCROWD_SERVE_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>

namespace bayescrowd::serve {

class SharedQueryCache {
 public:
  struct Options {
    /// Total bytes of blob payload retained; the LRU tail is evicted
    /// past this. A single blob larger than the budget is refused.
    std::size_t max_bytes = 64u << 20;

    /// Scopes retained. Minimum 1.
    std::size_t max_entries = 64;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t donations = 0;  // Accepted Put() calls.
    std::uint64_t rejected = 0;   // Blobs larger than the byte budget.
    std::size_t bytes = 0;
    std::size_t entries = 0;
  };

  explicit SharedQueryCache(Options options);

  SharedQueryCache(const SharedQueryCache&) = delete;
  SharedQueryCache& operator=(const SharedQueryCache&) = delete;

  /// Donates `blob` as the freshest memo state for `scope`, replacing
  /// any previous donation (the newer blob is a superset in the common
  /// session-chain case), then evicts LRU scopes past the budgets.
  /// Oversized blobs are counted and dropped.
  void Put(std::uint64_t scope, std::string blob);

  /// Copies the blob for `scope` into `*blob` and marks the scope
  /// most-recently-used. False on miss.
  bool Get(std::uint64_t scope, std::string* blob);

  Stats stats() const;

 private:
  struct Entry {
    std::string blob;
    std::list<std::uint64_t>::iterator lru_pos;
  };

  void EvictPastBudgetsLocked();

  Options options_;
  mutable std::mutex mu_;
  std::list<std::uint64_t> lru_;  // Front = most recently used.
  std::map<std::uint64_t, Entry> entries_;
  Stats stats_;
};

}  // namespace bayescrowd::serve

#endif  // BAYESCROWD_SERVE_CACHE_H_
